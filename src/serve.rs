//! # Multi-tenant solve scheduler — solver-as-a-service
//!
//! The paper's follow-on work (arXiv:1006.3148) makes explicit what
//! §1.3 implies: thread groups pinned to *distinct shared caches* run
//! independently without interfering. This module turns that into a
//! serving layer where **jobs/sec** is the headline metric: a machine
//! with several cache groups no longer runs one solve at a time —
//! disjoint core-set *slices* each serve their own stream of jobs.
//!
//! ```text
//!            submit / submit_blocking (admission control)
//!  clients ────────────────► [ JobQueue, bounded ]
//!                                   │ pop (policy: biggest-first | FIFO)
//!             ┌─────────────────────┼─────────────────────┐
//!             ▼                     ▼                     ▼
//!       slice 0 thread        slice 1 thread        slice N thread
//!       Machine::restrict     Machine::restrict     Machine::restrict
//!       (cache group 0)       (cache group 1)       (cache group N)
//!       persistent Runtime    persistent Runtime    persistent Runtime
//!       + GridPool            + GridPool            + GridPool
//!             │                     │                     │
//!             └────────── JobHandle::wait → JobReport ────┘
//! ```
//!
//! - **Admission control**: the [`JobQueue`] is bounded. [`Server::submit`]
//!   returns [`Rejected::Full`] (the spec comes back to the caller) when
//!   the queue is at capacity; [`Server::submit_blocking`] waits for
//!   space up to a deadline instead (backpressure).
//! - **Slices**: the machine is partitioned into disjoint core sets
//!   along [`Machine::cache_groups`] boundaries
//!   ([`Machine::restrict`]). Each slice keeps one persistent
//!   [`Runtime`] (workers pinned to the slice's cores) and its
//!   [`GridPool`](tb_runtime::GridPool) alive across jobs, so tenants
//!   pay neither spawn-per-job nor allocation-per-job.
//! - **Packing policy**: a free slice takes the biggest queued job
//!   first ([`SchedPolicy::BiggestFirst`], throughput — big jobs don't
//!   convoy behind the tail) or the oldest ([`SchedPolicy::Fifo`],
//!   latency).
//! - **Warm plans**: [`JobMethod::Tuned`] jobs tune through the plan
//!   cache keyed by the *executing slice's* sub-machine fingerprint.
//!   Identical slices share one fingerprint, so after the first cold
//!   tune every slice replays the winner with **zero** measurements.
//! - **Isolation**: a job that panics fails *its own* [`JobHandle`]
//!   with [`JobError`]; the slice's runtime survives and keeps serving
//!   (worker panics are caught and re-raised per dispatch, not poison).
//!
//! Every job returns a [`JobReport`] with queue-wait, service time,
//! MLUP/s, and an order-independent verification hash of the result
//! grid, so a serving deployment can spot-check any job against the
//! sequential oracle.

use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tb_grid::{norm, Dims3, Grid3, Real, Region3};
use tb_runtime::{Placement, Runtime};
use tb_stencil::{Avg27, Jacobi6, Jacobi7, RunStats, StencilOp, VarCoeff7};
use tb_topology::{Machine, TeamLayout};

use crate::{solve_tuned_with_on, solve_with_on, Method, TuneOptions};

// ---------------------------------------------------------------------
// The bounded queue
// ---------------------------------------------------------------------

/// Why a submission was turned away. The item always comes back to the
/// caller, untouched — admission control never consumes rejected work.
#[derive(Debug)]
pub enum Rejected<I> {
    /// The bounded queue is at capacity (and stayed there for the whole
    /// deadline, for the blocking form).
    Full(I),
    /// The queue is closed for new work (server shutting down).
    Closed(I),
}

impl<I> Rejected<I> {
    /// The rejected item, whatever the reason.
    pub fn into_inner(self) -> I {
        match self {
            Rejected::Full(i) | Rejected::Closed(i) => i,
        }
    }
}

struct QueueState<I> {
    items: VecDeque<I>,
    closed: bool,
}

/// A bounded MPMC job queue with admission control: producers are
/// rejected (or block up to a deadline) when the queue is full,
/// consumers pick items under a caller-supplied selection policy and
/// block while it is empty. Closing wakes everyone; consumers drain the
/// remaining items before seeing `None`.
pub struct JobQueue<I> {
    capacity: usize,
    state: Mutex<QueueState<I>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<I> JobQueue<I> {
    /// A queue admitting at most `capacity` (≥ 1) waiting items. Items
    /// being *executed* by a consumer no longer count against the bound.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a job queue needs capacity >= 1");
        Self {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting (not the ones being executed).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<I>> {
        self.state.lock().expect("job queue poisoned")
    }

    /// Admit `item` iff there is room right now.
    pub fn try_push(&self, item: I) -> Result<(), Rejected<I>> {
        let mut s = self.lock();
        if s.closed {
            return Err(Rejected::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(Rejected::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Admit `item`, waiting up to `timeout` for room (backpressure).
    pub fn push_deadline(&self, item: I, timeout: Duration) -> Result<(), Rejected<I>> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.closed {
                return Err(Rejected::Closed(item));
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Rejected::Full(item));
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(s, deadline - now)
                .expect("job queue poisoned");
            s = guard;
        }
    }

    /// Take one item, chosen by `pick` from the current queue contents
    /// (`pick` returns an index into the `VecDeque`, front = oldest).
    /// Blocks while the queue is empty; returns `None` once it is
    /// closed *and* drained.
    pub fn pop_select(&self, pick: impl Fn(&VecDeque<I>) -> usize) -> Option<I> {
        let mut s = self.lock();
        loop {
            if !s.items.is_empty() {
                let idx = pick(&s.items).min(s.items.len() - 1);
                let item = s.items.remove(idx).expect("index bounded above");
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("job queue poisoned");
        }
    }

    /// Close for new submissions and wake every waiter. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Remove and return everything still waiting (used by the server
    /// to cancel jobs that no slice will ever pick up).
    pub fn drain(&self) -> Vec<I> {
        self.lock().items.drain(..).collect()
    }
}

// ---------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------

/// The operator a job applies — the same four operators the rest of the
/// workspace verifies bitwise, instantiable for either element type.
// Not `#[non_exhaustive]`: the hidden variant is a test hook, and
// callers are expected to match the four real operators exhaustively.
#[allow(clippy::manual_non_exhaustive)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobOp {
    /// The paper's Eq. 1 six-point Jacobi average.
    Jacobi6,
    /// Explicit-Euler heat step with the given diffusion number.
    Jacobi7Heat(f64),
    /// Seven-point variable-coefficient diffusion over the deterministic
    /// banded coefficient field ([`VarCoeff7::banded`]).
    VarCoeff7Banded,
    /// Dense 27-point average.
    Avg27,
    /// Test-only: panics inside the slice worker, to prove that one
    /// job's failure cannot poison other slices.
    #[doc(hidden)]
    PanicForTest,
}

impl JobOp {
    pub fn name(&self) -> &'static str {
        match self {
            JobOp::Jacobi6 => "jacobi6",
            JobOp::Jacobi7Heat(_) => "jacobi7",
            JobOp::VarCoeff7Banded => "varcoeff7",
            JobOp::Avg27 => "avg27",
            JobOp::PanicForTest => "panic-for-test",
        }
    }
}

/// The initial grid, carrying the element type with it.
#[derive(Clone, Debug)]
pub enum JobPayload {
    F64(Grid3<f64>),
    F32(Grid3<f32>),
}

impl JobPayload {
    pub fn dims(&self) -> Dims3 {
        match self {
            JobPayload::F64(g) => g.dims(),
            JobPayload::F32(g) => g.dims(),
        }
    }

    pub fn element(&self) -> &'static str {
        match self {
            JobPayload::F64(_) => "f64",
            JobPayload::F32(_) => "f32",
        }
    }

    /// Order-independent checksum of the grid ([`norm::fingerprint`]
    /// over the whole region) — compare a job's [`JobReport::verify_hash`]
    /// against the oracle's payload to verify without keeping both grids.
    pub fn fingerprint(&self) -> u64 {
        match self {
            JobPayload::F64(g) => norm::fingerprint(g, &Region3::whole(g.dims())),
            JobPayload::F32(g) => norm::fingerprint(g, &Region3::whole(g.dims())),
        }
    }
}

/// How a job picks its execution strategy.
#[derive(Clone, Debug)]
pub enum JobMethod {
    /// Run exactly this method (its thread count must fit the slice).
    Fixed(Method),
    /// Let the plan-cache autotuner choose; the server overrides
    /// [`TuneOptions::machine`] with the executing slice's sub-machine,
    /// so the plan is keyed per sub-machine fingerprint and warm jobs
    /// replay with zero measurements on every identical slice.
    Tuned(TuneOptions),
}

/// One solve job: operator, initial grid, sweep count, strategy.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub op: JobOp,
    pub payload: JobPayload,
    pub sweeps: usize,
    pub method: JobMethod,
    /// Caller correlation id, copied into the report verbatim.
    pub tag: u64,
}

impl JobSpec {
    /// A fixed-method job with `tag = 0`.
    pub fn new(op: JobOp, payload: JobPayload, sweeps: usize, method: JobMethod) -> Self {
        Self {
            op,
            payload,
            sweeps,
            method,
            tag: 0,
        }
    }

    /// Scheduling weight: total cell updates requested. The
    /// biggest-first policy orders the queue by this.
    pub fn weight(&self) -> u64 {
        let d = self.payload.dims();
        (d.nx * d.ny * d.nz * self.sweeps.max(1)) as u64
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Tuning facts of a [`JobMethod::Tuned`] job.
#[derive(Clone, Debug)]
pub struct TunedJob {
    /// `true` when the plan was replayed from the cache — by contract
    /// such a job performed **zero** measurements.
    pub cache_hit: bool,
    /// Candidate measurements performed (0 on a warm hit).
    pub measurements: usize,
    /// Label of the plan that ran.
    pub plan: String,
}

/// What every finished job reports.
#[derive(Clone, Debug)]
pub struct JobReport {
    pub job_id: u64,
    pub tag: u64,
    /// Index of the slice that served the job.
    pub slice: usize,
    pub op: &'static str,
    pub dims: Dims3,
    pub sweeps: usize,
    /// Admission → a slice picking the job up.
    pub queue_wait: Duration,
    /// Solve wall time on the slice (tuning included for cold tunes,
    /// ingest/egress included under worker-first-touch placement).
    pub service: Duration,
    /// Copying the client payload into the slice-local grid (zero under
    /// [`Placement::ClientPages`], including the single-node downgrade
    /// — see [`ServerConfig::placement`]).
    pub ingest: Duration,
    /// Copying the result back into the client's grid (zero under
    /// [`Placement::ClientPages`], including the single-node downgrade).
    pub egress: Duration,
    /// Fresh grid allocations this job caused in the slice's pool — 0
    /// once the slice is warm for the job's shape, which is the
    /// observable "warm path allocates nothing" contract.
    pub pool_fresh: u64,
    pub mlups: f64,
    pub cell_updates: u64,
    /// Order-independent checksum of the result grid; equal to the
    /// sequential oracle's [`JobPayload::fingerprint`] iff the solve is
    /// bitwise-correct.
    pub verify_hash: u64,
    /// Present on tuned jobs.
    pub tuned: Option<TunedJob>,
}

impl JobReport {
    /// Queue wait + service: what the submitting client experienced.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.service
    }
}

/// A failed job. Failures are per-job: the slice that ran it survives.
#[derive(Clone, Debug)]
pub struct JobError {
    pub job_id: u64,
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}: {}", self.job_id, self.message)
    }
}

impl std::error::Error for JobError {}

/// Result grid (same element type as submitted) plus the report.
pub type JobOutcome = Result<(JobPayload, JobReport), JobError>;

struct JobState {
    done: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl JobState {
    fn new() -> Arc<Self> {
        Arc::new(JobState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, outcome: JobOutcome) {
        *self.done.lock().expect("job state poisoned") = Some(outcome);
        self.cv.notify_all();
    }
}

/// Ticket for a submitted job; [`JobHandle::wait`] blocks until a slice
/// finished it.
pub struct JobHandle {
    id: u64,
    state: Arc<JobState>,
}

impl JobHandle {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking: has the job finished?
    pub fn is_done(&self) -> bool {
        self.state
            .done
            .lock()
            .expect("job state poisoned")
            .is_some()
    }

    /// Block until the job finished and take its outcome.
    pub fn wait(self) -> JobOutcome {
        let mut done = self.state.done.lock().expect("job state poisoned");
        loop {
            if let Some(outcome) = done.take() {
                return outcome;
            }
            done = self.state.cv.wait(done).expect("job state poisoned");
        }
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Queue-pop order when a slice frees up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Oldest first: minimizes p50 latency.
    Fifo,
    /// Biggest requested work ([`JobSpec::weight`]) first: maximizes
    /// packing/throughput — long jobs start early instead of convoying
    /// behind the tail (ties break toward the oldest).
    #[default]
    BiggestFirst,
}

/// How the machine is partitioned into slices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SlicePolicy {
    /// One slice per cache group — the paper's thread-group boundary,
    /// and the right default: groups behind distinct shared caches do
    /// not interfere.
    #[default]
    PerCacheGroup,
    /// Exactly `n` slices of near-equal core counts, carved
    /// contiguously from the cache groups in order (group boundaries
    /// are respected whenever the counts divide evenly). Useful to
    /// sub-split one big cache group, or to merge groups for jobs that
    /// need wider teams.
    Fixed(usize),
}

/// Knobs for [`Server::new`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bound of the admission queue (jobs waiting, not running).
    pub queue_capacity: usize,
    /// Latency-vs-throughput packing knob.
    pub policy: SchedPolicy,
    /// [`Runtime::with_pool_capacity`] for every slice runtime: a
    /// long-lived multi-tenant slice serves many problem shapes, so it
    /// parks more staging grids than the single-solve default.
    pub pool_capacity: usize,
    /// Machine partitioning.
    pub slices: SlicePolicy,
    /// Page placement for job grids. The default,
    /// [`Placement::WorkerFirstTouch`], makes every slice *ingest* the
    /// client's payload into a slice-local pooled grid (copied by the
    /// slice's own pinned workers, so its pages live on the slice's
    /// NUMA domain) and copy the result back out on completion;
    /// [`JobReport::ingest`]/[`JobReport::egress`] report the cost.
    /// [`Placement::ClientPages`] computes on the client's pages
    /// directly — right on UMA hosts or when clients pre-place pages.
    ///
    /// On a machine reporting a **single NUMA node** every page is
    /// already node-local, so the ingest/egress copies cannot improve
    /// placement — the server downgrades to the zero-copy path
    /// regardless of this field (see [`ServerConfig::force_placement`]).
    pub placement: Placement,
    /// Honor [`ServerConfig::placement`] verbatim even on single-node
    /// machines, where the server would otherwise run zero-copy.
    /// Placement tests and ablation benches set this to exercise the
    /// ingest/egress machinery on hosts without real NUMA; production
    /// code has no reason to.
    pub force_placement: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            policy: SchedPolicy::default(),
            pool_capacity: 16,
            slices: SlicePolicy::default(),
            placement: Placement::WorkerFirstTouch,
            force_placement: false,
        }
    }
}

/// Static description of one slice.
#[derive(Clone, Debug)]
pub struct SliceInfo {
    pub index: usize,
    /// The disjoint core set this slice owns.
    pub cores: Vec<usize>,
    /// Compute workers of the slice runtime (== `cores.len()`).
    pub threads: usize,
    /// [`Machine::signature`] of the slice's sub-machine — the machine
    /// half of its plan-cache fingerprint.
    pub signature: String,
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    enqueued: Instant,
    weight: u64,
    state: Arc<JobState>,
}

/// The multi-tenant solve server. See the module docs for the shape.
///
/// Dropping the server closes the queue, lets every slice drain the
/// remaining admitted jobs, joins the slice threads, and fails any job
/// that never started (possible only for a paused server) with a
/// cancellation [`JobError`].
pub struct Server {
    queue: Arc<JobQueue<QueuedJob>>,
    slices: Vec<SliceInfo>,
    sub_machines: Vec<Machine>,
    threads: Vec<JoinHandle<()>>,
    policy: SchedPolicy,
    pool_capacity: usize,
    placement: Placement,
    next_id: AtomicU64,
}

/// Partition the machine's CPUs into disjoint slices per `policy`.
fn partition(machine: &Machine, policy: &SlicePolicy) -> Vec<Vec<usize>> {
    let groups = machine.cache_groups();
    match policy {
        SlicePolicy::PerCacheGroup => groups,
        SlicePolicy::Fixed(n) => {
            let all: Vec<usize> = groups.into_iter().flatten().collect();
            let n = (*n).clamp(1, all.len());
            let base = all.len() / n;
            let extra = all.len() % n;
            let mut out = Vec::with_capacity(n);
            let mut start = 0;
            for i in 0..n {
                let len = base + usize::from(i < extra);
                out.push(all[start..start + len].to_vec());
                start += len;
            }
            out
        }
    }
}

impl Server {
    /// Partition `machine` per the config and start one service thread
    /// (with its persistent pinned runtime) per slice.
    pub fn new(machine: &Machine, cfg: ServerConfig) -> Server {
        let mut s = Server::new_paused(machine, cfg);
        s.start();
        s
    }

    /// Like [`Server::new`], but without starting the slice threads:
    /// submissions are admitted (and rejected) by the queue alone until
    /// [`Server::start`]. Deterministic admission-control tests use
    /// this; production code wants [`Server::new`].
    pub fn new_paused(machine: &Machine, cfg: ServerConfig) -> Server {
        let parts = partition(machine, &cfg.slices);
        assert!(!parts.is_empty(), "machine has no cores to slice");
        // With one NUMA node the ingest/egress copies are pure overhead
        // (every page is already node-local): run zero-copy unless a
        // test/bench explicitly forces the requested policy through.
        let placement = if cfg.force_placement || machine.num_numa_nodes() >= 2 {
            cfg.placement
        } else {
            Placement::ClientPages
        };
        let sub_machines: Vec<Machine> = parts.iter().map(|p| machine.restrict(p)).collect();
        let slices = parts
            .iter()
            .zip(&sub_machines)
            .enumerate()
            .map(|(index, (cores, sub))| SliceInfo {
                index,
                cores: cores.clone(),
                threads: sub.num_cpus(),
                signature: sub.signature(),
            })
            .collect();
        Server {
            queue: Arc::new(JobQueue::bounded(cfg.queue_capacity)),
            slices,
            sub_machines,
            threads: Vec::new(),
            policy: cfg.policy,
            pool_capacity: cfg.pool_capacity,
            placement,
            next_id: AtomicU64::new(1),
        }
    }

    /// Start the slice threads (idempotent).
    pub fn start(&mut self) {
        if !self.threads.is_empty() {
            return;
        }
        for (index, sub) in self.sub_machines.iter().enumerate() {
            let queue = Arc::clone(&self.queue);
            let sub = sub.clone();
            let policy = self.policy;
            let pool_capacity = self.pool_capacity;
            let placement = self.placement;
            let handle = std::thread::Builder::new()
                .name(format!("tb-serve-s{index}"))
                .spawn(move || slice_loop(queue, sub, index, policy, pool_capacity, placement))
                .expect("spawn slice thread");
            self.threads.push(handle);
        }
    }

    /// The slices this server schedules onto.
    pub fn slices(&self) -> &[SliceInfo] {
        &self.slices
    }

    /// Jobs admitted but not yet picked up by a slice.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    // `Rejected` hands the (large) spec back by design — admission
    // control must return the rejected job for resubmission.
    #[allow(clippy::result_large_err)]
    fn enqueue(
        &self,
        spec: JobSpec,
        push: impl FnOnce(QueuedJob) -> Result<(), Rejected<QueuedJob>>,
    ) -> Result<JobHandle, Rejected<JobSpec>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = JobState::new();
        let job = QueuedJob {
            id,
            weight: spec.weight(),
            spec,
            enqueued: Instant::now(),
            state: Arc::clone(&state),
        };
        match push(job) {
            Ok(()) => Ok(JobHandle { id, state }),
            Err(Rejected::Full(j)) => Err(Rejected::Full(j.spec)),
            Err(Rejected::Closed(j)) => Err(Rejected::Closed(j.spec)),
        }
    }

    /// Admit a job iff the queue has room **right now**; a full queue
    /// returns [`Rejected::Full`] with the spec, untouched.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Rejected<JobSpec>> {
        self.enqueue(spec, |j| self.queue.try_push(j))
    }

    /// Admit a job, blocking up to `timeout` for queue space
    /// (backpressure for closed-loop clients).
    #[allow(clippy::result_large_err)]
    pub fn submit_blocking(
        &self,
        spec: JobSpec,
        timeout: Duration,
    ) -> Result<JobHandle, Rejected<JobSpec>> {
        self.enqueue(spec, |j| self.queue.push_deadline(j, timeout))
    }

    /// Graceful shutdown: stop admitting, serve everything already
    /// admitted, join the slices. (Dropping does the same.)
    pub fn shutdown(self) {}
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Only a never-started server can still hold admitted jobs.
        for job in self.queue.drain() {
            job.state.complete(Err(JobError {
                job_id: job.id,
                message: "server dropped before the job was scheduled".into(),
            }));
        }
    }
}

// ---------------------------------------------------------------------
// Slice execution
// ---------------------------------------------------------------------

fn slice_loop(
    queue: Arc<JobQueue<QueuedJob>>,
    sub: Machine,
    index: usize,
    policy: SchedPolicy,
    pool_capacity: usize,
    placement: Placement,
) {
    // One persistent runtime per slice, workers pinned to the slice's
    // cores, alive across every job this slice ever serves.
    let layout = TeamLayout::new(&sub, sub.num_cpus(), 1);
    let rt = Runtime::new(&layout)
        .with_pool_capacity(pool_capacity)
        .with_placement(placement);
    // Constructed operators that own grids (the banded coefficient
    // field) are cached per shape, so warm jobs skip that allocation
    // too — see `banded_op`.
    let mut op_cache: OpCache = HashMap::new();
    let pick = |items: &VecDeque<QueuedJob>| -> usize {
        match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::BiggestFirst => items
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.weight.cmp(&b.weight).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .unwrap_or(0),
        }
    };
    while let Some(job) = queue.pop_select(pick) {
        let picked = Instant::now();
        let queue_wait = picked.duration_since(job.enqueued);
        let QueuedJob {
            id, spec, state, ..
        } = job;
        let tag = spec.tag;
        let op_name = spec.op.name();
        let dims = spec.payload.dims();
        let sweeps = spec.sweeps;
        // A panicking job fails its own handle; the slice (and its
        // runtime, which already survives worker panics) keeps serving.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&rt, &sub, spec, &mut op_cache)
        }));
        let service = picked.elapsed();
        let outcome = match result {
            Ok(Ok(exec)) => Ok((
                exec.payload,
                JobReport {
                    job_id: id,
                    tag,
                    slice: index,
                    op: op_name,
                    dims,
                    sweeps,
                    queue_wait,
                    service,
                    ingest: exec.ingest,
                    egress: exec.egress,
                    pool_fresh: exec.pool_fresh,
                    mlups: exec.mlups,
                    cell_updates: exec.cell_updates,
                    verify_hash: exec.verify_hash,
                    tuned: exec.tuned,
                },
            )),
            Ok(Err(message)) => Err(JobError {
                job_id: id,
                message,
            }),
            Err(panic) => Err(JobError {
                job_id: id,
                message: format!("job panicked: {}", panic_message(&panic)),
            }),
        };
        state.complete(outcome);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

struct Executed {
    payload: JobPayload,
    mlups: f64,
    cell_updates: u64,
    verify_hash: u64,
    ingest: Duration,
    egress: Duration,
    pool_fresh: u64,
    tuned: Option<TunedJob>,
}

/// Constructed operators that own grids (today: [`VarCoeff7::banded`]'s
/// coefficient field), cached per element type and shape so a warm
/// slice allocates nothing per job. Bounded: a shape mix wider than
/// [`OP_CACHE_CAP`] distinct (type, dims) entries resets the cache.
type OpCache = HashMap<(TypeId, Dims3), Box<dyn Any + Send>>;

const OP_CACHE_CAP: usize = 32;

fn banded_op<T: Real>(cache: &mut OpCache, dims: Dims3) -> &VarCoeff7<T> {
    let key = (TypeId::of::<T>(), dims);
    if !cache.contains_key(&key) && cache.len() >= OP_CACHE_CAP {
        cache.clear();
    }
    cache
        .entry(key)
        .or_insert_with(|| Box::new(VarCoeff7::<T>::banded(dims)))
        .downcast_ref::<VarCoeff7<T>>()
        .expect("op cache entries are keyed by their TypeId")
}

fn execute(
    rt: &Runtime,
    sub: &Machine,
    spec: JobSpec,
    cache: &mut OpCache,
) -> Result<Executed, String> {
    let JobSpec {
        op,
        payload,
        sweeps,
        method,
        ..
    } = spec;
    match payload {
        JobPayload::F64(grid) => {
            run_typed(rt, sub, &op, grid, sweeps, &method, cache).map(Executed::from_f64)
        }
        JobPayload::F32(grid) => {
            run_typed(rt, sub, &op, grid, sweeps, &method, cache).map(Executed::from_f32)
        }
    }
}

/// What [`run_typed`] hands back before the payload is re-wrapped.
struct TypedRun<T: Real> {
    grid: Grid3<T>,
    stats: RunStats,
    tuned: Option<TunedJob>,
    ingest: Duration,
    egress: Duration,
    pool_fresh: u64,
}

impl Executed {
    fn from_f64(run: TypedRun<f64>) -> Executed {
        Executed::pack(
            JobPayload::F64(run.grid),
            &run.stats,
            run.tuned,
            (run.ingest, run.egress, run.pool_fresh),
        )
    }
    fn from_f32(run: TypedRun<f32>) -> Executed {
        Executed::pack(
            JobPayload::F32(run.grid),
            &run.stats,
            run.tuned,
            (run.ingest, run.egress, run.pool_fresh),
        )
    }
    fn pack(
        payload: JobPayload,
        stats: &RunStats,
        tuned: Option<TunedJob>,
        (ingest, egress, pool_fresh): (Duration, Duration, u64),
    ) -> Executed {
        Executed {
            verify_hash: payload.fingerprint(),
            mlups: stats.mlups(),
            cell_updates: stats.cell_updates,
            payload,
            ingest,
            egress,
            pool_fresh,
            tuned,
        }
    }
}

fn run_typed<T: Real>(
    rt: &Runtime,
    sub: &Machine,
    op: &JobOp,
    grid: Grid3<T>,
    sweeps: usize,
    method: &JobMethod,
    cache: &mut OpCache,
) -> Result<TypedRun<T>, String> {
    let pool = rt.grid_pool::<T>();
    let fresh_before = pool.fresh_allocations();

    // Ingest: under worker-first-touch, copy the client's payload into
    // a slice-local pooled grid with the slice's own pinned workers —
    // on a pool miss the acquire itself first-touches, so the copy
    // writes pages the slice just placed. The client grid is kept
    // aside to carry the result back out.
    let (client, work, ingest) = if rt.placement() == Placement::WorkerFirstTouch {
        let ingest_start = Instant::now();
        let mut local = rt.acquire_grid(grid.dims());
        rt.place_copy(local.as_mut_slice(), grid.as_slice());
        (Some(grid), local, ingest_start.elapsed())
    } else {
        (None, grid, Duration::ZERO)
    };

    let (result, stats, tuned) = match op {
        JobOp::Jacobi6 => run_op(rt, sub, &Jacobi6, work, sweeps, method),
        JobOp::Jacobi7Heat(k) => run_op(rt, sub, &Jacobi7::heat(*k), work, sweeps, method),
        JobOp::VarCoeff7Banded => {
            let op = banded_op::<T>(cache, work.dims());
            run_op(rt, sub, op, work, sweeps, method)
        }
        JobOp::Avg27 => run_op(rt, sub, &Avg27, work, sweeps, method),
        JobOp::PanicForTest => panic!("poison-pill job"),
    }?;

    // Egress: copy the result back into the client's own grid (their
    // pages, their element order) and park the slice-local grid for the
    // next job of this shape.
    let egress_start = Instant::now();
    let (grid, egress) = match client {
        Some(mut client) => {
            rt.place_copy(client.as_mut_slice(), result.as_slice());
            pool.release(result);
            (client, egress_start.elapsed())
        }
        None => (result, Duration::ZERO),
    };

    Ok(TypedRun {
        grid,
        stats,
        tuned,
        ingest,
        egress,
        pool_fresh: pool.fresh_allocations() - fresh_before,
    })
}

fn run_op<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    sub: &Machine,
    op: &Op,
    grid: Grid3<T>,
    sweeps: usize,
    method: &JobMethod,
) -> Result<(Grid3<T>, RunStats, Option<TunedJob>), String> {
    match method {
        JobMethod::Fixed(m) => {
            solve_with_on(rt, op, grid, sweeps, m.clone()).map(|(g, s)| (g, s, None))
        }
        JobMethod::Tuned(opts) => {
            // Key the tune by THIS slice's sub-machine fingerprint:
            // identical slices share warm plans, different shapes don't.
            let mut opts = opts.clone();
            opts.machine = Some(sub.clone());
            solve_tuned_with_on(rt, op, grid, sweeps, &opts).map(|(g, s, t)| {
                (
                    g,
                    s,
                    Some(TunedJob {
                        cache_hit: t.cache_hit,
                        measurements: t.measurements,
                        plan: t.plan.label(),
                    }),
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::init;

    #[test]
    fn queue_admits_up_to_capacity_then_rejects() {
        let q: JobQueue<u32> = JobQueue::bounded(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(Rejected::Full(item)) => assert_eq!(item, 3, "the item comes back"),
            other => panic!("expected Full rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop_select(|_| 0), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn push_deadline_times_out_on_a_full_queue() {
        let q: JobQueue<u32> = JobQueue::bounded(1);
        q.try_push(1).unwrap();
        let t0 = Instant::now();
        match q.push_deadline(2, Duration::from_millis(30)) {
            Err(Rejected::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(25), "really waited");
    }

    #[test]
    fn push_deadline_succeeds_when_a_consumer_frees_space() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::bounded(1));
        q.try_push(1).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.pop_select(|_| 0)
            })
        };
        assert!(q.push_deadline(2, Duration::from_secs(10)).is_ok());
        assert_eq!(consumer.join().unwrap(), Some(1));
        assert_eq!(q.pop_select(|_| 0), Some(2));
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q: JobQueue<u32> = JobQueue::bounded(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(Rejected::Closed(8))));
        assert!(matches!(
            q.push_deadline(9, Duration::from_millis(5)),
            Err(Rejected::Closed(9))
        ));
        // Consumers still drain admitted items, then see None.
        assert_eq!(q.pop_select(|_| 0), Some(7));
        assert_eq!(q.pop_select(|_| 0), None);
    }

    #[test]
    fn partition_follows_cache_groups() {
        let m = Machine::nehalem_ep();
        assert_eq!(
            partition(&m, &SlicePolicy::PerCacheGroup),
            vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]
        );
        // Forced split: contiguous near-equal chunks.
        assert_eq!(
            partition(&m, &SlicePolicy::Fixed(4)),
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]
        );
        let uneven = partition(&m, &SlicePolicy::Fixed(3));
        assert_eq!(uneven.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(uneven.len(), 3);
        // More slices than cores clamps to one core per slice.
        assert_eq!(
            partition(&Machine::flat(2), &SlicePolicy::Fixed(5)).len(),
            2
        );
    }

    #[test]
    fn server_serves_a_job_and_verifies_against_the_oracle() {
        let m = Machine::flat(2);
        let server = Server::new(&m, ServerConfig::default());
        assert_eq!(server.slices().len(), 1);
        let initial: Grid3<f64> = init::random(Dims3::cube(12), 42);
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(initial.clone()),
            3,
            JobMethod::Fixed(Method::Parallel {
                threads: 2,
                streaming_stores: false,
            }),
        );
        let (payload, report) = server.submit(spec).unwrap().wait().expect("job succeeds");
        let (oracle, _) = crate::solve(initial, 3, Method::Sequential).unwrap();
        assert_eq!(
            report.verify_hash,
            JobPayload::F64(oracle.clone()).fingerprint()
        );
        match payload {
            JobPayload::F64(g) => norm::assert_grids_identical(
                &oracle,
                &g,
                &Region3::whole(oracle.dims()),
                "served vs oracle",
            ),
            _ => panic!("element type preserved"),
        }
        assert!(report.mlups > 0.0);
        assert_eq!(
            report.cell_updates,
            (3 * Dims3::cube(12).interior_len()) as u64
        );
    }

    #[test]
    fn biggest_first_picks_the_heaviest_queued_job() {
        // Paused server: jobs stack up; on start, the single slice must
        // serve the biggest job first (after the tiny head-of-line job
        // it grabs immediately).
        let m = Machine::flat(1);
        let mut server = Server::new_paused(
            &m,
            ServerConfig {
                policy: SchedPolicy::BiggestFirst,
                ..ServerConfig::default()
            },
        );
        let job = |edge: usize, tag: u64| {
            let mut spec = JobSpec::new(
                JobOp::Jacobi6,
                JobPayload::F64(init::random(Dims3::cube(edge), tag)),
                2,
                JobMethod::Fixed(Method::Sequential),
            );
            spec.tag = tag;
            spec
        };
        let small = server.submit(job(8, 1)).unwrap();
        let big = server.submit(job(16, 2)).unwrap();
        let medium = server.submit(job(12, 3)).unwrap();
        server.start();
        let reports: Vec<JobReport> = [small, big, medium]
            .into_iter()
            .map(|h| h.wait().expect("jobs succeed").1)
            .collect();
        // Queue order on start: [small, big, medium]; biggest-first
        // serves big before medium. (small may or may not go first
        // depending on when the slice wakes; order big < medium is the
        // policy's invariant.)
        let end_of = |tag: u64| {
            let r = reports.iter().find(|r| r.tag == tag).unwrap();
            r.queue_wait + r.service
        };
        assert!(
            end_of(2) < end_of(3),
            "biggest job must finish before the medium one"
        );
    }
}
