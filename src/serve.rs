//! # Multi-tenant solve scheduler — solver-as-a-service
//!
//! The paper's follow-on work (arXiv:1006.3148) makes explicit what
//! §1.3 implies: thread groups pinned to *distinct shared caches* run
//! independently without interfering. This module turns that into a
//! serving layer where **jobs/sec** is the headline metric: a machine
//! with several cache groups no longer runs one solve at a time —
//! disjoint core-set *slices* each serve their own stream of jobs.
//!
//! ```text
//!            submit / submit_blocking (admission control)
//!  clients ────────────────► [ JobQueue, bounded ]
//!                                   │ pop (policy: biggest-first | FIFO)
//!             ┌─────────────────────┼─────────────────────┐
//!             ▼                     ▼                     ▼
//!       slice 0 thread        slice 1 thread        slice N thread
//!       Machine::restrict     Machine::restrict     Machine::restrict
//!       (cache group 0)       (cache group 1)       (cache group N)
//!       persistent Runtime    persistent Runtime    persistent Runtime
//!       + GridPool            + GridPool            + GridPool
//!             │                     │                     │
//!             └────────── JobHandle::wait → JobReport ────┘
//! ```
//!
//! - **Admission control**: the [`JobQueue`] is bounded. [`Server::submit`]
//!   returns [`Rejected::Full`] (the spec comes back to the caller) when
//!   the queue is at capacity; [`Server::submit_blocking`] waits for
//!   space up to a deadline instead (backpressure).
//! - **Slices**: the machine is partitioned into disjoint core sets
//!   along [`Machine::cache_groups`] boundaries
//!   ([`Machine::restrict`]). Each slice keeps one persistent
//!   [`Runtime`] (workers pinned to the slice's cores) and its
//!   [`GridPool`](tb_runtime::GridPool) alive across jobs, so tenants
//!   pay neither spawn-per-job nor allocation-per-job.
//! - **Packing policy**: a free slice takes the biggest queued job
//!   first ([`SchedPolicy::BiggestFirst`], throughput — big jobs don't
//!   convoy behind the tail), the oldest ([`SchedPolicy::Fifo`],
//!   latency), or the most urgent ([`SchedPolicy::Deadline`]:
//!   earliest-deadline-first over [`Priority`] classes, with aging so
//!   `Batch` jobs cannot starve — see [`deadline_pick`]).
//! - **Deadlines**: a [`JobSpec`] may carry a client deadline. The
//!   server predicts a service-time *floor* for the executing slice
//!   (observed MLUP/s for the (operator, element) pair, else the
//!   tb-model cache-bandwidth bound
//!   [`tb_model::service_floor_seconds`]) and, under
//!   [`Admission::Shed`], rejects jobs that would blow their deadline
//!   even starting immediately ([`Rejected::Infeasible`]) instead of
//!   queueing doomed work. [`JobReport::deadline_met`] records the
//!   honest outcome — measured from *submission-call entry*, so time
//!   blocked in [`Server::submit_blocking`] counts against the client
//!   deadline ([`JobReport::admission_wait`]).
//! - **Cancellation**: [`JobHandle::cancel`] removes a still-queued job
//!   atomically — a cancelled job never executes.
//! - **Accounting**: [`Server::stats`] aggregates per-[`Priority`]
//!   completion counts, p50/p99 latency, deadline misses, sheds and
//!   cancels ([`ServerStats`]).
//! - **Warm plans**: [`JobMethod::Tuned`] jobs tune through the plan
//!   cache keyed by the *executing slice's* sub-machine fingerprint.
//!   Identical slices share one fingerprint, so after the first cold
//!   tune every slice replays the winner with **zero** measurements.
//! - **Isolation**: a job that panics fails *its own* [`JobHandle`]
//!   with [`JobError`]; the slice's runtime survives and keeps serving
//!   (worker panics are caught and re-raised per dispatch, not poison).
//!
//! Every job returns a [`JobReport`] with queue-wait, service time,
//! MLUP/s, and an order-independent verification hash of the result
//! grid, so a serving deployment can spot-check any job against the
//! sequential oracle.

use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tb_grid::{norm, Dims3, Grid3, Real, Region3};
use tb_model::MachineParams;
use tb_runtime::{Placement, Runtime};
use tb_stencil::{Avg27, Jacobi6, Jacobi7, RunStats, StencilOp, VarCoeff7};
use tb_topology::{Machine, TeamLayout};

use crate::{solve_tuned_with_on, solve_with_on, Method, TuneOptions};

// ---------------------------------------------------------------------
// The bounded queue
// ---------------------------------------------------------------------

/// Why a submission was turned away. The item always comes back to the
/// caller, untouched — admission control never consumes rejected work.
#[derive(Debug)]
pub enum Rejected<I> {
    /// The bounded queue is at capacity (and stayed there for the whole
    /// deadline, for the blocking form).
    Full(I),
    /// The queue is closed for new work (server shutting down).
    Closed(I),
    /// Admission control predicts the job cannot meet its deadline even
    /// starting immediately on an idle slice: the optimistic service
    /// floor (second field) already exceeds the requested deadline.
    /// Only servers running [`Admission::Shed`] produce this.
    Infeasible(I, Duration),
}

impl<I> Rejected<I> {
    /// The rejected item, whatever the reason.
    pub fn into_inner(self) -> I {
        match self {
            Rejected::Full(i) | Rejected::Closed(i) | Rejected::Infeasible(i, _) => i,
        }
    }
}

struct QueueState<I> {
    items: VecDeque<I>,
    closed: bool,
}

/// A bounded MPMC job queue with admission control: producers are
/// rejected (or block up to a deadline) when the queue is full,
/// consumers pick items under a caller-supplied selection policy and
/// block while it is empty. Closing wakes everyone; consumers drain the
/// remaining items before seeing `None`.
pub struct JobQueue<I> {
    capacity: usize,
    state: Mutex<QueueState<I>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<I> JobQueue<I> {
    /// A queue admitting at most `capacity` (≥ 1) waiting items. Items
    /// being *executed* by a consumer no longer count against the bound.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a job queue needs capacity >= 1");
        Self {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting (not the ones being executed).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<I>> {
        self.state.lock().expect("job queue poisoned")
    }

    /// Admit `item` iff there is room right now.
    pub fn try_push(&self, item: I) -> Result<(), Rejected<I>> {
        let mut s = self.lock();
        if s.closed {
            return Err(Rejected::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(Rejected::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Admit `item`, waiting up to `timeout` for room (backpressure).
    pub fn push_deadline(&self, item: I, timeout: Duration) -> Result<(), Rejected<I>> {
        self.push_deadline_with(item, timeout, |_| {})
    }

    /// [`JobQueue::push_deadline`] with an admission hook: `on_admit`
    /// runs on the item under the queue lock immediately before it
    /// becomes visible to consumers. The server stamps the admission
    /// instant here — a consumer can pick the item the moment the lock
    /// drops, so stamping after `push_deadline` returns would race.
    pub fn push_deadline_with(
        &self,
        mut item: I,
        timeout: Duration,
        on_admit: impl FnOnce(&mut I),
    ) -> Result<(), Rejected<I>> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.closed {
                return Err(Rejected::Closed(item));
            }
            if s.items.len() < self.capacity {
                on_admit(&mut item);
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Rejected::Full(item));
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(s, deadline - now)
                .expect("job queue poisoned");
            s = guard;
        }
    }

    /// Take one item, chosen by `pick` from the current queue contents
    /// (`pick` returns an index into the `VecDeque`, front = oldest).
    /// Blocks while the queue is empty; returns `None` once it is
    /// closed *and* drained.
    ///
    /// # Picker contract
    /// `pick` is called with a non-empty queue and must return an index
    /// `< len`. An out-of-range index is a scheduler-policy bug: debug
    /// builds panic on it; release builds clamp to the newest item
    /// (index `len - 1`) so a buggy policy degrades to serving the tail
    /// instead of crashing the slice thread.
    pub fn pop_select(&self, pick: impl Fn(&VecDeque<I>) -> usize) -> Option<I> {
        let mut s = self.lock();
        loop {
            if !s.items.is_empty() {
                let idx = pick(&s.items);
                debug_assert!(
                    idx < s.items.len(),
                    "picker returned out-of-range index {idx} for a queue of {}",
                    s.items.len()
                );
                let idx = idx.min(s.items.len() - 1);
                let item = s.items.remove(idx).expect("index bounded above");
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("job queue poisoned");
        }
    }

    /// Remove and return the first queued item matching `pred`, if any —
    /// the cancellation primitive. Removal is atomic with respect to
    /// consumers: an item removed here was never observed by
    /// [`JobQueue::pop_select`] and never will be. Frees a capacity slot
    /// (blocked producers are woken).
    pub fn remove_where(&self, pred: impl Fn(&I) -> bool) -> Option<I> {
        let mut s = self.lock();
        let idx = s.items.iter().position(pred)?;
        let item = s.items.remove(idx).expect("position is in range");
        drop(s);
        self.not_full.notify_one();
        Some(item)
    }

    /// Close for new submissions and wake every waiter. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Remove and return everything still waiting (used by the server
    /// to cancel jobs that no slice will ever pick up).
    pub fn drain(&self) -> Vec<I> {
        self.lock().items.drain(..).collect()
    }
}

// ---------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------

/// The operator a job applies — the same four operators the rest of the
/// workspace verifies bitwise, instantiable for either element type.
// Not `#[non_exhaustive]`: the hidden variant is a test hook, and
// callers are expected to match the four real operators exhaustively.
#[allow(clippy::manual_non_exhaustive)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobOp {
    /// The paper's Eq. 1 six-point Jacobi average.
    Jacobi6,
    /// Explicit-Euler heat step with the given diffusion number.
    Jacobi7Heat(f64),
    /// Seven-point variable-coefficient diffusion over the deterministic
    /// banded coefficient field ([`VarCoeff7::banded`]).
    VarCoeff7Banded,
    /// Dense 27-point average.
    Avg27,
    /// Test-only: panics inside the slice worker, to prove that one
    /// job's failure cannot poison other slices.
    #[doc(hidden)]
    PanicForTest,
}

impl JobOp {
    pub fn name(&self) -> &'static str {
        match self {
            JobOp::Jacobi6 => "jacobi6",
            JobOp::Jacobi7Heat(_) => "jacobi7",
            JobOp::VarCoeff7Banded => "varcoeff7",
            JobOp::Avg27 => "avg27",
            JobOp::PanicForTest => "panic-for-test",
        }
    }

    /// Streaming-store code balance (bytes/LUP) at the given element
    /// width — mirrors [`StencilOp::bytes_per_lup`] without constructing
    /// the operator ([`VarCoeff7::banded`] would allocate its whole
    /// coefficient grid just to answer). Streaming is the lowest-traffic
    /// store mode, which keeps the admission service-floor prediction
    /// optimistic (see [`tb_model::service_floor_seconds`]).
    pub fn streaming_bytes_per_lup(&self, element_bytes: usize) -> f64 {
        // Read + write streams; VarCoeff7 adds one coefficient read.
        let streams = match self {
            JobOp::VarCoeff7Banded => 3.0,
            _ => 2.0,
        };
        streams * element_bytes as f64
    }
}

/// The initial grid, carrying the element type with it.
#[derive(Clone, Debug)]
pub enum JobPayload {
    F64(Grid3<f64>),
    F32(Grid3<f32>),
}

impl JobPayload {
    pub fn dims(&self) -> Dims3 {
        match self {
            JobPayload::F64(g) => g.dims(),
            JobPayload::F32(g) => g.dims(),
        }
    }

    pub fn element(&self) -> &'static str {
        match self {
            JobPayload::F64(_) => "f64",
            JobPayload::F32(_) => "f32",
        }
    }

    /// Bytes per grid element (8 for `f64`, 4 for `f32`).
    pub fn element_bytes(&self) -> usize {
        match self {
            JobPayload::F64(_) => 8,
            JobPayload::F32(_) => 4,
        }
    }

    /// Order-independent checksum of the grid ([`norm::fingerprint`]
    /// over the whole region) — compare a job's [`JobReport::verify_hash`]
    /// against the oracle's payload to verify without keeping both grids.
    pub fn fingerprint(&self) -> u64 {
        match self {
            JobPayload::F64(g) => norm::fingerprint(g, &Region3::whole(g.dims())),
            JobPayload::F32(g) => norm::fingerprint(g, &Region3::whole(g.dims())),
        }
    }
}

/// How a job picks its execution strategy.
#[derive(Clone, Debug)]
pub enum JobMethod {
    /// Run exactly this method (its thread count must fit the slice).
    Fixed(Method),
    /// Let the plan-cache autotuner choose; the server overrides
    /// [`TuneOptions::machine`] with the executing slice's sub-machine,
    /// so the plan is keyed per sub-machine fingerprint and warm jobs
    /// replay with zero measurements on every identical slice.
    Tuned(TuneOptions),
}

/// Scheduling class of a job, from most to least urgent. Under
/// [`SchedPolicy::Deadline`] the class sets the *virtual deadline* of
/// jobs that don't carry a real one (see [`deadline_pick`]); the other
/// policies ignore it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Interactive: serve as soon as possible.
    Latency,
    /// The default class.
    #[default]
    Normal,
    /// Throughput work that tolerates waiting — but never starves: aging
    /// promotes it ahead of everything submitted after its grace period.
    Batch,
}

impl Priority {
    /// All classes, most urgent first — indexable by [`Priority::index`].
    pub const ALL: [Priority; 3] = [Priority::Latency, Priority::Normal, Priority::Batch];

    /// Dense index for per-class tables (`Latency` = 0 … `Batch` = 2).
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Priority::Latency => "latency",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Aging-quantum multiplier for the class's virtual deadline:
    /// a deadline-less job behaves as if due `factor × aging` after
    /// submission.
    fn aging_factor(self) -> u32 {
        match self {
            Priority::Latency => 0,
            Priority::Normal => 1,
            Priority::Batch => 4,
        }
    }
}

/// One solve job: operator, initial grid, sweep count, strategy.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub op: JobOp,
    pub payload: JobPayload,
    pub sweeps: usize,
    pub method: JobMethod,
    /// Caller correlation id, copied into the report verbatim.
    pub tag: u64,
    /// Scheduling class (see [`Priority`]); `Normal` by default.
    pub priority: Priority,
    /// Client deadline, relative to the *submission-call entry* (so time
    /// blocked inside [`Server::submit_blocking`] counts against it).
    /// Under [`SchedPolicy::Deadline`] it drives EDF picking; under
    /// [`Admission::Shed`] an infeasible deadline is rejected up front.
    /// Every deadline job's outcome lands in
    /// [`JobReport::deadline_met`].
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A fixed-method job with `tag = 0`, `Normal` priority, no deadline.
    pub fn new(op: JobOp, payload: JobPayload, sweeps: usize, method: JobMethod) -> Self {
        Self {
            op,
            payload,
            sweeps,
            method,
            tag: 0,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Builder form: set the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Builder form: set the client deadline (relative to submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Scheduling weight: total cell updates requested. The
    /// biggest-first policy orders the queue by this.
    pub fn weight(&self) -> u64 {
        let d = self.payload.dims();
        (d.nx * d.ny * d.nz * self.sweeps.max(1)) as u64
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Tuning facts of a [`JobMethod::Tuned`] job.
#[derive(Clone, Debug)]
pub struct TunedJob {
    /// `true` when the plan was replayed from the cache — by contract
    /// such a job performed **zero** measurements.
    pub cache_hit: bool,
    /// Candidate measurements performed (0 on a warm hit).
    pub measurements: usize,
    /// Label of the plan that ran.
    pub plan: String,
}

/// What every finished job reports.
#[derive(Clone, Debug)]
pub struct JobReport {
    pub job_id: u64,
    pub tag: u64,
    /// Index of the slice that served the job.
    pub slice: usize,
    pub op: &'static str,
    pub dims: Dims3,
    pub sweeps: usize,
    /// Scheduling class the job ran under.
    pub priority: Priority,
    /// Submission-call entry → admission into the queue: the time the
    /// client spent blocked in [`Server::submit_blocking`] waiting for a
    /// queue slot (zero for the non-blocking [`Server::submit`]). Kept
    /// separate from [`JobReport::queue_wait`] so backpressure is
    /// visible instead of silently vanishing from the accounting.
    pub admission_wait: Duration,
    /// Admission → a slice picking the job up.
    pub queue_wait: Duration,
    /// Solve wall time on the slice (tuning included for cold tunes,
    /// ingest/egress included under worker-first-touch placement).
    pub service: Duration,
    /// Copying the client payload into the slice-local grid (zero under
    /// [`Placement::ClientPages`], including the single-node downgrade
    /// — see [`ServerConfig::placement`]).
    pub ingest: Duration,
    /// Copying the result back into the client's grid (zero under
    /// [`Placement::ClientPages`], including the single-node downgrade).
    pub egress: Duration,
    /// Fresh grid allocations this job caused in the slice's pool — 0
    /// once the slice is warm for the job's shape, which is the
    /// observable "warm path allocates nothing" contract.
    pub pool_fresh: u64,
    pub mlups: f64,
    pub cell_updates: u64,
    /// Order-independent checksum of the result grid; equal to the
    /// sequential oracle's [`JobPayload::fingerprint`] iff the solve is
    /// bitwise-correct.
    pub verify_hash: u64,
    /// For deadline jobs: whether the job finished within
    /// [`JobSpec::deadline`], measured from submission-call entry (so
    /// admission blocking counts). `None` when no deadline was set.
    pub deadline_met: Option<bool>,
    /// The admission predictor's optimistic service-time floor for this
    /// job — observed MLUP/s for the (operator, element) pair when this
    /// server has served one, else the tb-model cache-bandwidth bound
    /// (only under [`Admission::Shed`]). `None` when no estimate was
    /// available at submission.
    pub predicted_service: Option<Duration>,
    /// Present on tuned jobs.
    pub tuned: Option<TunedJob>,
}

impl JobReport {
    /// Admission wait + queue wait + service: what the submitting client
    /// experienced from submission-call entry to completion.
    pub fn latency(&self) -> Duration {
        self.admission_wait + self.queue_wait + self.service
    }
}

/// A failed job. Failures are per-job: the slice that ran it survives.
#[derive(Clone, Debug)]
pub struct JobError {
    pub job_id: u64,
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}: {}", self.job_id, self.message)
    }
}

impl std::error::Error for JobError {}

/// Result grid (same element type as submitted) plus the report.
pub type JobOutcome = Result<(JobPayload, JobReport), JobError>;

struct JobState {
    done: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl JobState {
    fn new() -> Arc<Self> {
        Arc::new(JobState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, outcome: JobOutcome) {
        *self.done.lock().expect("job state poisoned") = Some(outcome);
        self.cv.notify_all();
    }
}

/// Ticket for a submitted job; [`JobHandle::wait`] blocks until a slice
/// finished it, [`JobHandle::cancel`] pulls it back out of the queue.
pub struct JobHandle {
    id: u64,
    state: Arc<JobState>,
    queue: std::sync::Weak<JobQueue<QueuedJob>>,
    stats: std::sync::Weak<Mutex<StatsInner>>,
}

impl JobHandle {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Remove the job from the queue if no slice has picked it up yet.
    /// Removal is atomic with the slices' queue pops, so a job cancelled
    /// here **never executes**; [`JobHandle::wait`] then returns a
    /// cancellation [`JobError`]. Returns `false` (and changes nothing)
    /// when the job already started executing or finished.
    pub fn cancel(&self) -> bool {
        let Some(queue) = self.queue.upgrade() else {
            return false;
        };
        let id = self.id;
        match queue.remove_where(|j| j.id == id) {
            Some(job) => {
                if let Some(stats) = self.stats.upgrade() {
                    let mut s = stats.lock().expect("server stats poisoned");
                    s.cancels += 1;
                    s.classes[job.priority.index()].cancelled += 1;
                }
                job.state.complete(Err(JobError {
                    job_id: job.id,
                    message: "cancelled before execution".into(),
                }));
                true
            }
            None => false,
        }
    }

    /// Non-blocking: has the job finished?
    pub fn is_done(&self) -> bool {
        self.state
            .done
            .lock()
            .expect("job state poisoned")
            .is_some()
    }

    /// Block until the job finished and take its outcome.
    pub fn wait(self) -> JobOutcome {
        let mut done = self.state.done.lock().expect("job state poisoned");
        loop {
            if let Some(outcome) = done.take() {
                return outcome;
            }
            done = self.state.cv.wait(done).expect("job state poisoned");
        }
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Queue-pop order when a slice frees up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Oldest first: minimizes p50 latency.
    Fifo,
    /// Biggest requested work ([`JobSpec::weight`]) first: maximizes
    /// packing/throughput — long jobs start early instead of convoying
    /// behind the tail (ties break toward the oldest).
    #[default]
    BiggestFirst,
    /// Earliest (virtual) deadline first over [`Priority`] classes, with
    /// aging so `Batch` never starves — see [`deadline_pick`] for the
    /// exact discipline and its starvation bound.
    Deadline,
}

/// Alias for [`SchedPolicy`]: the policy *packs* jobs onto freed slices.
pub type PackPolicy = SchedPolicy;

/// One queued job's scheduling facts, as the deadline policy sees them.
/// Public so policy properties (EDF optimality, aging bounds) can be
/// tested against [`deadline_pick`] on synthetic traces without running
/// a real server.
#[derive(Clone, Copy, Debug)]
pub struct SchedFacts {
    pub priority: Priority,
    /// Absolute client deadline, if the job carries one.
    pub deadline: Option<Instant>,
    /// Submission-call entry (aging counts from here, so admission
    /// blocking ages a job too).
    pub submitted: Instant,
}

impl SchedFacts {
    /// The job's virtual deadline: its real deadline when it has one,
    /// else `submitted + aging_factor(priority) · aging`.
    fn virtual_deadline(&self, aging: Duration) -> Instant {
        self.deadline
            .unwrap_or_else(|| self.submitted + aging * self.priority.aging_factor())
    }
}

/// The [`SchedPolicy::Deadline`] picker: earliest *virtual* deadline
/// first, ties broken toward the oldest submission (then the frontmost
/// queue position).
///
/// A job's virtual deadline is its client deadline when it has one;
/// deadline-less jobs get `submitted + factor·aging` with `factor` 0
/// (`Latency`), 1 (`Normal`) or 4 (`Batch`). Two properties follow:
///
/// * **EDF**: among deadline-bearing jobs this is exact
///   earliest-deadline-first, so for a single slice and simultaneous
///   submission it minimizes maximum lateness (Jackson's rule): if any
///   order meets every deadline, this one does.
/// * **Aging bounds `Batch` wait**: any job submitted after a `Batch`
///   job's virtual deadline `S + 4·aging` has a virtual deadline
///   *later* than it (real deadlines are ≥ their own submission
///   instant), so only the finitely many jobs already submitted before
///   that grace period expires can be served ahead of it — `Batch`
///   cannot starve under a continuous stream of urgent work.
///
/// `aging = 0` collapses every deadline-less job's virtual deadline to
/// its submission instant: plain FIFO with deadline jobs interleaved by
/// EDF. `items` must be non-empty; the returned index is `< len`.
pub fn deadline_pick(items: &[SchedFacts], aging: Duration) -> usize {
    assert!(!items.is_empty(), "deadline_pick needs a non-empty queue");
    items
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.virtual_deadline(aging)
                .cmp(&b.virtual_deadline(aging))
                .then(a.submitted.cmp(&b.submitted))
        })
        .map(|(i, _)| i)
        .expect("non-empty queue")
}

/// What besides queue capacity can turn a submission away.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Admission {
    /// Admit anything the bounded queue accepts (the legacy behavior).
    #[default]
    QueueOnly,
    /// Additionally shed deadline jobs that are provably infeasible:
    /// when the *optimistic* service-time floor — the best observed
    /// MLUP/s for the (operator, element) pair on this server, else the
    /// tb-model shared-cache bandwidth bound
    /// ([`tb_model::service_floor_seconds`]) on these machine
    /// parameters — already exceeds the deadline, the job is rejected
    /// with [`Rejected::Infeasible`] instead of queueing work that is
    /// doomed to miss.
    Shed(MachineParams),
}

// ---------------------------------------------------------------------
// Server statistics
// ---------------------------------------------------------------------

/// Completed-job latencies kept per class for the percentile estimates —
/// a sliding window so a long-lived server reports *recent* tail
/// latency, not its whole history.
const STATS_WINDOW: usize = 4096;

#[derive(Default)]
struct ClassAccum {
    admitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    deadlines: u64,
    deadline_misses: u64,
    latencies_ms: VecDeque<f64>,
    max_latency: Duration,
}

impl ClassAccum {
    fn record_latency(&mut self, latency: Duration) {
        if self.latencies_ms.len() >= STATS_WINDOW {
            self.latencies_ms.pop_front();
        }
        self.latencies_ms.push_back(latency.as_secs_f64() * 1e3);
        self.max_latency = self.max_latency.max(latency);
    }
}

#[derive(Default)]
struct StatsInner {
    classes: [ClassAccum; 3],
    sheds: u64,
    cancels: u64,
}

/// Linear-interpolation percentile (R-7, matching `tb_bench::percentile`)
/// over an *unsorted* sample; `0.0` on an empty one.
fn percentile_ms(samples: &VecDeque<f64>, q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.iter().copied().collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Aggregates for one [`Priority`] class (a point-in-time snapshot).
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Jobs admitted into the queue (includes still-queued/running).
    pub admitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that failed in execution.
    pub failed: u64,
    /// Jobs cancelled before execution ([`JobHandle::cancel`] or server
    /// drop).
    pub cancelled: u64,
    /// Completed jobs that carried a deadline.
    pub deadlines: u64,
    /// ... of which finished after it.
    pub deadline_misses: u64,
    /// Median client latency ([`JobReport::latency`]) over the most
    /// recent 4096-job window, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client latency over the same window, ms.
    pub p99_ms: f64,
    /// Worst client latency ever observed (not windowed).
    pub max_ms: f64,
}

/// Point-in-time scheduling statistics ([`Server::stats`]).
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Per-class aggregates, indexed by [`Priority::index`]
    /// (`Latency` = 0, `Normal` = 1, `Batch` = 2).
    pub classes: [ClassStats; 3],
    /// Submissions shed by admission control ([`Rejected::Infeasible`]).
    pub sheds: u64,
    /// Jobs cancelled before execution.
    pub cancels: u64,
}

impl ServerStats {
    /// The aggregates of one class.
    pub fn class(&self, p: Priority) -> &ClassStats {
        &self.classes[p.index()]
    }
}

/// Best observed LUP/s per (operator name, element name) — the admission
/// predictor's memory of what this server has actually achieved.
type RateMap = HashMap<(&'static str, &'static str), f64>;

/// How the machine is partitioned into slices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SlicePolicy {
    /// One slice per cache group — the paper's thread-group boundary,
    /// and the right default: groups behind distinct shared caches do
    /// not interfere.
    #[default]
    PerCacheGroup,
    /// Exactly `n` slices of near-equal core counts, carved
    /// contiguously from the cache groups in order (group boundaries
    /// are respected whenever the counts divide evenly). Useful to
    /// sub-split one big cache group, or to merge groups for jobs that
    /// need wider teams.
    Fixed(usize),
}

/// Knobs for [`Server::new`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bound of the admission queue (jobs waiting, not running).
    pub queue_capacity: usize,
    /// Latency-vs-throughput packing knob.
    pub policy: SchedPolicy,
    /// [`Runtime::with_pool_capacity`] for every slice runtime: a
    /// long-lived multi-tenant slice serves many problem shapes, so it
    /// parks more staging grids than the single-solve default.
    pub pool_capacity: usize,
    /// Machine partitioning.
    pub slices: SlicePolicy,
    /// Page placement for job grids. The default,
    /// [`Placement::WorkerFirstTouch`], makes every slice *ingest* the
    /// client's payload into a slice-local pooled grid (copied by the
    /// slice's own pinned workers, so its pages live on the slice's
    /// NUMA domain) and copy the result back out on completion;
    /// [`JobReport::ingest`]/[`JobReport::egress`] report the cost.
    /// [`Placement::ClientPages`] computes on the client's pages
    /// directly — right on UMA hosts or when clients pre-place pages.
    ///
    /// On a machine reporting a **single NUMA node** every page is
    /// already node-local, so the ingest/egress copies cannot improve
    /// placement — the server downgrades to the zero-copy path
    /// regardless of this field (see [`ServerConfig::force_placement`]).
    pub placement: Placement,
    /// Honor [`ServerConfig::placement`] verbatim even on single-node
    /// machines, where the server would otherwise run zero-copy.
    /// Placement tests and ablation benches set this to exercise the
    /// ingest/egress machinery on hosts without real NUMA; production
    /// code has no reason to.
    pub force_placement: bool,
    /// Aging quantum of [`SchedPolicy::Deadline`]: a deadline-less job is
    /// scheduled as if due `aging_factor(priority) × aging` after
    /// submission (0 / 1× / 4× for `Latency` / `Normal` / `Batch` — see
    /// [`deadline_pick`]). Smaller values push deadline-less work ahead
    /// sooner; `Duration::ZERO` degenerates to FIFO-with-EDF-interleave.
    pub aging: Duration,
    /// Deadline admission control (see [`Admission`]).
    pub admission: Admission,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            policy: SchedPolicy::default(),
            pool_capacity: 16,
            slices: SlicePolicy::default(),
            placement: Placement::WorkerFirstTouch,
            force_placement: false,
            aging: Duration::from_millis(100),
            admission: Admission::QueueOnly,
        }
    }
}

/// Static description of one slice.
#[derive(Clone, Debug)]
pub struct SliceInfo {
    pub index: usize,
    /// The disjoint core set this slice owns.
    pub cores: Vec<usize>,
    /// Compute workers of the slice runtime (== `cores.len()`).
    pub threads: usize,
    /// [`Machine::signature`] of the slice's sub-machine — the machine
    /// half of its plan-cache fingerprint.
    pub signature: String,
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    /// Submission-call entry — before any admission blocking.
    submitted: Instant,
    /// Admission into the queue; stamped under the queue lock by the
    /// blocking submit path ([`JobQueue::push_deadline_with`]), equal to
    /// `submitted` for the non-blocking path. `admitted - submitted` is
    /// the report's [`JobReport::admission_wait`].
    admitted: Instant,
    /// Absolute client deadline (`submitted + spec.deadline`).
    deadline: Option<Instant>,
    priority: Priority,
    /// The admission predictor's service-floor estimate, if any.
    predicted: Option<Duration>,
    weight: u64,
    state: Arc<JobState>,
}

/// The multi-tenant solve server. See the module docs for the shape.
///
/// Dropping the server closes the queue, lets every slice drain the
/// remaining admitted jobs, joins the slice threads, and fails any job
/// that never started (possible only for a paused server) with a
/// cancellation [`JobError`].
pub struct Server {
    queue: Arc<JobQueue<QueuedJob>>,
    slices: Vec<SliceInfo>,
    sub_machines: Vec<Machine>,
    threads: Vec<JoinHandle<()>>,
    policy: SchedPolicy,
    pool_capacity: usize,
    placement: Placement,
    aging: Duration,
    admission: Admission,
    stats: Arc<Mutex<StatsInner>>,
    rates: Arc<Mutex<RateMap>>,
    next_id: AtomicU64,
}

/// Partition the machine's CPUs into disjoint slices per `policy`.
fn partition(machine: &Machine, policy: &SlicePolicy) -> Vec<Vec<usize>> {
    let groups = machine.cache_groups();
    match policy {
        SlicePolicy::PerCacheGroup => groups,
        SlicePolicy::Fixed(n) => {
            let all: Vec<usize> = groups.into_iter().flatten().collect();
            let n = (*n).clamp(1, all.len());
            let base = all.len() / n;
            let extra = all.len() % n;
            let mut out = Vec::with_capacity(n);
            let mut start = 0;
            for i in 0..n {
                let len = base + usize::from(i < extra);
                out.push(all[start..start + len].to_vec());
                start += len;
            }
            out
        }
    }
}

impl Server {
    /// Partition `machine` per the config and start one service thread
    /// (with its persistent pinned runtime) per slice.
    pub fn new(machine: &Machine, cfg: ServerConfig) -> Server {
        let mut s = Server::new_paused(machine, cfg);
        s.start();
        s
    }

    /// Like [`Server::new`], but without starting the slice threads:
    /// submissions are admitted (and rejected) by the queue alone until
    /// [`Server::start`]. Deterministic admission-control tests use
    /// this; production code wants [`Server::new`].
    pub fn new_paused(machine: &Machine, cfg: ServerConfig) -> Server {
        let parts = partition(machine, &cfg.slices);
        assert!(!parts.is_empty(), "machine has no cores to slice");
        // With one NUMA node the ingest/egress copies are pure overhead
        // (every page is already node-local): run zero-copy unless a
        // test/bench explicitly forces the requested policy through.
        let placement = if cfg.force_placement || machine.num_numa_nodes() >= 2 {
            cfg.placement
        } else {
            Placement::ClientPages
        };
        let sub_machines: Vec<Machine> = parts.iter().map(|p| machine.restrict(p)).collect();
        let slices = parts
            .iter()
            .zip(&sub_machines)
            .enumerate()
            .map(|(index, (cores, sub))| SliceInfo {
                index,
                cores: cores.clone(),
                threads: sub.num_cpus(),
                signature: sub.signature(),
            })
            .collect();
        Server {
            queue: Arc::new(JobQueue::bounded(cfg.queue_capacity)),
            slices,
            sub_machines,
            threads: Vec::new(),
            policy: cfg.policy,
            pool_capacity: cfg.pool_capacity,
            placement,
            aging: cfg.aging,
            admission: cfg.admission,
            stats: Arc::new(Mutex::new(StatsInner::default())),
            rates: Arc::new(Mutex::new(RateMap::new())),
            next_id: AtomicU64::new(1),
        }
    }

    /// Start the slice threads (idempotent).
    pub fn start(&mut self) {
        if !self.threads.is_empty() {
            return;
        }
        for (index, sub) in self.sub_machines.iter().enumerate() {
            let ctx = SliceCtx {
                queue: Arc::clone(&self.queue),
                sub: sub.clone(),
                index,
                policy: self.policy,
                pool_capacity: self.pool_capacity,
                placement: self.placement,
                aging: self.aging,
                stats: Arc::clone(&self.stats),
                rates: Arc::clone(&self.rates),
            };
            let handle = std::thread::Builder::new()
                .name(format!("tb-serve-s{index}"))
                .spawn(move || slice_loop(ctx))
                .expect("spawn slice thread");
            self.threads.push(handle);
        }
    }

    /// The slices this server schedules onto.
    pub fn slices(&self) -> &[SliceInfo] {
        &self.slices
    }

    /// Jobs admitted but not yet picked up by a slice.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The admission predictor's optimistic service-time floor for
    /// `spec`: the best LUP/s this server has *observed* for the
    /// (operator, element) pair when it has served one, else — only
    /// under [`Admission::Shed`] — the tb-model shared-cache bandwidth
    /// bound ([`tb_model::service_floor_seconds`]). Both are floors: the
    /// observed rate is the server's best case, and no schedule beats
    /// `M_c`. `None` when neither source applies.
    fn predict_service(&self, spec: &JobSpec) -> Option<Duration> {
        let weight = spec.weight();
        let observed = {
            let rates = self.rates.lock().expect("server rates poisoned");
            rates
                .get(&(spec.op.name(), spec.payload.element()))
                .map(|lups| Duration::from_secs_f64(weight as f64 / lups))
        };
        let modeled = match &self.admission {
            Admission::Shed(params) => {
                Some(Duration::from_secs_f64(tb_model::service_floor_seconds(
                    params,
                    spec.op
                        .streaming_bytes_per_lup(spec.payload.element_bytes()),
                    weight,
                )))
            }
            Admission::QueueOnly => None,
        };
        // Both are optimistic floors; take the tighter (larger) one.
        match (observed, modeled) {
            (Some(o), Some(m)) => Some(o.max(m)),
            (o, m) => o.or(m),
        }
    }

    // `Rejected` hands the (large) spec back by design — admission
    // control must return the rejected job for resubmission.
    #[allow(clippy::result_large_err)]
    fn enqueue(
        &self,
        spec: JobSpec,
        push: impl FnOnce(QueuedJob) -> Result<(), Rejected<QueuedJob>>,
    ) -> Result<JobHandle, Rejected<JobSpec>> {
        // Stamp at submission-call entry: everything after this instant —
        // admission blocking included — counts against the client.
        let submitted = Instant::now();
        let predicted = self.predict_service(&spec);
        if let (Admission::Shed(_), Some(deadline), Some(floor)) =
            (&self.admission, spec.deadline, predicted)
        {
            if floor > deadline {
                let mut s = self.stats.lock().expect("server stats poisoned");
                s.sheds += 1;
                return Err(Rejected::Infeasible(spec, floor));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = JobState::new();
        let priority = spec.priority;
        let job = QueuedJob {
            id,
            weight: spec.weight(),
            deadline: spec.deadline.map(|d| submitted + d),
            priority,
            predicted,
            spec,
            submitted,
            admitted: submitted,
            state: Arc::clone(&state),
        };
        match push(job) {
            Ok(()) => {
                self.stats.lock().expect("server stats poisoned").classes[priority.index()]
                    .admitted += 1;
                Ok(JobHandle {
                    id,
                    state,
                    queue: Arc::downgrade(&self.queue),
                    stats: Arc::downgrade(&self.stats),
                })
            }
            Err(Rejected::Full(j)) => Err(Rejected::Full(j.spec)),
            Err(Rejected::Closed(j)) => Err(Rejected::Closed(j.spec)),
            // The queue itself never sheds; the arm exists for the match.
            Err(Rejected::Infeasible(j, p)) => Err(Rejected::Infeasible(j.spec, p)),
        }
    }

    /// Admit a job iff the queue has room **right now**; a full queue
    /// returns [`Rejected::Full`] with the spec, untouched.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Rejected<JobSpec>> {
        self.enqueue(spec, |j| self.queue.try_push(j))
    }

    /// Admit a job, blocking up to `timeout` for queue space
    /// (backpressure for closed-loop clients). Time spent blocked here
    /// is reported as [`JobReport::admission_wait`] — and counts against
    /// the job's deadline, which is relative to the call's entry.
    #[allow(clippy::result_large_err)]
    pub fn submit_blocking(
        &self,
        spec: JobSpec,
        timeout: Duration,
    ) -> Result<JobHandle, Rejected<JobSpec>> {
        self.enqueue(spec, |j| {
            // Stamp admission under the queue lock: a slice can pick the
            // job the moment it becomes visible, so stamping after the
            // push returns would race (and under-report queue wait).
            self.queue
                .push_deadline_with(j, timeout, |j| j.admitted = Instant::now())
        })
    }

    /// Point-in-time scheduling statistics: per-class completion counts,
    /// windowed p50/p99 client latency, deadline misses, sheds, cancels.
    pub fn stats(&self) -> ServerStats {
        let s = self.stats.lock().expect("server stats poisoned");
        let mut out = ServerStats {
            sheds: s.sheds,
            cancels: s.cancels,
            ..ServerStats::default()
        };
        for (accum, snap) in s.classes.iter().zip(out.classes.iter_mut()) {
            *snap = ClassStats {
                admitted: accum.admitted,
                completed: accum.completed,
                failed: accum.failed,
                cancelled: accum.cancelled,
                deadlines: accum.deadlines,
                deadline_misses: accum.deadline_misses,
                p50_ms: percentile_ms(&accum.latencies_ms, 0.50),
                p99_ms: percentile_ms(&accum.latencies_ms, 0.99),
                max_ms: accum.max_latency.as_secs_f64() * 1e3,
            };
        }
        out
    }

    /// Graceful shutdown: stop admitting, serve everything already
    /// admitted, join the slices. (Dropping does the same.)
    pub fn shutdown(self) {}
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Only a never-started server can still hold admitted jobs.
        for job in self.queue.drain() {
            {
                let mut s = self.stats.lock().expect("server stats poisoned");
                s.cancels += 1;
                s.classes[job.priority.index()].cancelled += 1;
            }
            job.state.complete(Err(JobError {
                job_id: job.id,
                message: "server dropped before the job was scheduled".into(),
            }));
        }
    }
}

// ---------------------------------------------------------------------
// Slice execution
// ---------------------------------------------------------------------

/// Everything one slice's service thread needs — bundled so the loop has
/// one argument instead of nine.
struct SliceCtx {
    queue: Arc<JobQueue<QueuedJob>>,
    sub: Machine,
    index: usize,
    policy: SchedPolicy,
    pool_capacity: usize,
    placement: Placement,
    aging: Duration,
    stats: Arc<Mutex<StatsInner>>,
    rates: Arc<Mutex<RateMap>>,
}

fn slice_loop(ctx: SliceCtx) {
    let SliceCtx {
        queue,
        sub,
        index,
        policy,
        pool_capacity,
        placement,
        aging,
        stats,
        rates,
    } = ctx;
    // One persistent runtime per slice, workers pinned to the slice's
    // cores, alive across every job this slice ever serves.
    let layout = TeamLayout::new(&sub, sub.num_cpus(), 1);
    let rt = Runtime::new(&layout)
        .with_pool_capacity(pool_capacity)
        .with_placement(placement);
    // Constructed operators that own grids (the banded coefficient
    // field) are cached per shape, so warm jobs skip that allocation
    // too — see `banded_op`.
    let mut op_cache: OpCache = HashMap::new();
    let pick = |items: &VecDeque<QueuedJob>| -> usize {
        match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::BiggestFirst => items
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.weight.cmp(&b.weight).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .unwrap_or(0),
            SchedPolicy::Deadline => {
                let facts: Vec<SchedFacts> = items
                    .iter()
                    .map(|j| SchedFacts {
                        priority: j.priority,
                        deadline: j.deadline,
                        submitted: j.submitted,
                    })
                    .collect();
                deadline_pick(&facts, aging)
            }
        }
    };
    while let Some(job) = queue.pop_select(pick) {
        let picked = Instant::now();
        let queue_wait = picked.duration_since(job.admitted);
        let admission_wait = job.admitted.duration_since(job.submitted);
        let QueuedJob {
            id,
            spec,
            state,
            deadline,
            priority,
            predicted,
            ..
        } = job;
        let tag = spec.tag;
        let op_name = spec.op.name();
        let element = spec.payload.element();
        let dims = spec.payload.dims();
        let sweeps = spec.sweeps;
        // A panicking job fails its own handle; the slice (and its
        // runtime, which already survives worker panics) keeps serving.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&rt, &sub, spec, &mut op_cache)
        }));
        let service = picked.elapsed();
        let deadline_met = deadline.map(|d| Instant::now() <= d);
        let outcome = match result {
            Ok(Ok(exec)) => {
                // Feed the admission predictor: remember the best rate
                // this server has achieved for the (op, element) pair.
                if exec.mlups > 0.0 {
                    let lups = exec.mlups * 1e6;
                    let mut r = rates.lock().expect("server rates poisoned");
                    let best = r.entry((op_name, element)).or_insert(lups);
                    *best = best.max(lups);
                }
                Ok((
                    exec.payload,
                    JobReport {
                        job_id: id,
                        tag,
                        slice: index,
                        op: op_name,
                        dims,
                        sweeps,
                        priority,
                        admission_wait,
                        queue_wait,
                        service,
                        ingest: exec.ingest,
                        egress: exec.egress,
                        pool_fresh: exec.pool_fresh,
                        mlups: exec.mlups,
                        cell_updates: exec.cell_updates,
                        verify_hash: exec.verify_hash,
                        deadline_met,
                        predicted_service: predicted,
                        tuned: exec.tuned,
                    },
                ))
            }
            Ok(Err(message)) => Err(JobError {
                job_id: id,
                message,
            }),
            Err(panic) => Err(JobError {
                job_id: id,
                message: format!("job panicked: {}", panic_message(&panic)),
            }),
        };
        {
            let mut s = stats.lock().expect("server stats poisoned");
            let class = &mut s.classes[priority.index()];
            match &outcome {
                Ok((_, report)) => {
                    class.completed += 1;
                    class.record_latency(report.latency());
                    if let Some(met) = deadline_met {
                        class.deadlines += 1;
                        if !met {
                            class.deadline_misses += 1;
                        }
                    }
                }
                Err(_) => class.failed += 1,
            }
        }
        state.complete(outcome);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

struct Executed {
    payload: JobPayload,
    mlups: f64,
    cell_updates: u64,
    verify_hash: u64,
    ingest: Duration,
    egress: Duration,
    pool_fresh: u64,
    tuned: Option<TunedJob>,
}

/// Constructed operators that own grids (today: [`VarCoeff7::banded`]'s
/// coefficient field), cached per element type and shape so a warm
/// slice allocates nothing per job. Bounded: a shape mix wider than
/// [`OP_CACHE_CAP`] distinct (type, dims) entries resets the cache.
type OpCache = HashMap<(TypeId, Dims3), Box<dyn Any + Send>>;

const OP_CACHE_CAP: usize = 32;

fn banded_op<T: Real>(cache: &mut OpCache, dims: Dims3) -> &VarCoeff7<T> {
    let key = (TypeId::of::<T>(), dims);
    if !cache.contains_key(&key) && cache.len() >= OP_CACHE_CAP {
        cache.clear();
    }
    cache
        .entry(key)
        .or_insert_with(|| Box::new(VarCoeff7::<T>::banded(dims)))
        .downcast_ref::<VarCoeff7<T>>()
        .expect("op cache entries are keyed by their TypeId")
}

fn execute(
    rt: &Runtime,
    sub: &Machine,
    spec: JobSpec,
    cache: &mut OpCache,
) -> Result<Executed, String> {
    let JobSpec {
        op,
        payload,
        sweeps,
        method,
        ..
    } = spec;
    match payload {
        JobPayload::F64(grid) => {
            run_typed(rt, sub, &op, grid, sweeps, &method, cache).map(Executed::from_f64)
        }
        JobPayload::F32(grid) => {
            run_typed(rt, sub, &op, grid, sweeps, &method, cache).map(Executed::from_f32)
        }
    }
}

/// What [`run_typed`] hands back before the payload is re-wrapped.
struct TypedRun<T: Real> {
    grid: Grid3<T>,
    stats: RunStats,
    tuned: Option<TunedJob>,
    ingest: Duration,
    egress: Duration,
    pool_fresh: u64,
}

impl Executed {
    fn from_f64(run: TypedRun<f64>) -> Executed {
        Executed::pack(
            JobPayload::F64(run.grid),
            &run.stats,
            run.tuned,
            (run.ingest, run.egress, run.pool_fresh),
        )
    }
    fn from_f32(run: TypedRun<f32>) -> Executed {
        Executed::pack(
            JobPayload::F32(run.grid),
            &run.stats,
            run.tuned,
            (run.ingest, run.egress, run.pool_fresh),
        )
    }
    fn pack(
        payload: JobPayload,
        stats: &RunStats,
        tuned: Option<TunedJob>,
        (ingest, egress, pool_fresh): (Duration, Duration, u64),
    ) -> Executed {
        Executed {
            verify_hash: payload.fingerprint(),
            mlups: stats.mlups(),
            cell_updates: stats.cell_updates,
            payload,
            ingest,
            egress,
            pool_fresh,
            tuned,
        }
    }
}

fn run_typed<T: Real>(
    rt: &Runtime,
    sub: &Machine,
    op: &JobOp,
    grid: Grid3<T>,
    sweeps: usize,
    method: &JobMethod,
    cache: &mut OpCache,
) -> Result<TypedRun<T>, String> {
    let pool = rt.grid_pool::<T>();
    let fresh_before = pool.fresh_allocations();

    // Ingest: under worker-first-touch, copy the client's payload into
    // a slice-local pooled grid with the slice's own pinned workers —
    // on a pool miss the acquire itself first-touches, so the copy
    // writes pages the slice just placed. The client grid is kept
    // aside to carry the result back out.
    let (client, work, ingest) = if rt.placement() == Placement::WorkerFirstTouch {
        let ingest_start = Instant::now();
        let mut local = rt.acquire_grid(grid.dims());
        rt.place_copy(local.as_mut_slice(), grid.as_slice());
        (Some(grid), local, ingest_start.elapsed())
    } else {
        (None, grid, Duration::ZERO)
    };

    let (result, stats, tuned) = match op {
        JobOp::Jacobi6 => run_op(rt, sub, &Jacobi6, work, sweeps, method),
        JobOp::Jacobi7Heat(k) => run_op(rt, sub, &Jacobi7::heat(*k), work, sweeps, method),
        JobOp::VarCoeff7Banded => {
            let op = banded_op::<T>(cache, work.dims());
            run_op(rt, sub, op, work, sweeps, method)
        }
        JobOp::Avg27 => run_op(rt, sub, &Avg27, work, sweeps, method),
        JobOp::PanicForTest => panic!("poison-pill job"),
    }?;

    // Egress: copy the result back into the client's own grid (their
    // pages, their element order) and park the slice-local grid for the
    // next job of this shape.
    let egress_start = Instant::now();
    let (grid, egress) = match client {
        Some(mut client) => {
            rt.place_copy(client.as_mut_slice(), result.as_slice());
            pool.release(result);
            (client, egress_start.elapsed())
        }
        None => (result, Duration::ZERO),
    };

    Ok(TypedRun {
        grid,
        stats,
        tuned,
        ingest,
        egress,
        pool_fresh: pool.fresh_allocations() - fresh_before,
    })
}

fn run_op<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    sub: &Machine,
    op: &Op,
    grid: Grid3<T>,
    sweeps: usize,
    method: &JobMethod,
) -> Result<(Grid3<T>, RunStats, Option<TunedJob>), String> {
    match method {
        JobMethod::Fixed(m) => {
            solve_with_on(rt, op, grid, sweeps, m.clone()).map(|(g, s)| (g, s, None))
        }
        JobMethod::Tuned(opts) => {
            // Key the tune by THIS slice's sub-machine fingerprint:
            // identical slices share warm plans, different shapes don't.
            let mut opts = opts.clone();
            opts.machine = Some(sub.clone());
            solve_tuned_with_on(rt, op, grid, sweeps, &opts).map(|(g, s, t)| {
                (
                    g,
                    s,
                    Some(TunedJob {
                        cache_hit: t.cache_hit,
                        measurements: t.measurements,
                        plan: t.plan.label(),
                    }),
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::init;

    #[test]
    fn queue_admits_up_to_capacity_then_rejects() {
        let q: JobQueue<u32> = JobQueue::bounded(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(Rejected::Full(item)) => assert_eq!(item, 3, "the item comes back"),
            other => panic!("expected Full rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop_select(|_| 0), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn push_deadline_times_out_on_a_full_queue() {
        let q: JobQueue<u32> = JobQueue::bounded(1);
        q.try_push(1).unwrap();
        let t0 = Instant::now();
        match q.push_deadline(2, Duration::from_millis(30)) {
            Err(Rejected::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(25), "really waited");
    }

    #[test]
    fn push_deadline_succeeds_when_a_consumer_frees_space() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::bounded(1));
        q.try_push(1).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.pop_select(|_| 0)
            })
        };
        assert!(q.push_deadline(2, Duration::from_secs(10)).is_ok());
        assert_eq!(consumer.join().unwrap(), Some(1));
        assert_eq!(q.pop_select(|_| 0), Some(2));
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q: JobQueue<u32> = JobQueue::bounded(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(Rejected::Closed(8))));
        assert!(matches!(
            q.push_deadline(9, Duration::from_millis(5)),
            Err(Rejected::Closed(9))
        ));
        // Consumers still drain admitted items, then see None.
        assert_eq!(q.pop_select(|_| 0), Some(7));
        assert_eq!(q.pop_select(|_| 0), None);
    }

    #[test]
    fn partition_follows_cache_groups() {
        let m = Machine::nehalem_ep();
        assert_eq!(
            partition(&m, &SlicePolicy::PerCacheGroup),
            vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]
        );
        // Forced split: contiguous near-equal chunks.
        assert_eq!(
            partition(&m, &SlicePolicy::Fixed(4)),
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]
        );
        let uneven = partition(&m, &SlicePolicy::Fixed(3));
        assert_eq!(uneven.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(uneven.len(), 3);
        // More slices than cores clamps to one core per slice.
        assert_eq!(
            partition(&Machine::flat(2), &SlicePolicy::Fixed(5)).len(),
            2
        );
    }

    #[test]
    fn server_serves_a_job_and_verifies_against_the_oracle() {
        let m = Machine::flat(2);
        let server = Server::new(&m, ServerConfig::default());
        assert_eq!(server.slices().len(), 1);
        let initial: Grid3<f64> = init::random(Dims3::cube(12), 42);
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(initial.clone()),
            3,
            JobMethod::Fixed(Method::Parallel {
                threads: 2,
                streaming_stores: false,
            }),
        );
        let (payload, report) = server.submit(spec).unwrap().wait().expect("job succeeds");
        let (oracle, _) = crate::solve(initial, 3, Method::Sequential).unwrap();
        assert_eq!(
            report.verify_hash,
            JobPayload::F64(oracle.clone()).fingerprint()
        );
        match payload {
            JobPayload::F64(g) => norm::assert_grids_identical(
                &oracle,
                &g,
                &Region3::whole(oracle.dims()),
                "served vs oracle",
            ),
            _ => panic!("element type preserved"),
        }
        assert!(report.mlups > 0.0);
        assert_eq!(
            report.cell_updates,
            (3 * Dims3::cube(12).interior_len()) as u64
        );
    }

    #[test]
    fn biggest_first_picks_the_heaviest_queued_job() {
        // Paused server: jobs stack up; on start, the single slice must
        // serve the biggest job first (after the tiny head-of-line job
        // it grabs immediately).
        let m = Machine::flat(1);
        let mut server = Server::new_paused(
            &m,
            ServerConfig {
                policy: SchedPolicy::BiggestFirst,
                ..ServerConfig::default()
            },
        );
        let job = |edge: usize, tag: u64| {
            let mut spec = JobSpec::new(
                JobOp::Jacobi6,
                JobPayload::F64(init::random(Dims3::cube(edge), tag)),
                2,
                JobMethod::Fixed(Method::Sequential),
            );
            spec.tag = tag;
            spec
        };
        let small = server.submit(job(8, 1)).unwrap();
        let big = server.submit(job(16, 2)).unwrap();
        let medium = server.submit(job(12, 3)).unwrap();
        server.start();
        let reports: Vec<JobReport> = [small, big, medium]
            .into_iter()
            .map(|h| h.wait().expect("jobs succeed").1)
            .collect();
        // Queue order on start: [small, big, medium]; biggest-first
        // serves big before medium. (small may or may not go first
        // depending on when the slice wakes; order big < medium is the
        // policy's invariant.)
        let end_of = |tag: u64| {
            let r = reports.iter().find(|r| r.tag == tag).unwrap();
            r.queue_wait + r.service
        };
        assert!(
            end_of(2) < end_of(3),
            "biggest job must finish before the medium one"
        );
    }

    /// Satellite regression: an out-of-range picker index is a policy
    /// bug — debug builds panic on it; release builds clamp to the
    /// newest item instead of crashing the slice thread.
    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "picker returned out-of-range index")
    )]
    fn pop_select_out_of_range_picker_is_detected() {
        let q: JobQueue<u32> = JobQueue::bounded(4);
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        // Index 99 is out of range for a 2-item queue: debug panics
        // (the attribute above), release clamps to the newest (index 1).
        let got = q.pop_select(|_| 99);
        assert_eq!(got, Some(20), "release builds clamp to the newest item");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn deadline_pick_is_edf_with_aged_classes() {
        let t0 = Instant::now();
        let ms = Duration::from_millis;
        let aging = ms(100);
        let facts = |p: Priority, deadline: Option<Duration>, submitted: Duration| SchedFacts {
            priority: p,
            deadline: deadline.map(|d| t0 + d),
            submitted: t0 + submitted,
        };
        // Pure EDF among deadline jobs: earliest absolute deadline wins
        // regardless of class or queue position.
        let q = [
            facts(Priority::Batch, Some(ms(500)), ms(0)),
            facts(Priority::Latency, Some(ms(300)), ms(10)),
            facts(Priority::Normal, Some(ms(100)), ms(20)),
        ];
        assert_eq!(deadline_pick(&q, aging), 2);
        // Deadline-less jobs order by class horizon: Latency (0×aging)
        // beats Normal (1×) beats Batch (4×) at equal submission time.
        let q = [
            facts(Priority::Batch, None, ms(0)),
            facts(Priority::Normal, None, ms(0)),
            facts(Priority::Latency, None, ms(0)),
        ];
        assert_eq!(deadline_pick(&q, aging), 2);
        // Aging promotes old Batch ahead of fresh deadline-less Normal:
        // batch vd = 0 + 4·100 = 400ms < normal vd = 350 + 100 = 450ms.
        let q = [
            facts(Priority::Batch, None, ms(0)),
            facts(Priority::Normal, None, ms(350)),
        ];
        assert_eq!(deadline_pick(&q, aging), 0);
        // ... but not ahead of work submitted well inside its grace.
        let q = [
            facts(Priority::Batch, None, ms(0)),
            facts(Priority::Normal, None, ms(100)),
        ];
        assert_eq!(deadline_pick(&q, aging), 1);
        // Equal virtual deadlines tie toward the oldest submission, then
        // the frontmost position.
        let q = [
            facts(Priority::Normal, Some(ms(200)), ms(50)),
            facts(Priority::Normal, Some(ms(200)), ms(10)),
        ];
        assert_eq!(deadline_pick(&q, aging), 1);
        let q = [
            facts(Priority::Latency, None, ms(30)),
            facts(Priority::Latency, None, ms(30)),
        ];
        assert_eq!(deadline_pick(&q, aging), 0);
    }

    #[test]
    fn streaming_balance_matches_the_operators() {
        use tb_stencil::kernel::StoreMode;
        // The JobOp shortcut must agree with the real operators' code
        // balance under streaming stores, for both element widths.
        let v64: VarCoeff7<f64> = VarCoeff7::banded(Dims3::cube(4));
        let v32: VarCoeff7<f32> = VarCoeff7::banded(Dims3::cube(4));
        let cases: [(JobOp, f64, f64); 4] = [
            (
                JobOp::Jacobi6,
                StencilOp::<f64>::bytes_per_lup(&Jacobi6, StoreMode::Streaming),
                StencilOp::<f32>::bytes_per_lup(&Jacobi6, StoreMode::Streaming),
            ),
            (
                JobOp::Jacobi7Heat(0.1),
                StencilOp::<f64>::bytes_per_lup(&Jacobi7::heat(0.1), StoreMode::Streaming),
                StencilOp::<f32>::bytes_per_lup(&Jacobi7::heat(0.1), StoreMode::Streaming),
            ),
            (
                JobOp::VarCoeff7Banded,
                v64.bytes_per_lup(StoreMode::Streaming),
                v32.bytes_per_lup(StoreMode::Streaming),
            ),
            (
                JobOp::Avg27,
                StencilOp::<f64>::bytes_per_lup(&Avg27, StoreMode::Streaming),
                StencilOp::<f32>::bytes_per_lup(&Avg27, StoreMode::Streaming),
            ),
        ];
        for (op, want64, want32) in cases {
            assert_eq!(op.streaming_bytes_per_lup(8), want64, "{op:?} f64");
            assert_eq!(op.streaming_bytes_per_lup(4), want32, "{op:?} f32");
        }
    }

    #[test]
    fn cancel_removes_queued_jobs_and_counts_them() {
        // Paused server: the job can never be picked up, so cancel must
        // win the race deterministically.
        let m = Machine::flat(1);
        let server = Server::new_paused(&m, ServerConfig::default());
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(8), 7)),
            1,
            JobMethod::Fixed(Method::Sequential),
        )
        .with_priority(Priority::Batch);
        let handle = server.submit(spec).unwrap();
        assert!(handle.cancel(), "a queued job cancels");
        assert_eq!(server.queue_len(), 0, "cancel frees the queue slot");
        let err = handle.wait().expect_err("cancelled jobs fail their handle");
        assert!(err.message.contains("cancelled"), "got: {}", err.message);
        let stats = server.stats();
        assert_eq!(stats.cancels, 1);
        assert_eq!(stats.class(Priority::Batch).cancelled, 1);
        assert_eq!(stats.class(Priority::Batch).admitted, 1);
    }

    #[test]
    fn cancel_after_completion_is_a_no_op() {
        let m = Machine::flat(1);
        let server = Server::new(&m, ServerConfig::default());
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(8), 7)),
            1,
            JobMethod::Fixed(Method::Sequential),
        );
        let handle = server.submit(spec).unwrap();
        // Wait for completion without consuming the handle.
        while !handle.is_done() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!handle.cancel(), "a finished job cannot be cancelled");
        assert!(handle.wait().is_ok(), "the real outcome is preserved");
        assert_eq!(server.stats().cancels, 0);
    }

    #[test]
    fn infeasible_deadline_is_shed_at_admission() {
        let m = Machine::flat(1);
        let server = Server::new_paused(
            &m,
            ServerConfig {
                admission: Admission::Shed(MachineParams::nehalem_ep()),
                ..ServerConfig::default()
            },
        );
        // 64³ × 8 sweeps ≈ 2.1M updates: the Mc floor (16 B/LUP over
        // 80 GB/s) is ~420 µs — a 1 ns deadline is hopeless.
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(64), 3)),
            8,
            JobMethod::Fixed(Method::Sequential),
        )
        .with_deadline(Duration::from_nanos(1));
        match server.submit(spec) {
            Err(Rejected::Infeasible(spec, floor)) => {
                assert_eq!(spec.tag, 0, "the spec comes back untouched");
                assert!(floor > Duration::from_nanos(1));
                let want = tb_model::service_floor_seconds(
                    &MachineParams::nehalem_ep(),
                    16.0,
                    spec.weight(),
                );
                assert_eq!(floor, Duration::from_secs_f64(want));
            }
            Ok(_) => panic!("expected Infeasible, got an admitted job"),
            Err(other) => panic!("expected Infeasible, got {other:?}"),
        }
        assert_eq!(server.stats().sheds, 1);
        // The same job with a generous deadline is admitted — and its
        // report carries the predictor's floor.
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(64), 3)),
            8,
            JobMethod::Fixed(Method::Sequential),
        )
        .with_deadline(Duration::from_secs(60));
        assert!(server.submit(spec).is_ok());
        // QueueOnly servers never shed, however absurd the deadline.
        let lenient = Server::new_paused(&m, ServerConfig::default());
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(64), 3)),
            8,
            JobMethod::Fixed(Method::Sequential),
        )
        .with_deadline(Duration::from_nanos(1));
        assert!(lenient.submit(spec).is_ok());
    }

    /// Satellite regression: time blocked inside `submit_blocking` must
    /// surface as `admission_wait`, not vanish (the old code stamped the
    /// queue-wait clock at admission, hiding backpressure entirely).
    #[test]
    #[allow(clippy::result_large_err)] // the submitter closure returns the public submit type
    fn blocked_admission_time_is_reported_separately() {
        let m = Machine::flat(1);
        let server = Server::new_paused(
            &m,
            ServerConfig {
                queue_capacity: 1,
                policy: SchedPolicy::Fifo,
                ..ServerConfig::default()
            },
        );
        let job = |tag: u64| {
            let mut spec = JobSpec::new(
                JobOp::Jacobi6,
                JobPayload::F64(init::random(Dims3::cube(8), tag)),
                1,
                JobMethod::Fixed(Method::Sequential),
            );
            spec.tag = tag;
            spec
        };
        // Fill the queue, then block a second submission on it.
        let first = server.submit(job(1)).unwrap();
        let server = Arc::new(server);
        let submitter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.submit_blocking(job(2), Duration::from_secs(30)))
        };
        // Give the submitter time to really block, then free the slot by
        // serving the first job by hand (the server stays paused so the
        // admission instants stay deterministic).
        std::thread::sleep(Duration::from_millis(50));
        let popped = server
            .queue
            .pop_select(|_| 0)
            .expect("the first job is queued");
        popped.state.complete(Err(JobError {
            job_id: popped.id,
            message: "served by hand".into(),
        }));
        let _ = first;
        let handle = submitter
            .join()
            .expect("submitter thread")
            .expect("admitted after the slot freed");
        // The blocked submission waited ≥ ~50ms and that wait is stamped
        // into the queued job as admission time.
        let queued = server
            .queue
            .remove_where(|j| j.id == handle.id())
            .expect("job 2 is still queued");
        let admission_wait = queued.admitted.duration_since(queued.submitted);
        assert!(
            admission_wait >= Duration::from_millis(40),
            "blocked admission must be visible, got {admission_wait:?}"
        );
        queued.state.complete(Err(JobError {
            job_id: queued.id,
            message: "served by hand".into(),
        }));
    }
}
