//! # temporal-blocking
//!
//! A Rust reproduction of **"Multicore-aware parallel temporal blocking
//! of stencil codes for shared and distributed memory"** (M. Wittmann,
//! G. Hager, G. Wellein, IPPS/LSPP 2010, arXiv:0912.4506), generalized
//! over a stencil-operator layer.
//!
//! The workspace implements the paper end to end:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`grid`] | aligned 3D grids, grid pairs, compressed grids, regions, blocks, race auditor |
//! | [`sync`] | spin barrier, padded progress counters, relaxed pipeline sync (Eq. 3) |
//! | [`topology`] | cache groups, Nehalem EP preset, team layout, affinity |
//! | [`runtime`] | **persistent core-pinned worker teams** (spawn once, dispatch per solve), comm worker, staging-grid pool |
//! | [`stencil`] | **stencil operators**, baselines, **pipelined temporal blocking**, wavefront comparator |
//! | [`model`] | Eq. 2 roofline, §1.4 diagnostic model, Fig. 5 halo model, Fig. 6 scaling model — all fed by per-operator code balance |
//! | [`membench`] | STREAM COPY/SCALE/ADD/TRIAD + machine calibration |
//! | [`net`] | in-process ranks, communicator, Cartesian topology, virtual-time network |
//! | [`dist`] | domain decomposition, multi-layer halo exchange, operator-generic distributed/hybrid solver, cluster sim |
//!
//! ## The operator layer
//!
//! Every execution strategy is generic over [`StencilOp`] — the
//! row-update primitive plus radius, flops/LUP and bytes/LUP metadata.
//! Four operators ship ([`solve`] defaults to the classic Jacobi;
//! [`solve_with`] takes any):
//!
//! | operator | stencil | use case |
//! |----------|---------|----------|
//! | [`Jacobi6`] | 6-point cross, weight 1/6 | the paper's Eq. 1; Laplace relaxation |
//! | [`Jacobi7`] | 7-point cross with center weight | explicit-Euler heat stepping |
//! | [`VarCoeff7`] | 7-point cross + per-cell coefficient grid | heterogeneous diffusion (extra read stream) |
//! | [`Avg27`] | dense 27-point radius-1 average | corner-reading smoothing kernel |
//!
//! Each operator is held to **bitwise identity** across all execution
//! strategies (sequential, blocked, parallel ± streaming stores,
//! pipelined, compressed, wavefront, diamond, distributed/hybrid)
//! against its own sequential oracle.
//!
//! For serving many tenants' solves concurrently on one machine —
//! disjoint cache-group slices, admission control, warm plans per
//! slice shape — see the [`serve`] module.
//!
//! ## Quick start
//!
//! ```
//! use temporal_blocking::prelude::*;
//!
//! // A 3D heat problem: hot z=0 face, cold everywhere else.
//! let dims = Dims3::cube(34);
//! let initial = grid::init::hot_plate::<f64>(dims, 100.0, 0.0);
//!
//! // Solve 8 sweeps with pipelined temporal blocking...
//! let cfg = PipelineConfig::small();
//! let (solution, stats) = solve(initial.clone(), 8, Method::Pipelined(cfg.clone())).unwrap();
//!
//! // ...and it is bitwise identical to the plain sequential solver.
//! let (reference, _) = solve(initial.clone(), 8, Method::Sequential).unwrap();
//! grid::norm::assert_grids_identical(
//!     &reference,
//!     &solution,
//!     &Region3::whole(dims),
//!     "pipelined vs sequential",
//! );
//! assert!(stats.mlups() > 0.0);
//!
//! // Any other operator drops in via `solve_with` — here one explicit
//! // Euler heat step per sweep instead of the Jacobi average.
//! let heat = Jacobi7::heat(0.1);
//! let (a, _) = solve_with(&heat, initial.clone(), 8, Method::Pipelined(cfg)).unwrap();
//! let (b, _) = solve_with(&heat, initial, 8, Method::Sequential).unwrap();
//! grid::norm::assert_grids_identical(&a, &b, &Region3::whole(dims), "heat op");
//! ```

pub use tb_dist as dist;
pub use tb_grid as grid;
pub use tb_membench as membench;
pub use tb_model as model;
pub use tb_net as net;
pub use tb_plan as plan;
pub use tb_runtime as runtime;
pub use tb_stencil as stencil;
pub use tb_sync as sync;
pub use tb_topology as topology;

pub use tb_runtime::{Placement, Runtime};
pub use tb_stencil::{
    Avg27, DiamondConfig, Jacobi6, Jacobi7, PipelineConfig, RunStats, ScalarPath, StencilOp,
    SyncMode, VarCoeff7,
};

use tb_grid::{CompressedGrid, Dims3, Grid3, GridPair, Real};
use tb_runtime::GridPool;
use tb_stencil::config::GridScheme;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{baseline, diamond, pipeline, wavefront};

pub mod serve;

/// Everything an application typically needs.
pub mod prelude {
    pub use crate::serve::{
        Admission, ClassStats, JobError, JobHandle, JobMethod, JobOp, JobPayload, JobReport,
        JobSpec, PackPolicy, Priority, Rejected, SchedPolicy, Server, ServerConfig, ServerStats,
        SlicePolicy,
    };
    pub use crate::{
        solve, solve_on, solve_tuned_on, solve_tuned_with_on, solve_with, solve_with_on, Method,
        TuneOptions, TunedSolve,
    };
    pub use tb_grid::{self as grid, Dims3, Grid3, GridPair, Real, Region3};
    pub use tb_model::MachineParams;
    pub use tb_plan::{MethodFamily, Plan, PlanCache};
    pub use tb_runtime::{Placement, Runtime};
    pub use tb_stencil::{
        Avg27, DiamondConfig, Jacobi6, Jacobi7, PipelineConfig, RunStats, ScalarPath, StencilOp,
        SyncMode, VarCoeff7,
    };
    pub use tb_topology::{Machine, TeamLayout};
}

/// Solver selection for [`solve`] / [`solve_with`].
#[derive(Clone, Debug)]
pub enum Method {
    /// Plain sequential sweeps (the verification oracle).
    Sequential,
    /// Sequential sweeps with spatial blocking.
    Blocked { block: [usize; 3] },
    /// Thread-parallel standard sweeps (the paper's baseline).
    Parallel {
        threads: usize,
        streaming_stores: bool,
    },
    /// Pipelined temporal blocking (the paper's contribution, §1.3).
    Pipelined(PipelineConfig),
    /// Pipelined temporal blocking on a compressed grid (§1.3).
    PipelinedCompressed(PipelineConfig),
    /// Wavefront temporal blocking (the paper's ref. 2, comparator).
    Wavefront { threads: usize },
    /// Wavefront-diamond temporal blocking (Malas, Hager et al. 2015):
    /// diamond tiles along z × time, no wind-up/wind-down waste, one
    /// width knob instead of block sizes and sync distances.
    Diamond(DiamondConfig),
}

/// [`solve_with`] on a persistent [`Runtime`]: parallel methods run on
/// its (pinned) workers — which must number at least the method's
/// thread count — and the second grid buffer / compressed storage come
/// from the runtime's staging pool, so repeated solves stop paying
/// spawn-per-solve and allocation-per-solve. Sequential methods ignore
/// the runtime.
pub fn solve_with_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    initial: Grid3<T>,
    sweeps: usize,
    method: Method,
) -> Result<(Grid3<T>, RunStats), String> {
    /// Pair the initial grid with a pooled B buffer (a full copy, so
    /// boundary cells are right in both buffers). The buffer comes from
    /// [`Runtime::acquire_grid`] and is filled by [`Runtime::place_copy`],
    /// so under [`Placement::WorkerFirstTouch`] its pages commit on the
    /// workers that will compute on them.
    fn pooled_pair<T: Real>(rt: &Runtime, initial: Grid3<T>) -> GridPair<T> {
        let mut b = rt.acquire_grid(initial.dims());
        rt.place_copy(b.as_mut_slice(), initial.as_slice());
        GridPair::from_parts(initial, b)
    }
    /// Keep the buffer holding the result, return the other to the pool.
    fn split_result<T: Real>(pool: &GridPool<T>, pair: GridPair<T>, sweeps: usize) -> Grid3<T> {
        let (a, b) = pair.into_parts();
        let (result, spare) = if sweeps.is_multiple_of(2) {
            (a, b)
        } else {
            (b, a)
        };
        pool.release(spare);
        result
    }
    let pool = rt.grid_pool::<T>();
    match method {
        Method::Sequential | Method::Blocked { .. } => solve_with(op, initial, sweeps, method),
        Method::Parallel {
            threads,
            streaming_stores,
        } => {
            if threads == 0 {
                return Err("threads must be >= 1".into());
            }
            if threads > rt.threads() {
                return Err(format!(
                    "runtime has {} workers but the method needs {threads}",
                    rt.threads()
                ));
            }
            let store = if streaming_stores {
                StoreMode::Streaming
            } else {
                StoreMode::Normal
            };
            let mut pair = pooled_pair(rt, initial);
            let stats = baseline::par_sweeps_op_on(rt, op, &mut pair, sweeps, threads, store);
            Ok((split_result(&pool, pair, sweeps), stats))
        }
        Method::Pipelined(mut cfg) => {
            cfg.scheme = GridScheme::TwoGrid;
            cfg.validate(initial.dims())?;
            let mut pair = pooled_pair(rt, initial);
            let stats = pipeline::run_op_on(rt, op, &mut pair, &cfg, sweeps)?;
            Ok((split_result(&pool, pair, sweeps), stats))
        }
        Method::PipelinedCompressed(mut cfg) => {
            cfg.scheme = GridScheme::Compressed;
            cfg.validate(initial.dims())?;
            let margin = cfg.stages();
            let storage =
                rt.acquire_grid(CompressedGrid::<T>::alloc_dims_for(initial.dims(), margin));
            let mut cg = CompressedGrid::from_grid_in(&initial, margin, storage);
            let stats = pipeline::run_compressed_op_on(rt, op, &mut cg, &cfg, sweeps)?;
            let out = cg.to_grid();
            pool.release(cg.into_storage());
            Ok((out, stats))
        }
        Method::Wavefront { threads } => {
            let mut pair = pooled_pair(rt, initial);
            let stats = wavefront::run_wavefront_op_on(rt, op, &mut pair, threads, sweeps)?;
            Ok((split_result(&pool, pair, sweeps), stats))
        }
        Method::Diamond(cfg) => {
            let mut pair = pooled_pair(rt, initial);
            let stats = diamond::run_diamond_op_on(rt, op, &mut pair, &cfg, sweeps)?;
            Ok((split_result(&pool, pair, sweeps), stats))
        }
    }
}

/// [`solve_with_on`] specialized to the classic 6-point Jacobi operator.
pub fn solve_on<T: Real>(
    rt: &Runtime,
    initial: Grid3<T>,
    sweeps: usize,
    method: Method,
) -> Result<(Grid3<T>, RunStats), String> {
    solve_with_on(rt, &Jacobi6, initial, sweeps, method)
}

/// Run `sweeps` sweeps of the stencil operator `op` on `initial` with the
/// chosen method. Returns the final grid and the run statistics.
///
/// Parallel methods execute on a one-shot worker team per call; build a
/// [`Runtime`] and use [`solve_with_on`] when solving repeatedly.
///
/// For a fixed operator, all methods produce bitwise identical results
/// (see crate docs).
pub fn solve_with<T: Real, Op: StencilOp<T>>(
    op: &Op,
    initial: Grid3<T>,
    sweeps: usize,
    method: Method,
) -> Result<(Grid3<T>, RunStats), String> {
    match method {
        Method::Sequential => {
            let mut pair = GridPair::from_initial(initial);
            let stats = baseline::seq_sweeps_op(op, &mut pair, sweeps);
            Ok((pair.current(sweeps).clone(), stats))
        }
        Method::Blocked { block } => {
            let mut pair = GridPair::from_initial(initial);
            let stats = baseline::seq_blocked_sweeps_op(op, &mut pair, sweeps, block);
            Ok((pair.current(sweeps).clone(), stats))
        }
        Method::Parallel {
            threads,
            streaming_stores,
        } => {
            if threads == 0 {
                return Err("threads must be >= 1".into());
            }
            let store = if streaming_stores {
                StoreMode::Streaming
            } else {
                StoreMode::Normal
            };
            let mut pair = GridPair::from_initial(initial);
            let stats = baseline::par_sweeps_op(op, &mut pair, sweeps, threads, store, None);
            Ok((pair.current(sweeps).clone(), stats))
        }
        Method::Pipelined(mut cfg) => {
            cfg.scheme = GridScheme::TwoGrid;
            let mut pair = GridPair::from_initial(initial);
            let stats = pipeline::run_op(op, &mut pair, &cfg, sweeps)?;
            Ok((pair.current(sweeps).clone(), stats))
        }
        Method::PipelinedCompressed(mut cfg) => {
            cfg.scheme = GridScheme::Compressed;
            let mut cg = CompressedGrid::from_grid(&initial, cfg.stages());
            let stats = pipeline::run_compressed_op(op, &mut cg, &cfg, sweeps)?;
            Ok((cg.to_grid(), stats))
        }
        Method::Wavefront { threads } => {
            let mut pair = GridPair::from_initial(initial);
            let stats = wavefront::run_wavefront_op(op, &mut pair, threads, sweeps)?;
            Ok((pair.current(sweeps).clone(), stats))
        }
        Method::Diamond(cfg) => {
            let mut pair = GridPair::from_initial(initial);
            let stats = diamond::run_diamond_op(op, &mut pair, &cfg, sweeps)?;
            Ok((pair.current(sweeps).clone(), stats))
        }
    }
}

/// [`solve_with`] specialized to the classic 6-point Jacobi operator —
/// the paper's Eq. 1 and the default for existing callers.
pub fn solve<T: Real>(
    initial: Grid3<T>,
    sweeps: usize,
    method: Method,
) -> Result<(Grid3<T>, RunStats), String> {
    solve_with(&Jacobi6, initial, sweeps, method)
}

/// Convenience: dims of a cubic problem sized to roughly `mib` MiB for a
/// two-grid `f64` solver — used by examples to scale to the host.
pub fn cube_for_memory_budget(mib: usize) -> Dims3 {
    let bytes = mib * 1024 * 1024;
    let cells = bytes / (2 * 8);
    let edge = (cells as f64).cbrt() as usize;
    Dims3::cube(edge.max(8))
}

/// The persistent runtime for a tuning session: the layout's pinned
/// workers when they already cover `min_threads` (e.g. a full cache
/// group for calibration), otherwise the pin list grown with the
/// machine's remaining CPUs — keeping the layout's placement *and* its
/// carved-out comm core, instead of degrading to unpinned threads with
/// no comm worker.
pub fn tuning_runtime(
    machine: &topology::Machine,
    layout: &topology::TeamLayout,
    min_threads: usize,
) -> Runtime {
    if layout.threads() >= min_threads {
        return Runtime::new(layout);
    }
    let mut cpus = layout.cpus.clone();
    let mut used: std::collections::HashSet<usize> = cpus.iter().flatten().copied().collect();
    if let Some(c) = layout.comm_core {
        used.insert(c);
    }
    for socket in &machine.sockets {
        for &cpu in &socket.cpus {
            if cpus.len() >= min_threads {
                break;
            }
            if used.insert(cpu) {
                cpus.push(Some(cpu));
            }
        }
    }
    while cpus.len() < min_threads {
        cpus.push(None); // machine smaller than the request: unpinned tail
    }
    Runtime::from_cpus(cpus, layout.comm_core.map(Some))
}

/// Translate a [`tb_plan::Plan`]'s method into the facade [`Method`].
/// The SIMD flag is *not* encoded here — [`run_plan_on`] applies it by
/// wrapping the operator in [`ScalarPath`].
pub fn method_for_plan(plan: &tb_plan::Plan) -> Method {
    use tb_plan::PlanMethod;
    match &plan.method {
        PlanMethod::Parallel {
            threads,
            streaming_stores,
        } => Method::Parallel {
            threads: *threads,
            streaming_stores: *streaming_stores,
        },
        PlanMethod::Pipelined(_) => Method::Pipelined(plan.pipeline_config().unwrap()),
        PlanMethod::Compressed(_) => Method::PipelinedCompressed(plan.pipeline_config().unwrap()),
        PlanMethod::Wavefront { threads } => Method::Wavefront { threads: *threads },
        PlanMethod::Diamond { .. } => Method::Diamond(plan.diamond_config().unwrap()),
    }
}

/// Execute one reified [`tb_plan::Plan`] on a persistent runtime.
/// `simd: false` routes through [`ScalarPath`] — bitwise identical
/// results, scalar row kernels.
pub fn run_plan_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    plan: &tb_plan::Plan,
    initial: Grid3<T>,
    sweeps: usize,
) -> Result<(Grid3<T>, RunStats), String> {
    let method = method_for_plan(plan);
    if plan.simd {
        solve_with_on(rt, op, initial, sweeps, method)
    } else {
        solve_with_on(rt, &ScalarPath(op.clone()), initial, sweeps, method)
    }
}

/// Options for [`solve_tuned_on`] / [`solve_tuned_with_on`].
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Cache file; `None` uses [`tb_plan::PlanCache::default_path`]
    /// (`$TB_PLAN_CACHE` overrides).
    pub cache_path: Option<std::path::PathBuf>,
    /// Measure at most this many model-ranked candidates on a cold tune.
    pub top_k: usize,
    /// Ignore any cached plan and tune afresh (the result still lands in
    /// the cache).
    pub force_retune: bool,
    /// Skip membench calibration and fingerprint with these parameters —
    /// for tests/benches and for hosts calibrated out of band.
    pub params: Option<MachineParams>,
    /// Restrict the candidate space to these families; empty means all.
    pub families: Vec<tb_plan::MethodFamily>,
    /// Tune for this machine (or sub-machine) instead of the detected
    /// host. The job scheduler passes each slice's
    /// [`Machine::restrict`](topology::Machine::restrict) sub-machine
    /// here, so plans are keyed per sub-machine fingerprint — identical
    /// slices share warm plans, different slice shapes never collide.
    pub machine: Option<topology::Machine>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            cache_path: None,
            top_k: tb_plan::TuneConfig::default().top_k,
            force_retune: false,
            params: None,
            families: Vec::new(),
            machine: None,
        }
    }
}

/// How a tuned solve obtained its plan.
#[derive(Clone, Debug)]
pub struct TunedSolve {
    /// The plan that produced the returned grid.
    pub plan: tb_plan::Plan,
    /// `true` when the plan was replayed from the persistent cache —
    /// by contract such a solve performs **zero** measurements.
    pub cache_hit: bool,
    /// `true` when membench calibration ran (cold cache, no stored
    /// calibration, no [`TuneOptions::params`] override).
    pub calibrated: bool,
    /// Candidate measurements performed (0 on a warm hit).
    pub measurements: usize,
    /// The ranked tuning report (cold tunes only).
    pub report: Option<tb_plan::TuneReport>,
}

use tb_model::MachineParams;

/// [`solve_with_on`] with the method chosen by the plan-cache autotuner:
/// open the persistent cache (one shared in-process store per cache
/// file, so concurrent tenants never race the load-modify-save cycle),
/// replay the stored winner when the [`tb_plan::PlanKey`] matches (no
/// measurement of any kind — the calibration that feeds the fingerprint
/// is itself cached), otherwise enumerate candidates, score them with
/// the `tb-model` predictions, measure only the top-K plus the library
/// default, persist the winner, and solve with it.
pub fn solve_tuned_with_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    initial: Grid3<T>,
    sweeps: usize,
    opts: &TuneOptions,
) -> Result<(Grid3<T>, RunStats, TunedSolve), String> {
    use tb_plan::{CacheEntry, MachineFingerprint, PlanKey, SharedPlanCache, TuneConfig};

    let dims = initial.dims();
    let machine = match &opts.machine {
        Some(m) => m.clone(),
        None => topology::detect::detect(),
    };
    let signature = machine.signature();
    let cache = match &opts.cache_path {
        Some(p) => SharedPlanCache::open(p.clone()),
        None => SharedPlanCache::open_default(),
    };

    // Machine parameters: explicit override, then the cached calibration
    // for this topology, then one membench run (cached for next time).
    let mut calibrated = false;
    let params = match opts.params {
        Some(p) => p,
        None => match cache.calibration(&signature) {
            Some(p) => p,
            None => {
                let group = machine.cores_per_socket().max(1);
                let profile = membench::CalibrationProfile::quick();
                let p = if rt.threads() >= group {
                    membench::calibrate_host_on(rt, &machine, profile)
                } else {
                    let layout = topology::TeamLayout::new(&machine, group, 1);
                    let cal_rt = tuning_runtime(&machine, &layout, group);
                    membench::calibrate_host_on(&cal_rt, &machine, profile)
                };
                calibrated = true;
                cache
                    .with(|c| {
                        c.store_calibration(&signature, p);
                        c.save()
                    })
                    .map_err(|e| format!("plan cache save: {e}"))?;
                p
            }
        },
    };

    let fingerprint = MachineFingerprint::new(&machine, &params);
    let key = PlanKey::new::<T>(fingerprint, op.name(), dims, sweeps);

    // Warm path: replay the stored winner. The entry re-validates
    // against the current dims, and must fit this runtime's workers.
    if !opts.force_retune {
        if let Some(entry) = cache.lookup(&key, dims, Op::RADIUS) {
            if entry.plan.method.threads() <= rt.threads() {
                let plan = entry.plan;
                let (out, stats) = run_plan_on(rt, op, &plan, initial, sweeps)?;
                return Ok((
                    out,
                    stats,
                    TunedSolve {
                        plan,
                        cache_hit: true,
                        calibrated,
                        measurements: 0,
                        report: None,
                    },
                ));
            }
        }
    }

    // Cold path: enumerate, score, measure top-K + incumbent.
    let team = rt.threads().max(1);
    let families: &[tb_plan::MethodFamily] = if opts.families.is_empty() {
        &tb_plan::MethodFamily::ALL
    } else {
        &opts.families
    };
    let candidates: Vec<tb_plan::Plan> = families
        .iter()
        .flat_map(|&f| tb_plan::enumerate_family::<T, Op>(f, &params, op, dims, team))
        .collect();
    let incumbent = tb_plan::default_plan(
        if families.len() == 1 {
            families[0]
        } else {
            tb_plan::MethodFamily::Parallel
        },
        team,
    );
    let report = tb_plan::tune(
        &params,
        op,
        dims,
        candidates,
        incumbent,
        &TuneConfig { top_k: opts.top_k },
        |plan| run_plan_on(rt, op, plan, initial.clone(), sweeps).map(|(_, stats)| stats.mlups()),
    );
    let winner = report
        .winner()
        .ok_or("tuning failed: no candidate could be measured")?;
    let plan = winner.plan.clone();
    cache
        .store_and_save(
            &key,
            CacheEntry {
                plan: plan.clone(),
                dims: [dims.nx, dims.ny, dims.nz],
                measured_mlups: winner.measured_mlups.unwrap_or(0.0),
                predicted_mlups: winner.predicted_mlups,
            },
        )
        .map_err(|e| format!("plan cache save: {e}"))?;

    let measurements = report.measured;
    let (out, stats) = run_plan_on(rt, op, &plan, initial, sweeps)?;
    Ok((
        out,
        stats,
        TunedSolve {
            plan,
            cache_hit: false,
            calibrated,
            measurements,
            report: Some(report),
        },
    ))
}

/// [`solve_tuned_with_on`] specialized to the classic 6-point Jacobi.
pub fn solve_tuned_on<T: Real>(
    rt: &Runtime,
    initial: Grid3<T>,
    sweeps: usize,
    opts: &TuneOptions,
) -> Result<(Grid3<T>, RunStats, TunedSolve), String> {
    solve_tuned_with_on(rt, &Jacobi6, initial, sweeps, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::{init, norm, Region3};

    fn all_methods() -> Vec<(&'static str, Method)> {
        vec![
            ("blocked", Method::Blocked { block: [7, 7, 7] }),
            (
                "par",
                Method::Parallel {
                    threads: 3,
                    streaming_stores: false,
                },
            ),
            (
                "par-nt",
                Method::Parallel {
                    threads: 2,
                    streaming_stores: true,
                },
            ),
            ("pipelined", Method::Pipelined(PipelineConfig::small())),
            (
                "compressed",
                Method::PipelinedCompressed(PipelineConfig::small()),
            ),
            ("wavefront", Method::Wavefront { threads: 2 }),
            (
                "diamond",
                Method::Diamond(DiamondConfig {
                    threads: 2,
                    width: 6,
                    threads_per_tile: 1,
                    audit: true,
                }),
            ),
            (
                "diamond-mwd",
                Method::Diamond(DiamondConfig {
                    threads: 2,
                    width: 6,
                    threads_per_tile: 2,
                    audit: true,
                }),
            ),
        ]
    }

    #[test]
    fn all_methods_agree_bitwise() {
        let dims = Dims3::cube(20);
        let initial: Grid3<f64> = init::random(dims, 7);
        let sweeps = 6;
        let (want, _) = solve(initial.clone(), sweeps, Method::Sequential).unwrap();
        for (name, m) in all_methods() {
            let (got, stats) = solve(initial.clone(), sweeps, m).unwrap();
            norm::assert_grids_identical(&want, &got, &Region3::whole(dims), name);
            assert_eq!(
                stats.cell_updates,
                (sweeps * dims.interior_len()) as u64,
                "{name}"
            );
        }
    }

    #[test]
    fn all_methods_agree_bitwise_for_every_operator() {
        let dims = Dims3::cube(20);
        let initial: Grid3<f64> = init::random(dims, 13);
        let sweeps = 5;

        fn check<Op: StencilOp<f64>>(op: &Op, initial: &Grid3<f64>, sweeps: usize) {
            let dims = initial.dims();
            let (want, _) = solve_with(op, initial.clone(), sweeps, Method::Sequential).unwrap();
            for (name, m) in all_methods() {
                let (got, _) = solve_with(op, initial.clone(), sweeps, m).unwrap();
                norm::assert_grids_identical(
                    &want,
                    &got,
                    &Region3::whole(dims),
                    &format!("{} via {name}", op.name()),
                );
            }
        }
        check(&Jacobi7::heat(0.11), &initial, sweeps);
        check(&VarCoeff7::banded(dims), &initial, sweeps);
        check(&Avg27, &initial, sweeps);
    }

    #[test]
    fn solve_on_shared_runtime_agrees_with_solve_for_every_method() {
        let dims = Dims3::cube(20);
        let initial: Grid3<f64> = init::random(dims, 21);
        let sweeps = 5;
        let (want, _) = solve(initial.clone(), sweeps, Method::Sequential).unwrap();
        let rt = Runtime::with_threads(3);
        for round in 0..2 {
            for (name, m) in all_methods() {
                let (got, stats) = solve_on(&rt, initial.clone(), sweeps, m).unwrap();
                norm::assert_grids_identical(
                    &want,
                    &got,
                    &Region3::whole(dims),
                    &format!("{name} on shared runtime, round {round}"),
                );
                assert_eq!(stats.cell_updates, (sweeps * dims.interior_len()) as u64);
            }
        }
        // The staging pool is being reused, not grown per solve: at most
        // one two-grid B buffer and one compressed storage block parked.
        assert!(rt.grid_pool::<f64>().free_grids() <= 2);
    }

    #[test]
    fn solve_on_rejects_undersized_runtime() {
        let dims = Dims3::cube(20);
        let g: Grid3<f64> = init::random(dims, 1);
        let rt = Runtime::with_threads(1);
        assert!(solve_on(
            &rt,
            g,
            2,
            Method::Parallel {
                threads: 4,
                streaming_stores: false
            }
        )
        .is_err());
    }

    #[test]
    fn memory_budget_helper() {
        let d = cube_for_memory_budget(16);
        // 2 f64 grids of edge^3 must fit in ~16 MiB.
        assert!(2 * d.bytes(8) <= 17 * 1024 * 1024);
        assert!(d.nx >= 8);
    }

    #[test]
    fn errors_are_propagated() {
        let dims = Dims3::cube(10);
        let g: Grid3<f64> = init::random(dims, 1);
        assert!(solve(
            g.clone(),
            1,
            Method::Parallel {
                threads: 0,
                streaming_stores: false
            }
        )
        .is_err());
        let mut cfg = PipelineConfig::small();
        cfg.updates_per_thread = 100;
        assert!(solve(g, 1, Method::Pipelined(cfg)).is_err());
    }
}
