//! Overlapping domain decomposition over a Cartesian rank grid.
//!
//! The global grid (including its outermost Dirichlet layer) is split
//! into disjoint **owned** boxes, one per rank, by near-even division
//! along each dimension. Each rank *stores* its owned box expanded by
//! the halo width `h` on every internal face — the overlap that lets a
//! rank run `h` sweeps between exchanges (paper §2.1).

use tb_grid::{Dims3, Region3};

/// One rank's view of the decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalDomain {
    /// Rank coordinates on the process grid.
    pub coords: [usize; 3],
    /// The disjointly owned cells, in **global** coordinates.
    pub owned: Region3,
    /// The stored box — `owned` expanded by `h`, clamped to the global
    /// grid — in **global** coordinates.
    pub region: Region3,
    /// Extents of `region`; the dims of this rank's local grids.
    pub dims: Dims3,
    /// The cells this rank is responsible for updating (owned ∩ global
    /// interior), in **local** coordinates.
    pub interior: Region3,
}

impl LocalDomain {
    /// Translate a global-coordinate region into this rank's local frame
    /// (caller guarantees it lies inside `self.region`).
    pub fn to_local(&self, r: &Region3) -> Region3 {
        debug_assert!(
            self.region.contains_region(r),
            "{r} outside local box {}",
            self.region
        );
        let o = self.region.lo;
        Region3::new(
            [r.lo[0] - o[0], r.lo[1] - o[1], r.lo[2] - o[2]],
            [r.hi[0] - o[0], r.hi[1] - o[1], r.hi[2] - o[2]],
        )
    }

    /// The owned box in **local** coordinates.
    pub fn owned_local(&self) -> Region3 {
        self.to_local(&self.owned)
    }

    /// The interior core of the overlapped schedule: the owned box shrunk
    /// by `depth = c × radius` on every side, in local coordinates. These
    /// are the cells a rank can advance `c` sweeps without any ghost data
    /// from the current exchange — the compute that hides communication.
    /// May be empty (tiny boxes or deep cycles: nothing can be hidden).
    pub fn interior_core(&self, depth: usize) -> Region3 {
        self.owned_local().shrink(depth)
    }

    /// The six boundary shells of width `depth = c × Op::RADIUS`: the
    /// annulus between the owned box and [`LocalDomain::interior_core`],
    /// split into at most six disjoint face slabs (z-low, z-high, y-low,
    /// y-high, x-low, x-high), in local coordinates. These cells need
    /// the freshly exchanged ghosts, so the overlapped schedule finishes
    /// them after `waitall`.
    pub fn boundary_shells(&self, depth: usize) -> Vec<Region3> {
        annulus_slabs(&self.owned_local(), &self.interior_core(depth))
    }

    /// Interior trapezoid of sweep `j` (1-based) in a `c`-sweep
    /// overlapped cycle: the owned box shrunk by `j × radius`. Sweep `j`
    /// of the interior phase may update exactly this region using only
    /// pre-exchange data — staleness from the unexchanged ghosts
    /// propagates inward one `radius` per sweep, so after sweep `j`
    /// every cell of this region holds the true step-`t+j` value.
    pub fn sweep_core(&self, j: usize, radius: usize) -> Region3 {
        self.owned_local().shrink(j * radius)
    }

    /// Full update domain of sweep `j` (1-based) of a `c`-sweep cycle:
    /// the owned box expanded by `(c − j) × radius`, clamped to the
    /// updatable interior of the local grid. Together with
    /// [`LocalDomain::sweep_core`] this defines the shell annulus the
    /// post-exchange phase must recompute:
    /// `shell_j = sweep_domain(j) \ sweep_core(j)`.
    pub fn sweep_domain(&self, j: usize, c: usize, radius: usize) -> Region3 {
        debug_assert!(j >= 1 && j <= c);
        self.owned_local()
            .expand((c - j) * radius)
            .intersect(&Region3::interior_of(self.dims))
    }
}

/// Split the annulus `outer \ inner` into at most six disjoint slabs
/// (z-low, z-high, then y-low/high within inner's z-range, then x-low/
/// high within inner's y- and z-ranges). Returns `[outer]` when `inner`
/// is empty and nothing when `outer` is.
pub fn annulus_slabs(outer: &Region3, inner: &Region3) -> Vec<Region3> {
    if outer.is_empty() {
        return Vec::new();
    }
    let inner = inner.intersect(outer);
    if inner.is_empty() {
        return vec![*outer];
    }
    let mut out = Vec::with_capacity(6);
    let mut push = |lo: [usize; 3], hi: [usize; 3]| {
        let r = Region3::new(lo, hi);
        if !r.is_empty() {
            out.push(r);
        }
    };
    let (o, i) = (outer, &inner);
    // Full-extent z slabs.
    push(o.lo, [o.hi[0], o.hi[1], i.lo[2]]);
    push([o.lo[0], o.lo[1], i.hi[2]], o.hi);
    // y slabs within inner's z range.
    push([o.lo[0], o.lo[1], i.lo[2]], [o.hi[0], i.lo[1], i.hi[2]]);
    push([o.lo[0], i.hi[1], i.lo[2]], [o.hi[0], o.hi[1], i.hi[2]]);
    // x slabs within inner's y and z ranges.
    push([o.lo[0], i.lo[1], i.lo[2]], [i.lo[0], i.hi[1], i.hi[2]]);
    push([i.hi[0], i.lo[1], i.lo[2]], [o.hi[0], i.hi[1], i.hi[2]]);
    out
}

/// Partition of a global grid over a `px × py × pz` rank grid with halo
/// width `h`.
#[derive(Clone, Debug)]
pub struct Decomposition {
    dims: Dims3,
    pgrid: [usize; 3],
    h: usize,
    /// `splits[d]` holds the `pgrid[d] + 1` cut positions along `d`.
    splits: [Vec<usize>; 3],
}

/// Near-even 1D split of `n` cells into `p` parts: the first `n % p`
/// parts get one extra cell. Returns the `p + 1` cut positions.
fn cuts(n: usize, p: usize) -> Vec<usize> {
    let base = n / p;
    let rem = n % p;
    let mut out = Vec::with_capacity(p + 1);
    let mut pos = 0;
    out.push(0);
    for i in 0..p {
        pos += base + usize::from(i < rem);
        out.push(pos);
    }
    debug_assert_eq!(pos, n);
    out
}

impl Decomposition {
    /// Validating constructor. Rejects empty rank grids, rank grids
    /// larger than the domain, `h = 0`, and halos deeper than the
    /// smallest owned edge along any communicated dimension (an exchange
    /// only reaches the *adjacent* rank, so a rank must own at least `h`
    /// layers to serve its neighbor's ghost cells).
    pub fn try_new(dims: Dims3, pgrid: [usize; 3], h: usize) -> Result<Self, String> {
        if pgrid.contains(&0) {
            return Err(format!("process grid {pgrid:?} has a zero extent"));
        }
        if h == 0 {
            return Err("halo width h must be >= 1".into());
        }
        let ext = dims.as_array();
        for d in 0..3 {
            if ext[d] < pgrid[d] {
                return Err(format!(
                    "cannot split {} cells over {} ranks along dim {d}",
                    ext[d], pgrid[d]
                ));
            }
        }
        let splits = [
            cuts(ext[0], pgrid[0]),
            cuts(ext[1], pgrid[1]),
            cuts(ext[2], pgrid[2]),
        ];
        for d in 0..3 {
            if pgrid[d] < 2 {
                continue; // no exchange along this dimension
            }
            let min_owned = (0..pgrid[d])
                .map(|i| splits[d][i + 1] - splits[d][i])
                .min()
                .unwrap();
            if min_owned < h {
                return Err(format!(
                    "halo width {h} exceeds the smallest owned edge {min_owned} \
                     along dim {d} ({} cells over {} ranks); use fewer ranks, a \
                     larger grid, or a shallower halo",
                    ext[d], pgrid[d]
                ));
            }
        }
        Ok(Self {
            dims,
            pgrid,
            h,
            splits,
        })
    }

    /// Like [`Self::try_new`] but panics on invalid input (the form the
    /// tests and examples use for known-good geometry).
    ///
    /// # Panics
    /// Panics when `try_new` would return an error.
    pub fn new(dims: Dims3, pgrid: [usize; 3], h: usize) -> Self {
        match Self::try_new(dims, pgrid, h) {
            Ok(d) => d,
            Err(e) => panic!("invalid decomposition: {e}"),
        }
    }

    /// Global grid extents.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// The process grid.
    pub fn pgrid(&self) -> [usize; 3] {
        self.pgrid
    }

    /// Halo width (= sweeps per exchange cycle).
    pub fn h(&self) -> usize {
        self.h
    }

    /// Total rank count, `px · py · pz`.
    pub fn ranks(&self) -> usize {
        self.pgrid.iter().product()
    }

    /// Rank coordinates of linear rank `r` (x-fastest, matching
    /// [`tb_net::CartComm`]).
    pub fn coords_of(&self, r: usize) -> [usize; 3] {
        debug_assert!(r < self.ranks());
        [
            r % self.pgrid[0],
            (r / self.pgrid[0]) % self.pgrid[1],
            r / (self.pgrid[0] * self.pgrid[1]),
        ]
    }

    /// The owned (disjoint) box of the rank at `coords`, in global
    /// coordinates.
    pub fn owned(&self, coords: [usize; 3]) -> Region3 {
        debug_assert!((0..3).all(|d| coords[d] < self.pgrid[d]), "{coords:?}");
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for d in 0..3 {
            lo[d] = self.splits[d][coords[d]];
            hi[d] = self.splits[d][coords[d] + 1];
        }
        Region3::new(lo, hi)
    }

    /// The full local view of the rank at `coords`.
    pub fn local(&self, coords: [usize; 3]) -> LocalDomain {
        let owned = self.owned(coords);
        let whole = Region3::whole(self.dims);
        let region = owned.expand(self.h).intersect(&whole);
        let dims = Dims3::new(region.extent(0), region.extent(1), region.extent(2));
        let global_interior = owned.intersect(&Region3::interior_of(self.dims));
        let o = region.lo;
        let interior = Region3::new(
            [
                global_interior.lo[0] - o[0],
                global_interior.lo[1] - o[1],
                global_interior.lo[2] - o[2],
            ],
            [
                global_interior.hi[0] - o[0],
                global_interior.hi[1] - o[1],
                global_interior.hi[2] - o[2],
            ],
        );
        LocalDomain {
            coords,
            owned,
            region,
            dims,
            interior,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_count_arithmetic() {
        assert_eq!(Decomposition::new(Dims3::cube(24), [1, 1, 1], 1).ranks(), 1);
        assert_eq!(
            Decomposition::new(Dims3::cube(24), [3, 2, 2], 2).ranks(),
            12
        );
        assert_eq!(
            Decomposition::new(Dims3::cube(24), [2, 4, 3], 2).ranks(),
            24
        );
        let d = Decomposition::new(Dims3::cube(24), [3, 2, 4], 2);
        for r in 0..d.ranks() {
            let c = d.coords_of(r);
            assert_eq!(
                c[0] + d.pgrid()[0] * (c[1] + d.pgrid()[1] * c[2]),
                r,
                "coords_of must invert the x-fastest rank order"
            );
        }
    }

    #[test]
    fn owned_boxes_partition_the_grid_anisotropically() {
        // 26 over 3 -> 9,9,8; 18 over 2 -> 9,9; 14 over 4 -> 4,4,3,3.
        let dims = Dims3::new(26, 18, 14);
        let dec = Decomposition::new(dims, [3, 2, 4], 2);
        let mut covered = 0usize;
        for r in 0..dec.ranks() {
            let o = dec.owned(dec.coords_of(r));
            covered += o.count();
            for r2 in 0..r {
                let o2 = dec.owned(dec.coords_of(r2));
                assert!(!o.intersects(&o2), "owned boxes {o} and {o2} overlap");
            }
        }
        assert_eq!(covered, dims.len(), "owned boxes must tile the global grid");
        // Remainder goes to the low-coordinate ranks.
        assert_eq!(dec.owned([0, 0, 0]).extent(0), 9);
        assert_eq!(dec.owned([2, 0, 0]).extent(0), 8);
        assert_eq!(dec.owned([0, 0, 0]).extent(2), 4);
        assert_eq!(dec.owned([0, 0, 3]).extent(2), 3);
    }

    #[test]
    fn overlap_clamps_at_domain_faces() {
        let dims = Dims3::cube(20);
        let dec = Decomposition::new(dims, [2, 2, 1], 3);
        // Corner rank: expansion only reaches inward.
        let lo = dec.local([0, 0, 0]);
        assert_eq!(lo.owned, Region3::new([0, 0, 0], [10, 10, 20]));
        assert_eq!(lo.region, Region3::new([0, 0, 0], [13, 13, 20]));
        assert_eq!(lo.dims, Dims3::new(13, 13, 20));
        // Its updatable cells in local coordinates: global interior
        // starts at 1, owned ends at 10.
        assert_eq!(lo.interior, Region3::new([1, 1, 1], [10, 10, 19]));
        // High corner: ghost layers sit on the low sides, shifting the
        // local frame.
        let hi = dec.local([1, 1, 0]);
        assert_eq!(hi.owned, Region3::new([10, 10, 0], [20, 20, 20]));
        assert_eq!(hi.region, Region3::new([7, 7, 0], [20, 20, 20]));
        assert_eq!(hi.interior, Region3::new([3, 3, 1], [12, 12, 19]));
        // An interior rank of a 3-wide grid expands both ways.
        let dec3 = Decomposition::new(Dims3::new(30, 10, 10), [3, 1, 1], 2);
        let mid = dec3.local([1, 0, 0]);
        assert_eq!(mid.owned, Region3::new([10, 0, 0], [20, 10, 10]));
        assert_eq!(mid.region, Region3::new([8, 0, 0], [22, 10, 10]));
    }

    #[test]
    fn local_to_local_roundtrip() {
        let dec = Decomposition::new(Dims3::cube(24), [2, 2, 2], 2);
        let l = dec.local([1, 0, 1]);
        let r = Region3::new([12, 3, 14], [20, 8, 22]);
        let local = l.to_local(&r);
        assert_eq!(local.count(), r.count());
        assert!(Region3::whole(l.dims).contains_region(&local));
    }

    #[test]
    fn deep_halo_rejected_against_smallest_owned_edge() {
        // 24 over 2 -> owned edge 12: h = 12 fits, h = 13 cannot be
        // served by one adjacent neighbor.
        let dims = Dims3::cube(24);
        assert!(Decomposition::try_new(dims, [2, 1, 1], 12).is_ok());
        let err = Decomposition::try_new(dims, [2, 1, 1], 13).unwrap_err();
        assert!(err.contains("halo width 13"), "{err}");
        // The limit binds on the *smallest* owned edge: 26 over 3 ->
        // 9,9,8.
        assert!(Decomposition::try_new(Dims3::new(26, 8, 8), [3, 1, 1], 9).is_err());
        assert!(Decomposition::try_new(Dims3::new(26, 8, 8), [3, 1, 1], 8).is_ok());
        // Dimensions without communication are exempt.
        assert!(Decomposition::try_new(Dims3::new(4, 64, 64), [1, 2, 2], 16).is_ok());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let dims = Dims3::cube(8);
        assert!(Decomposition::try_new(dims, [0, 1, 1], 1).is_err());
        assert!(Decomposition::try_new(dims, [1, 1, 1], 0).is_err());
        assert!(
            Decomposition::try_new(dims, [9, 1, 1], 1).is_err(),
            "more ranks than cells"
        );
    }

    #[test]
    #[should_panic(expected = "invalid decomposition")]
    fn new_panics_on_invalid() {
        let _ = Decomposition::new(Dims3::cube(8), [1, 1, 1], 0);
    }

    #[test]
    fn core_and_shells_partition_the_owned_box() {
        let dec = Decomposition::new(Dims3::new(26, 18, 14), [2, 2, 1], 3);
        for r in 0..dec.ranks() {
            let l = dec.local(dec.coords_of(r));
            for depth in 1..=3 {
                let core = l.interior_core(depth);
                let shells = l.boundary_shells(depth);
                let owned = l.owned_local();
                let total: usize = core.count() + shells.iter().map(Region3::count).sum::<usize>();
                assert_eq!(total, owned.count(), "rank {r} depth {depth}");
                assert!(shells.len() <= 6);
                for (i, s) in shells.iter().enumerate() {
                    assert!(owned.contains_region(s));
                    assert!(!s.intersects(&core), "shell {i} overlaps the core");
                    for s2 in &shells[..i] {
                        assert!(!s.intersects(s2), "shells overlap");
                    }
                }
            }
        }
    }

    #[test]
    fn shells_have_the_exchange_depth_width() {
        let dec = Decomposition::new(Dims3::cube(24), [2, 1, 1], 4);
        let l = dec.local([0, 0, 0]);
        let depth = 4;
        let core = l.interior_core(depth);
        let owned = l.owned_local();
        for d in 0..3 {
            assert_eq!(core.lo[d], owned.lo[d] + depth);
            assert_eq!(core.hi[d], owned.hi[d] - depth);
        }
    }

    #[test]
    fn deep_split_leaves_an_empty_core() {
        // 8-wide owned box, depth 4 from both sides: nothing is interior.
        let dec = Decomposition::new(Dims3::cube(16), [2, 2, 2], 4);
        let l = dec.local([0, 0, 0]);
        assert!(l.interior_core(4).is_empty());
        let shells = l.boundary_shells(4);
        assert_eq!(shells.len(), 1, "empty core → the whole box is shell");
        assert_eq!(shells[0], l.owned_local());
    }

    #[test]
    fn trapezoid_sweeps_nest_and_clamp() {
        let dec = Decomposition::new(Dims3::cube(24), [2, 1, 1], 3);
        let l = dec.local([1, 0, 0]);
        let (c, radius) = (3, 1);
        for j in 1..=c {
            let a = l.sweep_core(j, radius);
            let u = l.sweep_domain(j, c, radius);
            assert!(u.contains_region(&a), "core ⊆ domain at sweep {j}");
            assert!(
                Region3::interior_of(l.dims).contains_region(&u),
                "domains never touch Dirichlet or outermost ghost cells"
            );
            if j > 1 {
                // The trapezoid: cores shrink, domains shrink, and each
                // core expanded by the radius fits the previous core —
                // the dependency contract of the pipelined plan.
                let prev = l.sweep_core(j - 1, radius);
                assert!(prev.contains_region(&a.expand(radius)));
                assert!(l.sweep_domain(j - 1, c, radius).contains_region(&u));
            }
        }
        // The final sweep covers exactly the owned updatable cells.
        assert_eq!(
            l.sweep_domain(c, c, radius),
            l.owned_local().intersect(&Region3::interior_of(l.dims))
        );
    }

    #[test]
    fn annulus_slab_edge_cases() {
        let outer = Region3::new([2, 2, 2], [10, 10, 10]);
        // Empty inner: one slab, the outer box itself.
        assert_eq!(annulus_slabs(&outer, &Region3::empty()), vec![outer]);
        // Inner == outer: no slabs.
        assert!(annulus_slabs(&outer, &outer).is_empty());
        // Empty outer: nothing.
        assert!(annulus_slabs(&Region3::empty(), &outer).is_empty());
        // Inner flush against one face: five slabs.
        let inner = Region3::new([2, 4, 4], [8, 8, 8]);
        let slabs = annulus_slabs(&outer, &inner);
        assert_eq!(slabs.len(), 5);
        let total: usize = slabs.iter().map(Region3::count).sum();
        assert_eq!(total, outer.count() - inner.count());
    }
}
