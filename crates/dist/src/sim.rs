//! Cluster simulation bridging the real protocol to the Fig. 6 model.
//!
//! The paper measured 1..64 Nehalem nodes; this workspace has one host.
//! The substitution (DESIGN.md §4): predict the *nominal* point with
//! [`ScalingConfig::predict`], and separately **execute** the full
//! decomposition + multi-layer exchange + solver on a scaled-down grid
//! with real in-process ranks under the virtual-time network, verifying
//! the result bitwise against the serial oracle. A simulated point is
//! only reported when the executed protocol proves out.

use tb_grid::{init, norm, Dims3, Grid3, Region3};
use tb_model::scaling::balanced_dims;
use tb_model::{ScalingConfig, ScalingPoint};
use tb_net::{CartComm, SimNet, Universe};

use crate::decomp::Decomposition;
use crate::solver::{serial_reference, DistJacobi, LocalExec};

/// Executed rank counts are capped here so oversubscribed hosts stay
/// responsive; the nominal prediction still uses the full count.
pub const MAX_EXEC_RANKS: usize = 8;

/// One simulated scaling point.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// Nominal node count (the Fig. 6 x-axis).
    pub nodes: usize,
    /// The curve being simulated (per-node rate, halo depth, network,
    /// strong/weak mode, nominal problem edge).
    pub cfg: ScalingConfig,
    /// Cube edge of the *executed* verification problem.
    pub exec_edge: usize,
    /// Halo depth of the executed problem (may be shallower than the
    /// nominal `cfg.halo_h` to fit the small grid).
    pub exec_halo: usize,
    /// Sweeps of the executed problem.
    pub exec_sweeps: usize,
}

/// Result of [`simulate`].
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Nominal rank count, `nodes × ppn`.
    pub ranks: usize,
    /// Ranks actually spawned for the protocol execution.
    pub exec_ranks: usize,
    /// Whether the executed run matched the serial reference bitwise.
    pub verified: bool,
    /// Virtual time (seconds) the executed run accumulated on rank 0.
    pub virtual_time: f64,
    /// Halo payload bytes the executed ranks sent, summed.
    pub halo_bytes: u64,
    /// Final-gather payload bytes the executed ranks sent, summed.
    pub gather_bytes: u64,
    /// The nominal model prediction for `nodes`.
    pub point: ScalingPoint,
}

/// Execute one scaling point: real protocol on the small grid, nominal
/// prediction from the model.
///
/// # Panics
/// Panics when `exec_edge`/`exec_halo` produce an invalid decomposition
/// for the executed rank count — a bug in the experiment spec, not data.
pub fn simulate(spec: &SimSpec) -> SimOutcome {
    let ranks = spec.nodes * spec.cfg.ppn;
    let point = spec.cfg.predict(spec.nodes);

    let exec_ranks = ranks.min(MAX_EXEC_RANKS);
    let pgrid = balanced_dims(exec_ranks);
    let dims = Dims3::cube(spec.exec_edge);
    let dec = Decomposition::new(dims, pgrid, spec.exec_halo);
    let global: Grid3<f64> = init::random(dims, 0x5EED);
    let want = serial_reference(&global, spec.exec_sweeps);

    let net = SimNet {
        latency: spec.cfg.net.latency,
        bandwidth: spec.cfg.net.bandwidth,
        copy_bandwidth: spec.cfg.net.copy_bandwidth,
    };
    let (g, w) = (&global, &want);
    let per_rank = Universe::run(exec_ranks, Some(net), move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s = DistJacobi::from_global(&dec, cart.coords(), g, LocalExec::Seq)
            .expect("spec produced an invalid local domain");
        s.run_sweeps(&mut cart, spec.exec_sweeps);
        let ok = match s.gather_global(&mut cart, &dec, g) {
            Some(got) => norm::count_mismatches(w, &got, &Region3::interior_of(dims)) == 0,
            None => true,
        };
        cart.comm.barrier();
        (ok, cart.comm.time(), s.halo_bytes_sent, s.gather_bytes_sent)
    });

    SimOutcome {
        ranks,
        exec_ranks,
        verified: per_rank.iter().all(|&(ok, ..)| ok),
        virtual_time: per_rank[0].1,
        halo_bytes: per_rank.iter().map(|r| r.2).sum(),
        gather_bytes: per_rank.iter().map(|r| r.3).sum(),
        point,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_model::{NetworkParams, ScalingMode};

    fn spec(nodes: usize, ppn: usize) -> SimSpec {
        SimSpec {
            nodes,
            cfg: ScalingConfig {
                ppn,
                node_lups: 2.9e9,
                halo_h: 4,
                net: NetworkParams::qdr_infiniband(),
                mode: ScalingMode::Weak,
                base_edge: 600,
            },
            exec_edge: 16,
            exec_halo: 2,
            exec_sweeps: 4,
        }
    }

    #[test]
    fn verifies_and_reports_nominal_ranks() {
        let out = simulate(&spec(4, 2));
        assert!(out.verified);
        assert_eq!(out.ranks, 8);
        assert_eq!(out.exec_ranks, 8);
        assert!(out.point.glups > 0.0);
        assert!(
            out.virtual_time > 0.0,
            "virtual clock must advance through the exchange"
        );
        assert!(out.halo_bytes > 0, "ranks exchanged halos");
        assert!(out.gather_bytes > 0, "non-root ranks shipped their boxes");
    }

    #[test]
    fn exec_rank_count_is_capped() {
        let out = simulate(&spec(64, 8));
        assert_eq!(out.ranks, 512);
        assert_eq!(out.exec_ranks, MAX_EXEC_RANKS);
        assert!(out.verified);
    }
}
