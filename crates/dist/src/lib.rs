//! # tb-dist — distributed/hybrid temporal blocking (the paper's §2)
//!
//! This crate implements the paper's distributed-memory contribution:
//! **overlapping domain decomposition with multi-layer halo exchange**,
//! which amortizes message latency and buffer-copy cost over the
//! temporal-blocking depth. One exchange ships `h` ghost layers; the
//! rank then advances `h` sweeps — sequentially or with the §1.3
//! pipelined executor running inside the rank (the "hybrid" mode) —
//! before it has to communicate again.
//!
//! * [`Decomposition`] — splits the global grid over a `px × py × pz`
//!   rank grid into **overlapping** subdomains: every rank stores its
//!   owned box plus `h` ghost layers on each internal face;
//! * [`halo`] — face pack/unpack between grids and message buffers (the
//!   §2.2 "buffer copy" cost made explicit);
//! * [`DistSolver`] — the per-rank solver, generic over the stencil
//!   operator: exchange `h` layers along successive directions (x, then
//!   y, then z — corner and edge data arrive by composition), run
//!   `h / RADIUS` local sweeps, repeat. Results are **bitwise
//!   identical** to the operator's sequential oracle; [`DistJacobi`] is
//!   the classic-Jacobi instantiation;
//! * [`ExchangeMode`] — how the exchange is scheduled against the local
//!   compute: blocking ([`ExchangeMode::Sync`], the paper's measured
//!   baseline) or overlapped with the interior update
//!   ([`ExchangeMode::Overlapped`], optionally with a real dedicated
//!   communication thread, [`ExchangeMode::OverlappedCommThread`]) —
//!   the multicore-aware §2.3 proposal. See "Overlap" below;
//! * [`solver::serial_reference`] — the verification oracle;
//! * [`sim`] — the Fig. 6 substitution: execute the real protocol on a
//!   small grid under the virtual-time network while predicting the
//!   nominal point with [`tb_model::ScalingConfig`];
//! * [`numa`] — the §3 outlook: one pipeline per cache group coupled by
//!   in-memory multi-layer slab halos (the ccNUMA fix the paper
//!   proposes), instead of one node-wide pipeline.
//!
//! # Correctness argument
//!
//! After an exchange of depth `c ≤ h`, ghost rings `1..=c` around the
//! owned box hold true global values of the current time step. A Jacobi
//! sweep reads only the source buffer, so staleness propagates inward at
//! one cell per sweep: after `j` local sweeps, rings `0..=c-j` are still
//! exact (ring 0 is the owned box). Running exactly `c` sweeps per cycle
//! therefore leaves every owned cell bit-identical to a global
//! sequential sweep — redundant work happens only in the overlap rings,
//! which the next exchange overwrites. The e2e tests hold every
//! configuration to bitwise equality with [`solver::serial_reference`].
//!
//! # Overlap
//!
//! The same staleness argument read inward instead of outward powers the
//! overlapped schedule: before any ghost of the current exchange has
//! arrived, sweep `j` may already update the owned box shrunk by
//! `j × RADIUS` (the **interior trapezoid**,
//! [`LocalDomain::sweep_core`]) — exactly the cells whose dependency
//! cone stays inside pre-exchange data. The complementary annuli of
//! width `c × RADIUS` (the **boundary shells**,
//! [`LocalDomain::boundary_shells`]) are finished after `waitall`. The
//! boundary data a rank *sends* is plain step-`t` state, so the sends
//! start immediately; corner/edge forwarding still runs x → y → z, on
//! the comm side, from a staging grid the compute never writes.
//!
//! **When overlap cannot hide traffic:** hiding is bounded by the
//! interior compute, whose core shrinks by `c × RADIUS` per cycle. A
//! local box of edge `≤ 2·c·RADIUS` has no core at all, and a pipelined
//! interior additionally needs blocks at least `n·t·T` wide inside the
//! core. Deep halos amortize latency but shrink the hideable interior —
//! the `n·t·T ≤ h / RADIUS` pipeline-depth constraint binds from the
//! other side, so `h` trades message count against overlap window. The
//! `overlap_sweep` bench measures the achieved hiding ratio per
//! configuration.

pub mod decomp;
pub mod halo;
pub mod numa;
pub mod sim;
pub mod solver;

pub use decomp::{annulus_slabs, Decomposition, LocalDomain};
pub use solver::{DistJacobi, DistSolver, ExchangeMode, LocalExec};
