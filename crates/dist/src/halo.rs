//! Face pack/unpack between grids and message buffers.
//!
//! The paper's §2.2 profiling found that "copying halo data from
//! boundary cells to and from intermediate message buffers causes about
//! the same overhead as the actual data transfer" — these are those
//! copies. Values travel as native-endian `f64` (exact for `f32`
//! payloads too, since every `f32` is exactly representable).

use bytes::Bytes;
use tb_grid::{Grid3, Real, Region3};

/// Copy the cells of `region` (x-fastest order) out of `g` into a
/// message buffer. One copy: cells serialize straight into the byte
/// buffer that becomes the message.
pub fn pack_region<T: Real>(g: &Grid3<T>, region: &Region3) -> Bytes {
    let r = region.intersect(&Region3::whole(g.dims()));
    let mut out = Vec::with_capacity(r.count() * 8);
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            for v in &g.row(y, z)[r.lo[0]..r.hi[0]] {
                out.extend_from_slice(&v.to_f64().to_ne_bytes());
            }
        }
    }
    Bytes::from(out)
}

/// Inverse of [`pack_region`]: scatter a message buffer into the cells
/// of `region`.
///
/// # Panics
/// Panics if the payload length does not match `region.count()` — a
/// protocol error, not a recoverable condition.
pub fn unpack_region<T: Real>(g: &mut Grid3<T>, region: &Region3, payload: &Bytes) {
    let r = region.intersect(&Region3::whole(g.dims()));
    assert_eq!(payload.len(), r.count() * 8, "payload length mismatch");
    let mut chunks = payload.chunks_exact(8);
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            for cell in &mut g.row_mut(y, z)[r.lo[0]..r.hi[0]] {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(chunks.next().expect("length checked above"));
                *cell = T::from_f64(f64::from_ne_bytes(buf));
            }
        }
    }
}

/// Row-wise copy of `src_region` in `src` into `dst_region` in `dst` —
/// the no-serialization path for halos that never leave the process
/// (same-node team coupling, local carve/assemble).
///
/// # Panics
/// Panics if the two regions' extents differ.
pub fn copy_region<T: Real>(
    src: &Grid3<T>,
    src_region: &Region3,
    dst: &mut Grid3<T>,
    dst_region: &Region3,
) {
    let s = src_region;
    let d = dst_region;
    assert!(
        (0..3).all(|i| s.extent(i) == d.extent(i)),
        "region extents differ: {s} vs {d}"
    );
    for (sz, dz) in (s.lo[2]..s.hi[2]).zip(d.lo[2]..) {
        for (sy, dy) in (s.lo[1]..s.hi[1]).zip(d.lo[1]..) {
            let row = &src.row(sy, sz)[s.lo[0]..s.hi[0]];
            dst.row_mut(dy, dz)[d.lo[0]..d.hi[0]].copy_from_slice(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::{init, norm, Dims3};

    #[test]
    fn pack_unpack_roundtrip_bitwise() {
        let dims = Dims3::new(9, 7, 5);
        let src: Grid3<f64> = init::random(dims, 3);
        let mut dst: Grid3<f64> = Grid3::zeroed(dims);
        let r = Region3::new([2, 1, 1], [6, 6, 4]);
        let b = pack_region(&src, &r);
        assert_eq!(b.len(), r.count() * 8);
        unpack_region(&mut dst, &r, &b);
        assert_eq!(norm::count_mismatches(&src, &dst, &r), 0);
        // Cells outside the region stay untouched.
        assert_eq!(dst.get(0, 0, 0), 0.0);
        assert_eq!(dst.get(6, 6, 4), 0.0);
    }

    #[test]
    fn f32_payloads_roundtrip_exactly() {
        let dims = Dims3::cube(6);
        let src: Grid3<f32> = init::random(dims, 9);
        let mut dst: Grid3<f32> = Grid3::zeroed(dims);
        let r = Region3::interior_of(dims);
        unpack_region(&mut dst, &r, &pack_region(&src, &r));
        assert_eq!(norm::count_mismatches(&src, &dst, &r), 0);
    }

    #[test]
    fn copy_region_translates_frames_bitwise() {
        let src: Grid3<f64> = init::random(Dims3::new(8, 7, 6), 4);
        let mut dst: Grid3<f64> = Grid3::zeroed(Dims3::new(10, 9, 8));
        let s = Region3::new([1, 2, 0], [5, 6, 3]);
        let d = Region3::new([4, 3, 5], [8, 7, 8]);
        copy_region(&src, &s, &mut dst, &d);
        for dz in 0..3 {
            for dy in 0..4 {
                for dx in 0..4 {
                    assert_eq!(dst.get(4 + dx, 3 + dy, 5 + dz), src.get(1 + dx, 2 + dy, dz));
                }
            }
        }
        // Outside the destination region nothing changed.
        assert_eq!(dst.get(0, 0, 0), 0.0);
        assert_eq!(dst.get(9, 8, 7), 0.0);
    }

    #[test]
    #[should_panic(expected = "region extents differ")]
    fn copy_region_rejects_mismatched_extents() {
        let src: Grid3<f64> = Grid3::zeroed(Dims3::cube(6));
        let mut dst: Grid3<f64> = Grid3::zeroed(Dims3::cube(6));
        copy_region(
            &src,
            &Region3::new([0, 0, 0], [2, 2, 2]),
            &mut dst,
            &Region3::new([0, 0, 0], [3, 2, 2]),
        );
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn wrong_payload_size_is_a_protocol_error() {
        let dims = Dims3::cube(5);
        let g: Grid3<f64> = Grid3::zeroed(dims);
        let b = pack_region(&g, &Region3::new([0, 0, 0], [2, 2, 2]));
        let mut dst = g.clone();
        unpack_region(&mut dst, &Region3::new([0, 0, 0], [3, 3, 3]), &b);
    }
}
