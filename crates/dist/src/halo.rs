//! Face pack/unpack between grids and message buffers.
//!
//! The paper's §2.2 profiling found that "copying halo data from
//! boundary cells to and from intermediate message buffers causes about
//! the same overhead as the actual data transfer" — these are those
//! copies. Values travel as native-endian `f64` (exact for `f32`
//! payloads too, since every `f32` is exactly representable).

use bytes::Bytes;
use tb_grid::{Grid3, Real, Region3};

/// Send/receive slab regions (global coordinates) for one stage of the
/// multi-layer ghost-cell-expansion exchange — **the** single place the
/// exchange geometry is defined; the solver derives `depth` from the
/// operator radius (`sweeps_per_cycle × Op::RADIUS`) and both pack and
/// unpack use the regions returned here.
///
/// * `owned` — the rank's disjointly owned box,
/// * `fence` — its stored box (owned + halo, clamped to the grid),
/// * `d`, `dir` — direction of this stage (`dir = ±1` selects the face),
/// * `depth` — ghost layers shipped this cycle.
///
/// Dimensions `< d` were already exchanged, so slabs extend into their
/// (filled) ghost layers; dimensions `> d` are owned-only. This
/// composition forwards previously received layers, which is what
/// delivers edge and corner data without diagonal messages. Adjacent
/// ranks share the perpendicular extents, so `send` of one rank is
/// exactly the `recv` of its neighbor.
pub fn exchange_regions(
    owned: &Region3,
    fence: &Region3,
    d: usize,
    dir: i64,
    depth: usize,
) -> (Region3, Region3) {
    debug_assert!(d < 3 && (dir == 1 || dir == -1) && depth >= 1);
    let mut lo = [0usize; 3];
    let mut hi = [0usize; 3];
    for e in 0..3 {
        if e < d {
            lo[e] = owned.lo[e].saturating_sub(depth).max(fence.lo[e]);
            hi[e] = (owned.hi[e] + depth).min(fence.hi[e]);
        } else {
            lo[e] = owned.lo[e];
            hi[e] = owned.hi[e];
        }
    }
    let mut send = Region3::new(lo, hi);
    let mut recv = send;
    if dir == 1 {
        send.lo[d] = owned.hi[d] - depth;
        send.hi[d] = owned.hi[d];
        recv.lo[d] = owned.hi[d];
        recv.hi[d] = owned.hi[d] + depth;
    } else {
        send.lo[d] = owned.lo[d];
        send.hi[d] = owned.lo[d] + depth;
        recv.lo[d] = owned.lo[d] - depth;
        recv.hi[d] = owned.lo[d];
    }
    (send, recv)
}

/// Copy the cells of `region` (x-fastest order) out of `g` into a
/// message buffer. One copy: cells serialize straight into the byte
/// buffer that becomes the message.
pub fn pack_region<T: Real>(g: &Grid3<T>, region: &Region3) -> Bytes {
    let r = region.intersect(&Region3::whole(g.dims()));
    let mut out = Vec::with_capacity(r.count() * 8);
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            for v in &g.row(y, z)[r.lo[0]..r.hi[0]] {
                out.extend_from_slice(&v.to_f64().to_ne_bytes());
            }
        }
    }
    Bytes::from(out)
}

/// Inverse of [`pack_region`]: scatter a message buffer into the cells
/// of `region`.
///
/// # Panics
/// Panics if the payload length does not match `region.count()` — a
/// protocol error, not a recoverable condition.
pub fn unpack_region<T: Real>(g: &mut Grid3<T>, region: &Region3, payload: &Bytes) {
    let r = region.intersect(&Region3::whole(g.dims()));
    assert_eq!(payload.len(), r.count() * 8, "payload length mismatch");
    let mut chunks = payload.chunks_exact(8);
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            for cell in &mut g.row_mut(y, z)[r.lo[0]..r.hi[0]] {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(chunks.next().expect("length checked above"));
                *cell = T::from_f64(f64::from_ne_bytes(buf));
            }
        }
    }
}

/// Row-wise copy of `src_region` in `src` into `dst_region` in `dst` —
/// the no-serialization path for halos that never leave the process
/// (same-node team coupling, local carve/assemble).
///
/// # Panics
/// Panics if the two regions' extents differ.
pub fn copy_region<T: Real>(
    src: &Grid3<T>,
    src_region: &Region3,
    dst: &mut Grid3<T>,
    dst_region: &Region3,
) {
    let s = src_region;
    let d = dst_region;
    assert!(
        (0..3).all(|i| s.extent(i) == d.extent(i)),
        "region extents differ: {s} vs {d}"
    );
    for (sz, dz) in (s.lo[2]..s.hi[2]).zip(d.lo[2]..) {
        for (sy, dy) in (s.lo[1]..s.hi[1]).zip(d.lo[1]..) {
            let row = &src.row(sy, sz)[s.lo[0]..s.hi[0]];
            dst.row_mut(dy, dz)[d.lo[0]..d.hi[0]].copy_from_slice(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::{init, norm, Dims3};

    #[test]
    fn pack_unpack_roundtrip_bitwise() {
        let dims = Dims3::new(9, 7, 5);
        let src: Grid3<f64> = init::random(dims, 3);
        let mut dst: Grid3<f64> = Grid3::zeroed(dims);
        let r = Region3::new([2, 1, 1], [6, 6, 4]);
        let b = pack_region(&src, &r);
        assert_eq!(b.len(), r.count() * 8);
        unpack_region(&mut dst, &r, &b);
        assert_eq!(norm::count_mismatches(&src, &dst, &r), 0);
        // Cells outside the region stay untouched.
        assert_eq!(dst.get(0, 0, 0), 0.0);
        assert_eq!(dst.get(6, 6, 4), 0.0);
    }

    #[test]
    fn f32_payloads_roundtrip_exactly() {
        let dims = Dims3::cube(6);
        let src: Grid3<f32> = init::random(dims, 9);
        let mut dst: Grid3<f32> = Grid3::zeroed(dims);
        let r = Region3::interior_of(dims);
        unpack_region(&mut dst, &r, &pack_region(&src, &r));
        assert_eq!(norm::count_mismatches(&src, &dst, &r), 0);
    }

    #[test]
    fn copy_region_translates_frames_bitwise() {
        let src: Grid3<f64> = init::random(Dims3::new(8, 7, 6), 4);
        let mut dst: Grid3<f64> = Grid3::zeroed(Dims3::new(10, 9, 8));
        let s = Region3::new([1, 2, 0], [5, 6, 3]);
        let d = Region3::new([4, 3, 5], [8, 7, 8]);
        copy_region(&src, &s, &mut dst, &d);
        for dz in 0..3 {
            for dy in 0..4 {
                for dx in 0..4 {
                    assert_eq!(dst.get(4 + dx, 3 + dy, 5 + dz), src.get(1 + dx, 2 + dy, dz));
                }
            }
        }
        // Outside the destination region nothing changed.
        assert_eq!(dst.get(0, 0, 0), 0.0);
        assert_eq!(dst.get(9, 8, 7), 0.0);
    }

    #[test]
    #[should_panic(expected = "region extents differ")]
    fn copy_region_rejects_mismatched_extents() {
        let src: Grid3<f64> = Grid3::zeroed(Dims3::cube(6));
        let mut dst: Grid3<f64> = Grid3::zeroed(Dims3::cube(6));
        copy_region(
            &src,
            &Region3::new([0, 0, 0], [2, 2, 2]),
            &mut dst,
            &Region3::new([0, 0, 0], [3, 2, 2]),
        );
    }

    #[test]
    fn exchange_regions_match_between_neighbors_multi_layer() {
        // Two ranks side by side along x on a 20×12×12 grid, radius-1
        // operator exchanging h = 3 layers: what A sends +x must be the
        // exact region B receives -x, and vice versa, for every stage.
        let h = 3;
        let owned_a = Region3::new([0, 0, 0], [10, 12, 12]);
        let owned_b = Region3::new([10, 0, 0], [20, 12, 12]);
        let fence_a = Region3::new([0, 0, 0], [13, 12, 12]);
        let fence_b = Region3::new([7, 0, 0], [20, 12, 12]);
        let (send_a, recv_a) = exchange_regions(&owned_a, &fence_a, 0, 1, h);
        let (send_b, recv_b) = exchange_regions(&owned_b, &fence_b, 0, -1, h);
        assert_eq!(send_a, recv_b, "A→B payload region");
        assert_eq!(send_b, recv_a, "B→A payload region");
        assert_eq!(send_a, Region3::new([7, 0, 0], [10, 12, 12]));
        assert_eq!(recv_a, Region3::new([10, 0, 0], [13, 12, 12]));
        assert_eq!(send_a.count(), 3 * 12 * 12);
    }

    #[test]
    fn exchange_regions_forward_ghosts_of_earlier_dims() {
        // Stage d=2 (z) slabs include the x and y ghost layers already
        // received — the ghost-cell-expansion composition that ships edge
        // and corner data without diagonal messages.
        let h = 2;
        let owned = Region3::new([4, 4, 4], [8, 8, 8]);
        let fence = Region3::new([2, 2, 2], [10, 10, 10]);
        let (send_z, recv_z) = exchange_regions(&owned, &fence, 2, 1, h);
        assert_eq!(send_z, Region3::new([2, 2, 6], [10, 10, 8]));
        assert_eq!(recv_z, Region3::new([2, 2, 8], [10, 10, 10]));
        // Stage d=0 (x) ships owned-only perpendicular extents.
        let (send_x, _) = exchange_regions(&owned, &fence, 0, -1, h);
        assert_eq!(send_x, Region3::new([4, 4, 4], [6, 8, 8]));
        // Ghost expansion clamps at the physical fence.
        let tight = Region3::new([3, 3, 3], [9, 9, 9]);
        let (send_c, _) = exchange_regions(&owned, &tight, 1, 1, h);
        assert_eq!(send_c.lo[0], 3, "x extent clamps to the stored box");
        assert_eq!(send_c.hi[0], 9);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn wrong_payload_size_is_a_protocol_error() {
        let dims = Dims3::cube(5);
        let g: Grid3<f64> = Grid3::zeroed(dims);
        let b = pack_region(&g, &Region3::new([0, 0, 0], [2, 2, 2]));
        let mut dst = g.clone();
        unpack_region(&mut dst, &Region3::new([0, 0, 0], [3, 3, 3]), &b);
    }
}
