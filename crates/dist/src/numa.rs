//! The §3 outlook: team-decomposed node solver.
//!
//! The paper's node-wide pipeline has every thread touching every block,
//! which defeats first-touch NUMA placement. The proposed fix is to run
//! **one pipeline per cache group** on its own subdomain — exactly the
//! distributed solver's structure, but with the halo exchange replaced
//! by in-memory slab copies between the teams' grids. Coupling depth is
//! the team pipeline depth `t·T`, so a team communicates once per `t·T`
//! sweeps, just like a rank of the cluster solver.
//!
//! On a persistent [`Runtime`] ([`run_numa_node_on`]) the subdomain
//! grids come from the runtime's pool and are **first-touched by the
//! team that later computes on them**: worker `k·t` fills team `k`'s
//! pair before the first cycle, so with pinned workers the pages land on
//! the right NUMA domain — the point of the whole exercise. Each cycle
//! then dispatches all teams at once; team `k` occupies workers
//! `k·t .. (k+1)·t`, each running its slice of the team's
//! [`PipelineRun`].
//!
//! Results remain bitwise identical to the sequential solver; the
//! redundant overlap-ring updates are the price, which
//! [`RunStats::cell_updates`] here *includes* (unlike
//! [`crate::DistJacobi`]) so the ablation binary can report both the
//! raw and the useful rate.
//!
//! The same first-touch lever is available generically — outside this
//! decomposed solver — through `tb_runtime::placement`: any runtime
//! set to `Placement::WorkerFirstTouch` hands out pool grids whose
//! z-slabs its pinned workers zeroed/copied in their own compute
//! partitions, and the serve layer's ingest stage uses it to relocate
//! client payloads onto the executing slice's domain.

use std::time::Instant;

use parking_lot::Mutex;
use tb_grid::{Grid3, GridPair, Real, Region3};
use tb_runtime::Runtime;
use tb_stencil::config::GridScheme;
use tb_stencil::pipeline::PipelineRun;
use tb_stencil::{Jacobi6, PipelineConfig, RunStats};
use tb_sync::SyncMode;
use tb_topology::{Machine, TeamLayout};

use crate::decomp::{Decomposition, LocalDomain};
use crate::halo::copy_region;

/// Parameters of the team-decomposed node run.
#[derive(Clone, Debug)]
pub struct NumaNodeConfig {
    /// Threads per team (`t`).
    pub team_size: usize,
    /// Number of teams = number of subdomains (`n`).
    pub n_teams: usize,
    /// Updates per thread within a team sweep (`T`).
    pub updates_per_thread: usize,
    /// Spatial block edges for the per-team pipelines.
    pub block: [usize; 3],
    /// Synchronization of the per-team pipelines.
    pub sync: SyncMode,
    /// Pin each team's threads to one cache group.
    pub pin: bool,
}

/// Pin layout for one team: `team_size` consecutive CPUs of cache group
/// `team` (wrapping inside the group when it is smaller than the team).
fn group_layout(machine: &Machine, team: usize, team_size: usize) -> TeamLayout {
    let groups = machine.cache_groups();
    let cpus = if groups.is_empty() {
        vec![None; team_size]
    } else {
        let group = &groups[team % groups.len()];
        (0..team_size)
            .map(|m| group.get(m % group.len().max(1)).copied())
            .collect()
    };
    TeamLayout {
        cpus,
        team_size,
        n_teams: 1,
        comm_core: None,
    }
}

/// Run `sweeps` Jacobi sweeps on `initial` with one pipelined team per
/// subdomain, coupled by multi-layer slab halos along z, on the given
/// persistent runtime (at least `team_size * n_teams` workers; team `k`
/// uses workers `k·t .. (k+1)·t`, so pin the runtime with a layout whose
/// teams match). Returns the final grid and merged stats (updates
/// *include* the redundant ring work).
pub fn run_numa_node_on<T: Real>(
    rt: &Runtime,
    initial: &Grid3<T>,
    cfg: &NumaNodeConfig,
    sweeps: usize,
) -> Result<(Grid3<T>, RunStats), String> {
    if cfg.n_teams == 0 || cfg.team_size == 0 || cfg.updates_per_thread == 0 {
        return Err("team_size, n_teams, updates_per_thread must be >= 1".into());
    }
    let threads_total = cfg.n_teams * cfg.team_size;
    if rt.threads() < threads_total {
        return Err(format!(
            "runtime has {} workers but {} teams of {} need {threads_total}",
            rt.threads(),
            cfg.n_teams,
            cfg.team_size
        ));
    }
    let dims = initial.dims();
    let h = cfg.team_size * cfg.updates_per_thread;
    let dec = Decomposition::try_new(dims, [1, 1, cfg.n_teams], h)?;

    struct Team<T: Real> {
        local: LocalDomain,
        pair: GridPair<T>,
        cfg: PipelineConfig,
    }

    // Validate every team's pipeline before touching the pool.
    let mut team_cfgs = Vec::with_capacity(cfg.n_teams);
    for k in 0..cfg.n_teams {
        let local = dec.local([0, 0, k]);
        let team_cfg = PipelineConfig {
            team_size: cfg.team_size,
            n_teams: 1,
            updates_per_thread: cfg.updates_per_thread,
            block: cfg.block,
            sync: cfg.sync,
            scheme: GridScheme::TwoGrid,
            layout: None, // placement belongs to the runtime's workers
            audit: false,
        };
        team_cfg
            .validate(local.dims)
            .map_err(|e| format!("team {k}: {e}"))?;
        team_cfgs.push((local, team_cfg));
    }

    // First-touch init on the workers that will compute: worker `k·t`
    // builds team `k`'s pair from pooled grids, writing every cell of
    // the local box (so stale pool contents never survive), before any
    // cycle runs.
    let pool = rt.grid_pool::<T>();
    let slots: Vec<Mutex<Option<GridPair<T>>>> =
        (0..cfg.n_teams).map(|_| Mutex::new(None)).collect();
    {
        let team_cfgs = &team_cfgs;
        let slots = &slots;
        let pool = &pool;
        rt.run(threads_total, &|w| {
            if w % cfg.team_size != 0 {
                return;
            }
            let k = w / cfg.team_size;
            let local = &team_cfgs[k].0;
            let mut a = pool.acquire(local.dims);
            copy_region(initial, &local.region, &mut a, &Region3::whole(local.dims));
            let mut b = pool.acquire(local.dims);
            b.as_mut_slice().copy_from_slice(a.as_slice());
            *slots[k].lock() = Some(GridPair::from_parts(a, b));
        });
    }
    let mut teams: Vec<Team<T>> = team_cfgs
        .into_iter()
        .zip(slots)
        .map(|((local, cfg), slot)| Team {
            local,
            pair: slot.into_inner().expect("init task filled every team"),
            cfg,
        })
        .collect();

    let t0 = Instant::now();
    let mut updates = 0u64;
    let mut remaining = sweeps;
    let mut parity = 0usize; // shared by all teams: they advance in lockstep
    while remaining > 0 {
        let c = h.min(remaining);
        if parity == 1 {
            for t in &mut teams {
                t.pair.swap();
            }
        }
        // Couple the subdomains: copy `c` slab layers from each
        // neighbor's owned cells into this team's ghost rings. All
        // reads see cycle-start state because swaps happened above and
        // the copies go ghost-ward only (owned cells are never written).
        for k in 0..teams.len() {
            for (j, dir) in [(k.wrapping_sub(1), -1i64), (k + 1, 1)] {
                if dir == -1 && k == 0 || dir == 1 && j >= teams.len() {
                    continue;
                }
                let owned = teams[k].local.owned;
                let mut slab = owned;
                if dir == 1 {
                    slab.lo[2] = owned.hi[2];
                    slab.hi[2] = owned.hi[2] + c;
                } else {
                    slab.lo[2] = owned.lo[2] - c;
                    slab.hi[2] = owned.lo[2];
                }
                let src_local = teams[j].local.to_local(&slab);
                let dst_local = teams[k].local.to_local(&slab);
                // Split the borrow: j is k ± 1, so one side of the cut
                // holds the source team, the other the destination.
                let (src, dst) = if j < k {
                    let (a, b) = teams.split_at_mut(k);
                    (&a[j], &mut b[0])
                } else {
                    let (a, b) = teams.split_at_mut(j);
                    (&b[0], &mut a[k])
                };
                copy_region(src.pair.a(), &src_local, dst.pair.a_mut(), &dst_local);
            }
        }
        // Advance every team `c` sweeps at once: one dispatch, team `k`
        // on its own worker slice, each team driving its own pipeline.
        let op = Jacobi6;
        let runs: Vec<PipelineRun<'_, T, Jacobi6>> = teams
            .iter_mut()
            .map(|t| PipelineRun::new(&op, &mut t.pair, &t.cfg, c).expect("validated above"))
            .collect();
        rt.run(threads_total, &|w| {
            // SAFETY: each team's run sees exactly `team_size` distinct
            // member tids, dispatched once, and its pair is exclusively
            // borrowed by `runs` for the dispatch.
            unsafe { runs[w / cfg.team_size].worker(w % cfg.team_size) }
        });
        updates += runs.iter().map(|r| r.cells()).sum::<u64>();
        parity = c % 2;
        remaining -= c;
    }

    // Assemble: initial supplies the physical boundary, teams supply
    // their owned interiors.
    let mut out = initial.clone();
    for t in teams {
        let cur = if parity == 0 { t.pair.a() } else { t.pair.b() };
        let r = t.local.owned;
        copy_region(cur, &t.local.to_local(&r), &mut out, &r);
        let (a, b) = t.pair.into_parts();
        pool.release(a);
        pool.release(b);
    }
    Ok((out, RunStats::new(updates, t0.elapsed())))
}

/// [`run_numa_node_on`] on a one-shot runtime: pinned per cache group
/// when `cfg.pin` is set (team `k`'s workers on group `k`'s CPUs) —
/// the classic entry point.
pub fn run_numa_node<T: Real>(
    initial: &Grid3<T>,
    machine: &Machine,
    cfg: &NumaNodeConfig,
    sweeps: usize,
) -> Result<(Grid3<T>, RunStats), String> {
    if cfg.n_teams == 0 || cfg.team_size == 0 || cfg.updates_per_thread == 0 {
        return Err("team_size, n_teams, updates_per_thread must be >= 1".into());
    }
    let cpus: Vec<Option<usize>> = if cfg.pin {
        (0..cfg.n_teams)
            .flat_map(|k| group_layout(machine, k, cfg.team_size).cpus)
            .collect()
    } else {
        vec![None; cfg.n_teams * cfg.team_size]
    };
    let rt = Runtime::from_cpus(cpus, None);
    run_numa_node_on(&rt, initial, cfg, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::{init, norm, Dims3, Region3};
    use tb_stencil::baseline;

    fn reference(initial: &Grid3<f64>, sweeps: usize) -> Grid3<f64> {
        let mut pair = GridPair::from_initial(initial.clone());
        baseline::seq_sweeps(&mut pair, sweeps);
        pair.current(sweeps).clone()
    }

    fn cfg(team_size: usize, n_teams: usize, upt: usize) -> NumaNodeConfig {
        NumaNodeConfig {
            team_size,
            n_teams,
            updates_per_thread: upt,
            block: [8, 8, 8],
            sync: SyncMode::relaxed_default(),
            pin: false,
        }
    }

    #[test]
    fn matches_sequential_bitwise() {
        let dims = Dims3::cube(24);
        let initial: Grid3<f64> = init::random(dims, 17);
        let m = Machine::flat(4);
        for sweeps in [1usize, 4, 9] {
            let (got, stats) = run_numa_node(&initial, &m, &cfg(2, 2, 1), sweeps).unwrap();
            let want = reference(&initial, sweeps);
            norm::assert_grids_identical(
                &want,
                &got,
                &Region3::interior_of(dims),
                &format!("numa {sweeps} sweeps"),
            );
            assert!(stats.cell_updates >= (sweeps * dims.interior_len()) as u64);
        }
    }

    #[test]
    fn three_teams_deep_pipeline() {
        let dims = Dims3::new(20, 20, 36);
        let initial: Grid3<f64> = init::random(dims, 23);
        let m = Machine::nehalem_ep();
        let (got, _) = run_numa_node(&initial, &m, &cfg(2, 3, 2), 10).unwrap();
        norm::assert_grids_identical(
            &reference(&initial, 10),
            &got,
            &Region3::interior_of(dims),
            "3 teams t=2 T=2",
        );
    }

    #[test]
    fn pinned_layout_still_correct() {
        let dims = Dims3::cube(22);
        let initial: Grid3<f64> = init::random(dims, 5);
        let m = Machine::nehalem_ep();
        let mut c = cfg(2, 2, 1);
        c.pin = true;
        let (got, _) = run_numa_node(&initial, &m, &c, 6).unwrap();
        norm::assert_grids_identical(
            &reference(&initial, 6),
            &got,
            &Region3::interior_of(dims),
            "pinned",
        );
    }

    #[test]
    fn shared_runtime_reuses_pooled_team_grids() {
        let dims = Dims3::cube(24);
        let initial: Grid3<f64> = init::random(dims, 3);
        let rt = Runtime::with_threads(4);
        let want = reference(&initial, 6);
        for round in 0..3 {
            let (got, _) = run_numa_node_on(&rt, &initial, &cfg(2, 2, 1), 6).unwrap();
            norm::assert_grids_identical(
                &want,
                &got,
                &Region3::interior_of(dims),
                &format!("shared-runtime round {round}"),
            );
        }
        // Both teams' pairs went back to the pool after each run.
        assert_eq!(rt.grid_pool::<f64>().free_grids(), 4);
    }

    #[test]
    fn undersized_runtime_rejected() {
        let dims = Dims3::cube(24);
        let initial: Grid3<f64> = init::random(dims, 3);
        let rt = Runtime::with_threads(3);
        let err = run_numa_node_on(&rt, &initial, &cfg(2, 2, 1), 4).unwrap_err();
        assert!(err.contains("workers"), "{err}");
    }

    #[test]
    fn too_many_teams_rejected() {
        let dims = Dims3::cube(10);
        let initial: Grid3<f64> = init::random(dims, 1);
        let m = Machine::flat(8);
        // 10 cells over 6 teams -> owned slab 1 < h=2.
        let err = run_numa_node(&initial, &m, &cfg(2, 6, 1), 4).unwrap_err();
        assert!(err.contains("halo width"), "{err}");
    }
}
