//! The per-rank distributed solver and its sequential oracle, generic
//! over the stencil operator.
//!
//! [`DistSolver`] drives one rank: it stores the overlapping local box
//! of a [`Decomposition`], exchanges ghost layers with its Cartesian
//! neighbors (x, then y, then z — corners and edges arrive by
//! composition, because each stage forwards the layers received in the
//! previous stages), then advances locally, either sequentially
//! ([`LocalExec::Seq`]) or with the §1.3 pipelined temporal-blocking
//! executor ([`LocalExec::Pipelined`], the paper's "hybrid" mode).
//!
//! The exchange depth derives from the operator: advancing `c` sweeps
//! between exchanges consumes `c × Op::RADIUS` ghost layers, so a halo of
//! width `h` sustains `h / Op::RADIUS` sweeps per cycle. Operators with
//! per-cell data are [`StencilOp::restricted`] to the rank's box, so
//! every rank reads exactly the coefficients the sequential oracle reads.
//!
//! # Exchange scheduling ([`ExchangeMode`])
//!
//! * [`ExchangeMode::Sync`] — blocking exchange, then compute: the
//!   paper's measured baseline ("no explicit or implicit overlapping of
//!   communication and computation", §2.2).
//! * [`ExchangeMode::Overlapped`] — the paper's §2.3 proposal: post
//!   `irecv`s, stage and `isend` the boundary shells immediately,
//!   advance the **interior trapezoid** while the transfers are in
//!   flight, `waitall`, unpack, and finish the shells. Sweep `j` of the
//!   interior phase updates the owned box shrunk by `j × RADIUS`
//!   ([`LocalDomain::sweep_core`]): staleness from the not-yet-arrived
//!   ghosts propagates inward one radius per sweep, so every cell of
//!   that region holds its true step-`t+j` value using pre-exchange
//!   data only. The post-exchange shell phase then updates the
//!   complementary annuli ([`LocalDomain::sweep_domain`] minus the
//!   core), whose reads are exactly the freshly unpacked ghosts plus
//!   trapezoid cells of the previous sweep. Both phases write the same
//!   (buffer, cell, sweep) triples as the synchronous schedule, so the
//!   owned result stays **bitwise identical**.
//! * [`ExchangeMode::OverlappedCommThread`] — same schedule, with the
//!   waits and the ghost forwarding driven by a real dedicated
//!   communication thread (pinned to [`tb_topology::TeamLayout::comm_core`]
//!   when the pipelined config carries a layout), coupled to the compute
//!   side by a [`Handoff`] instead of a barrier. Virtual-time accounting
//!   is identical to `Overlapped`; the wall-clock overlap becomes real.
//!
//! Overlap can only hide traffic that the interior compute outlasts: the
//! interior core shrinks by `c × RADIUS` per cycle, so small local boxes
//! or deep cycles leave little core (`h / RADIUS` sweeps of a box of
//! edge `≤ 2·c·RADIUS` have none) and the exchange stays exposed. The
//! pipeline-depth constraint is unchanged: `n·t·T ≤ h / RADIUS`.
//!
//! [`DistJacobi`] is the classic-Jacobi instantiation.

use std::time::Instant;

use tb_grid::{BlockPartition, Grid3, GridPair, Real, Region3};
use tb_net::{CartComm, Comm, Request};
use tb_runtime::{PooledGrid, Runtime};
use tb_stencil::config::GridScheme;
use tb_stencil::diamond::{self, DiamondTiling};
use tb_stencil::pipeline::PipelinePlan;
use tb_stencil::{
    baseline, kernel, pipeline, DiamondConfig, Jacobi6, PipelineConfig, RunStats, StencilOp,
};
use tb_sync::Handoff;

use crate::decomp::{annulus_slabs, Decomposition, LocalDomain};
use crate::halo::{copy_region, exchange_regions, pack_region, unpack_region};

/// How a rank advances its local box between exchanges.
#[derive(Clone, Debug)]
pub enum LocalExec {
    /// Plain sequential sweeps.
    Seq,
    /// Pipelined temporal blocking inside the rank (hybrid MPI+threads
    /// in the paper). The pipeline depth `n·t·T` must not exceed the
    /// sweeps one exchange sustains (`h / Op::RADIUS`), or the pipeline
    /// would need ghost data the exchange did not provide.
    Pipelined(PipelineConfig),
    /// Wavefront-diamond temporal blocking inside the rank
    /// ([`tb_stencil::diamond`]). Diamond tiles clamp to whatever sweep
    /// count a cycle provides, so unlike the pipelined scheme there is
    /// no depth/halo coupling to validate — any halo `h >= Op::RADIUS`
    /// works, and in the overlapped modes the diamonds run directly on
    /// the shrinking interior trapezoid.
    Diamond(DiamondConfig),
}

/// How a rank schedules its halo exchange against its local compute.
/// See the module docs for the schedule details.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Blocking exchange → compute (the paper's measured baseline).
    #[default]
    Sync,
    /// Nonblocking boundary-first schedule, driven from the compute
    /// thread; transfer costs are modeled on the comm-core timeline.
    Overlapped,
    /// [`ExchangeMode::Overlapped`] with a real dedicated communication
    /// thread and a [`Handoff`]-based "halos ready" signal.
    OverlappedCommThread,
}

/// One rank of the distributed stencil solver.
pub struct DistSolver<T: Real, Op: StencilOp<T>> {
    local: LocalDomain,
    pair: GridPair<T>,
    exec: LocalExec,
    mode: ExchangeMode,
    /// The operator, re-anchored to this rank's box.
    op: Op,
    h: usize,
    /// Buffer index (0 = A, 1 = B) holding the current state.
    parity: usize,
    sweeps_done: usize,
    /// Staging grid for the overlapped exchange: boundary-shell snapshot
    /// plus unpacked ghosts, so the comm side never touches cells the
    /// compute side is updating. Acquired from the runtime's
    /// [`tb_runtime::GridPool`] on the first overlapped cycle and held
    /// for the solver's lifetime (returning to the pool on drop, so many
    /// solves sharing a runtime share one staging grid). Sized like the
    /// local box (only the depth-wide annulus and the ghost shells are
    /// ever touched): the full frame keeps the pack/unpack region
    /// arithmetic identical to the working grid's, at +1 grid of
    /// footprint in overlapped modes.
    scratch: Option<PooledGrid<T>>,
    /// Modeled compute rate (LUP/s) charged to the virtual clock; `None`
    /// leaves the clock to communication costs only.
    virtual_lups: Option<f64>,
    /// Payload bytes this rank has sent in halo exchanges.
    pub halo_bytes_sent: u64,
    /// Payload bytes this rank has sent in final-result gathers.
    pub gather_bytes_sent: u64,
}

/// The classic-Jacobi instantiation of [`DistSolver`].
pub type DistJacobi<T> = DistSolver<T, Jacobi6>;

impl<T: Real> DistJacobi<T> {
    /// [`DistSolver::from_global_op`] with the classic Jacobi operator.
    pub fn from_global(
        dec: &Decomposition,
        coords: [usize; 3],
        global: &Grid3<T>,
        exec: LocalExec,
    ) -> Result<Self, String> {
        Self::from_global_op(dec, coords, global, exec, Jacobi6)
    }
}

impl<T: Real, Op: StencilOp<T>> DistSolver<T, Op> {
    /// Build this rank's solver state from the global initial grid and
    /// the *global* operator (it is restricted to the local box here).
    ///
    /// Fails when `global` does not match the decomposition, when the
    /// halo is shallower than the operator radius, or when a pipelined
    /// `exec` is invalid for this rank's local box (too-small blocks,
    /// pipeline deeper than the halo sustains, ...).
    pub fn from_global_op(
        dec: &Decomposition,
        coords: [usize; 3],
        global: &Grid3<T>,
        exec: LocalExec,
        op: Op,
    ) -> Result<Self, String> {
        if global.dims() != dec.dims() {
            return Err(format!(
                "global grid {} does not match decomposition {}",
                global.dims(),
                dec.dims()
            ));
        }
        if dec.h() < Op::RADIUS {
            return Err(format!(
                "halo width h = {} is smaller than the operator radius {}",
                dec.h(),
                Op::RADIUS
            ));
        }
        let local = dec.local(coords);
        let exec = match exec {
            LocalExec::Seq => LocalExec::Seq,
            LocalExec::Pipelined(mut cfg) => {
                cfg.scheme = GridScheme::TwoGrid; // the dist layer owns the buffers
                cfg.validate(local.dims)?;
                if cfg.stages() > dec.h() / Op::RADIUS {
                    return Err(format!(
                        "pipeline depth n*t*T = {} exceeds halo width h = {} / radius {}; \
                         the rank would read ghost layers the exchange never filled",
                        cfg.stages(),
                        dec.h(),
                        Op::RADIUS
                    ));
                }
                LocalExec::Pipelined(cfg)
            }
            LocalExec::Diamond(cfg) => {
                cfg.validate(local.dims, Op::RADIUS)?;
                LocalExec::Diamond(cfg)
            }
        };
        // Carve the local box (owned + ghosts) out of the global grid.
        let mut g = Grid3::zeroed(local.dims);
        copy_region(global, &local.region, &mut g, &Region3::whole(local.dims));
        let op = op.restricted(&local.region);
        Ok(Self {
            local,
            pair: GridPair::from_initial(g),
            exec,
            mode: ExchangeMode::Sync,
            op,
            h: dec.h(),
            parity: 0,
            sweeps_done: 0,
            scratch: None,
            virtual_lups: None,
            halo_bytes_sent: 0,
            gather_bytes_sent: 0,
        })
    }

    /// Select the exchange schedule (default [`ExchangeMode::Sync`]).
    pub fn with_exchange_mode(mut self, mode: ExchangeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Charge modeled compute time (`cells / lups` seconds per update
    /// phase) to the virtual clock, so the simulated network can hide
    /// communication behind it.
    pub fn with_virtual_compute(mut self, lups: f64) -> Self {
        assert!(lups > 0.0);
        self.virtual_lups = Some(lups);
        self
    }

    /// This rank's view of the decomposition.
    pub fn local(&self) -> &LocalDomain {
        &self.local
    }

    /// The active exchange schedule.
    pub fn exchange_mode(&self) -> ExchangeMode {
        self.mode
    }

    /// Global sweeps completed so far.
    pub fn sweeps_done(&self) -> usize {
        self.sweeps_done
    }

    /// Total payload bytes sent (halo + gather).
    pub fn bytes_sent(&self) -> u64 {
        self.halo_bytes_sent + self.gather_bytes_sent
    }

    /// The grid holding the current state (local coordinates).
    pub fn current_grid(&self) -> &Grid3<T> {
        if self.parity == 0 {
            self.pair.a()
        } else {
            self.pair.b()
        }
    }

    /// Move the current state into buffer A so the executors (which
    /// number sweeps from zero) read the right buffer.
    fn normalize_parity(&mut self) {
        if self.parity == 1 {
            self.pair.swap();
            self.parity = 0;
        }
    }

    /// Advance `sweeps` global sweeps: repeat (exchange `c·RADIUS ≤ h`
    /// layers, run `c` local sweeps) until done. Collective — every rank
    /// of the communicator must call it with the same `sweeps`.
    ///
    /// Builds a one-shot [`Runtime`] matching this rank's config (pinned
    /// per the pipelined layout, with a communication worker in
    /// [`ExchangeMode::OverlappedCommThread`]) and delegates to
    /// [`DistSolver::run_sweeps_on`]; repeated-solve callers should
    /// build the runtime once themselves.
    ///
    /// The returned stats count *useful* updates (owned ∩ interior
    /// cells × sweeps); redundant overlap-ring updates are excluded so
    /// that per-rank numbers sum to the serial solver's update count.
    pub fn run_sweeps(&mut self, cart: &mut CartComm, sweeps: usize) -> RunStats {
        let rt = self.one_shot_runtime();
        self.run_sweeps_on(&rt, cart, sweeps)
    }

    /// A runtime sized for this rank: one pinned worker per pipeline
    /// thread (none for sequential local execution) plus a dedicated
    /// communication worker when the exchange mode wants one.
    fn one_shot_runtime(&self) -> Runtime {
        let cpus = match &self.exec {
            LocalExec::Pipelined(cfg) => match &cfg.layout {
                Some(layout) if layout.threads() == cfg.threads() => layout.cpus.clone(),
                _ => vec![None; cfg.threads()],
            },
            LocalExec::Diamond(cfg) => vec![None; cfg.threads],
            LocalExec::Seq => Vec::new(),
        };
        let comm = (self.mode == ExchangeMode::OverlappedCommThread).then(|| self.comm_core());
        Runtime::from_cpus(cpus, comm)
    }

    /// CPU reserved for the communication thread by the pipelined
    /// layout, if any.
    fn comm_core(&self) -> Option<usize> {
        match &self.exec {
            LocalExec::Pipelined(cfg) => cfg.layout.as_ref().and_then(|l| l.comm_core),
            LocalExec::Seq | LocalExec::Diamond(_) => None,
        }
    }

    /// [`DistSolver::run_sweeps`] on a caller-provided persistent
    /// runtime: the compute team runs on its workers and, in
    /// [`ExchangeMode::OverlappedCommThread`], the exchange is driven by
    /// its dedicated communication worker, coupled by the "halos ready"
    /// [`Handoff`]. With no communication worker that mode degrades to
    /// the inline [`ExchangeMode::Overlapped`] drive — bitwise and
    /// virtual-clock identical, just without the wall-clock overlap.
    ///
    /// # Panics
    /// Panics if the local execution is pipelined and the runtime has
    /// fewer workers than the pipeline needs.
    pub fn run_sweeps_on(&mut self, rt: &Runtime, cart: &mut CartComm, sweeps: usize) -> RunStats {
        match &self.exec {
            LocalExec::Pipelined(cfg) => assert!(
                rt.threads() >= cfg.threads(),
                "runtime has {} workers but the rank's pipeline needs {}",
                rt.threads(),
                cfg.threads()
            ),
            LocalExec::Diamond(cfg) => assert!(
                rt.threads() >= cfg.threads,
                "runtime has {} workers but the rank's diamond team needs {}",
                rt.threads(),
                cfg.threads
            ),
            LocalExec::Seq => {}
        }
        let t0 = Instant::now();
        let sweeps_per_cycle = self.h / Op::RADIUS;
        let mut remaining = sweeps;
        while remaining > 0 {
            let c = sweeps_per_cycle.min(remaining);
            self.normalize_parity();
            match self.mode {
                ExchangeMode::Sync => {
                    self.exchange(cart, c * Op::RADIUS);
                    match &self.exec {
                        LocalExec::Seq => {
                            baseline::seq_sweeps_op(&self.op, &mut self.pair, c);
                        }
                        LocalExec::Pipelined(cfg) => {
                            pipeline::run_op_on(rt, &self.op, &mut self.pair, cfg, c)
                                .expect("config validated in from_global_op, runtime size above");
                        }
                        LocalExec::Diamond(cfg) => {
                            diamond::run_diamond_op_on(rt, &self.op, &mut self.pair, cfg, c)
                                .expect("config validated in from_global_op, runtime size above");
                        }
                    }
                    if let Some(lups) = self.virtual_lups {
                        let cells = (Region3::interior_of(self.local.dims).count() * c) as f64;
                        cart.comm.advance(cells / lups);
                    }
                }
                ExchangeMode::Overlapped | ExchangeMode::OverlappedCommThread => {
                    self.overlapped_cycle(rt, cart, c);
                }
            }
            self.parity = c % 2;
            self.sweeps_done += c;
            remaining -= c;
        }
        RunStats::new((self.local.interior.count() * sweeps) as u64, t0.elapsed())
    }

    /// One multi-layer halo exchange of depth `depth` along successive
    /// directions. After stage `d`, the current buffer holds valid ghost
    /// layers in every dimension `≤ d`; later stages forward them, which
    /// is what delivers edge and corner data without diagonal messages.
    /// The slab geometry lives in [`exchange_regions`].
    fn exchange(&mut self, cart: &mut CartComm, depth: usize) {
        debug_assert_eq!(self.parity, 0, "exchange runs on a normalized pair");
        let owned = self.local.owned;
        let fence = self.local.region;
        for d in 0..3 {
            // Phase 1: post both sends (buffered, never blocks).
            for (idx, dir) in [-1i64, 1].into_iter().enumerate() {
                let Some(peer) = cart.neighbor(d, dir) else {
                    continue;
                };
                let (s, _) = exchange_regions(&owned, &fence, d, dir, depth);
                let payload = pack_region(self.pair.a(), &self.local.to_local(&s));
                self.halo_bytes_sent += payload.len() as u64;
                cart.comm.send(peer, (d * 2 + idx) as u64, payload);
            }
            // Phase 2: receive both ghost slabs. The peer tagged its
            // message with *its own* direction, the opposite of ours.
            for (idx, dir) in [-1i64, 1].into_iter().enumerate() {
                let Some(peer) = cart.neighbor(d, dir) else {
                    continue;
                };
                let (_, r) = exchange_regions(&owned, &fence, d, dir, depth);
                let tag = (d * 2 + (1 - idx)) as u64;
                let payload = cart.comm.recv(peer, tag);
                unpack_region(self.pair.a_mut(), &self.local.to_local(&r), &payload);
            }
        }
    }

    /// One overlapped cycle of `c` sweeps — the §2.3 schedule:
    ///
    /// 1. post `irecv`s for every ghost slab of the cycle,
    /// 2. snapshot the boundary shells (step-`t` values) into the
    ///    staging grid and `isend` the x-direction slabs immediately,
    /// 3. advance the interior trapezoid while the comm side completes
    ///    each direction, unpacks into the staging grid, and forwards
    ///    the next direction's slabs (edge/corner composition),
    /// 4. "halos ready" handoff; fold the hidden compute time into the
    ///    virtual clock,
    /// 5. copy the ghosts into the working grid and finish the shells.
    fn overlapped_cycle(&mut self, rt: &Runtime, cart: &mut CartComm, c: usize) {
        debug_assert_eq!(self.parity, 0, "exchange runs on a normalized pair");
        let radius = Op::RADIUS;
        let depth = c * radius;
        let owned = self.local.owned;
        let fence = self.local.region;
        let mode = self.mode;
        let lups = self.virtual_lups;

        // Neighbor geometry up front: the comm side runs while `comm`
        // is exclusively borrowed.
        let mut recv_by_dim: [Vec<(Region3, Request)>; 3] = Default::default();
        let mut send_by_dim: [Vec<(usize, u64, Region3)>; 3] = Default::default();
        for d in 0..3 {
            for (idx, dir) in [-1i64, 1].into_iter().enumerate() {
                let Some(peer) = cart.neighbor(d, dir) else {
                    continue;
                };
                let (s, r) = exchange_regions(&owned, &fence, d, dir, depth);
                send_by_dim[d].push((peer, (d * 2 + idx) as u64, self.local.to_local(&s)));
                let tag = (d * 2 + (1 - idx)) as u64;
                recv_by_dim[d].push((self.local.to_local(&r), cart.comm.irecv(peer, tag)));
            }
        }
        let has_neighbor = send_by_dim.iter().any(|v| !v.is_empty());

        let Self {
            pair,
            scratch,
            op,
            exec,
            local,
            ..
        } = self;

        let t0 = cart.comm.time();
        let mut halo_bytes = 0u64;
        let interior_cells;
        if has_neighbor {
            // The staging grid exists only where there is traffic: a
            // neighborless rank runs the same trapezoid+shell schedule
            // without paying the extra footprint. It comes from the
            // runtime's pool (stale contents are fine: every region the
            // comm side reads is written earlier in the same cycle —
            // shells snapshotted, ghosts unpacked) and is held for the
            // solver's lifetime.
            let scratch = &mut **scratch
                .get_or_insert_with(|| rt.grid_pool::<T>().acquire_pooled(local.dims));

            // Stage the boundary shells for the comm side: every owned
            // cell any send region reads lies within `depth` of a face.
            for slab in local.boundary_shells(depth) {
                copy_region(pair.a(), &slab, scratch, &slab);
            }
            // x-direction slabs read no ghosts: send them right away.
            for (peer, tag, region) in &send_by_dim[0] {
                let payload = pack_region(scratch, region);
                halo_bytes += payload.len() as u64;
                let _ = cart.comm.isend(*peer, *tag, payload);
            }

            // Interior trapezoid concurrent with the exchange drive.
            let (cells, (fwd_bytes, ghost_regions)) = match mode {
                // The persistent communication worker (pinned to the
                // layout's comm core at runtime construction) drives the
                // exchange while this thread dispatches the compute team.
                // Panics on the comm worker are carried through the
                // handoff — the compute side would otherwise spin in
                // `take()` forever — and the handle join afterwards
                // releases the task borrow.
                ExchangeMode::OverlappedCommThread if rt.has_comm_worker() => {
                    let comm = &mut *cart.comm;
                    type CommOutcome = std::thread::Result<(u64, Vec<Region3>)>;
                    let handoff: Handoff<CommOutcome> = Handoff::new();
                    let handoff_ref = &handoff;
                    let scratch_ref = &mut *scratch;
                    let sends = &send_by_dim;
                    let mut recv_slot = Some(recv_by_dim);
                    let mut comm_task = move || {
                        let recv = recv_slot.take().expect("one exchange per cycle");
                        handoff_ref.signal(std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || drive_exchange(&mut *comm, &mut *scratch_ref, recv, sends),
                        )));
                    };
                    let handle = rt.submit_comm(&mut comm_task);
                    let cells = interior_trapezoid(rt, op, pair, exec, local, c);
                    // "Halos ready" — the compute team blocks here only
                    // if it finished the interior before the traffic.
                    let out = match handoff.take() {
                        Ok(out) => out,
                        Err(payload) => std::panic::resume_unwind(payload),
                    };
                    handle.join();
                    (cells, out)
                }
                // Inline drive: compute first, then the exchange, on
                // this thread. Same `Comm` mutation order, so virtual
                // times and results are identical to the comm-worker
                // path; only the wall-clock overlap is forfeited.
                _ => {
                    let cells = interior_trapezoid(rt, op, pair, exec, local, c);
                    (
                        cells,
                        drive_exchange(cart.comm, scratch, recv_by_dim, &send_by_dim),
                    )
                }
            };
            interior_cells = cells;
            halo_bytes += fwd_bytes;

            // Ghosts into the working grid.
            for r in &ghost_regions {
                copy_region(scratch, r, pair.a_mut(), r);
            }
        } else {
            interior_cells = interior_trapezoid(rt, op, pair, exec, local, c);
        }

        // Fold the compute that ran under the exchange into the clock;
        // only the residual stays exposed in `comm_seconds`.
        if let Some(lups) = lups {
            cart.comm.overlap_join(t0, interior_cells as f64 / lups);
        }

        // Finish the shells.
        let mut shell_cells = 0u64;
        for j in 1..=c {
            let u = local.sweep_domain(j, c, radius);
            let a = local.sweep_core(j, radius);
            let (src, dst) = pair.src_dst(j - 1);
            for slab in annulus_slabs(&u, &a) {
                shell_cells += slab.count() as u64;
                kernel::update_region_op(op, src, dst, &slab);
            }
        }
        if let Some(lups) = lups {
            cart.comm.advance(shell_cells as f64 / lups);
        }
        self.halo_bytes_sent += halo_bytes;
    }

    /// Collect every rank's owned cells on rank 0. Returns the
    /// assembled global grid on rank 0 and `None` elsewhere.
    /// Collective — all ranks must call it. `global_initial` supplies
    /// the (never-updated) physical boundary values and the dims.
    pub fn gather_global(
        &mut self,
        cart: &mut CartComm,
        dec: &Decomposition,
        global_initial: &Grid3<T>,
    ) -> Option<Grid3<T>> {
        const TAG: u64 = u64::MAX - 7;
        let local_owned = self.local.to_local(&self.local.owned);
        if cart.comm.rank() != 0 {
            let mine = pack_region(self.current_grid(), &local_owned);
            self.gather_bytes_sent += mine.len() as u64;
            cart.comm.send(0, TAG, mine);
            return None;
        }
        let mut out = global_initial.clone();
        copy_region(
            self.current_grid(),
            &local_owned,
            &mut out,
            &self.local.owned,
        );
        for src in 1..cart.comm.size() {
            let owned = dec.owned(dec.coords_of(src));
            let payload = cart.comm.recv(src, TAG);
            unpack_region(&mut out, &owned, &payload);
        }
        Some(out)
    }
}

/// Comm-side driver of the overlapped exchange: complete each
/// direction's receives, unpack them into the staging grid, and forward
/// the next direction's slabs (which embed the ghost layers just
/// unpacked — the edge/corner composition). Runs on the calling thread
/// in [`ExchangeMode::Overlapped`] and on the dedicated comm thread in
/// [`ExchangeMode::OverlappedCommThread`]; either way every `Comm`
/// mutation happens here, so virtual times are identical and
/// deterministic. Returns the forwarded-send bytes and the ghost
/// regions now valid in `scratch`.
fn drive_exchange<T: Real>(
    comm: &mut Comm,
    scratch: &mut Grid3<T>,
    recv_by_dim: [Vec<(Region3, Request)>; 3],
    send_by_dim: &[Vec<(usize, u64, Region3)>; 3],
) -> (u64, Vec<Region3>) {
    let mut bytes = 0u64;
    let mut ghosts = Vec::new();
    for (d, dim_reqs) in recv_by_dim.into_iter().enumerate() {
        for (region, req) in dim_reqs {
            let payload = comm.wait(req).expect("recv request returns a payload");
            unpack_region(scratch, &region, &payload);
            ghosts.push(region);
        }
        if d + 1 < 3 {
            for (peer, tag, region) in &send_by_dim[d + 1] {
                let payload = pack_region(scratch, region);
                bytes += payload.len() as u64;
                // Send requests are dropped: the pack runs on the
                // comm-core timeline and the buffer is ours to keep.
                let _ = comm.isend(*peer, *tag, payload);
            }
        }
    }
    (bytes, ghosts)
}

/// Advance the interior trapezoid of one overlapped cycle: sweep
/// `j ∈ 1..=c` updates `local.sweep_core(j, RADIUS)`. Uses the
/// pipelined team executor (on the runtime's persistent workers) over a
/// shrinking-domain [`PipelinePlan`] whenever that plan is constructible
/// (radius 1, non-empty cores, blocks at least as long as the stage
/// count), the diamond team executor over the same shrinking domains
/// for [`LocalExec::Diamond`] (diamonds clamp, so no constructibility
/// precondition), and plain region sweeps otherwise. Returns cells
/// updated.
fn interior_trapezoid<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    pair: &mut GridPair<T>,
    exec: &LocalExec,
    local: &LocalDomain,
    c: usize,
) -> u64 {
    let radius = Op::RADIUS;
    let cfg = match exec {
        LocalExec::Diamond(dcfg) => return diamond_trapezoid(rt, op, pair, dcfg, local, c),
        LocalExec::Pipelined(cfg) => Some(cfg),
        LocalExec::Seq => None,
    };
    let mut cells = 0u64;
    let mut base = 0usize;
    while base < c {
        let now = match cfg {
            Some(cfg) => cfg.stages().min(c - base),
            None => c - base,
        };
        let domains: Vec<Region3> = (1..=now)
            .map(|s| local.sweep_core(base + s, radius))
            .collect();
        cells += domains.iter().map(|r| r.count() as u64).sum::<u64>();
        let piped = match cfg {
            Some(cfg)
                if radius == 1 && rt.threads() >= cfg.threads() && plan_fits(&domains, cfg) =>
            {
                let views = pair.shared_views();
                let plan = PipelinePlan::with_domains(domains.clone(), cfg.block);
                // SAFETY: the trapezoid satisfies the plan contract —
                // sweep_core(j+1).expand(RADIUS) == sweep_core(j) — and
                // the pair is exclusively borrowed for the call (the
                // comm side only touches the staging grid).
                unsafe { pipeline::run_team_sweep_op_on(rt, op, &views, &plan, cfg, base, now) };
                true
            }
            _ => false,
        };
        if !piped {
            for (s, region) in domains.iter().enumerate() {
                if region.is_empty() {
                    continue;
                }
                let (src, dst) = pair.src_dst(base + s);
                kernel::update_region_op(op, src, dst, region);
            }
        }
        base += now;
    }
    cells
}

/// The diamond form of the interior trapezoid: one diamond schedule
/// over the `c` shrinking cores, executed in a single team dispatch.
/// The trapezoid chain `sweep_core(j+1).expand(R) == sweep_core(j)` is
/// exactly the tiling's per-sweep domain contract, and empty cores are
/// tolerated by the geometry, so unlike the pipelined path there is no
/// constructibility precondition and no fallback (`run_sweeps_on`
/// rejects undersized runtimes up front; the executor re-asserts).
fn diamond_trapezoid<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    pair: &mut GridPair<T>,
    cfg: &DiamondConfig,
    local: &LocalDomain,
    c: usize,
) -> u64 {
    let radius = Op::RADIUS;
    let domains: Vec<Region3> = (1..=c).map(|j| local.sweep_core(j, radius)).collect();
    let cells: u64 = domains.iter().map(|r| r.count() as u64).sum();
    if cells == 0 {
        return 0;
    }
    let views = pair.shared_views();
    let tiling = DiamondTiling::new(domains, cfg.width, radius);
    // SAFETY: the trapezoid chain satisfies the tiling's domain
    // contract, the tiling carries the operator's radius, and the
    // pair is exclusively borrowed for the dispatch (the comm side
    // only touches the staging grid).
    unsafe { diamond::run_diamond_schedule_on(rt, op, &views, &tiling, cfg, 0) };
    cells
}

/// Whether a shrinking-domain plan over `domains` is constructible for
/// `cfg` — the same geometry precondition [`PipelinePlan::with_domains`]
/// asserts, checked up front so small cores fall back to region sweeps.
fn plan_fits(domains: &[Region3], cfg: &PipelineConfig) -> bool {
    let Some(first) = domains.first() else {
        return false;
    };
    if domains.iter().any(Region3::is_empty) {
        return false;
    }
    let partition = BlockPartition::new(*first, cfg.block);
    let eff = partition.block_size();
    (0..3).all(|d| eff[d] >= domains.len() || partition.counts()[d] == 1)
}

/// The verification oracle: `sweeps` plain sequential sweeps of `op` on
/// the whole global grid.
pub fn serial_reference_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    global: &Grid3<T>,
    sweeps: usize,
) -> Grid3<T> {
    let mut pair = GridPair::from_initial(global.clone());
    baseline::seq_sweeps_op(op, &mut pair, sweeps);
    pair.current(sweeps).clone()
}

/// Classic-Jacobi form of [`serial_reference_op`].
pub fn serial_reference<T: Real>(global: &Grid3<T>, sweeps: usize) -> Grid3<T> {
    serial_reference_op(&Jacobi6, global, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::{init, norm, Dims3};
    use tb_net::Universe;
    use tb_stencil::{Avg27, Jacobi7, VarCoeff7};
    use tb_sync::SyncMode;

    fn verify(dims: Dims3, pgrid: [usize; 3], h: usize, sweeps: usize) {
        let global: Grid3<f64> = init::random(dims, 99);
        let want = serial_reference(&global, sweeps);
        let dec = Decomposition::new(dims, pgrid, h);
        let (g, w) = (&global, &want);
        Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistJacobi::from_global(&dec, cart.coords(), g, LocalExec::Seq).unwrap();
            let stats = s.run_sweeps(&mut cart, sweeps);
            assert_eq!(
                stats.cell_updates,
                (s.local().interior.count() * sweeps) as u64
            );
            if let Some(got) = s.gather_global(&mut cart, &dec, g) {
                norm::assert_grids_identical(w, &got, &Region3::interior_of(dims), "unit");
            }
        });
    }

    fn verify_op<Op: StencilOp<f64>>(
        op: Op,
        dims: Dims3,
        pgrid: [usize; 3],
        h: usize,
        sweeps: usize,
    ) {
        let global: Grid3<f64> = init::random(dims, 4242);
        let want = serial_reference_op(&op, &global, sweeps);
        let dec = Decomposition::new(dims, pgrid, h);
        let (g, w, op_ref) = (&global, &want, &op);
        Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s =
                DistSolver::from_global_op(&dec, cart.coords(), g, LocalExec::Seq, op_ref.clone())
                    .unwrap();
            s.run_sweeps(&mut cart, sweeps);
            if let Some(got) = s.gather_global(&mut cart, &dec, g) {
                norm::assert_grids_identical(
                    w,
                    &got,
                    &Region3::interior_of(dims),
                    &format!("dist {}", op_ref.name()),
                );
            }
        });
    }

    /// Every exchange mode must gather the exact serial-oracle grid.
    fn verify_modes_op<Op: StencilOp<f64>>(
        op: Op,
        dims: Dims3,
        pgrid: [usize; 3],
        h: usize,
        sweeps: usize,
        exec: impl Fn() -> LocalExec + Send + Sync,
    ) {
        let global: Grid3<f64> = init::random(dims, 77);
        let want = serial_reference_op(&op, &global, sweeps);
        let dec = Decomposition::new(dims, pgrid, h);
        for mode in [
            ExchangeMode::Sync,
            ExchangeMode::Overlapped,
            ExchangeMode::OverlappedCommThread,
        ] {
            let (g, w, op_ref, exec_ref, dec) = (&global, &want, &op, &exec, &dec);
            Universe::run(dec.ranks(), None, move |comm| {
                let mut cart = CartComm::new(comm, pgrid);
                let mut s =
                    DistSolver::from_global_op(dec, cart.coords(), g, exec_ref(), op_ref.clone())
                        .unwrap()
                        .with_exchange_mode(mode);
                s.run_sweeps(&mut cart, sweeps);
                if let Some(got) = s.gather_global(&mut cart, dec, g) {
                    norm::assert_grids_identical(
                        w,
                        &got,
                        &Region3::interior_of(dims),
                        &format!("{} {mode:?} {pgrid:?} h={h}", op_ref.name()),
                    );
                }
            });
        }
    }

    #[test]
    fn single_rank_equals_serial() {
        verify(Dims3::cube(12), [1, 1, 1], 3, 7);
    }

    #[test]
    fn two_ranks_each_axis() {
        verify(Dims3::new(16, 12, 10), [2, 1, 1], 2, 5);
        verify(Dims3::new(12, 16, 10), [1, 2, 1], 2, 5);
        verify(Dims3::new(10, 12, 16), [1, 1, 2], 2, 5);
    }

    #[test]
    fn partial_final_cycle_with_odd_depth() {
        // h = 3, 8 sweeps -> cycles 3 + 3 + 2, crossing buffer parity.
        verify(Dims3::cube(14), [2, 2, 1], 3, 8);
    }

    #[test]
    fn sweeps_fewer_than_halo() {
        verify(Dims3::cube(14), [2, 1, 1], 4, 2);
    }

    #[test]
    fn every_operator_matches_its_serial_oracle_across_ranks() {
        let dims = Dims3::new(16, 14, 12);
        verify_op(Jacobi7::heat(0.09), dims, [2, 1, 2], 2, 5);
        verify_op(VarCoeff7::banded(dims), dims, [2, 2, 1], 2, 5);
        // The corner-reading operator exercises the ghost-forwarding
        // composition: diagonal data must arrive by stage ordering alone.
        verify_op(Avg27, dims, [2, 2, 2], 2, 5);
        verify_op(Avg27, dims, [1, 2, 1], 3, 7);
    }

    #[test]
    fn overlapped_modes_match_serial_two_ranks() {
        verify_modes_op(Jacobi6, Dims3::new(18, 12, 12), [2, 1, 1], 2, 5, || {
            LocalExec::Seq
        });
    }

    #[test]
    fn overlapped_modes_match_serial_every_axis_and_partial_cycle() {
        // h = 3, 8 sweeps: cycles 3 + 3 + 2 cross buffer parity.
        verify_modes_op(Jacobi6, Dims3::cube(16), [1, 1, 2], 3, 8, || LocalExec::Seq);
        verify_modes_op(Jacobi6, Dims3::cube(16), [1, 2, 1], 3, 8, || LocalExec::Seq);
    }

    // (Corner-forwarding of the overlapped exchange across eight ranks
    // is covered by the e2e matrix in tests/dist_e2e.rs with Avg27.)

    #[test]
    fn overlapped_hybrid_pipelined_interior() {
        let cfg = PipelineConfig {
            team_size: 2,
            n_teams: 1,
            updates_per_thread: 1,
            block: [8, 8, 8],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: None,
            audit: false,
        };
        verify_modes_op(Jacobi6, Dims3::cube(24), [2, 1, 1], 4, 9, move || {
            LocalExec::Pipelined(cfg.clone())
        });
    }

    #[test]
    fn diamond_local_exec_matches_serial_in_every_mode() {
        // The diamond scheme drives both the Sync local advance and the
        // overlapped interior trapezoid (shrinking cores), with the
        // race auditor on.
        let cfg = DiamondConfig {
            threads: 2,
            width: 4,
            threads_per_tile: 2, // MWD through the distributed trapezoid
            audit: true,
        };
        let c = cfg.clone();
        verify_modes_op(Jacobi6, Dims3::cube(20), [2, 1, 1], 3, 8, move || {
            LocalExec::Diamond(c.clone())
        });
        let c = cfg.clone();
        verify_modes_op(Avg27, Dims3::new(18, 14, 16), [1, 2, 1], 2, 5, move || {
            LocalExec::Diamond(c.clone())
        });
    }

    #[test]
    fn diamond_local_exec_with_empty_interior_core() {
        // Depth-4 cycles on edge-8 owned boxes: the trapezoid is empty,
        // everything lands in the shell phase, and the diamond schedule
        // must cope with all-empty domains.
        let cfg = DiamondConfig::with_width(2, 4);
        verify_modes_op(Jacobi6, Dims3::cube(16), [2, 2, 2], 4, 8, move || {
            LocalExec::Diamond(cfg.clone())
        });
    }

    #[test]
    fn diamond_wider_than_local_box_is_fine() {
        let cfg = DiamondConfig::with_width(2, 64);
        verify_modes_op(
            Jacobi7::heat(0.08),
            Dims3::cube(18),
            [2, 1, 1],
            2,
            6,
            move || LocalExec::Diamond(cfg.clone()),
        );
    }

    #[test]
    fn invalid_diamond_config_rejected() {
        let dims = Dims3::cube(16);
        let dec = Decomposition::new(dims, [1, 1, 1], 1);
        let global: Grid3<f64> = init::random(dims, 2);
        let cfg = DiamondConfig::with_width(2, 1); // width < 2·radius
        let err = match DistJacobi::from_global(&dec, [0, 0, 0], &global, LocalExec::Diamond(cfg)) {
            Err(e) => e,
            Ok(_) => panic!("too-narrow diamond width must be rejected"),
        };
        assert!(err.contains("2·radius"), "{err}");
    }

    #[test]
    fn overlapped_with_empty_interior_core() {
        // Owned boxes of edge 8 with depth-4 cycles: the interior core
        // is empty, everything lands in the shell phase — overlap hides
        // nothing but the result must stay exact.
        verify_modes_op(Jacobi6, Dims3::cube(16), [2, 2, 2], 4, 8, || LocalExec::Seq);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn comm_thread_panic_propagates_instead_of_hanging() {
        // A protocol error hit on the comm thread (here: a peer sending
        // a wrong-length halo payload, which fails `unpack_region`) must
        // fail the rank loudly: the panic travels through the handoff
        // and re-raises on the compute side. A hang would block this
        // test forever instead.
        let dims = Dims3::cube(14);
        let pgrid = [2, 1, 1];
        let dec = Decomposition::new(dims, pgrid, 2);
        let global: Grid3<f64> = init::random(dims, 3);
        let (g, dec_ref) = (&global, &dec);
        Universe::run(2, None, move |comm| {
            if comm.rank() == 1 {
                // Bogus 8-byte message under rank 0's -x ghost tag.
                comm.send(0, 0, tb_net::comm::pack_f64s(&[1.0]));
                return 0;
            }
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistJacobi::from_global(dec_ref, cart.coords(), g, LocalExec::Seq)
                .unwrap()
                .with_exchange_mode(ExchangeMode::OverlappedCommThread);
            s.run_sweeps(&mut cart, 2);
            0
        });
    }

    #[test]
    fn byte_accounting_splits_halo_and_gather() {
        let dims = Dims3::cube(16);
        let pgrid = [2, 1, 1];
        let dec = Decomposition::new(dims, pgrid, 2);
        let global: Grid3<f64> = init::random(dims, 5);
        let g = &global;
        let bytes = Universe::run(2, None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistJacobi::from_global(&dec, cart.coords(), g, LocalExec::Seq).unwrap();
            s.run_sweeps(&mut cart, 4);
            let halo = s.halo_bytes_sent;
            let _ = s.gather_global(&mut cart, &dec, g);
            (halo, s.halo_bytes_sent, s.gather_bytes_sent, s.bytes_sent())
        });
        for (halo_before, halo_after, gather, total) in bytes.clone() {
            assert_eq!(halo_before, halo_after, "gather must not count as halo");
            assert!(halo_after > 0, "two ranks exchange every cycle");
            assert_eq!(total, halo_after + gather);
        }
        // Only the non-root rank ships its box to rank 0.
        assert_eq!(bytes[0].2, 0);
        assert!(bytes[1].2 > 0);
        // Both ranks send one 2-layer slab per cycle (2 cycles of c=2):
        // identical halo traffic.
        assert_eq!(bytes[0].1, bytes[1].1);
    }

    #[test]
    fn overlapped_sends_the_same_halo_bytes_as_sync() {
        let dims = Dims3::new(18, 14, 12);
        let pgrid = [2, 2, 1];
        let dec = Decomposition::new(dims, pgrid, 2);
        let global: Grid3<f64> = init::random(dims, 6);
        let g = &global;
        let mut per_mode = Vec::new();
        for mode in [ExchangeMode::Sync, ExchangeMode::Overlapped] {
            let dec = &dec;
            let halo: Vec<u64> = Universe::run(4, None, move |comm| {
                let mut cart = CartComm::new(comm, pgrid);
                let mut s = DistJacobi::from_global(dec, cart.coords(), g, LocalExec::Seq)
                    .unwrap()
                    .with_exchange_mode(mode);
                s.run_sweeps(&mut cart, 6);
                s.halo_bytes_sent
            });
            per_mode.push(halo);
        }
        assert_eq!(per_mode[0], per_mode[1], "same protocol, same traffic");
    }

    #[test]
    fn pipeline_deeper_than_halo_rejected() {
        let dims = Dims3::cube(24);
        let dec = Decomposition::new(dims, [2, 1, 1], 1);
        let global: Grid3<f64> = init::random(dims, 1);
        let cfg = PipelineConfig {
            team_size: 2,
            n_teams: 1,
            updates_per_thread: 1,
            block: [8, 8, 8],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: None,
            audit: false,
        };
        let g = &global;
        Universe::run(2, None, move |comm| {
            let cart = CartComm::new(comm, [2, 1, 1]);
            let err = match DistJacobi::from_global(
                &dec,
                cart.coords(),
                g,
                LocalExec::Pipelined(cfg.clone()),
            ) {
                Err(e) => e,
                Ok(_) => panic!("pipeline deeper than halo must be rejected"),
            };
            assert!(err.contains("exceeds halo width"), "{err}");
        });
    }

    #[test]
    fn mismatched_global_grid_rejected() {
        let dec = Decomposition::new(Dims3::cube(12), [1, 1, 1], 1);
        let wrong: Grid3<f64> = Grid3::zeroed(Dims3::cube(10));
        assert!(DistJacobi::from_global(&dec, [0, 0, 0], &wrong, LocalExec::Seq).is_err());
    }
}
