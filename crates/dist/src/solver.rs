//! The per-rank distributed solver and its sequential oracle, generic
//! over the stencil operator.
//!
//! [`DistSolver`] drives one rank: it stores the overlapping local box
//! of a [`Decomposition`], exchanges ghost layers with its Cartesian
//! neighbors (x, then y, then z — corners and edges arrive by
//! composition, because each stage forwards the layers received in the
//! previous stages), then advances locally, either sequentially
//! ([`LocalExec::Seq`]) or with the §1.3 pipelined temporal-blocking
//! executor ([`LocalExec::Pipelined`], the paper's "hybrid" mode).
//!
//! The exchange depth derives from the operator: advancing `c` sweeps
//! between exchanges consumes `c × Op::RADIUS` ghost layers, so a halo of
//! width `h` sustains `h / Op::RADIUS` sweeps per cycle. Operators with
//! per-cell data are [`StencilOp::restricted`] to the rank's box, so
//! every rank reads exactly the coefficients the sequential oracle reads.
//!
//! [`DistJacobi`] is the classic-Jacobi instantiation.

use std::time::Instant;

use tb_grid::{Grid3, GridPair, Real, Region3};
use tb_net::CartComm;
use tb_stencil::config::GridScheme;
use tb_stencil::{baseline, pipeline, Jacobi6, PipelineConfig, RunStats, StencilOp};

use crate::decomp::{Decomposition, LocalDomain};
use crate::halo::{copy_region, exchange_regions, pack_region, unpack_region};

/// How a rank advances its local box between exchanges.
#[derive(Clone, Debug)]
pub enum LocalExec {
    /// Plain sequential sweeps.
    Seq,
    /// Pipelined temporal blocking inside the rank (hybrid MPI+threads
    /// in the paper). The pipeline depth `n·t·T` must not exceed the
    /// sweeps one exchange sustains (`h / Op::RADIUS`), or the pipeline
    /// would need ghost data the exchange did not provide.
    Pipelined(PipelineConfig),
}

/// One rank of the distributed stencil solver.
pub struct DistSolver<T: Real, Op: StencilOp<T>> {
    local: LocalDomain,
    pair: GridPair<T>,
    exec: LocalExec,
    /// The operator, re-anchored to this rank's box.
    op: Op,
    h: usize,
    /// Buffer index (0 = A, 1 = B) holding the current state.
    parity: usize,
    sweeps_done: usize,
    /// Total payload bytes this rank has sent (halo + gather).
    pub bytes_sent: u64,
}

/// The classic-Jacobi instantiation of [`DistSolver`].
pub type DistJacobi<T> = DistSolver<T, Jacobi6>;

impl<T: Real> DistJacobi<T> {
    /// [`DistSolver::from_global_op`] with the classic Jacobi operator.
    pub fn from_global(
        dec: &Decomposition,
        coords: [usize; 3],
        global: &Grid3<T>,
        exec: LocalExec,
    ) -> Result<Self, String> {
        Self::from_global_op(dec, coords, global, exec, Jacobi6)
    }
}

impl<T: Real, Op: StencilOp<T>> DistSolver<T, Op> {
    /// Build this rank's solver state from the global initial grid and
    /// the *global* operator (it is restricted to the local box here).
    ///
    /// Fails when `global` does not match the decomposition, when the
    /// halo is shallower than the operator radius, or when a pipelined
    /// `exec` is invalid for this rank's local box (too-small blocks,
    /// pipeline deeper than the halo sustains, ...).
    pub fn from_global_op(
        dec: &Decomposition,
        coords: [usize; 3],
        global: &Grid3<T>,
        exec: LocalExec,
        op: Op,
    ) -> Result<Self, String> {
        if global.dims() != dec.dims() {
            return Err(format!(
                "global grid {} does not match decomposition {}",
                global.dims(),
                dec.dims()
            ));
        }
        if dec.h() < Op::RADIUS {
            return Err(format!(
                "halo width h = {} is smaller than the operator radius {}",
                dec.h(),
                Op::RADIUS
            ));
        }
        let local = dec.local(coords);
        let exec = match exec {
            LocalExec::Seq => LocalExec::Seq,
            LocalExec::Pipelined(mut cfg) => {
                cfg.scheme = GridScheme::TwoGrid; // the dist layer owns the buffers
                cfg.validate(local.dims)?;
                if cfg.stages() > dec.h() / Op::RADIUS {
                    return Err(format!(
                        "pipeline depth n*t*T = {} exceeds halo width h = {} / radius {}; \
                         the rank would read ghost layers the exchange never filled",
                        cfg.stages(),
                        dec.h(),
                        Op::RADIUS
                    ));
                }
                LocalExec::Pipelined(cfg)
            }
        };
        // Carve the local box (owned + ghosts) out of the global grid.
        let mut g = Grid3::zeroed(local.dims);
        copy_region(global, &local.region, &mut g, &Region3::whole(local.dims));
        let op = op.restricted(&local.region);
        Ok(Self {
            local,
            pair: GridPair::from_initial(g),
            exec,
            op,
            h: dec.h(),
            parity: 0,
            sweeps_done: 0,
            bytes_sent: 0,
        })
    }

    /// This rank's view of the decomposition.
    pub fn local(&self) -> &LocalDomain {
        &self.local
    }

    /// Global sweeps completed so far.
    pub fn sweeps_done(&self) -> usize {
        self.sweeps_done
    }

    /// The grid holding the current state (local coordinates).
    pub fn current_grid(&self) -> &Grid3<T> {
        if self.parity == 0 {
            self.pair.a()
        } else {
            self.pair.b()
        }
    }

    /// Move the current state into buffer A so the executors (which
    /// number sweeps from zero) read the right buffer.
    fn normalize_parity(&mut self) {
        if self.parity == 1 {
            self.pair.swap();
            self.parity = 0;
        }
    }

    /// Advance `sweeps` global sweeps: repeat (exchange `c·RADIUS ≤ h`
    /// layers, run `c` local sweeps) until done. Collective — every rank
    /// of the communicator must call it with the same `sweeps`.
    ///
    /// The returned stats count *useful* updates (owned ∩ interior
    /// cells × sweeps); redundant overlap-ring updates are excluded so
    /// that per-rank numbers sum to the serial solver's update count.
    pub fn run_sweeps(&mut self, cart: &mut CartComm, sweeps: usize) -> RunStats {
        let t0 = Instant::now();
        let sweeps_per_cycle = self.h / Op::RADIUS;
        let mut remaining = sweeps;
        while remaining > 0 {
            let c = sweeps_per_cycle.min(remaining);
            self.normalize_parity();
            self.exchange(cart, c * Op::RADIUS);
            match &self.exec {
                LocalExec::Seq => {
                    baseline::seq_sweeps_op(&self.op, &mut self.pair, c);
                }
                LocalExec::Pipelined(cfg) => {
                    pipeline::run_op(&self.op, &mut self.pair, cfg, c)
                        .expect("config validated in from_global_op");
                }
            }
            self.parity = c % 2;
            self.sweeps_done += c;
            remaining -= c;
        }
        RunStats::new((self.local.interior.count() * sweeps) as u64, t0.elapsed())
    }

    /// One multi-layer halo exchange of depth `depth` along successive
    /// directions. After stage `d`, the current buffer holds valid ghost
    /// layers in every dimension `≤ d`; later stages forward them, which
    /// is what delivers edge and corner data without diagonal messages.
    /// The slab geometry lives in [`exchange_regions`].
    fn exchange(&mut self, cart: &mut CartComm, depth: usize) {
        debug_assert_eq!(self.parity, 0, "exchange runs on a normalized pair");
        let owned = self.local.owned;
        let fence = self.local.region;
        for d in 0..3 {
            // Phase 1: post both sends (buffered, never blocks).
            for (idx, dir) in [-1i64, 1].into_iter().enumerate() {
                let Some(peer) = cart.neighbor(d, dir) else {
                    continue;
                };
                let (s, _) = exchange_regions(&owned, &fence, d, dir, depth);
                let payload = pack_region(self.pair.a(), &self.local.to_local(&s));
                self.bytes_sent += payload.len() as u64;
                cart.comm.send(peer, (d * 2 + idx) as u64, payload);
            }
            // Phase 2: receive both ghost slabs. The peer tagged its
            // message with *its own* direction, the opposite of ours.
            for (idx, dir) in [-1i64, 1].into_iter().enumerate() {
                let Some(peer) = cart.neighbor(d, dir) else {
                    continue;
                };
                let (_, r) = exchange_regions(&owned, &fence, d, dir, depth);
                let tag = (d * 2 + (1 - idx)) as u64;
                let payload = cart.comm.recv(peer, tag);
                unpack_region(self.pair.a_mut(), &self.local.to_local(&r), &payload);
            }
        }
    }

    /// Collect every rank's owned cells on rank 0. Returns the
    /// assembled global grid on rank 0 and `None` elsewhere.
    /// Collective — all ranks must call it. `global_initial` supplies
    /// the (never-updated) physical boundary values and the dims.
    pub fn gather_global(
        &mut self,
        cart: &mut CartComm,
        dec: &Decomposition,
        global_initial: &Grid3<T>,
    ) -> Option<Grid3<T>> {
        const TAG: u64 = u64::MAX - 7;
        let local_owned = self.local.to_local(&self.local.owned);
        if cart.comm.rank() != 0 {
            let mine = pack_region(self.current_grid(), &local_owned);
            self.bytes_sent += mine.len() as u64;
            cart.comm.send(0, TAG, mine);
            return None;
        }
        let mut out = global_initial.clone();
        copy_region(
            self.current_grid(),
            &local_owned,
            &mut out,
            &self.local.owned,
        );
        for src in 1..cart.comm.size() {
            let owned = dec.owned(dec.coords_of(src));
            let payload = cart.comm.recv(src, TAG);
            unpack_region(&mut out, &owned, &payload);
        }
        Some(out)
    }
}

/// The verification oracle: `sweeps` plain sequential sweeps of `op` on
/// the whole global grid.
pub fn serial_reference_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    global: &Grid3<T>,
    sweeps: usize,
) -> Grid3<T> {
    let mut pair = GridPair::from_initial(global.clone());
    baseline::seq_sweeps_op(op, &mut pair, sweeps);
    pair.current(sweeps).clone()
}

/// Classic-Jacobi form of [`serial_reference_op`].
pub fn serial_reference<T: Real>(global: &Grid3<T>, sweeps: usize) -> Grid3<T> {
    serial_reference_op(&Jacobi6, global, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::{init, norm, Dims3};
    use tb_net::Universe;
    use tb_stencil::{Avg27, Jacobi7, VarCoeff7};
    use tb_sync::SyncMode;

    fn verify(dims: Dims3, pgrid: [usize; 3], h: usize, sweeps: usize) {
        let global: Grid3<f64> = init::random(dims, 99);
        let want = serial_reference(&global, sweeps);
        let dec = Decomposition::new(dims, pgrid, h);
        let (g, w) = (&global, &want);
        Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistJacobi::from_global(&dec, cart.coords(), g, LocalExec::Seq).unwrap();
            let stats = s.run_sweeps(&mut cart, sweeps);
            assert_eq!(
                stats.cell_updates,
                (s.local().interior.count() * sweeps) as u64
            );
            if let Some(got) = s.gather_global(&mut cart, &dec, g) {
                norm::assert_grids_identical(w, &got, &Region3::interior_of(dims), "unit");
            }
        });
    }

    fn verify_op<Op: StencilOp<f64>>(
        op: Op,
        dims: Dims3,
        pgrid: [usize; 3],
        h: usize,
        sweeps: usize,
    ) {
        let global: Grid3<f64> = init::random(dims, 4242);
        let want = serial_reference_op(&op, &global, sweeps);
        let dec = Decomposition::new(dims, pgrid, h);
        let (g, w, op_ref) = (&global, &want, &op);
        Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s =
                DistSolver::from_global_op(&dec, cart.coords(), g, LocalExec::Seq, op_ref.clone())
                    .unwrap();
            s.run_sweeps(&mut cart, sweeps);
            if let Some(got) = s.gather_global(&mut cart, &dec, g) {
                norm::assert_grids_identical(
                    w,
                    &got,
                    &Region3::interior_of(dims),
                    &format!("dist {}", op_ref.name()),
                );
            }
        });
    }

    #[test]
    fn single_rank_equals_serial() {
        verify(Dims3::cube(12), [1, 1, 1], 3, 7);
    }

    #[test]
    fn two_ranks_each_axis() {
        verify(Dims3::new(16, 12, 10), [2, 1, 1], 2, 5);
        verify(Dims3::new(12, 16, 10), [1, 2, 1], 2, 5);
        verify(Dims3::new(10, 12, 16), [1, 1, 2], 2, 5);
    }

    #[test]
    fn partial_final_cycle_with_odd_depth() {
        // h = 3, 8 sweeps -> cycles 3 + 3 + 2, crossing buffer parity.
        verify(Dims3::cube(14), [2, 2, 1], 3, 8);
    }

    #[test]
    fn sweeps_fewer_than_halo() {
        verify(Dims3::cube(14), [2, 1, 1], 4, 2);
    }

    #[test]
    fn every_operator_matches_its_serial_oracle_across_ranks() {
        let dims = Dims3::new(16, 14, 12);
        verify_op(Jacobi7::heat(0.09), dims, [2, 1, 2], 2, 5);
        verify_op(VarCoeff7::banded(dims), dims, [2, 2, 1], 2, 5);
        // The corner-reading operator exercises the ghost-forwarding
        // composition: diagonal data must arrive by stage ordering alone.
        verify_op(Avg27, dims, [2, 2, 2], 2, 5);
        verify_op(Avg27, dims, [1, 2, 1], 3, 7);
    }

    #[test]
    fn pipeline_deeper_than_halo_rejected() {
        let dims = Dims3::cube(24);
        let dec = Decomposition::new(dims, [2, 1, 1], 1);
        let global: Grid3<f64> = init::random(dims, 1);
        let cfg = PipelineConfig {
            team_size: 2,
            n_teams: 1,
            updates_per_thread: 1,
            block: [8, 8, 8],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: None,
            audit: false,
        };
        let g = &global;
        Universe::run(2, None, move |comm| {
            let cart = CartComm::new(comm, [2, 1, 1]);
            let err = match DistJacobi::from_global(
                &dec,
                cart.coords(),
                g,
                LocalExec::Pipelined(cfg.clone()),
            ) {
                Err(e) => e,
                Ok(_) => panic!("pipeline deeper than halo must be rejected"),
            };
            assert!(err.contains("exceeds halo width"), "{err}");
        });
    }

    #[test]
    fn mismatched_global_grid_rejected() {
        let dec = Decomposition::new(Dims3::cube(12), [1, 1, 1], 1);
        let wrong: Grid3<f64> = Grid3::zeroed(Dims3::cube(10));
        assert!(DistJacobi::from_global(&dec, [0, 0, 0], &wrong, LocalExec::Seq).is_err());
    }
}
