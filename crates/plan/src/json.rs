//! A minimal JSON value: parser and writer.
//!
//! The vendored `serde` is a no-op shim (see `vendor/README.md`), so the
//! plan cache serializes through this small tree instead. Objects keep
//! insertion order, which makes the on-disk cache deterministic and
//! diff-friendly. Numbers are `f64` (every quantity we persist —
//! dimensions, thread counts, bandwidths — fits exactly below 2^53).

use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered key/value pairs (no deduplication; last lookup wins).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as `usize`; rejects negatives, fractions, and
    /// anything above 2^53 (not exactly representable).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as usize)
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_usize().map(|v| v as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Build an object from pairs — the writer-side convenience.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    pub fn usize(n: usize) -> Json {
        Json::Num(n as f64)
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize compactly (no whitespace). Deterministic: objects print
    /// in insertion order, integers print without a fractional part.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        // Surrogates degrade to the replacement char —
                        // nothing we serialize emits them.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences whole).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj(vec![
            (
                "a",
                Json::Arr(vec![Json::usize(1), Json::Null, Json::Bool(true)]),
            ),
            ("s", Json::str("q\"uo\\te\nnl")),
            ("o", Json::obj(vec![("n", Json::num(2.25))])),
        ]);
        let text = v.to_json();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Integers print without fraction; order is preserved.
        assert!(text.starts_with("{\"a\":[1,null,true]"), "{text}");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 7, "s": "x", "b": false, "a": [1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite rejected");
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""Ahé""#).unwrap();
        assert_eq!(v.as_str(), Some("Ahé"));
        let s = Json::str("tab\tnl\n");
        assert_eq!(Json::parse(&s.to_json()).unwrap(), s);
    }
}
