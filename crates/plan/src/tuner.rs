//! The model-pruned tuner.
//!
//! [`enumerate_family`] spans the candidate space of one method family;
//! [`predicted_mlups`] scores every candidate with the `tb-model`
//! analytic predictions (Eq. 2 roofline × Eq. 5 / diamond / wavefront
//! speedup, demoted to baseline wherever the working set cannot stay in
//! the shared cache); [`tune`] measures only the top-K predicted
//! candidates plus the incumbent and returns a ranked [`TuneReport`]
//! with predicted-vs-measured MLUP/s, so the model's pruning *and* its
//! error are both visible.

use tb_grid::{Dims3, Real};
use tb_model::{
    diamond_speedup, diamond_working_set_bytes, max_cached_width_mwd, op_roofline_lups,
    pipeline_speedup, wavefront_speedup, MachineParams,
};
use tb_stencil::kernel::StoreMode;
use tb_stencil::{StencilOp, SyncMode};

use crate::ir::{MethodFamily, PipeParams, Plan, PlanMethod};

/// Tuner knobs.
#[derive(Clone, Copy, Debug)]
pub struct TuneConfig {
    /// Measure at most this many model-ranked candidates (the incumbent
    /// rides along inside this budget). The tuner additionally caps the
    /// measured set at half the enumerated candidates, so the model
    /// always discards at least as many candidates as are run.
    pub top_k: usize,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig { top_k: 8 }
    }
}

/// One candidate in a [`TuneReport`].
#[derive(Clone, Debug)]
pub struct TuneRow {
    pub plan: Plan,
    /// Analytic score (MLUP/s) from the `tb-model` predictions.
    pub predicted_mlups: f64,
    /// Measured MLUP/s; `None` for candidates the model pruned away or
    /// whose measurement failed.
    pub measured_mlups: Option<f64>,
    /// Whether this row is the caller's incumbent (default config).
    pub incumbent: bool,
}

impl TuneRow {
    /// Relative model error `|predicted - measured| / measured`, when
    /// this row was measured.
    pub fn model_rel_error(&self) -> Option<f64> {
        let m = self.measured_mlups?;
        (m > 0.0).then(|| (self.predicted_mlups - m).abs() / m)
    }
}

/// Ranked outcome of one tuning run: every enumerated candidate with
/// its prediction, measured MLUP/s for the survivors, sorted measured
/// rows first (best measured on top), then the pruned remainder by
/// prediction.
#[derive(Clone, Debug, Default)]
pub struct TuneReport {
    pub rows: Vec<TuneRow>,
    /// Candidates enumerated before pruning.
    pub enumerated: usize,
    /// Candidates actually measured.
    pub measured: usize,
}

impl TuneReport {
    /// `measured / enumerated` — the acceptance metric of the pruning
    /// (≤ 0.5 by construction for non-degenerate candidate sets).
    pub fn pruning_ratio(&self) -> f64 {
        if self.enumerated == 0 {
            return 1.0;
        }
        self.measured as f64 / self.enumerated as f64
    }

    /// Best measured candidate.
    pub fn winner(&self) -> Option<&TuneRow> {
        self.rows
            .iter()
            .filter(|r| r.measured_mlups.is_some())
            .max_by(|a, b| {
                a.measured_mlups
                    .partial_cmp(&b.measured_mlups)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The incumbent's row, if it was measured.
    pub fn incumbent(&self) -> Option<&TuneRow> {
        self.rows
            .iter()
            .find(|r| r.incumbent && r.measured_mlups.is_some())
    }

    /// Mean relative model error over the measured rows.
    pub fn mean_model_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter_map(TuneRow::model_rel_error)
            .collect();
        if errs.is_empty() {
            return None;
        }
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

/// The incumbent (library-default) plan of a family, sized to `team`
/// compute threads — what a caller who never tunes would run.
pub fn default_plan(family: MethodFamily, team: usize) -> Plan {
    let team = team.max(1);
    let pipe = PipeParams {
        team_size: team,
        n_teams: 1,
        updates_per_thread: 1,
        block: [32.max(team), 8.max(team), 8.max(team)],
        sync: SyncMode::relaxed_default(),
    };
    Plan::new(match family {
        MethodFamily::Parallel => PlanMethod::Parallel {
            threads: team,
            streaming_stores: false,
        },
        MethodFamily::Pipelined => PlanMethod::Pipelined(pipe),
        MethodFamily::Compressed => PlanMethod::Compressed(pipe),
        MethodFamily::Wavefront => PlanMethod::Wavefront { threads: team },
        MethodFamily::Diamond => PlanMethod::Diamond {
            threads: team,
            width: 8,
            threads_per_tile: 1,
        },
    })
}

/// Enumerate the candidate space of one family for a problem, keeping
/// only candidates that validate against `dims` and fit `team` threads.
pub fn enumerate_family<T: Real, Op: StencilOp<T>>(
    family: MethodFamily,
    params: &MachineParams,
    op: &Op,
    dims: Dims3,
    team: usize,
) -> Vec<Plan> {
    let team = team.max(1);
    let radius = Op::RADIUS;
    let mut plans = Vec::new();
    match family {
        MethodFamily::Parallel => {
            let mut threads: Vec<usize> = vec![1, team / 2, team];
            threads.retain(|&t| t >= 1);
            threads.sort_unstable();
            threads.dedup();
            for t in threads {
                for streaming in [false, true] {
                    plans.push(Plan::new(PlanMethod::Parallel {
                        threads: t,
                        streaming_stores: streaming,
                    }));
                }
            }
        }
        MethodFamily::Pipelined | MethodFamily::Compressed => {
            for updates in [1usize, 2, 4] {
                for block in [[dims.nx, 16, 16], [120, 20, 20], [64, 16, 16], [32, 8, 8]] {
                    for du in [1u64, 4] {
                        let p = PipeParams {
                            team_size: team,
                            n_teams: 1,
                            updates_per_thread: updates,
                            block,
                            sync: SyncMode::Relaxed { dl: 1, du, dt: 0 },
                        };
                        let method = if family == MethodFamily::Pipelined {
                            PlanMethod::Pipelined(p)
                        } else {
                            PlanMethod::Compressed(p)
                        };
                        plans.push(Plan::new(method));
                    }
                }
            }
        }
        MethodFamily::Wavefront => {
            let mut threads: Vec<usize> = vec![1, 2.min(team), team];
            threads.sort_unstable();
            threads.dedup();
            for t in threads {
                plans.push(Plan::new(PlanMethod::Wavefront { threads: t }));
            }
        }
        MethodFamily::Diamond => {
            let mut tpts: Vec<usize> = [1usize, 2, 4]
                .into_iter()
                .filter(|&tpt| tpt <= team && team.is_multiple_of(tpt))
                .collect();
            tpts.dedup();
            for tpt in tpts {
                let w_cache =
                    max_cached_width_mwd::<T, Op>(params, op, dims.nx, dims.ny, team, tpt);
                let mut widths = vec![4usize, 8, 16, 32, w_cache];
                widths.retain(|&w| w >= 2 * radius);
                widths.sort_unstable();
                widths.dedup();
                for width in widths {
                    plans.push(Plan::new(PlanMethod::Diamond {
                        threads: team,
                        width,
                        threads_per_tile: tpt,
                    }));
                }
            }
        }
    }
    plans.retain(|p| p.validate_for(dims, radius).is_ok());
    plans
}

/// [`enumerate_family`] over every family.
pub fn enumerate_all<T: Real, Op: StencilOp<T>>(
    params: &MachineParams,
    op: &Op,
    dims: Dims3,
    team: usize,
) -> Vec<Plan> {
    MethodFamily::ALL
        .into_iter()
        .flat_map(|f| enumerate_family::<T, Op>(f, params, op, dims, team))
        .collect()
}

/// Analytic score of a plan in MLUP/s, from the `tb-model` predictions.
///
/// The structure mirrors the paper: Eq. 2 sets the streaming baseline,
/// the per-method speedup (Eq. 5, its diamond/wavefront analogues)
/// multiplies it, and any candidate whose working set cannot stay in
/// the shared cache collapses to baseline speed — which is exactly what
/// lets the tuner discard it without a measurement.
pub fn predicted_mlups<T: Real, Op: StencilOp<T>>(
    params: &MachineParams,
    op: &Op,
    dims: Dims3,
    plan: &Plan,
) -> f64 {
    let radius = Op::RADIUS;
    let p0_stream = op_roofline_lups(params, op, StoreMode::Streaming);
    let lups = match &plan.method {
        PlanMethod::Parallel {
            threads,
            streaming_stores,
        } => {
            let store = if *streaming_stores {
                StoreMode::Streaming
            } else {
                StoreMode::Normal
            };
            let p0 = op_roofline_lups(params, op, store);
            // One thread runs at its Ms,1 share of the socket roofline;
            // more threads scale linearly until the bus saturates.
            let single = p0 * params.ms1 / params.ms;
            (single * *threads as f64).min(p0)
        }
        PlanMethod::Pipelined(p) | PlanMethod::Compressed(p) => {
            let speedup = pipeline_speedup(params, p.team_size, p.updates_per_thread);
            // §1.4's standing assumption: the shared cache holds the
            // (t·T)·d_u blocks in flight. The compressed scheme keeps a
            // single grid, halving the resident buffer count.
            let grids = if matches!(plan.method, PlanMethod::Compressed(_)) {
                1.0
            } else {
                2.0
            };
            let streams = grids + op.extra_read_streams();
            let block_cells =
                p.block[0].min(dims.nx) * p.block[1].min(dims.ny) * p.block[2].min(dims.nz);
            let block_bytes = streams * (block_cells * T::bytes()) as f64;
            let du = match p.sync {
                SyncMode::Barrier => 1.0,
                SyncMode::Relaxed { du, .. } => du as f64,
            };
            let resident = (p.team_size * p.updates_per_thread) as f64 * du.max(1.0) * block_bytes;
            let fits = resident <= params.cache_bytes as f64;
            p0_stream * if fits { speedup } else { 1.0 }
        }
        PlanMethod::Wavefront { threads } => {
            // The wavefront keeps ~2R planes live per stacked sweep; its
            // working set is that of a diamond of width 2R·t.
            let proxy_width = (2 * radius * threads.max(&1)).max(2 * radius);
            let ws = diamond_working_set_bytes::<T, Op>(op, dims.nx, dims.ny, proxy_width);
            let fits = ws <= params.cache_bytes;
            p0_stream
                * if fits {
                    wavefront_speedup(params, *threads)
                } else {
                    1.0
                }
        }
        PlanMethod::Diamond {
            threads,
            width,
            threads_per_tile,
        } => {
            let w_max = max_cached_width_mwd::<T, Op>(
                params,
                op,
                dims.nx,
                dims.ny,
                *threads,
                *threads_per_tile,
            );
            let fits = *width <= w_max;
            p0_stream
                * if fits {
                    diamond_speedup(params, *width, radius)
                } else {
                    1.0
                }
        }
    };
    lups / 1.0e6
}

/// Score, prune, measure. `measure` runs one plan and returns its
/// MLUP/s; it is called for at most `min(top_k, enumerated/2)`
/// candidates — the model-ranked top of the field, with the `incumbent`
/// guaranteed a slot (replacing the weakest-ranked pick if needed) so a
/// tuned winner can never regress below the default configuration
/// without that being measured and visible.
pub fn tune<T: Real, Op: StencilOp<T>>(
    params: &MachineParams,
    op: &Op,
    dims: Dims3,
    mut candidates: Vec<Plan>,
    incumbent: Plan,
    cfg: &TuneConfig,
    mut measure: impl FnMut(&Plan) -> Result<f64, String>,
) -> TuneReport {
    if !candidates.contains(&incumbent) && incumbent.validate_for(dims, Op::RADIUS).is_ok() {
        candidates.push(incumbent.clone());
    }
    let enumerated = candidates.len();
    let mut rows: Vec<TuneRow> = candidates
        .into_iter()
        .map(|plan| {
            let predicted_mlups = predicted_mlups(params, op, dims, &plan);
            let incumbent = plan == incumbent;
            TuneRow {
                plan,
                predicted_mlups,
                measured_mlups: None,
                incumbent,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.predicted_mlups
            .partial_cmp(&a.predicted_mlups)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // The measurement budget: top-k by prediction, capped so at least
    // half of the enumerated field is never run, incumbent always in.
    let cap = (enumerated / 2).max(1);
    let k = cfg.top_k.clamp(1, cap);
    let mut picks: Vec<usize> = (0..rows.len().min(k)).collect();
    if let Some(inc) = rows.iter().position(|r| r.incumbent) {
        if !picks.contains(&inc) {
            picks.pop();
            picks.push(inc);
        }
    }

    let mut measured = 0usize;
    for i in picks {
        if let Ok(mlups) = measure(&rows[i].plan) {
            rows[i].measured_mlups = Some(mlups);
        }
        measured += 1;
    }

    // Measured rows first (best measured on top), pruned rows after,
    // still ordered by prediction.
    rows.sort_by(|a, b| match (a.measured_mlups, b.measured_mlups) {
        (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => b
            .predicted_mlups
            .partial_cmp(&a.predicted_mlups)
            .unwrap_or(std::cmp::Ordering::Equal),
    });

    TuneReport {
        rows,
        enumerated,
        measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_stencil::{Jacobi6, VarCoeff7};

    fn nehalem() -> MachineParams {
        MachineParams::nehalem_ep()
    }

    #[test]
    fn enumeration_spans_every_family_and_validates() {
        let p = nehalem();
        let dims = Dims3::cube(64);
        for family in MethodFamily::ALL {
            let plans = enumerate_family::<f64, _>(family, &p, &Jacobi6, dims, 4);
            assert!(!plans.is_empty(), "{family:?}");
            for plan in &plans {
                assert_eq!(plan.method.family(), family);
                plan.validate_for(dims, 1).unwrap();
                assert!(plan.method.threads() <= 4);
            }
        }
        let all = enumerate_all::<f64, _>(&p, &Jacobi6, dims, 4);
        assert!(all.len() >= 40, "rich candidate space, got {}", all.len());
    }

    #[test]
    fn enumeration_respects_small_grids() {
        // On a tiny grid the deep-pipeline candidates must be filtered.
        let p = nehalem();
        let plans =
            enumerate_family::<f64, _>(MethodFamily::Pipelined, &p, &Jacobi6, Dims3::cube(12), 4);
        for plan in &plans {
            plan.validate_for(Dims3::cube(12), 1).unwrap();
        }
    }

    #[test]
    fn model_demotes_uncacheable_candidates() {
        let p = nehalem();
        let dims = Dims3::cube(64);
        // A diamond too wide for the cache scores at baseline...
        let narrow = Plan::new(PlanMethod::Diamond {
            threads: 4,
            width: 8,
            threads_per_tile: 1,
        });
        let huge = Plan::new(PlanMethod::Diamond {
            threads: 4,
            width: 1 << 14,
            threads_per_tile: 1,
        });
        let s_narrow = predicted_mlups::<f64, _>(&p, &Jacobi6, dims, &narrow);
        let s_huge = predicted_mlups::<f64, _>(&p, &Jacobi6, dims, &huge);
        assert!(s_narrow > s_huge, "{s_narrow} vs {s_huge}");
        // ...and MWD widens the cacheable range at equal width.
        let mwd = Plan::new(PlanMethod::Diamond {
            threads: 4,
            width: 8,
            threads_per_tile: 4,
        });
        assert!(predicted_mlups::<f64, _>(&p, &Jacobi6, dims, &mwd) >= s_narrow);
        // Extra read streams lower every score.
        let v: VarCoeff7<f64> = VarCoeff7::banded(dims);
        assert!(predicted_mlups::<f64, _>(&p, &v, dims, &narrow) < s_narrow);
    }

    #[test]
    fn parallel_score_saturates() {
        let p = nehalem();
        let dims = Dims3::cube(64);
        let at = |threads| {
            predicted_mlups::<f64, _>(
                &p,
                &Jacobi6,
                dims,
                &Plan::new(PlanMethod::Parallel {
                    threads,
                    streaming_stores: true,
                }),
            )
        };
        assert!(at(2) > at(1));
        assert!((at(4) - at(8)).abs() < 1e-9, "bus saturated past Ms/Ms,1");
    }

    #[test]
    fn tune_prunes_at_least_half_and_keeps_incumbent() {
        let p = nehalem();
        let dims = Dims3::cube(64);
        let candidates = enumerate_all::<f64, _>(&p, &Jacobi6, dims, 4);
        let n = candidates.len();
        let incumbent = default_plan(MethodFamily::Parallel, 4);
        let mut calls = 0usize;
        let report = tune::<f64, _>(
            &p,
            &Jacobi6,
            dims,
            candidates,
            incumbent.clone(),
            &TuneConfig { top_k: 8 },
            |plan| {
                calls += 1;
                // Fake measurement: deterministic, favors diamond.
                Ok(match plan.method.family() {
                    MethodFamily::Diamond => 1000.0,
                    _ => 500.0,
                })
            },
        );
        assert_eq!(report.measured, calls);
        assert!(report.measured <= 8);
        assert!(report.pruning_ratio() <= 0.5, "{}", report.pruning_ratio());
        assert!(report.enumerated >= n);
        let inc = report.incumbent().expect("incumbent measured");
        assert_eq!(inc.plan, incumbent);
        let winner = report.winner().expect("winner");
        assert_eq!(winner.plan.method.family(), MethodFamily::Diamond);
        assert!(winner.measured_mlups >= inc.measured_mlups);
        // Measured rows lead the ranking.
        assert!(report.rows[0].measured_mlups.is_some());
        assert!(report.rows.last().unwrap().measured_mlups.is_none());
        assert!(report.mean_model_error().is_some());
    }

    #[test]
    fn tune_survives_measurement_failures() {
        let p = nehalem();
        let dims = Dims3::cube(64);
        let candidates = enumerate_all::<f64, _>(&p, &Jacobi6, dims, 2);
        let incumbent = default_plan(MethodFamily::Parallel, 2);
        let mut n = 0usize;
        let report = tune::<f64, _>(
            &p,
            &Jacobi6,
            dims,
            candidates,
            incumbent,
            &TuneConfig { top_k: 4 },
            |_| {
                n += 1;
                if n == 1 {
                    Err("transient".into())
                } else {
                    Ok(100.0 + n as f64)
                }
            },
        );
        assert!(report.winner().is_some());
        assert!(report.rows.iter().any(|r| r.measured_mlups.is_none()));
    }

    #[test]
    fn default_plans_are_valid_on_reasonable_problems() {
        let dims = Dims3::cube(64);
        for family in MethodFamily::ALL {
            for team in [1usize, 2, 4, 8] {
                default_plan(family, team).validate_for(dims, 1).unwrap();
            }
        }
    }
}
