//! The strategy IR: a serializable execution [`Plan`].
//!
//! A `Plan` pins down *everything* the facade needs to reproduce a
//! solver run — the method and all of its parameters (`T`, block, `d_u`,
//! sync mode, diamond width, MWD sub-team, team shape), the SIMD path,
//! and the distributed exchange mode — in the spirit of Patus
//! strategies: a small data program over the `auto`-tunable parameters,
//! separated from the stencil itself. Plans round-trip through JSON
//! (see [`crate::json`]) so winners can be persisted by the
//! [`crate::cache`] and replayed without re-tuning.

use tb_grid::Dims3;
use tb_stencil::config::GridScheme;
use tb_stencil::{DiamondConfig, PipelineConfig, SyncMode};

use crate::json::Json;

/// The five tunable method families.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MethodFamily {
    /// Thread-parallel standard sweeps (the baseline).
    Parallel,
    /// Pipelined temporal blocking on two grids.
    Pipelined,
    /// Pipelined temporal blocking on a compressed grid.
    Compressed,
    /// Wavefront temporal blocking.
    Wavefront,
    /// Wavefront-diamond temporal blocking (incl. MWD sub-teams).
    Diamond,
}

impl MethodFamily {
    pub const ALL: [MethodFamily; 5] = [
        MethodFamily::Parallel,
        MethodFamily::Pipelined,
        MethodFamily::Compressed,
        MethodFamily::Wavefront,
        MethodFamily::Diamond,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MethodFamily::Parallel => "parallel",
            MethodFamily::Pipelined => "pipelined",
            MethodFamily::Compressed => "compressed",
            MethodFamily::Wavefront => "wavefront",
            MethodFamily::Diamond => "diamond",
        }
    }
}

/// Parameters of a pipelined run (shared by the two-grid and compressed
/// schemes): the paper's `t`, `n`, `T`, block edges, and sync mode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipeParams {
    pub team_size: usize,
    pub n_teams: usize,
    pub updates_per_thread: usize,
    pub block: [usize; 3],
    pub sync: SyncMode,
}

/// Method plus parameters — one arm per executor the facade exposes.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanMethod {
    Parallel {
        threads: usize,
        streaming_stores: bool,
    },
    Pipelined(PipeParams),
    Compressed(PipeParams),
    Wavefront {
        threads: usize,
    },
    Diamond {
        threads: usize,
        width: usize,
        threads_per_tile: usize,
    },
}

impl PlanMethod {
    pub fn family(&self) -> MethodFamily {
        match self {
            PlanMethod::Parallel { .. } => MethodFamily::Parallel,
            PlanMethod::Pipelined(_) => MethodFamily::Pipelined,
            PlanMethod::Compressed(_) => MethodFamily::Compressed,
            PlanMethod::Wavefront { .. } => MethodFamily::Wavefront,
            PlanMethod::Diamond { .. } => MethodFamily::Diamond,
        }
    }

    /// Compute threads the method occupies.
    pub fn threads(&self) -> usize {
        match self {
            PlanMethod::Parallel { threads, .. } | PlanMethod::Wavefront { threads } => *threads,
            PlanMethod::Pipelined(p) | PlanMethod::Compressed(p) => p.team_size * p.n_teams,
            PlanMethod::Diamond { threads, .. } => *threads,
        }
    }
}

/// Halo-exchange mode for distributed solves, mirrored from
/// `tb_dist::ExchangeMode` without the dependency. Recorded in every
/// plan so a scheduler can replay hybrid runs; shared-memory solves
/// ignore it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExchangeIr {
    #[default]
    Sync,
    Overlapped,
    OverlappedCommThread,
}

impl ExchangeIr {
    pub fn name(self) -> &'static str {
        match self {
            ExchangeIr::Sync => "sync",
            ExchangeIr::Overlapped => "overlapped",
            ExchangeIr::OverlappedCommThread => "overlapped-comm-thread",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "sync" => Some(ExchangeIr::Sync),
            "overlapped" => Some(ExchangeIr::Overlapped),
            "overlapped-comm-thread" => Some(ExchangeIr::OverlappedCommThread),
            _ => None,
        }
    }
}

/// One reified execution plan.
#[derive(Clone, PartialEq, Debug)]
pub struct Plan {
    pub method: PlanMethod,
    /// Route through the vectorized row kernels (`true`) or pin the
    /// scalar path. Bitwise-identical either way; throughput differs.
    pub simd: bool,
    /// Distributed halo-exchange mode (ignored by shared-memory solves).
    pub exchange: ExchangeIr,
}

impl Plan {
    /// Plan for a method with the library defaults for the rest.
    pub fn new(method: PlanMethod) -> Self {
        Plan {
            method,
            simd: true,
            exchange: ExchangeIr::Sync,
        }
    }

    /// The pipeline configuration this plan encodes, when its method is
    /// one of the two pipelined families.
    pub fn pipeline_config(&self) -> Option<PipelineConfig> {
        let (p, scheme) = match &self.method {
            PlanMethod::Pipelined(p) => (p, GridScheme::TwoGrid),
            PlanMethod::Compressed(p) => (p, GridScheme::Compressed),
            _ => return None,
        };
        Some(PipelineConfig {
            team_size: p.team_size,
            n_teams: p.n_teams,
            updates_per_thread: p.updates_per_thread,
            block: p.block,
            sync: p.sync,
            scheme,
            layout: None,
            audit: false,
        })
    }

    /// The diamond configuration this plan encodes, if any.
    pub fn diamond_config(&self) -> Option<DiamondConfig> {
        match self.method {
            PlanMethod::Diamond {
                threads,
                width,
                threads_per_tile,
            } => Some(
                DiamondConfig::with_width(threads, width).with_threads_per_tile(threads_per_tile),
            ),
            _ => None,
        }
    }

    /// Re-validate against a concrete problem (`radius` is the stencil
    /// operator's). Every cached plan passes through this before use so
    /// a stale or hand-edited cache can never produce an invalid run.
    pub fn validate_for(&self, dims: Dims3, radius: usize) -> Result<(), String> {
        match &self.method {
            PlanMethod::Parallel { threads, .. } | PlanMethod::Wavefront { threads } => {
                if *threads == 0 {
                    return Err("plan needs at least one thread".into());
                }
                if dims.nx < 3 || dims.ny < 3 || dims.nz < 3 {
                    return Err(format!("grid {dims} has no interior"));
                }
                Ok(())
            }
            PlanMethod::Pipelined(_) | PlanMethod::Compressed(_) => {
                self.pipeline_config().unwrap().validate(dims)
            }
            PlanMethod::Diamond { .. } => self.diamond_config().unwrap().validate(dims, radius),
        }
    }

    /// Serialize to the JSON tree.
    pub fn to_json(&self) -> Json {
        let method = match &self.method {
            PlanMethod::Parallel {
                threads,
                streaming_stores,
            } => Json::obj(vec![
                ("kind", Json::str("parallel")),
                ("threads", Json::usize(*threads)),
                ("streaming_stores", Json::Bool(*streaming_stores)),
            ]),
            PlanMethod::Pipelined(p) => pipe_json("pipelined", p),
            PlanMethod::Compressed(p) => pipe_json("compressed", p),
            PlanMethod::Wavefront { threads } => Json::obj(vec![
                ("kind", Json::str("wavefront")),
                ("threads", Json::usize(*threads)),
            ]),
            PlanMethod::Diamond {
                threads,
                width,
                threads_per_tile,
            } => Json::obj(vec![
                ("kind", Json::str("diamond")),
                ("threads", Json::usize(*threads)),
                ("width", Json::usize(*width)),
                ("threads_per_tile", Json::usize(*threads_per_tile)),
            ]),
        };
        Json::obj(vec![
            ("method", method),
            ("simd", Json::Bool(self.simd)),
            ("exchange", Json::str(self.exchange.name())),
        ])
    }

    /// Parse a plan back out of the JSON tree.
    pub fn from_json(v: &Json) -> Result<Plan, String> {
        let m = v.get("method").ok_or("plan: missing method")?;
        let kind = m
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("plan: missing method.kind")?;
        let threads = |j: &Json| {
            j.get("threads")
                .and_then(Json::as_usize)
                .ok_or_else(|| "plan: missing threads".to_string())
        };
        let method = match kind {
            "parallel" => PlanMethod::Parallel {
                threads: threads(m)?,
                streaming_stores: m
                    .get("streaming_stores")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            },
            "pipelined" => PlanMethod::Pipelined(pipe_from_json(m)?),
            "compressed" => PlanMethod::Compressed(pipe_from_json(m)?),
            "wavefront" => PlanMethod::Wavefront {
                threads: threads(m)?,
            },
            "diamond" => PlanMethod::Diamond {
                threads: threads(m)?,
                width: m
                    .get("width")
                    .and_then(Json::as_usize)
                    .ok_or("plan: missing width")?,
                threads_per_tile: m
                    .get("threads_per_tile")
                    .and_then(Json::as_usize)
                    .unwrap_or(1),
            },
            other => return Err(format!("plan: unknown method kind {other:?}")),
        };
        let exchange = match v.get("exchange").and_then(Json::as_str) {
            None => ExchangeIr::Sync,
            Some(s) => {
                ExchangeIr::from_name(s).ok_or_else(|| format!("plan: unknown exchange {s:?}"))?
            }
        };
        Ok(Plan {
            method,
            simd: v.get("simd").and_then(Json::as_bool).unwrap_or(true),
            exchange,
        })
    }

    /// One-line human-readable description for reports and logs.
    pub fn label(&self) -> String {
        let base = match &self.method {
            PlanMethod::Parallel {
                threads,
                streaming_stores,
            } => format!(
                "parallel threads={threads}{}",
                if *streaming_stores { " nt" } else { "" }
            ),
            PlanMethod::Pipelined(p) => pipe_label("pipelined", p),
            PlanMethod::Compressed(p) => pipe_label("compressed", p),
            PlanMethod::Wavefront { threads } => format!("wavefront threads={threads}"),
            PlanMethod::Diamond {
                threads,
                width,
                threads_per_tile,
            } => format!("diamond threads={threads} w={width} tpt={threads_per_tile}"),
        };
        if self.simd {
            base
        } else {
            format!("{base} simd=off")
        }
    }
}

fn pipe_label(kind: &str, p: &PipeParams) -> String {
    let sync = match p.sync {
        SyncMode::Barrier => "barrier".to_string(),
        SyncMode::Relaxed { dl, du, dt } => format!("dl={dl},du={du},dt={dt}"),
    };
    format!(
        "{kind} t={} n={} T={} block={:?} {sync}",
        p.team_size, p.n_teams, p.updates_per_thread, p.block
    )
}

fn pipe_json(kind: &str, p: &PipeParams) -> Json {
    let sync = match p.sync {
        SyncMode::Barrier => Json::obj(vec![("mode", Json::str("barrier"))]),
        SyncMode::Relaxed { dl, du, dt } => Json::obj(vec![
            ("mode", Json::str("relaxed")),
            ("dl", Json::num(dl as f64)),
            ("du", Json::num(du as f64)),
            ("dt", Json::num(dt as f64)),
        ]),
    };
    Json::obj(vec![
        ("kind", Json::str(kind)),
        ("team_size", Json::usize(p.team_size)),
        ("n_teams", Json::usize(p.n_teams)),
        ("updates_per_thread", Json::usize(p.updates_per_thread)),
        (
            "block",
            Json::Arr(p.block.iter().map(|&b| Json::usize(b)).collect()),
        ),
        ("sync", sync),
    ])
}

fn pipe_from_json(m: &Json) -> Result<PipeParams, String> {
    let field = |k: &str| {
        m.get(k)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("plan: missing {k}"))
    };
    let block_arr = m
        .get("block")
        .and_then(Json::as_arr)
        .ok_or("plan: missing block")?;
    if block_arr.len() != 3 {
        return Err("plan: block must have 3 edges".into());
    }
    let mut block = [0usize; 3];
    for (slot, v) in block.iter_mut().zip(block_arr) {
        *slot = v.as_usize().ok_or("plan: bad block edge")?;
    }
    let sync = match m.get("sync") {
        None => SyncMode::relaxed_default(),
        Some(s) => match s.get("mode").and_then(Json::as_str) {
            Some("barrier") => SyncMode::Barrier,
            Some("relaxed") => SyncMode::Relaxed {
                dl: s.get("dl").and_then(Json::as_u64).unwrap_or(1),
                du: s.get("du").and_then(Json::as_u64).unwrap_or(4),
                dt: s.get("dt").and_then(Json::as_u64).unwrap_or(0),
            },
            other => return Err(format!("plan: unknown sync mode {other:?}")),
        },
    };
    Ok(PipeParams {
        team_size: field("team_size")?,
        n_teams: field("n_teams")?,
        updates_per_thread: field("updates_per_thread")?,
        block,
        sync,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_plans() -> Vec<Plan> {
        let pipe = PipeParams {
            team_size: 4,
            n_teams: 2,
            updates_per_thread: 2,
            block: [120, 20, 20],
            sync: SyncMode::Relaxed {
                dl: 1,
                du: 4,
                dt: 8,
            },
        };
        let barrier = PipeParams {
            sync: SyncMode::Barrier,
            ..pipe.clone()
        };
        let mut plans = vec![
            Plan::new(PlanMethod::Parallel {
                threads: 8,
                streaming_stores: true,
            }),
            Plan::new(PlanMethod::Pipelined(pipe.clone())),
            Plan::new(PlanMethod::Pipelined(barrier)),
            Plan::new(PlanMethod::Compressed(pipe)),
            Plan::new(PlanMethod::Wavefront { threads: 4 }),
            Plan::new(PlanMethod::Diamond {
                threads: 4,
                width: 16,
                threads_per_tile: 2,
            }),
        ];
        plans.push(Plan {
            simd: false,
            exchange: ExchangeIr::OverlappedCommThread,
            ..plans[5].clone()
        });
        plans
    }

    #[test]
    fn json_roundtrip_every_variant() {
        for plan in sample_plans() {
            let text = plan.to_json().to_json();
            let back = Plan::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, plan, "{text}");
        }
    }

    #[test]
    fn configs_reconstruct() {
        let plans = sample_plans();
        let cfg = plans[1].pipeline_config().unwrap();
        assert_eq!(cfg.scheme, GridScheme::TwoGrid);
        assert_eq!(cfg.stages(), 16);
        let cfg = plans[3].pipeline_config().unwrap();
        assert_eq!(cfg.scheme, GridScheme::Compressed);
        let dia = plans[5].diamond_config().unwrap();
        assert_eq!((dia.threads, dia.width, dia.threads_per_tile), (4, 16, 2));
        assert!(plans[0].pipeline_config().is_none());
        assert!(plans[0].diamond_config().is_none());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let plans = sample_plans();
        // 16-stage pipeline cannot fit a 10^3 grid.
        assert!(plans[1].validate_for(Dims3::cube(10), 1).is_err());
        assert!(plans[1].validate_for(Dims3::cube(64), 1).is_ok());
        // Diamond width below 2R is rejected by the diamond validator.
        let p = Plan::new(PlanMethod::Diamond {
            threads: 2,
            width: 2,
            threads_per_tile: 1,
        });
        assert!(p.validate_for(Dims3::cube(20), 2).is_err());
        assert!(p.validate_for(Dims3::cube(20), 1).is_ok());
        let z = Plan::new(PlanMethod::Parallel {
            threads: 0,
            streaming_stores: false,
        });
        assert!(z.validate_for(Dims3::cube(20), 1).is_err());
    }

    #[test]
    fn family_and_threads() {
        let plans = sample_plans();
        assert_eq!(plans[0].method.family().name(), "parallel");
        assert_eq!(plans[0].method.threads(), 8);
        assert_eq!(plans[1].method.threads(), 8); // 4 x 2 teams
        assert_eq!(plans[5].method.family(), MethodFamily::Diamond);
        assert_eq!(MethodFamily::ALL.len(), 5);
    }

    #[test]
    fn labels_are_informative() {
        let plans = sample_plans();
        assert!(plans[1].label().contains("T=2"));
        assert!(plans[6].label().contains("simd=off"));
    }
}
