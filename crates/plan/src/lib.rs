//! # tb-plan — strategy IR, model-pruned autotuning, persistent winners
//!
//! The paper tunes its temporal-blocking parameters by hand (§2: "the
//! block size was chosen such that…"); Patus-style autotuners make the
//! same choice mechanically by treating the *execution strategy* as
//! data. This crate supplies that layer:
//!
//! * [`ir`] — the strategy IR: a serializable [`Plan`] capturing the
//!   method (baseline / pipelined / compressed / wavefront / diamond)
//!   and every parameter the facade needs to replay it (`t`, `n`, `T`,
//!   block edges, `d_u` sync mode, diamond width, MWD sub-team, SIMD
//!   path, exchange mode);
//! * [`key`] — cache identity: [`MachineFingerprint`] (exact topology
//!   signature + calibrated bandwidths quantized into ±12.5% bands)
//!   plus [`PlanKey`] (operator, dims, sweep class, element type);
//! * [`tuner`] — model-pruned search: enumerate a candidate space,
//!   score every candidate with the `tb-model` predictions, measure
//!   only the top-K plus the incumbent, report predicted-vs-measured
//!   MLUP/s in a ranked [`TuneReport`];
//! * [`cache`] — the persistent JSON store ([`PlanCache`]) of winners
//!   and calibrations: a warm hit replays a plan with *zero*
//!   measurements (membench included), and every cached plan
//!   re-validates against the requesting problem before use;
//! * [`json`] — the minimal JSON tree backing persistence (the vendored
//!   `serde` is a no-op shim).
//!
//! The facade crate ties this to execution: see
//! `temporal_blocking::solve_tuned_on`.

pub mod cache;
pub mod ir;
pub mod json;
pub mod key;
pub mod tuner;

pub use cache::{CacheEntry, PlanCache, SharedPlanCache, SCHEMA_VERSION};
pub use ir::{ExchangeIr, MethodFamily, PipeParams, Plan, PlanMethod};
pub use json::Json;
pub use key::{bandwidth_band, element_name, sweeps_class, MachineFingerprint, PlanKey};
pub use tuner::{
    default_plan, enumerate_all, enumerate_family, predicted_mlups, tune, TuneConfig, TuneReport,
    TuneRow,
};
