//! Cache keys: machine fingerprint + problem identity.
//!
//! A cached plan is only trustworthy on the machine class it was tuned
//! on, for the operator/problem it was tuned for. [`MachineFingerprint`]
//! captures the machine half — exact topology (socket × core counts and
//! the shared cache, from `tb-topology` detection) plus the calibrated
//! bandwidths quantized into ±12.5% tolerance bands, so run-to-run
//! calibration jitter does not spuriously invalidate the cache while a
//! genuinely different memory subsystem does. [`PlanKey`] adds the
//! problem half: operator id, exact dims, a logarithmic sweep-count
//! class, and the element type.

use tb_grid::{Dims3, Real};
use tb_model::MachineParams;
use tb_topology::Machine;

/// Bandwidths are quantized into multiplicative bands of this ratio:
/// two measurements within ±12.5% of each other land in the same band.
const BAND_RATIO: f64 = 1.25;

/// Quantize a bandwidth (B/s) into its tolerance band index.
pub fn bandwidth_band(bytes_per_sec: f64) -> i32 {
    (bytes_per_sec.max(1.0).ln() / BAND_RATIO.ln()).round() as i32
}

/// The machine half of a plan-cache key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineFingerprint {
    /// Exact topology signature from [`Machine::signature`]
    /// (`sockets×cores+L<level>:<bytes>`).
    pub topology: String,
    /// [`bandwidth_band`] of the single-thread memory bandwidth `M_{s,1}`.
    pub ms1_band: i32,
    /// [`bandwidth_band`] of the saturated memory bandwidth `M_s`.
    pub ms_band: i32,
    /// [`bandwidth_band`] of the shared-cache bandwidth `M_c`.
    pub mc_band: i32,
}

impl MachineFingerprint {
    pub fn new(machine: &Machine, params: &MachineParams) -> Self {
        MachineFingerprint {
            topology: machine.signature(),
            ms1_band: bandwidth_band(params.ms1),
            ms_band: bandwidth_band(params.ms),
            mc_band: bandwidth_band(params.mc),
        }
    }

    /// Stable string form, used in cache keys.
    pub fn as_string(&self) -> String {
        format!(
            "{}|ms1:b{}|ms:b{}|mc:b{}",
            self.topology, self.ms1_band, self.ms_band, self.mc_band
        )
    }
}

/// Logarithmic sweep-count class: the bit length of `sweeps`, so plans
/// tuned at 8 sweeps are reused for 8..=15 but not for 100 (where e.g.
/// warm-up effects weigh differently). Class 0 only for `sweeps = 0`.
pub fn sweeps_class(sweeps: usize) -> u32 {
    usize::BITS - sweeps.leading_zeros()
}

/// The element type's short name (`"f64"`/`"f32"`), part of the key:
/// tuned widths and blocks depend on element size.
pub fn element_name<T: Real>() -> &'static str {
    std::any::type_name::<T>()
}

/// Full identity of a tuning problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanKey {
    pub fingerprint: MachineFingerprint,
    /// [`tb_stencil::StencilOp::name`] of the operator.
    pub op_id: String,
    pub dims: [usize; 3],
    pub sweeps_class: u32,
    pub element_type: String,
}

impl PlanKey {
    pub fn new<T: Real>(
        fingerprint: MachineFingerprint,
        op_id: &str,
        dims: Dims3,
        sweeps: usize,
    ) -> Self {
        PlanKey {
            fingerprint,
            op_id: op_id.to_string(),
            dims: [dims.nx, dims.ny, dims.nz],
            sweeps_class: sweeps_class(sweeps),
            element_type: element_name::<T>().to_string(),
        }
    }

    /// Stable string form — the map key in the persistent cache.
    pub fn as_string(&self) -> String {
        format!(
            "{}|op={}|dims={}x{}x{}|sc={}|elem={}",
            self.fingerprint.as_string(),
            self.op_id,
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.sweeps_class,
            self.element_type
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_absorb_jitter_but_split_machines() {
        // Jitter around a band center stays put (half-band = ±11.8%);
        // only a genuinely different memory subsystem changes the band.
        let center = 1.25f64.powi(103); // ≈ 9.6 GB/s
        let b = bandwidth_band(center);
        assert_eq!(bandwidth_band(center * 1.08), b, "+8% same band");
        assert_eq!(bandwidth_band(center * 0.94), b, "-6% same band");
        assert_ne!(bandwidth_band(center * 2.0), b, "2x different band");
        assert_ne!(bandwidth_band(center * 0.5), b, "half different band");
    }

    #[test]
    fn sweeps_class_is_logarithmic() {
        assert_eq!(sweeps_class(0), 0);
        assert_eq!(sweeps_class(1), 1);
        assert_eq!(sweeps_class(8), 4);
        assert_eq!(sweeps_class(15), 4);
        assert_eq!(sweeps_class(16), 5);
    }

    #[test]
    fn key_string_is_stable_and_discriminating() {
        let m = Machine::nehalem_ep();
        let p = MachineParams::nehalem_ep();
        let fp = MachineFingerprint::new(&m, &p);
        let k1 = PlanKey::new::<f64>(fp.clone(), "jacobi6", Dims3::cube(64), 8);
        let k2 = PlanKey::new::<f64>(fp.clone(), "jacobi6", Dims3::cube(64), 12);
        assert_eq!(k1.as_string(), k2.as_string(), "same sweep class");
        let k3 = PlanKey::new::<f32>(fp.clone(), "jacobi6", Dims3::cube(64), 8);
        assert_ne!(k1.as_string(), k3.as_string(), "element type splits");
        let k4 = PlanKey::new::<f64>(fp, "avg27", Dims3::cube(64), 8);
        assert_ne!(k1.as_string(), k4.as_string(), "operator splits");
    }

    #[test]
    fn fingerprint_from_same_inputs_is_identical() {
        let m = Machine::nehalem_ep();
        let p = MachineParams::nehalem_ep();
        assert_eq!(
            MachineFingerprint::new(&m, &p),
            MachineFingerprint::new(&m, &p)
        );
        // A slightly noisier calibration of the same machine: same bands.
        let jitter = MachineParams {
            ms: p.ms * 1.05,
            ms1: p.ms1 * 0.97,
            mc: p.mc * 1.02,
            ..p
        };
        assert_eq!(
            MachineFingerprint::new(&m, &p).as_string(),
            MachineFingerprint::new(&m, &jitter).as_string()
        );
    }

    #[test]
    fn element_names() {
        assert_eq!(element_name::<f64>(), "f64");
        assert_eq!(element_name::<f32>(), "f32");
    }
}
