//! The persistent plan cache.
//!
//! A versioned JSON store of tuning winners plus the membench
//! calibrations that fingerprinted them. A warm lookup costs *no*
//! measurement of any kind: the calibration section replays
//! `MachineParams` for a known topology signature (so the fingerprint
//! can be rebuilt without running membench), and the plan section
//! replays the winning [`Plan`] for a [`PlanKey`]. Entries from an
//! older schema, with corrupt JSON, or whose recorded dims disagree
//! with the request are rejected — the caller then re-tunes and the
//! store heals itself on the next save.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use tb_grid::Dims3;
use tb_model::MachineParams;

use crate::ir::Plan;
use crate::json::Json;
use crate::key::PlanKey;

/// On-disk schema version. Bump on any incompatible layout change; old
/// files are then treated as empty (re-tuned, rewritten), never
/// misread.
pub const SCHEMA_VERSION: u64 = 1;

/// One persisted tuning winner.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    pub plan: Plan,
    /// Problem dims the plan was tuned for (redundant with the key, but
    /// cross-checked on lookup so a hand-edited file cannot smuggle a
    /// plan onto the wrong problem).
    pub dims: [usize; 3],
    /// Measured MLUP/s of the winner at tune time.
    pub measured_mlups: f64,
    /// Model prediction for the winner at tune time.
    pub predicted_mlups: f64,
}

impl CacheEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plan", self.plan.to_json()),
            (
                "dims",
                Json::Arr(self.dims.iter().map(|&d| Json::usize(d)).collect()),
            ),
            ("measured_mlups", Json::num(self.measured_mlups)),
            ("predicted_mlups", Json::num(self.predicted_mlups)),
        ])
    }

    fn from_json(v: &Json) -> Result<CacheEntry, String> {
        let plan = Plan::from_json(v.get("plan").ok_or("entry: missing plan")?)?;
        let dims_arr = v
            .get("dims")
            .and_then(Json::as_arr)
            .ok_or("entry: missing dims")?;
        if dims_arr.len() != 3 {
            return Err("entry: dims must have 3 axes".into());
        }
        let mut dims = [0usize; 3];
        for (slot, d) in dims.iter_mut().zip(dims_arr) {
            *slot = d.as_usize().ok_or("entry: bad dim")?;
        }
        Ok(CacheEntry {
            plan,
            dims,
            measured_mlups: v
                .get("measured_mlups")
                .and_then(Json::as_f64)
                .ok_or("entry: missing measured_mlups")?,
            predicted_mlups: v
                .get("predicted_mlups")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

fn params_to_json(p: &MachineParams) -> Json {
    Json::obj(vec![
        ("ms", Json::num(p.ms)),
        ("ms1", Json::num(p.ms1)),
        ("mc", Json::num(p.mc)),
        ("cores_per_socket", Json::usize(p.cores_per_socket)),
        ("sockets", Json::usize(p.sockets)),
        ("cache_bytes", Json::usize(p.cache_bytes)),
    ])
}

fn params_from_json(v: &Json) -> Result<MachineParams, String> {
    let f = |k: &str| {
        v.get(k)
            .and_then(Json::as_f64)
            .filter(|x| *x > 0.0)
            .ok_or_else(|| format!("calibration: missing {k}"))
    };
    let u = |k: &str| {
        v.get(k)
            .and_then(Json::as_usize)
            .filter(|x| *x > 0)
            .ok_or_else(|| format!("calibration: missing {k}"))
    };
    Ok(MachineParams {
        ms: f("ms")?,
        ms1: f("ms1")?,
        mc: f("mc")?,
        cores_per_socket: u("cores_per_socket")?,
        sockets: u("sockets")?,
        cache_bytes: u("cache_bytes")?,
    })
}

/// The store: plans keyed by [`PlanKey::as_string`], calibrations keyed
/// by topology signature. Load-modify-save; insertion order is kept so
/// the file diffs cleanly.
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    path: Option<PathBuf>,
    plans: Vec<(String, CacheEntry)>,
    calibrations: Vec<(String, MachineParams)>,
}

impl PlanCache {
    /// A cache with no backing file — [`save`](Self::save) is a no-op.
    pub fn in_memory() -> PlanCache {
        PlanCache::default()
    }

    /// Default cache file: `$TB_PLAN_CACHE` if set, else
    /// `$XDG_CACHE_HOME/temporal-blocking/plans.json`, else
    /// `$HOME/.cache/temporal-blocking/plans.json`, else a relative
    /// `.tb-plan-cache.json` as a last resort.
    pub fn default_path() -> PathBuf {
        if let Ok(p) = std::env::var("TB_PLAN_CACHE") {
            if !p.is_empty() {
                return PathBuf::from(p);
            }
        }
        let base = std::env::var("XDG_CACHE_HOME")
            .ok()
            .filter(|p| !p.is_empty())
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var("HOME")
                    .ok()
                    .filter(|p| !p.is_empty())
                    .map(|h| PathBuf::from(h).join(".cache"))
            });
        match base {
            Some(dir) => dir.join("temporal-blocking").join("plans.json"),
            None => PathBuf::from(".tb-plan-cache.json"),
        }
    }

    /// Load from `path`. A missing file yields an empty cache bound to
    /// that path; a corrupt file or a stale schema yields an empty cache
    /// too (the old contents are discarded on the next save — plans from
    /// an incompatible schema are never trusted).
    pub fn load(path: impl Into<PathBuf>) -> PlanCache {
        let path = path.into();
        let mut cache = PlanCache {
            path: Some(path.clone()),
            ..PlanCache::default()
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return cache;
        };
        let Ok(root) = Json::parse(&text) else {
            return cache;
        };
        if root.get("schema").and_then(Json::as_u64) != Some(SCHEMA_VERSION) {
            return cache;
        }
        if let Some(pairs) = root.get("calibrations").and_then(Json::as_obj) {
            for (sig, v) in pairs {
                if let Ok(params) = params_from_json(v) {
                    cache.calibrations.push((sig.clone(), params));
                }
            }
        }
        if let Some(pairs) = root.get("plans").and_then(Json::as_obj) {
            for (key, v) in pairs {
                if let Ok(entry) = CacheEntry::from_json(v) {
                    cache.plans.push((key.clone(), entry));
                }
            }
        }
        cache
    }

    /// Load from [`default_path`](Self::default_path).
    pub fn load_default() -> PlanCache {
        PlanCache::load(PlanCache::default_path())
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Stored calibration for a topology signature.
    pub fn calibration(&self, topology: &str) -> Option<MachineParams> {
        self.calibrations
            .iter()
            .find(|(sig, _)| sig == topology)
            .map(|(_, p)| *p)
    }

    /// Insert or replace the calibration for a topology signature.
    pub fn store_calibration(&mut self, topology: &str, params: MachineParams) {
        match self
            .calibrations
            .iter_mut()
            .find(|(sig, _)| sig == topology)
        {
            Some((_, slot)) => *slot = params,
            None => self.calibrations.push((topology.to_string(), params)),
        }
    }

    /// A warm hit: the stored winner for `key`, provided its recorded
    /// dims match the request *and* the plan still validates against
    /// them. Anything stale returns `None` — the caller re-tunes.
    pub fn lookup(&self, key: &PlanKey, dims: Dims3, radius: usize) -> Option<&CacheEntry> {
        let k = key.as_string();
        let (_, entry) = self.plans.iter().find(|(s, _)| *s == k)?;
        if entry.dims != [dims.nx, dims.ny, dims.nz] {
            return None;
        }
        entry.plan.validate_for(dims, radius).ok()?;
        Some(entry)
    }

    /// Insert or replace the winner for `key`.
    pub fn store(&mut self, key: &PlanKey, entry: CacheEntry) {
        let k = key.as_string();
        match self.plans.iter_mut().find(|(s, _)| *s == k) {
            Some((_, slot)) => *slot = entry,
            None => self.plans.push((k, entry)),
        }
    }

    /// Drop the entry for `key` (e.g. to force a re-tune).
    pub fn evict(&mut self, key: &PlanKey) {
        let k = key.as_string();
        self.plans.retain(|(s, _)| *s != k);
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::usize(SCHEMA_VERSION as usize)),
            (
                "calibrations",
                Json::Obj(
                    self.calibrations
                        .iter()
                        .map(|(sig, p)| (sig.clone(), params_to_json(p)))
                        .collect(),
                ),
            ),
            (
                "plans",
                Json::Obj(
                    self.plans
                        .iter()
                        .map(|(k, e)| (k.clone(), e.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Persist to the backing file (creating parent directories), via a
    /// temp file + rename so a crashed writer never leaves a torn cache.
    /// No-op for in-memory caches.
    pub fn save(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json().to_json())?;
        std::fs::rename(&tmp, path)
    }
}

/// One in-process store per cache file, shared by every thread.
///
/// [`PlanCache`]'s plain load-modify-save flow is single-writer: two
/// scheduler workers tuning the same key concurrently would each load
/// the file, tune, and save — the slower writer silently dropping the
/// faster one's entry, and the shared `path.json.tmp` staging file
/// racing the rename. [`SharedPlanCache`] fixes both by interning one
/// shared store per (absolutized) path in a process-global registry:
/// every open of the same file yields the same store, all mutations and
/// saves serialize on its lock, and a winner stored by one thread is
/// immediately visible to every other thread *without* a reload.
///
/// External edits are still honored: the store remembers the file's
/// (mtime, length) at its last load/save and reloads before any access
/// when they changed — hand-edited plans, cleared files, and schema
/// bumps take effect in a long-lived server process, not just at the
/// next restart. Cross-*process* writers otherwise race at the file
/// level (last atomic rename wins, never a torn file).
#[derive(Clone)]
pub struct SharedPlanCache {
    inner: Arc<Mutex<SharedState>>,
}

struct SharedState {
    cache: PlanCache,
    /// (mtime, len) of the backing file as of the last load or save;
    /// `None` when the file did not exist.
    disk: Option<(std::time::SystemTime, u64)>,
}

fn disk_state(path: Option<&Path>) -> Option<(std::time::SystemTime, u64)> {
    let meta = std::fs::metadata(path?).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

impl SharedState {
    fn load(path: PathBuf) -> SharedState {
        let cache = PlanCache::load(path);
        let disk = disk_state(cache.path());
        SharedState { cache, disk }
    }
}

fn registry() -> &'static Mutex<HashMap<PathBuf, Arc<Mutex<SharedState>>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<SharedState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

impl SharedPlanCache {
    /// The shared store for `path`: loaded from disk on the first open
    /// in this process, the same in-memory store on every later open
    /// (different relative/absolute spellings of the same file unify).
    pub fn open(path: impl Into<PathBuf>) -> SharedPlanCache {
        let path = path.into();
        let key = std::path::absolute(&path).unwrap_or_else(|_| path.clone());
        let inner = Arc::clone(
            registry()
                .lock()
                .expect("plan-cache registry poisoned")
                .entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(SharedState::load(path)))),
        );
        SharedPlanCache { inner }
    }

    /// [`SharedPlanCache::open`] on [`PlanCache::default_path`].
    pub fn open_default() -> SharedPlanCache {
        SharedPlanCache::open(PlanCache::default_path())
    }

    /// Run `f` with exclusive access to the underlying store. Everything
    /// `f` mutates stays in memory; call [`PlanCache::save`] inside `f`
    /// (still under the lock) to persist atomically with the mutation.
    /// If the backing file changed on disk since the store last touched
    /// it, the store reloads first.
    pub fn with<R>(&self, f: impl FnOnce(&mut PlanCache) -> R) -> R {
        let mut guard = self.inner.lock().expect("plan cache store poisoned");
        let now = disk_state(guard.cache.path());
        if now != guard.disk {
            let path = guard
                .cache
                .path()
                .expect("pathless caches never change on disk");
            guard.cache = PlanCache::load(path.to_path_buf());
        }
        let r = f(&mut guard.cache);
        guard.disk = disk_state(guard.cache.path());
        r
    }

    /// Stored calibration for a topology signature.
    pub fn calibration(&self, topology: &str) -> Option<MachineParams> {
        self.with(|c| c.calibration(topology))
    }

    /// A warm hit, cloned out of the store (see [`PlanCache::lookup`]).
    pub fn lookup(&self, key: &PlanKey, dims: Dims3, radius: usize) -> Option<CacheEntry> {
        self.with(|c| c.lookup(key, dims, radius).cloned())
    }

    /// Insert the winner for `key` and persist, atomically with respect
    /// to every other thread sharing this store.
    pub fn store_and_save(&self, key: &PlanKey, entry: CacheEntry) -> io::Result<()> {
        self.with(|c| {
            c.store(key, entry);
            c.save()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{MethodFamily, PlanMethod};
    use crate::key::MachineFingerprint;
    use crate::tuner::default_plan;
    use tb_topology::Machine;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tb-plan-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn key(dims: Dims3) -> PlanKey {
        let fp = MachineFingerprint::new(&Machine::nehalem_ep(), &MachineParams::nehalem_ep());
        PlanKey::new::<f64>(fp, "jacobi6", dims, 8)
    }

    fn entry(dims: Dims3) -> CacheEntry {
        CacheEntry {
            plan: default_plan(MethodFamily::Diamond, 4),
            dims: [dims.nx, dims.ny, dims.nz],
            measured_mlups: 812.5,
            predicted_mlups: 900.0,
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let path = tmp("roundtrip.json");
        let dims = Dims3::cube(64);
        let mut c = PlanCache::load(&path);
        assert!(c.is_empty());
        c.store(&key(dims), entry(dims));
        c.store_calibration("2x4+L3:8388608", MachineParams::nehalem_ep());
        c.save().unwrap();

        let c2 = PlanCache::load(&path);
        assert_eq!(c2.len(), 1);
        let hit = c2.lookup(&key(dims), dims, 1).expect("warm hit");
        assert_eq!(hit, &entry(dims));
        let cal = c2.calibration("2x4+L3:8388608").expect("calibration hit");
        assert_eq!(cal, MachineParams::nehalem_ep());
        assert!(c2.calibration("1x64+nocache").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_schema_is_rejected_wholesale() {
        let path = tmp("stale.json");
        let dims = Dims3::cube(64);
        let mut c = PlanCache::load(&path);
        c.store(&key(dims), entry(dims));
        c.save().unwrap();
        // Rewrite the file under a future schema: everything discarded.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"schema\":1", "\"schema\":999")).unwrap();
        let c2 = PlanCache::load(&path);
        assert!(c2.is_empty());
        assert!(c2.lookup(&key(dims), dims, 1).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_yields_empty_cache() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        let c = PlanCache::load(&path);
        assert!(c.is_empty());
        // And it can recover by saving over the wreck.
        c.save().unwrap();
        assert!(Json::parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_dims_entries_are_rejected() {
        let dims = Dims3::cube(64);
        let mut c = PlanCache::in_memory();
        // An entry whose recorded dims disagree with the lookup request
        // (as if the file were hand-edited): no hit.
        let mut bad = entry(dims);
        bad.dims = [32, 32, 32];
        c.store(&key(dims), bad);
        assert!(c.lookup(&key(dims), dims, 1).is_none());
        // A plan that no longer validates on the requested dims: no hit.
        let mut invalid = entry(dims);
        invalid.plan = Plan::new(PlanMethod::Diamond {
            threads: 4,
            width: 2,
            threads_per_tile: 1,
        });
        c.store(&key(dims), invalid);
        assert!(c.lookup(&key(dims), dims, 2).is_none());
    }

    #[test]
    fn store_replaces_and_evict_removes() {
        let dims = Dims3::cube(64);
        let mut c = PlanCache::in_memory();
        c.store(&key(dims), entry(dims));
        let mut better = entry(dims);
        better.measured_mlups = 1500.0;
        c.store(&key(dims), better.clone());
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&key(dims), dims, 1), Some(&better));
        c.evict(&key(dims));
        assert!(c.is_empty());
        assert!(c.save().is_ok(), "in-memory save is a no-op");
    }

    #[test]
    fn shared_store_is_interned_per_path() {
        let path = tmp("shared-intern.json");
        let dims = Dims3::cube(48);
        let a = SharedPlanCache::open(&path);
        let b = SharedPlanCache::open(&path);
        a.with(|c| c.store(&key(dims), entry(dims)));
        // The second handle sees the first handle's store without any
        // reload: one in-process store per path.
        assert_eq!(b.lookup(&key(dims), dims, 1), Some(entry(dims)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_store_and_save_yields_one_entry_and_a_parseable_file() {
        let path = tmp("shared-concurrent.json");
        std::fs::remove_file(&path).ok();
        let dims = Dims3::cube(40);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let cache = SharedPlanCache::open(&path);
                    cache.store_and_save(&key(dims), entry(dims)).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // All eight writers landed on the same key: one entry, and the
        // file on disk is valid JSON holding exactly that entry.
        let on_disk = PlanCache::load(&path);
        assert_eq!(on_disk.len(), 1);
        assert_eq!(on_disk.lookup(&key(dims), dims, 1), Some(&entry(dims)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn env_override_sets_default_path() {
        // Serialized by cargo's per-process test env: just exercise the
        // XDG/HOME fallback shape without mutating the environment.
        let p = PlanCache::default_path();
        assert!(p.to_string_lossy().ends_with(".json") || p.ends_with(".tb-plan-cache.json"));
    }
}
