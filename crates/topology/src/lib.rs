//! # tb-topology — machine topology, cache groups, team layout, affinity
//!
//! Pipelined temporal blocking is *multicore-aware*: thread teams must run
//! on cores that share a cache ("cache groups", paper §1.3). This crate
//! models the hardware:
//!
//! * [`Machine`] — sockets, cores, cache levels and sharing,
//! * [`detect`] — best-effort Linux sysfs detection with a portable
//!   fallback,
//! * synthetic presets of the paper's testbeds ([`Machine::nehalem_ep`],
//!   [`Machine::core2_quad`]) used by the models and the cluster
//!   simulator,
//! * [`TeamLayout`] — mapping pipeline threads onto cache groups,
//! * [`affinity`] — best-effort thread pinning via a raw
//!   `sched_setaffinity` syscall on Linux (no-op elsewhere).

pub mod affinity;
pub mod detect;
pub mod machine;
pub mod team;

pub use machine::{CacheLevel, CacheScope, Machine, NumaDomain, Socket};
pub use team::TeamLayout;
