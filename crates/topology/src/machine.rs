//! Machine descriptions: sockets, cores, caches.

/// Sharing scope of a cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheScope {
    /// Private to one core (L1/L2 on Nehalem).
    PerCore,
    /// Shared by every core of a socket (Nehalem's L3) — the "cache
    /// group" that hosts one pipeline team.
    PerSocket,
}

/// One cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheLevel {
    pub level: u8,
    pub size_bytes: usize,
    pub scope: CacheScope,
}

/// One socket (NUMA locality domain) with its logical CPU ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Socket {
    pub id: usize,
    pub cpus: Vec<usize>,
}

/// One ccNUMA locality domain: the set of logical CPUs whose memory
/// controller owns pages first-touched by threads running on them.
/// Usually one per socket, but sub-NUMA clustering (and some AMD parts)
/// split a socket into several domains — which is why the machine model
/// carries them separately from [`Socket`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NumaDomain {
    pub id: usize,
    pub cpus: Vec<usize>,
}

/// A shared-memory node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Machine {
    pub name: String,
    pub sockets: Vec<Socket>,
    pub caches: Vec<CacheLevel>,
    /// Detected ccNUMA domains; empty means "not detected", in which
    /// case [`Machine::numa_nodes`] falls back to sockets-as-nodes (the
    /// right model for every machine the paper considers).
    pub numa: Vec<NumaDomain>,
}

impl Machine {
    /// Total number of logical CPUs.
    pub fn num_cpus(&self) -> usize {
        self.sockets.iter().map(|s| s.cpus.len()).sum()
    }

    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Cores per socket (assumes homogeneous sockets, asserted).
    pub fn cores_per_socket(&self) -> usize {
        let n = self.sockets.first().map(|s| s.cpus.len()).unwrap_or(0);
        debug_assert!(self.sockets.iter().all(|s| s.cpus.len() == n));
        n
    }

    /// The outermost shared cache (the cache-group cache); `None` when the
    /// machine has no shared cache (then teams degrade to size 1).
    pub fn shared_cache(&self) -> Option<CacheLevel> {
        self.caches
            .iter()
            .filter(|c| c.scope == CacheScope::PerSocket)
            .max_by_key(|c| c.level)
            .copied()
    }

    /// Cache groups: the sets of CPUs sharing the outermost shared cache.
    /// With per-socket sharing this is one group per socket; without any
    /// shared cache, each CPU is its own group.
    pub fn cache_groups(&self) -> Vec<Vec<usize>> {
        if self.shared_cache().is_some() {
            self.sockets.iter().map(|s| s.cpus.clone()).collect()
        } else {
            self.sockets
                .iter()
                .flat_map(|s| s.cpus.iter().map(|&c| vec![c]))
                .collect()
        }
    }

    /// The machine's ccNUMA locality domains: the detected domains when
    /// available, else one domain per socket (sockets-as-nodes — the
    /// model of the paper's Nehalem EP testbed, where each socket owns
    /// its memory controller).
    pub fn numa_nodes(&self) -> Vec<NumaDomain> {
        if !self.numa.is_empty() {
            return self.numa.clone();
        }
        self.sockets
            .iter()
            .map(|s| NumaDomain {
                id: s.id,
                cpus: s.cpus.clone(),
            })
            .collect()
    }

    /// Number of ccNUMA locality domains (≥ 1 on any machine with CPUs).
    pub fn num_numa_nodes(&self) -> usize {
        if self.numa.is_empty() {
            self.sockets.len()
        } else {
            self.numa.len()
        }
    }

    /// The NUMA domain id owning logical CPU `cpu`, if it exists here.
    pub fn numa_node_of(&self, cpu: usize) -> Option<usize> {
        self.numa_nodes()
            .iter()
            .find(|d| d.cpus.contains(&cpu))
            .map(|d| d.id)
    }

    /// Compact, stable description of the topology: socket count, cores
    /// per socket, the outermost shared cache, and the NUMA-domain
    /// count. This is the machine half of a plan-cache fingerprint
    /// (`tb-plan`), so it must be deterministic across detect runs on
    /// the same host and must change whenever the team geometry, cache
    /// capacity, or page-placement landscape the tuner saw does.
    pub fn signature(&self) -> String {
        let numa = self.num_numa_nodes();
        match self.shared_cache() {
            Some(c) => format!(
                "{}x{}+L{}:{}+n{numa}",
                self.num_sockets(),
                self.cores_per_socket(),
                c.level,
                c.size_bytes
            ),
            None => format!(
                "{}x{}+nocache+n{numa}",
                self.num_sockets(),
                self.cores_per_socket()
            ),
        }
    }

    /// The sub-machine containing exactly the listed logical CPUs:
    /// sockets keep their ids but lose every CPU outside `cores`, and
    /// sockets left empty disappear. The cache hierarchy is inherited —
    /// a slice of a socket still sits behind that socket's shared cache.
    ///
    /// This is how a multi-tenant scheduler hands each tenant a disjoint
    /// core set: slicing along [`Machine::cache_groups`] boundaries
    /// yields sub-machines whose [`Machine::signature`] is identical for
    /// identical slices, so plans tuned on one slice replay warm on any
    /// other slice of the same shape.
    ///
    /// # Panics
    /// Panics when no listed core exists on this machine (an empty
    /// machine cannot host a team).
    pub fn restrict(&self, cores: &[usize]) -> Machine {
        let keep: std::collections::HashSet<usize> = cores.iter().copied().collect();
        let sockets: Vec<Socket> = self
            .sockets
            .iter()
            .filter_map(|s| {
                let cpus: Vec<usize> = s
                    .cpus
                    .iter()
                    .copied()
                    .filter(|c| keep.contains(c))
                    .collect();
                (!cpus.is_empty()).then_some(Socket { id: s.id, cpus })
            })
            .collect();
        assert!(
            !sockets.is_empty(),
            "Machine::restrict: none of {cores:?} exists on {}",
            self.name
        );
        // Detected NUMA domains shrink with the slice (domains left
        // without CPUs disappear); an empty list stays empty, so the
        // sockets-as-nodes fallback keeps tracking the kept sockets.
        let numa: Vec<NumaDomain> = self
            .numa
            .iter()
            .filter_map(|d| {
                let cpus: Vec<usize> = d
                    .cpus
                    .iter()
                    .copied()
                    .filter(|c| keep.contains(c))
                    .collect();
                (!cpus.is_empty()).then_some(NumaDomain { id: d.id, cpus })
            })
            .collect();
        Machine {
            name: format!("{}[{} cores]", self.name, cores.len()),
            sockets,
            caches: self.caches.clone(),
            numa,
        }
    }

    /// The paper's test system: dual-socket Intel Nehalem EP (Xeon 5550),
    /// 4 cores/socket @ 2.66 GHz, shared 8 MB L3 per socket, 256 kB L2 and
    /// 32 kB L1D per core (§1.1).
    pub fn nehalem_ep() -> Machine {
        Machine {
            name: "Nehalem EP (Xeon 5550)".into(),
            sockets: vec![
                Socket {
                    id: 0,
                    cpus: (0..4).collect(),
                },
                Socket {
                    id: 1,
                    cpus: (4..8).collect(),
                },
            ],
            caches: vec![
                CacheLevel {
                    level: 1,
                    size_bytes: 32 * 1024,
                    scope: CacheScope::PerCore,
                },
                CacheLevel {
                    level: 2,
                    size_bytes: 256 * 1024,
                    scope: CacheScope::PerCore,
                },
                CacheLevel {
                    level: 3,
                    size_bytes: 8 * 1024 * 1024,
                    scope: CacheScope::PerSocket,
                },
            ],
            numa: Vec::new(),
        }
    }

    /// The older Core 2 quad design the paper contrasts against (refs. 2 and 10):
    /// two dual-core pairs, each pair sharing a 6 MB L2 — more
    /// bandwidth-starved, hence more to gain from temporal blocking.
    /// Modeled here as 2 "sockets" of 2 cores sharing L2.
    pub fn core2_quad() -> Machine {
        Machine {
            name: "Core 2 Quad".into(),
            sockets: vec![
                Socket {
                    id: 0,
                    cpus: vec![0, 1],
                },
                Socket {
                    id: 1,
                    cpus: vec![2, 3],
                },
            ],
            caches: vec![
                CacheLevel {
                    level: 1,
                    size_bytes: 32 * 1024,
                    scope: CacheScope::PerCore,
                },
                CacheLevel {
                    level: 2,
                    size_bytes: 6 * 1024 * 1024,
                    scope: CacheScope::PerSocket,
                },
            ],
            numa: Vec::new(),
        }
    }

    /// A flat fallback machine: `n` CPUs in one socket with a nominal
    /// shared cache. Used when detection fails.
    pub fn flat(n: usize) -> Machine {
        Machine {
            name: format!("flat-{n}"),
            sockets: vec![Socket {
                id: 0,
                cpus: (0..n.max(1)).collect(),
            }],
            caches: vec![CacheLevel {
                level: 3,
                size_bytes: 8 * 1024 * 1024,
                scope: CacheScope::PerSocket,
            }],
            numa: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_matches_paper() {
        let m = Machine::nehalem_ep();
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.num_cpus(), 8);
        assert_eq!(m.cores_per_socket(), 4);
        let l3 = m.shared_cache().unwrap();
        assert_eq!(l3.level, 3);
        assert_eq!(l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(m.cache_groups(), vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
    }

    #[test]
    fn core2_has_shared_l2() {
        let m = Machine::core2_quad();
        let c = m.shared_cache().unwrap();
        assert_eq!(c.level, 2);
        assert_eq!(m.cache_groups().len(), 2);
    }

    #[test]
    fn flat_machine_one_group() {
        let m = Machine::flat(6);
        assert_eq!(m.num_cpus(), 6);
        assert_eq!(m.cache_groups(), vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn signature_is_stable_and_discriminating() {
        let m = Machine::nehalem_ep();
        assert_eq!(m.signature(), "2x4+L3:8388608+n2");
        assert_eq!(m.signature(), Machine::nehalem_ep().signature());
        assert_ne!(m.signature(), Machine::core2_quad().signature());
        let mut bare = Machine::flat(3);
        bare.caches.clear();
        assert_eq!(bare.signature(), "1x3+nocache+n1");
    }

    #[test]
    fn restrict_keeps_only_listed_cores() {
        let m = Machine::nehalem_ep();
        let sub = m.restrict(&[4, 5, 6, 7]);
        assert_eq!(sub.num_sockets(), 1);
        assert_eq!(sub.sockets[0].id, 1);
        assert_eq!(sub.sockets[0].cpus, vec![4, 5, 6, 7]);
        assert_eq!(sub.shared_cache(), m.shared_cache());
        assert_eq!(sub.cache_groups(), vec![vec![4, 5, 6, 7]]);
    }

    #[test]
    fn identical_slices_share_a_signature() {
        // The scheduler's warm-plan transfer depends on this: two slices
        // of the same shape fingerprint identically.
        let m = Machine::nehalem_ep();
        let a = m.restrict(&[0, 1, 2, 3]);
        let b = m.restrict(&[4, 5, 6, 7]);
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "1x4+L3:8388608+n1");
        // A different shape is a different signature.
        assert_ne!(m.restrict(&[0, 1]).signature(), a.signature());
    }

    #[test]
    fn restrict_can_straddle_sockets() {
        let m = Machine::nehalem_ep();
        let sub = m.restrict(&[2, 3, 4, 5]);
        assert_eq!(sub.num_sockets(), 2);
        assert_eq!(sub.sockets[0].cpus, vec![2, 3]);
        assert_eq!(sub.sockets[1].cpus, vec![4, 5]);
        assert_eq!(sub.cache_groups(), vec![vec![2, 3], vec![4, 5]]);
    }

    #[test]
    #[should_panic(expected = "Machine::restrict")]
    fn restrict_to_unknown_cores_panics() {
        let _ = Machine::flat(2).restrict(&[7, 9]);
    }

    #[test]
    fn numa_fallback_is_sockets_as_nodes() {
        let m = Machine::nehalem_ep();
        assert!(m.numa.is_empty(), "presets carry no detected domains");
        assert_eq!(m.num_numa_nodes(), 2);
        let nodes = m.numa_nodes();
        assert_eq!(nodes[0].cpus, vec![0, 1, 2, 3]);
        assert_eq!(nodes[1].cpus, vec![4, 5, 6, 7]);
        assert_eq!(m.numa_node_of(5), Some(1));
        assert_eq!(m.numa_node_of(99), None);
        assert_eq!(Machine::flat(6).num_numa_nodes(), 1);
    }

    #[test]
    fn detected_numa_domains_override_the_fallback() {
        // Sub-NUMA clustering: one socket, two locality domains.
        let mut m = Machine::flat(8);
        m.numa = vec![
            NumaDomain {
                id: 0,
                cpus: vec![0, 1, 2, 3],
            },
            NumaDomain {
                id: 1,
                cpus: vec![4, 5, 6, 7],
            },
        ];
        assert_eq!(m.num_numa_nodes(), 2);
        assert_eq!(m.numa_node_of(6), Some(1));
        // And the signature discriminates on the node count.
        assert_ne!(m.signature(), Machine::flat(8).signature());
        assert!(m.signature().ends_with("+n2"));
    }

    #[test]
    fn restrict_keeps_only_the_slices_numa_nodes() {
        let m = Machine::nehalem_ep();
        // Fallback domains track the kept sockets.
        let sub = m.restrict(&[4, 5]);
        assert_eq!(sub.num_numa_nodes(), 1);
        assert_eq!(sub.numa_nodes()[0].id, 1);
        assert_eq!(sub.numa_nodes()[0].cpus, vec![4, 5]);
        assert_eq!(sub.numa_node_of(4), Some(1));
        assert_eq!(sub.numa_node_of(0), None);
        // Detected domains shrink the same way, empties dropped.
        let mut d = Machine::nehalem_ep();
        d.numa = vec![
            NumaDomain {
                id: 0,
                cpus: (0..4).collect(),
            },
            NumaDomain {
                id: 1,
                cpus: (4..8).collect(),
            },
        ];
        let sub = d.restrict(&[2, 3]);
        assert_eq!(
            sub.numa,
            vec![NumaDomain {
                id: 0,
                cpus: vec![2, 3]
            }]
        );
        let straddle = d.restrict(&[3, 4]);
        assert_eq!(straddle.num_numa_nodes(), 2);
    }

    #[test]
    fn machine_without_shared_cache_splits_groups() {
        let mut m = Machine::flat(3);
        m.caches.clear();
        assert!(m.shared_cache().is_none());
        assert_eq!(m.cache_groups(), vec![vec![0], vec![1], vec![2]]);
    }
}
