//! Best-effort host topology detection.
//!
//! On Linux, `/sys/devices/system/cpu/cpu*/topology/physical_package_id`
//! gives the socket of each online CPU and
//! `/sys/devices/system/cpu/cpu0/cache/index*/` describes the cache
//! hierarchy. Anything missing degrades gracefully to a flat machine with
//! `available_parallelism()` CPUs — detection must never fail, because the
//! solvers only use the topology as a placement hint.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::machine::{CacheLevel, CacheScope, Machine, NumaDomain, Socket};

/// Detect the host machine; never fails.
pub fn detect() -> Machine {
    let mut m = detect_from_sysfs(Path::new("/sys/devices/system/cpu")).unwrap_or_else(fallback);
    m.numa = detect_numa_from_sysfs(Path::new("/sys/devices/system/node"));
    m
}

/// Portable fallback: one socket holding every logical CPU.
pub fn fallback() -> Machine {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Machine::flat(n)
}

/// Parse a sysfs-like directory tree. Split out for testability: the unit
/// tests synthesize a fake sysfs.
pub fn detect_from_sysfs(root: &Path) -> Option<Machine> {
    let mut sockets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let entries = fs::read_dir(root).ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(cpu_id) = name
            .strip_prefix("cpu")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let pkg_path = entry.path().join("topology/physical_package_id");
        let pkg = fs::read_to_string(&pkg_path)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0);
        sockets.entry(pkg).or_default().push(cpu_id);
    }
    if sockets.is_empty() {
        return None;
    }
    for cpus in sockets.values_mut() {
        cpus.sort_unstable();
    }
    let caches = detect_caches(&root.join("cpu0/cache"));
    Some(Machine {
        name: "detected".into(),
        sockets: sockets
            .into_iter()
            .map(|(id, cpus)| Socket { id, cpus })
            .collect(),
        caches,
        numa: Vec::new(),
    })
}

/// Parse the ccNUMA domains from a `/sys/devices/system/node`-shaped
/// tree (`node<N>/cpulist` holds range syntax like `0-3,8-11`). Returns
/// an empty list when the tree is missing or unparsable — the
/// sockets-as-nodes fallback in [`Machine::numa_nodes`] then applies.
pub fn detect_numa_from_sysfs(root: &Path) -> Vec<NumaDomain> {
    let mut nodes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let Ok(entries) = fs::read_dir(root) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(node_id) = name
            .strip_prefix("node")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let Some(cpus) = fs::read_to_string(entry.path().join("cpulist"))
            .ok()
            .and_then(|s| parse_cpu_list(s.trim()))
        else {
            continue;
        };
        if !cpus.is_empty() {
            nodes.insert(node_id, cpus);
        }
    }
    nodes
        .into_iter()
        .map(|(id, cpus)| NumaDomain { id, cpus })
        .collect()
}

/// Parse sysfs cpulist syntax: comma-separated single ids and
/// inclusive ranges, e.g. `"0-3,8-11"` or `"0"`. `None` on any
/// malformed piece (detection degrades to the fallback, never panics).
fn parse_cpu_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for piece in s.split(',') {
        let piece = piece.trim();
        match piece.split_once('-') {
            Some((lo, hi)) => {
                let lo = lo.trim().parse::<usize>().ok()?;
                let hi = hi.trim().parse::<usize>().ok()?;
                if hi < lo {
                    return None;
                }
                out.extend(lo..=hi);
            }
            None => out.push(piece.parse::<usize>().ok()?),
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

fn detect_caches(cache_dir: &Path) -> Vec<CacheLevel> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(cache_dir) else {
        return default_caches();
    };
    for entry in entries.flatten() {
        let p = entry.path();
        let read = |f: &str| fs::read_to_string(p.join(f)).ok();
        let Some(level) = read("level").and_then(|s| s.trim().parse::<u8>().ok()) else {
            continue;
        };
        // Skip instruction caches.
        if let Some(t) = read("type") {
            if t.trim() == "Instruction" {
                continue;
            }
        }
        let Some(size) = read("size").and_then(|s| parse_size(s.trim())) else {
            continue;
        };
        // shared_cpu_list with more than one CPU => shared cache.
        let shared = read("shared_cpu_list")
            .map(|s| s.trim().contains(',') || s.trim().contains('-'))
            .unwrap_or(false);
        out.push(CacheLevel {
            level,
            size_bytes: size,
            scope: if shared {
                CacheScope::PerSocket
            } else {
                CacheScope::PerCore
            },
        });
    }
    if out.is_empty() {
        default_caches()
    } else {
        out.sort_by_key(|c| c.level);
        out.dedup_by_key(|c| c.level);
        out
    }
}

fn default_caches() -> Vec<CacheLevel> {
    vec![CacheLevel {
        level: 3,
        size_bytes: 8 * 1024 * 1024,
        scope: CacheScope::PerSocket,
    }]
}

/// Parse sysfs cache sizes like "32K", "8192K", "8M".
fn parse_size(s: &str) -> Option<usize> {
    if let Some(k) = s.strip_suffix(['K', 'k']) {
        k.parse::<usize>().ok().map(|v| v * 1024)
    } else if let Some(m) = s.strip_suffix(['M', 'm']) {
        m.parse::<usize>().ok().map(|v| v * 1024 * 1024)
    } else {
        s.parse::<usize>().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_size("32K"), Some(32 * 1024));
        assert_eq!(parse_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_size("123"), Some(123));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn detect_never_panics_and_has_cpus() {
        let m = detect();
        assert!(m.num_cpus() >= 1);
        assert!(!m.cache_groups().is_empty());
    }

    #[test]
    fn fallback_uses_available_parallelism() {
        let m = fallback();
        assert!(m.num_cpus() >= 1);
        assert_eq!(m.num_sockets(), 1);
    }

    #[test]
    fn synthetic_sysfs_is_parsed() {
        let dir = std::env::temp_dir().join(format!("tb-topo-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (cpu, pkg) in [(0, 0), (1, 0), (2, 1), (3, 1)] {
            let t = dir.join(format!("cpu{cpu}/topology"));
            fs::create_dir_all(&t).unwrap();
            fs::write(t.join("physical_package_id"), format!("{pkg}\n")).unwrap();
        }
        let c = dir.join("cpu0/cache/index3");
        fs::create_dir_all(&c).unwrap();
        fs::write(c.join("level"), "3\n").unwrap();
        fs::write(c.join("size"), "8192K\n").unwrap();
        fs::write(c.join("type"), "Unified\n").unwrap();
        fs::write(c.join("shared_cpu_list"), "0-3\n").unwrap();

        let m = detect_from_sysfs(&dir).unwrap();
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.sockets[0].cpus, vec![0, 1]);
        assert_eq!(m.sockets[1].cpus, vec![2, 3]);
        let l3 = m.shared_cache().unwrap();
        assert_eq!(l3.size_bytes, 8 * 1024 * 1024);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_returns_none() {
        assert!(detect_from_sysfs(Path::new("/nonexistent-tb-test")).is_none());
    }

    #[test]
    fn parse_cpu_lists() {
        assert_eq!(parse_cpu_list("0"), Some(vec![0]));
        assert_eq!(parse_cpu_list("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpu_list("0-2,8-9,4"), Some(vec![0, 1, 2, 4, 8, 9]));
        assert_eq!(parse_cpu_list(""), Some(vec![]));
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("x"), None);
    }

    #[test]
    fn synthetic_numa_sysfs_is_parsed() {
        let dir = std::env::temp_dir().join(format!("tb-numa-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (node, list) in [(0, "0-1,4\n"), (1, "2-3,5\n")] {
            let d = dir.join(format!("node{node}"));
            fs::create_dir_all(&d).unwrap();
            fs::write(d.join("cpulist"), list).unwrap();
        }
        // Noise entries must be ignored.
        fs::create_dir_all(dir.join("possible")).unwrap();
        let nodes = detect_numa_from_sysfs(&dir);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].id, 0);
        assert_eq!(nodes[0].cpus, vec![0, 1, 4]);
        assert_eq!(nodes[1].cpus, vec![2, 3, 5]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_numa_tree_yields_the_fallback() {
        assert!(detect_numa_from_sysfs(Path::new("/nonexistent-tb-numa")).is_empty());
        // And on the live host, detect() always reports >= 1 node.
        assert!(detect().num_numa_nodes() >= 1);
    }
}
