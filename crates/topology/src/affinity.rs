//! Best-effort thread pinning.
//!
//! The paper pins OpenMP threads to cores so that teams actually sit on
//! their cache group. Rust has no portable affinity API and this workspace
//! deliberately avoids extra dependencies, so we issue the raw
//! `sched_setaffinity` syscall on Linux (x86-64 and aarch64) and fall back
//! to a recorded no-op elsewhere. Pinning failures are reported, never
//! fatal: affinity is a performance hint, not a correctness requirement.

/// Outcome of a pin request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PinResult {
    /// The calling thread is now restricted to the requested CPU.
    Pinned,
    /// The platform does not support pinning; execution continues unpinned.
    Unsupported,
    /// The syscall failed (e.g. CPU offline, cpuset restriction).
    Failed(i64),
}

/// Pin the calling thread to logical CPU `cpu`.
pub fn pin_current_thread(cpu: usize) -> PinResult {
    pin_impl(cpu)
}

/// Pin according to a layout entry: `None` means "leave unpinned".
pub fn pin_opt(cpu: Option<usize>) -> PinResult {
    match cpu {
        Some(c) => pin_current_thread(c),
        None => PinResult::Unsupported,
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn pin_impl(cpu: usize) -> PinResult {
    // CPU set: 1024 bits is the kernel's default CPU_SETSIZE.
    let mut mask = [0u64; 16];
    if cpu >= 1024 {
        return PinResult::Failed(-22); // EINVAL
    }
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    let ret = unsafe {
        syscall3(
            SYS_SCHED_SETAFFINITY,
            0, // pid 0 = current thread
            std::mem::size_of_val(&mask) as u64,
            mask.as_ptr() as u64,
        )
    };
    if ret == 0 {
        PinResult::Pinned
    } else {
        PinResult::Failed(ret)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn pin_impl(_cpu: usize) -> PinResult {
    PinResult::Unsupported
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_SCHED_SETAFFINITY: u64 = 203;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_SCHED_SETAFFINITY: u64 = 122;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall3(nr: u64, a1: u64, a2: u64, a3: u64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr as i64 => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall3(nr: u64, a1: u64, a2: u64, a3: u64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 as i64 => ret,
        in("x1") a2,
        in("x2") a3,
        options(nostack),
    );
    ret
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_cpu0_succeeds_or_is_unsupported() {
        // CPU 0 always exists; on Linux this must succeed unless a cpuset
        // forbids it, in which case Failed is acceptable.
        let r = pin_current_thread(0);
        assert!(matches!(
            r,
            PinResult::Pinned | PinResult::Unsupported | PinResult::Failed(_)
        ));
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_ne!(r, PinResult::Unsupported);
    }

    #[test]
    fn pin_to_absurd_cpu_fails_gracefully() {
        let r = pin_current_thread(100_000);
        assert!(matches!(r, PinResult::Failed(_) | PinResult::Unsupported));
    }

    #[test]
    fn pin_opt_none_is_noop() {
        assert_eq!(pin_opt(None), PinResult::Unsupported);
    }

    #[test]
    fn pinned_thread_still_computes() {
        // Pin inside a scoped thread and do real work afterwards.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ = pin_current_thread(0);
                let sum: u64 = (0..1000u64).sum();
                assert_eq!(sum, 499500);
            });
        });
    }
}
