//! Mapping pipeline threads onto cache groups.
//!
//! A pipeline of `n_teams * team_size` threads is laid out so that team
//! `k` occupies `team_size` CPUs of cache group `k` (paper §1.3: "a team
//! runs on cores sharing a cache"). Teams may be smaller than the whole
//! cache group (the paper mentions but does not explore this; we support
//! it because hosts rarely look like the paper's testbed).

use crate::machine::Machine;

/// Thread-to-CPU assignment for a pipelined run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TeamLayout {
    /// `cpus[i]` is the CPU suggested for pipeline thread `i`; `None` when
    /// the machine has fewer distinct CPUs than threads (oversubscribed
    /// test / simulation runs).
    pub cpus: Vec<Option<usize>>,
    pub team_size: usize,
    pub n_teams: usize,
}

impl TeamLayout {
    /// Lay out `n_teams` teams of `team_size` threads on `machine`.
    ///
    /// Teams are assigned to cache groups round-robin; threads within a
    /// team take consecutive CPUs of their group. When a group is smaller
    /// than `team_size` or there are more teams than groups, the layout
    /// wraps around — still correct, just without the cache benefit —
    /// and `oversubscribed()` reports it.
    pub fn new(machine: &Machine, team_size: usize, n_teams: usize) -> Self {
        assert!(team_size >= 1 && n_teams >= 1);
        let groups = machine.cache_groups();
        let mut cpus = Vec::with_capacity(team_size * n_teams);
        for team in 0..n_teams {
            let group = &groups[team % groups.len()];
            for member in 0..team_size {
                if groups.len() >= n_teams && group.len() >= team_size {
                    cpus.push(Some(group[member % group.len()]));
                } else if machine.num_cpus() >= team_size * n_teams {
                    // Fall back to linear placement over all CPUs.
                    let linear = team * team_size + member;
                    let all: Vec<usize> = groups.iter().flatten().copied().collect();
                    cpus.push(all.get(linear).copied());
                } else {
                    cpus.push(None);
                }
            }
        }
        Self {
            cpus,
            team_size,
            n_teams,
        }
    }

    /// Total pipeline threads.
    pub fn threads(&self) -> usize {
        self.team_size * self.n_teams
    }

    /// Team index of pipeline thread `i`.
    pub fn team_of(&self, i: usize) -> usize {
        i / self.team_size
    }

    /// True if distinct threads had to share CPUs (or got no pin at all).
    pub fn oversubscribed(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for c in &self.cpus {
            match c {
                None => return true,
                Some(c) => {
                    if !seen.insert(*c) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_socket_team() {
        // One team of 4 on the paper's machine: socket 0's CPUs.
        let m = Machine::nehalem_ep();
        let l = TeamLayout::new(&m, 4, 1);
        assert_eq!(l.cpus, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn nehalem_node_two_teams() {
        // Two teams of 4: one per socket — the paper's node configuration.
        let m = Machine::nehalem_ep();
        let l = TeamLayout::new(&m, 4, 2);
        assert_eq!(l.threads(), 8);
        assert_eq!(&l.cpus[0..4], &[Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(&l.cpus[4..8], &[Some(4), Some(5), Some(6), Some(7)]);
        assert_eq!(l.team_of(0), 0);
        assert_eq!(l.team_of(5), 1);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn smaller_team_than_group() {
        let m = Machine::nehalem_ep();
        let l = TeamLayout::new(&m, 2, 2);
        assert_eq!(l.cpus, vec![Some(0), Some(1), Some(4), Some(5)]);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn oversubscription_detected() {
        let m = Machine::flat(2);
        let l = TeamLayout::new(&m, 4, 2);
        assert_eq!(l.threads(), 8);
        assert!(l.oversubscribed());
    }

    #[test]
    fn more_teams_than_groups_linear_fallback() {
        let m = Machine::flat(8);
        let l = TeamLayout::new(&m, 2, 4);
        // 8 threads on 8 cpus: all pinned, no sharing.
        assert_eq!(l.threads(), 8);
        assert!(!l.oversubscribed());
    }
}
