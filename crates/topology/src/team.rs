//! Mapping pipeline threads onto cache groups.
//!
//! A pipeline of `n_teams * team_size` threads is laid out so that team
//! `k` occupies `team_size` CPUs of cache group `k` (paper §1.3: "a team
//! runs on cores sharing a cache"). Teams may be smaller than the whole
//! cache group (the paper mentions but does not explore this; we support
//! it because hosts rarely look like the paper's testbed).

use crate::machine::Machine;

/// Thread-to-CPU assignment for a pipelined run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TeamLayout {
    /// `cpus[i]` is the CPU suggested for pipeline thread `i`; `None` when
    /// the machine has fewer distinct CPUs than threads (oversubscribed
    /// test / simulation runs).
    pub cpus: Vec<Option<usize>>,
    pub team_size: usize,
    pub n_teams: usize,
    /// CPU reserved for a dedicated communication thread (the paper's
    /// §2.3 proposal: one core drives the halo traffic while the
    /// remaining `cores − 1` advance the interior). `None` when no core
    /// was carved out — compute teams then own the whole machine.
    pub comm_core: Option<usize>,
}

impl TeamLayout {
    /// Lay out `n_teams` teams of `team_size` threads on `machine`.
    ///
    /// Teams are assigned to cache groups round-robin; threads within a
    /// team take consecutive CPUs of their group. When a group is smaller
    /// than `team_size` or there are more teams than groups, the layout
    /// wraps around — still correct, just without the cache benefit —
    /// and `oversubscribed()` reports it.
    pub fn new(machine: &Machine, team_size: usize, n_teams: usize) -> Self {
        assert!(team_size >= 1 && n_teams >= 1);
        let cpus = assign(&machine.cache_groups(), team_size, n_teams);
        Self {
            cpus,
            team_size,
            n_teams,
            comm_core: None,
        }
    }

    /// Like [`TeamLayout::new`], but reserve one CPU for a dedicated
    /// communication thread so the compute teams are sized to
    /// `cores − 1` (the paper's distributed-overlap placement).
    ///
    /// The comm core is the machine's last CPU — the tail of the last
    /// cache group, so team 0 keeps a full group to itself. When the
    /// machine has a single CPU nothing can be carved out: the layout
    /// degenerates to [`TeamLayout::new`] with `comm_core = None` (the
    /// comm thread then time-shares, which is still correct, just
    /// without the wall-clock overlap).
    pub fn with_comm_core(machine: &Machine, team_size: usize, n_teams: usize) -> Self {
        assert!(team_size >= 1 && n_teams >= 1);
        let mut groups = machine.cache_groups();
        let comm_core = if machine.num_cpus() >= 2 {
            let core = groups.last_mut().and_then(|g| g.pop());
            groups.retain(|g| !g.is_empty());
            core
        } else {
            None
        };
        let cpus = assign(&groups, team_size, n_teams);
        Self {
            cpus,
            team_size,
            n_teams,
            comm_core,
        }
    }

    /// Total pipeline threads.
    pub fn threads(&self) -> usize {
        self.team_size * self.n_teams
    }

    /// Team index of pipeline thread `i`.
    pub fn team_of(&self, i: usize) -> usize {
        i / self.team_size
    }

    /// True if distinct threads had to share CPUs (or got no pin at all).
    /// A carved-out comm core counts as occupied: compute threads landing
    /// on it would defeat the overlap.
    pub fn oversubscribed(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        if let Some(c) = self.comm_core {
            seen.insert(c);
        }
        for c in &self.cpus {
            match c {
                None => return true,
                Some(c) => {
                    if !seen.insert(*c) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Round-robin team → cache-group assignment shared by both
/// constructors; `groups` is the machine's cache groups minus any
/// carved-out comm core.
fn assign(groups: &[Vec<usize>], team_size: usize, n_teams: usize) -> Vec<Option<usize>> {
    if groups.is_empty() {
        return vec![None; team_size * n_teams];
    }
    let num_cpus: usize = groups.iter().map(Vec::len).sum();
    let mut cpus = Vec::with_capacity(team_size * n_teams);
    for team in 0..n_teams {
        let group = &groups[team % groups.len()];
        for member in 0..team_size {
            if groups.len() >= n_teams && group.len() >= team_size {
                cpus.push(Some(group[member % group.len()]));
            } else if num_cpus >= team_size * n_teams {
                // Fall back to linear placement over all CPUs.
                let linear = team * team_size + member;
                let all: Vec<usize> = groups.iter().flatten().copied().collect();
                cpus.push(all.get(linear).copied());
            } else {
                cpus.push(None);
            }
        }
    }
    cpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_socket_team() {
        // One team of 4 on the paper's machine: socket 0's CPUs.
        let m = Machine::nehalem_ep();
        let l = TeamLayout::new(&m, 4, 1);
        assert_eq!(l.cpus, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn nehalem_node_two_teams() {
        // Two teams of 4: one per socket — the paper's node configuration.
        let m = Machine::nehalem_ep();
        let l = TeamLayout::new(&m, 4, 2);
        assert_eq!(l.threads(), 8);
        assert_eq!(&l.cpus[0..4], &[Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(&l.cpus[4..8], &[Some(4), Some(5), Some(6), Some(7)]);
        assert_eq!(l.team_of(0), 0);
        assert_eq!(l.team_of(5), 1);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn smaller_team_than_group() {
        let m = Machine::nehalem_ep();
        let l = TeamLayout::new(&m, 2, 2);
        assert_eq!(l.cpus, vec![Some(0), Some(1), Some(4), Some(5)]);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn oversubscription_detected() {
        let m = Machine::flat(2);
        let l = TeamLayout::new(&m, 4, 2);
        assert_eq!(l.threads(), 8);
        assert!(l.oversubscribed());
    }

    #[test]
    fn more_teams_than_groups_linear_fallback() {
        let m = Machine::flat(8);
        let l = TeamLayout::new(&m, 2, 4);
        // 8 threads on 8 cpus: all pinned, no sharing.
        assert_eq!(l.threads(), 8);
        assert!(!l.oversubscribed());
    }

    #[test]
    fn comm_core_carved_from_the_last_group() {
        // Nehalem node, one 3-thread team per socket: CPU 7 goes to the
        // comm thread, socket 1's team uses CPUs 4..6.
        let m = Machine::nehalem_ep();
        let l = TeamLayout::with_comm_core(&m, 3, 2);
        assert_eq!(l.comm_core, Some(7));
        assert_eq!(&l.cpus[0..3], &[Some(0), Some(1), Some(2)]);
        assert_eq!(&l.cpus[3..6], &[Some(4), Some(5), Some(6)]);
        assert!(!l.oversubscribed());
        assert!(
            l.cpus.iter().all(|c| *c != l.comm_core),
            "no compute thread may land on the comm core"
        );
    }

    #[test]
    fn comm_core_counts_toward_oversubscription() {
        // 4 CPUs, comm core takes one: a 4-thread compute team must wrap.
        let m = Machine::flat(4);
        let full = TeamLayout::new(&m, 4, 1);
        assert!(!full.oversubscribed());
        let carved = TeamLayout::with_comm_core(&m, 4, 1);
        assert_eq!(carved.comm_core, Some(3));
        assert!(carved.oversubscribed(), "cores − 1 left for 4 threads");
        let fitting = TeamLayout::with_comm_core(&m, 3, 1);
        assert!(!fitting.oversubscribed());
    }

    #[test]
    fn single_cpu_machine_cannot_carve() {
        let m = Machine::flat(1);
        let l = TeamLayout::with_comm_core(&m, 1, 1);
        assert_eq!(l.comm_core, None);
        assert_eq!(l.cpus, vec![Some(0)]);
    }
}
