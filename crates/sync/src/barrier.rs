//! Sense-reversing spin barrier with a spin-then-park fallback.
//!
//! `std::sync::Barrier` parks threads through a mutex/condvar, which costs
//! microseconds per crossing; the pipelined-with-barrier executor crosses a
//! barrier after *every block update*, so a spinning implementation is
//! required to reproduce the paper's "pipeline w/ barrier" data point
//! faithfully. The barrier spins with backoff and yields when
//! oversubscribed.
//!
//! Pure spinning is the wrong trade once a crossing takes long — a worker
//! stalled behind a slow teammate (an imbalanced diamond tile, a comm
//! worker mid-exchange, an oversubscribed CI box) burns a core that the
//! slow thread may need. After a bounded spin budget, waiters therefore
//! *park* and the leader unparks them: fast crossings never leave the
//! spin path, slow ones stop burning cycles.

use std::mem;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::{self, Thread};
use std::time::Duration;

use crossbeam_utils::{Backoff, CachePadded};
use parking_lot::Mutex;

/// Spin iterations a waiter performs before parking. Generous enough
/// that back-to-back block updates (the hot path this barrier exists
/// for) never park; small enough that a genuinely stalled crossing
/// stops burning its core within tens of microseconds.
pub const DEFAULT_SPIN_BUDGET: usize = 10_000;

/// Parked waiters re-check the generation on this period even without
/// an unpark, so a wakeup lost to the register/take race only costs one
/// timeout instead of a hang.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// A reusable spin barrier for a fixed set of `n` threads.
pub struct SpinBarrier {
    n: usize,
    spin_budget: usize,
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicUsize>,
    /// Waiters that exhausted their spin budget this generation. The
    /// leader takes the whole list and unparks everyone. A waiter whose
    /// generation flips between registering and parking leaves a stale
    /// entry behind; the next leader's unpark of it is a benign no-op
    /// (`std::thread::park` tolerates spurious wakeups by contract).
    parked: Mutex<Vec<Thread>>,
}

impl SpinBarrier {
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            spin_budget: DEFAULT_SPIN_BUDGET,
            arrived: CachePadded::new(AtomicUsize::new(0)),
            generation: CachePadded::new(AtomicUsize::new(0)),
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Override the spin budget ([`DEFAULT_SPIN_BUDGET`]): iterations a
    /// waiter spins before parking. `0` parks immediately (exercises the
    /// parked path deterministically — used by the contention tests);
    /// `usize::MAX` never parks (the historical pure-spin behaviour).
    pub fn with_spin_budget(mut self, budget: usize) -> Self {
        self.spin_budget = budget;
        self
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block until all `n` threads have called `wait` for this
    /// generation — spinning with backoff up to the spin budget, parked
    /// beyond it. Returns `true` on exactly one thread per generation
    /// (the "leader", the last to arrive).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let prior = self.arrived.fetch_add(1, Ordering::AcqRel);
        if prior + 1 == self.n {
            // Last thread: reset, release everyone, wake the parked.
            self.arrived.store(0, Ordering::Release);
            self.generation.store(gen + 1, Ordering::Release);
            let waiters = mem::take(&mut *self.parked.lock());
            for t in waiters {
                t.unpark();
            }
            true
        } else {
            let backoff = Backoff::new();
            let mut spins = 0usize;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < self.spin_budget {
                    spins += 1;
                    if backoff.is_completed() {
                        thread::yield_now();
                    } else {
                        backoff.snooze();
                    }
                } else {
                    // Register once, then park until the generation
                    // advances. The leader may have taken the list just
                    // before we registered — the timeout bounds that
                    // lost wakeup to one PARK_TIMEOUT.
                    self.parked.lock().push(thread::current());
                    while self.generation.load(Ordering::Acquire) == gen {
                        thread::park_timeout(PARK_TIMEOUT);
                    }
                    break;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SpinBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn counts_participants() {
        assert_eq!(SpinBarrier::new(4).participants(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }

    /// Runs the leader-uniqueness contention check for one spin budget.
    fn leaders_are_unique_with_budget(budget: usize, rounds: usize) {
        const THREADS: usize = 4;
        let barrier = SpinBarrier::new(THREADS).with_spin_budget(budget);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..rounds {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), rounds, "budget {budget}");
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        leaders_are_unique_with_budget(DEFAULT_SPIN_BUDGET, 200);
    }

    #[test]
    fn exactly_one_leader_per_generation_on_the_parked_path() {
        // Budget 0: every non-leader parks every round, so the whole
        // register/park/unpark protocol is exercised 200 times.
        leaders_are_unique_with_budget(0, 200);
        // Budget 1: threads race between the spin and park paths, the
        // mixed case an imbalanced real crossing produces.
        leaders_are_unique_with_budget(1, 200);
    }

    #[test]
    fn barrier_orders_phased_increments() {
        // Each round, every thread increments a shared counter, then the
        // barrier; after the barrier all THREADS increments of the round
        // must be visible. A broken barrier shows partial sums. Covers
        // both the spin path (default budget) and the parked path
        // (budget 0), which must provide the same ordering guarantee.
        const THREADS: usize = 4;
        const ROUNDS: usize = 100;
        for budget in [DEFAULT_SPIN_BUDGET, 0] {
            let barrier = SpinBarrier::new(THREADS).with_spin_budget(budget);
            let counter = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    s.spawn(|| {
                        for round in 1..=ROUNDS {
                            counter.fetch_add(1, Ordering::AcqRel);
                            barrier.wait();
                            let seen = counter.load(Ordering::Acquire);
                            assert!(
                                seen >= round * THREADS,
                                "budget {budget} round {round}: saw {seen}, expected >= {}",
                                round * THREADS
                            );
                            barrier.wait();
                        }
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), THREADS * ROUNDS);
        }
    }

    #[test]
    fn oversubscribed_parked_barrier_makes_progress() {
        // More threads than any CI runner has cores, all parking
        // immediately: the barrier must still advance generation by
        // generation without livelock or lost wakeups.
        const THREADS: usize = 32;
        const ROUNDS: usize = 50;
        let barrier = SpinBarrier::new(THREADS).with_spin_budget(0);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }
}
