//! Sense-reversing spin barrier.
//!
//! `std::sync::Barrier` parks threads through a mutex/condvar, which costs
//! microseconds per crossing; the pipelined-with-barrier executor crosses a
//! barrier after *every block update*, so a spinning implementation is
//! required to reproduce the paper's "pipeline w/ barrier" data point
//! faithfully. The barrier spins with backoff and yields when
//! oversubscribed.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

use crate::spin::spin_wait_until;

/// A reusable spin barrier for a fixed set of `n` threads.
pub struct SpinBarrier {
    n: usize,
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicUsize>,
}

impl SpinBarrier {
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            arrived: CachePadded::new(AtomicUsize::new(0)),
            generation: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block (spinning) until all `n` threads have called `wait` for this
    /// generation. Returns `true` on exactly one thread per generation
    /// (the "leader", the last to arrive).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let prior = self.arrived.fetch_add(1, Ordering::AcqRel);
        if prior + 1 == self.n {
            // Last thread: reset and release everyone.
            self.arrived.store(0, Ordering::Release);
            self.generation.store(gen + 1, Ordering::Release);
            true
        } else {
            spin_wait_until(|| self.generation.load(Ordering::Acquire) != gen);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SpinBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn counts_participants() {
        assert_eq!(SpinBarrier::new(4).participants(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(THREADS);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }

    #[test]
    fn barrier_orders_phased_increments() {
        // Each round, every thread increments a shared counter, then the
        // barrier; after the barrier all THREADS increments of the round
        // must be visible. A broken barrier shows partial sums.
        const THREADS: usize = 4;
        const ROUNDS: usize = 100;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 1..=ROUNDS {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        let seen = counter.load(Ordering::Acquire);
                        assert!(
                            seen >= round * THREADS,
                            "round {round}: saw {seen}, expected >= {}",
                            round * THREADS
                        );
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ROUNDS);
    }
}
