//! # tb-sync — synchronization substrate for pipelined temporal blocking
//!
//! The paper (§"Relaxed synchronization") observes that a global barrier
//! after every block update costs hundreds to thousands of cycles and
//! replaces it with per-thread progress counters and two "soft" distance
//! conditions (Eq. 3):
//!
//! ```text
//! c_{i-1} - c_i >= d_l   (averts data races: predecessor stays ahead)
//! c_i - c_{i+1} <= d_u   (bounds the lead: blocks must stay in cache)
//! ```
//!
//! This crate implements both synchronization styles:
//!
//! * [`SpinBarrier`] — a sense-reversing spin barrier (the "global
//!   barrier" variant of the paper, and the team-sweep separator),
//! * [`ProgressCounters`] — cache-line-padded per-thread counters (the
//!   paper's `volatile` counters, here with release/acquire atomics),
//! * [`PipelineSync`] — the full relaxed scheme with lower/upper distances
//!   `d_l`/`d_u` and the team delay `d_t` applied at team boundaries,
//! * [`Handoff`] — the flag/slot handoff a dedicated communication
//!   thread uses to tell the compute team "halos ready" without a full
//!   barrier (the distributed overlap's §2.3 coupling point).

pub mod barrier;
pub mod counter;
pub mod handoff;
pub mod pipeline;
pub mod spin;

pub use barrier::SpinBarrier;
pub use counter::ProgressCounters;
pub use handoff::Handoff;
pub use pipeline::{PipelineSync, SyncMode};
pub use spin::spin_wait_until;
