//! The relaxed pipeline synchronization scheme of the paper (Eq. 3).
//!
//! Threads `t_0 … t_{n-1}` form one long pipeline (across all teams).
//! Thread `t_i` may start its next block only when
//!
//! ```text
//! c_{i-1} - c_i >= d_l    and    c_i - c_{i+1} <= d_u
//! ```
//!
//! where `c_i` counts blocks completed by `t_i` in the current team sweep.
//! The first condition keeps the predecessor far enough ahead to avert
//! data races (the plan geometry needs `d_l >= 1`); the second stops a
//! thread from racing ahead so far that blocks fall out of the shared
//! cache before the team's rear thread has used them.
//!
//! The *team delay* `d_t` enforces extra distance between teams, which
//! the paper found mildly beneficial (~3 % at `d_t = 8`): it is added to
//! `d_l` on every team's front thread and to `d_u` on every team's rear
//! thread. The overall front thread ignores the first condition, the
//! overall rear thread the second.

use crate::counter::ProgressCounters;
use crate::spin::spin_wait_until;

/// Which synchronization style an executor should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncMode {
    /// Global barrier after each block update (Fig. 1 of the paper).
    Barrier,
    /// Relaxed counter-based synchronization (Eq. 3).
    Relaxed {
        /// Lower distance `d_l >= 1` between consecutive threads.
        dl: u64,
        /// Upper distance `d_u >= d_l`.
        du: u64,
        /// Team delay `d_t` (0 disables).
        dt: u64,
    },
}

impl SyncMode {
    /// The paper's default relaxed configuration (`d_l = 1`, `d_u = 4`),
    /// which Fig. 3 (right) identifies as the sweet spot.
    pub fn relaxed_default() -> Self {
        SyncMode::Relaxed {
            dl: 1,
            du: 4,
            dt: 0,
        }
    }
}

/// Relaxed synchronization state for one pipeline of `n` threads.
#[derive(Debug)]
pub struct PipelineSync {
    counters: ProgressCounters,
    n: usize,
    /// Effective lower distance for thread `i` vs `i-1` (index 0 unused).
    dl_eff: Vec<u64>,
    /// Effective upper distance for thread `i` vs `i+1` (index n-1 unused).
    du_eff: Vec<u64>,
}

impl PipelineSync {
    /// Build the synchronization state for `n` threads grouped into teams
    /// of `team_size` (the last team may be smaller if `n` is not a
    /// multiple — the executors never do that, but the state supports it).
    ///
    /// # Panics
    /// Panics unless `1 <= dl <= du` and `team_size >= 1`.
    pub fn new(n: usize, team_size: usize, dl: u64, du: u64, dt: u64) -> Self {
        assert!(n > 0, "pipeline needs at least one thread");
        assert!(team_size >= 1, "team size must be >= 1");
        assert!(dl >= 1, "d_l must be >= 1 to avert data races");
        assert!(du >= dl, "d_u must be >= d_l or the pipeline deadlocks");
        let mut dl_eff = vec![dl; n];
        let mut du_eff = vec![du; n];
        for i in 0..n {
            let is_team_front = i % team_size == 0;
            let is_team_rear = (i + 1) % team_size == 0;
            if is_team_front && i > 0 {
                dl_eff[i] = dl + dt;
            }
            if is_team_rear && i + 1 < n {
                du_eff[i] = du + dt;
            }
        }
        Self {
            counters: ProgressCounters::new(n),
            n,
            dl_eff,
            du_eff,
        }
    }

    pub fn from_mode(n: usize, team_size: usize, mode: SyncMode) -> Option<Self> {
        match mode {
            SyncMode::Barrier => None,
            SyncMode::Relaxed { dl, du, dt } => Some(Self::new(n, team_size, dl, du, dt)),
        }
    }

    pub fn threads(&self) -> usize {
        self.n
    }

    pub fn effective_dl(&self, i: usize) -> u64 {
        self.dl_eff[i]
    }

    pub fn effective_du(&self, i: usize) -> u64 {
        self.du_eff[i]
    }

    /// Block (spinning) until thread `i` may start its next block, out of
    /// `total` blocks in this team sweep.
    ///
    /// The lower-distance requirement saturates at `total`: once the
    /// predecessor has completed *every* block it can no longer race with
    /// anyone, so waiting for a lead of `d_l` would deadlock the tail of
    /// the sweep (visible already at `d_l = 2` or with team delays).
    ///
    /// Both conditions are monotone in the other threads' counters, so
    /// checking them one after the other is sound.
    #[inline]
    pub fn wait_for_turn(&self, i: usize, total: u64) {
        let my = self.counters.get(i);
        if i > 0 {
            let need = (my + self.dl_eff[i]).min(total);
            spin_wait_until(|| self.counters.get(i - 1) >= need);
        }
        if i + 1 < self.n {
            let du = self.du_eff[i];
            spin_wait_until(|| my <= self.counters.get(i + 1) + du);
        }
    }

    /// Publish completion of one block by thread `i`.
    #[inline]
    pub fn complete_block(&self, i: usize) {
        self.counters.increment(i);
    }

    /// Current count of thread `i` (diagnostics).
    pub fn count(&self, i: usize) -> u64 {
        self.counters.get(i)
    }

    /// Reset all counters for the next team sweep. Caller must guarantee
    /// quiescence (every executor wraps this in a barrier window).
    pub fn reset(&self) {
        self.counters.reset();
    }

    /// Mark thread `i` as having completed all `total` blocks without doing
    /// work — used for threads whose stages fall outside a partial team
    /// sweep, so their successors and predecessors never wait on them.
    pub fn mark_complete(&self, i: usize, total: u64) {
        self.counters.set(i, total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn effective_distances_apply_team_delay() {
        // 6 threads, teams of 3, dl=1, du=4, dt=8.
        let p = PipelineSync::new(6, 3, 1, 4, 8);
        // Thread 3 is the front of team 1 -> dl + dt.
        assert_eq!(p.effective_dl(3), 9);
        // Thread 2 is the rear of team 0 -> du + dt.
        assert_eq!(p.effective_du(2), 12);
        // Interior threads keep the base distances.
        assert_eq!(p.effective_dl(1), 1);
        assert_eq!(p.effective_du(1), 4);
        // Overall front's dl and overall rear's du are unused but benign.
        assert_eq!(p.effective_dl(0), 1);
        assert_eq!(p.effective_du(5), 4);
    }

    #[test]
    #[should_panic(expected = "d_u must be >= d_l")]
    fn du_smaller_than_dl_rejected() {
        let _ = PipelineSync::new(4, 2, 3, 2, 0);
    }

    #[test]
    #[should_panic(expected = "d_l must be >= 1")]
    fn zero_dl_rejected() {
        let _ = PipelineSync::new(4, 2, 0, 2, 0);
    }

    #[test]
    fn single_thread_never_waits() {
        let p = PipelineSync::new(1, 1, 1, 1, 0);
        for _ in 0..10 {
            p.wait_for_turn(0, 10);
            p.complete_block(0);
        }
        assert_eq!(p.count(0), 10);
    }

    /// Run a full pipeline over `blocks` blocks and assert Eq. 3 held at
    /// every step: a thread observed starting block j had its predecessor
    /// at >= j + dl_eff, and never led its successor by more than
    /// du_eff + 1 (the +1 because the lead is checked before starting,
    /// then one more completion happens).
    fn run_pipeline_and_check(n: usize, team: usize, dl: u64, du: u64, dt: u64, blocks: u64) {
        let p = PipelineSync::new(n, team, dl, du, dt);
        // stage_progress[b] = number of stages completed on block b.
        let progress: Vec<AtomicU64> = (0..blocks).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for i in 0..n {
                let p = &p;
                let progress = &progress;
                s.spawn(move || {
                    for j in 0..blocks {
                        p.wait_for_turn(i, blocks);
                        if i > 0 {
                            let pred = p.count(i - 1);
                            assert!(
                                pred >= (j + p.effective_dl(i)).min(blocks),
                                "thread {i} started block {j} with pred at {pred}"
                            );
                        }
                        // The block must have been through exactly the
                        // previous stages: stage ordering is the property
                        // the executors' memory safety rests on.
                        let seen = progress[j as usize].load(Ordering::Acquire);
                        assert_eq!(seen, i as u64, "block {j} reached thread {i} early");
                        progress[j as usize].store(i as u64 + 1, Ordering::Release);
                        p.complete_block(i);
                        if i + 1 < n {
                            let lead = p.count(i) - p.count(i + 1).min(p.count(i));
                            assert!(
                                lead <= p.effective_du(i) + 1,
                                "thread {i} lead {lead} exceeds du+1"
                            );
                        }
                    }
                });
            }
        });
        for (j, st) in progress.iter().enumerate() {
            assert_eq!(st.load(Ordering::Relaxed), n as u64, "block {j} incomplete");
        }
    }

    #[test]
    fn pipeline_orders_stages_lockstep() {
        run_pipeline_and_check(4, 2, 1, 1, 0, 50);
    }

    #[test]
    fn pipeline_orders_stages_loose() {
        run_pipeline_and_check(4, 2, 1, 4, 0, 50);
    }

    #[test]
    fn pipeline_orders_stages_with_team_delay() {
        run_pipeline_and_check(6, 3, 1, 4, 3, 40);
    }

    #[test]
    fn pipeline_orders_stages_wide_and_loose() {
        run_pipeline_and_check(8, 4, 2, 6, 1, 30);
    }

    #[test]
    fn mark_complete_lets_successors_finish() {
        // Thread 1 sits out; thread 2 must still be able to run when the
        // harness marks thread 1 as complete.
        let p = PipelineSync::new(3, 3, 1, 2, 0);
        p.mark_complete(1, 10);
        std::thread::scope(|s| {
            let p = &p;
            s.spawn(move || {
                for _ in 0..10 {
                    p.wait_for_turn(0, 10);
                    p.complete_block(0);
                }
            });
            s.spawn(move || {
                for _ in 0..10 {
                    p.wait_for_turn(2, 10);
                    p.complete_block(2);
                }
            });
        });
        assert_eq!(p.count(0), 10);
        assert_eq!(p.count(2), 10);
    }

    #[test]
    fn reset_restores_zero_state() {
        let p = PipelineSync::new(2, 2, 1, 1, 0);
        p.complete_block(0);
        p.complete_block(0);
        p.reset();
        assert_eq!(p.count(0), 0);
        assert_eq!(p.count(1), 0);
    }

    #[test]
    fn relaxed_default_matches_paper() {
        assert_eq!(
            SyncMode::relaxed_default(),
            SyncMode::Relaxed {
                dl: 1,
                du: 4,
                dt: 0
            }
        );
    }
}
