//! Cache-line padded per-thread progress counters.
//!
//! Each pipeline thread `t_i` owns counter `c_i`, incremented after every
//! completed block update. Only `t_i` writes `c_i`; all other threads read
//! it through the cache-coherence protocol — exactly the paper's scheme,
//! with Rust release/acquire atomics playing the role of `volatile`
//! (which in C merely *happened* to work on x86). Each counter sits in its
//! own cache line to avoid false sharing (`CachePadded`).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// A fixed array of padded monotonic counters, one per pipeline thread.
#[derive(Debug)]
pub struct ProgressCounters {
    counters: Vec<CachePadded<AtomicU64>>,
}

impl ProgressCounters {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one counter");
        Self {
            counters: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.counters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Read `c_i` with acquire ordering (pairs with [`Self::increment`]'s
    /// release: a reader that observes the new count also observes the
    /// block data written before it).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.counters[i].load(Ordering::Acquire)
    }

    /// Publish one completed block for thread `i` (release).
    #[inline]
    pub fn increment(&self, i: usize) {
        // Only thread i writes counter i, so a plain add would do; fetch_add
        // keeps the invariant safe even under misuse.
        self.counters[i].fetch_add(1, Ordering::Release);
    }

    /// Reset all counters to zero. Must only be called while no thread is
    /// concurrently waiting on the counters (between team sweeps, inside a
    /// barrier-protected window).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Release);
        }
    }

    /// Set counter `i` to an absolute value (used to mark threads that sit
    /// out a partial team sweep as "already done").
    #[inline]
    pub fn set(&self, i: usize, v: u64) {
        self.counters[i].store(v, Ordering::Release);
    }

    /// Snapshot of all counters (diagnostics / tests).
    pub fn snapshot(&self) -> Vec<u64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_counts() {
        let c = ProgressCounters::new(3);
        assert_eq!(c.snapshot(), vec![0, 0, 0]);
        c.increment(1);
        c.increment(1);
        c.increment(2);
        assert_eq!(c.snapshot(), vec![0, 2, 1]);
    }

    #[test]
    fn reset_clears_everything() {
        let c = ProgressCounters::new(2);
        c.increment(0);
        c.increment(1);
        c.reset();
        assert_eq!(c.snapshot(), vec![0, 0]);
    }

    #[test]
    fn set_overrides() {
        let c = ProgressCounters::new(2);
        c.set(1, 99);
        assert_eq!(c.get(1), 99);
    }

    #[test]
    fn counters_occupy_distinct_cache_lines() {
        let c = ProgressCounters::new(4);
        let addrs: Vec<usize> = c.counters.iter().map(|p| p as *const _ as usize).collect();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 64, "counters share a cache line");
        }
    }

    #[test]
    fn cross_thread_visibility() {
        let c = ProgressCounters::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..1000 {
                    c.increment(0);
                }
            });
            s.spawn(|| {
                // Monotone reads only.
                let mut last = 0;
                loop {
                    let v = c.get(0);
                    assert!(v >= last);
                    last = v;
                    if v == 1000 {
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
        });
        assert_eq!(c.get(0), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_counters_panics() {
        let _ = ProgressCounters::new(0);
    }
}
