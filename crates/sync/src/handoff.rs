//! One-shot value handoff between a communication thread and a compute
//! team.
//!
//! The paper's multicore-aware overlap dedicates one core to MPI traffic
//! while the remaining cores advance the interior. The two sides meet at
//! exactly one point per cycle — "the halos are ready" — which needs a
//! flag plus a value slot, not a full barrier: the comm thread never
//! waits for the compute team, and the compute team waits only if it
//! finishes the interior before the transfers complete.
//!
//! [`Handoff`] is that primitive: `signal(value)` publishes once,
//! `take()` spin-waits (bounded backoff, then yielding — safe when
//! oversubscribed) and consumes. It is reusable: after `take` the slot
//! is empty again and a later cycle may `signal` anew.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::spin::spin_wait_until;

/// Flag + slot handoff ("halos ready") between two threads.
pub struct Handoff<T> {
    ready: AtomicBool,
    slot: Mutex<Option<T>>,
}

impl<T: Send> Handoff<T> {
    pub fn new() -> Self {
        Self {
            ready: AtomicBool::new(false),
            slot: Mutex::new(None),
        }
    }

    /// Publish `value` and raise the ready flag (release ordering: every
    /// write the signaling thread made before this call is visible to
    /// the taker).
    ///
    /// # Panics
    /// Panics if a previous signal has not been taken yet — a protocol
    /// error: each cycle has exactly one handoff.
    pub fn signal(&self, value: T) {
        let mut slot = self.slot.lock();
        assert!(slot.is_none(), "handoff signaled twice without a take");
        *slot = Some(value);
        drop(slot);
        self.ready.store(true, Ordering::Release);
    }

    /// True once a value is waiting (acquire ordering).
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Spin until a value is available, consume it, and reset the
    /// handoff for the next cycle.
    pub fn take(&self) -> T {
        spin_wait_until(|| self.is_ready());
        let mut slot = self.slot.lock();
        let value = slot.take().expect("ready flag raised without a value");
        // Clear the flag while still holding the slot lock: a racing
        // `signal` for the next cycle serializes behind the lock, so its
        // flag store cannot be clobbered by this reset.
        self.ready.store(false, Ordering::Release);
        drop(slot);
        value
    }
}

impl<T: Send> Default for Handoff<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_ready_until_signaled() {
        let h: Handoff<u32> = Handoff::new();
        assert!(!h.is_ready());
        h.signal(7);
        assert!(h.is_ready());
        assert_eq!(h.take(), 7);
        assert!(!h.is_ready(), "take resets the handoff");
    }

    #[test]
    fn take_blocks_until_the_comm_thread_signals() {
        let h: Handoff<Vec<u64>> = Handoff::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(15));
                h.signal(vec![1, 2, 3]);
            });
            assert_eq!(h.take(), vec![1, 2, 3]);
        });
    }

    #[test]
    fn reusable_across_cycles() {
        let h: Handoff<usize> = Handoff::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for cycle in 0..50 {
                    h.signal(cycle);
                    // Wait until the consumer took it before signaling
                    // again (one handoff per cycle).
                    crate::spin::spin_wait_until(|| !h.is_ready());
                }
            });
            for cycle in 0..50 {
                assert_eq!(h.take(), cycle);
            }
        });
    }

    #[test]
    #[should_panic(expected = "signaled twice")]
    fn double_signal_is_a_protocol_error() {
        let h: Handoff<u8> = Handoff::new();
        h.signal(1);
        h.signal(2);
    }

    #[test]
    fn publishes_writes_before_the_flag() {
        // The value carried through the handoff is itself the proof of
        // ordering here; heavier litmus tests belong to the atomics, not
        // this wrapper.
        let h: Handoff<Box<[f64; 4]>> = Handoff::new();
        std::thread::scope(|s| {
            s.spawn(|| h.signal(Box::new([1.0, 2.0, 3.0, 4.0])));
            assert_eq!(*h.take(), [1.0, 2.0, 3.0, 4.0]);
        });
    }
}
