//! Bounded-backoff spin waiting.

use crossbeam_utils::Backoff;

/// Spin until `cond()` returns true, backing off progressively
/// (`pause` instructions first, then `thread::yield_now`).
///
/// Yielding keeps the executors livelock-free when there are more worker
/// threads than cores — the normal situation both in CI and on the
/// oversubscribed cluster simulations.
#[inline]
pub fn spin_wait_until(mut cond: impl FnMut() -> bool) {
    let backoff = Backoff::new();
    while !cond() {
        if backoff.is_completed() {
            std::thread::yield_now();
        } else {
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn returns_immediately_when_already_true() {
        spin_wait_until(|| true);
    }

    #[test]
    fn wakes_up_when_flag_flips() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            f2.store(true, Ordering::Release);
        });
        spin_wait_until(|| flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn condition_is_polled_multiple_times() {
        let calls = AtomicUsize::new(0);
        spin_wait_until(|| calls.fetch_add(1, Ordering::Relaxed) >= 3);
        assert!(calls.load(Ordering::Relaxed) >= 4);
    }
}
