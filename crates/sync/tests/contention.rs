//! Contention and longevity tests for the synchronization primitives —
//! many threads, many rounds, oversubscription, randomized stalls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tb_sync::{PipelineSync, SpinBarrier};

#[test]
fn barrier_survives_oversubscription() {
    // 4x more threads than this box has cores.
    let threads = 4 * std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let barrier = SpinBarrier::new(threads);
    let sum = AtomicU64::new(0);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let barrier = &barrier;
            let sum = &sum;
            s.spawn(move || {
                for round in 0..50u64 {
                    sum.fetch_add(tid as u64 + round, Ordering::Relaxed);
                    barrier.wait();
                }
            });
        }
    });
    let expected: u64 = (0..threads as u64)
        .map(|t| (0..50u64).map(|r| t + r).sum::<u64>())
        .sum();
    assert_eq!(sum.load(Ordering::Relaxed), expected);
}

#[test]
fn pipeline_with_random_stalls_preserves_stage_order() {
    // Inject pseudo-random sleeps to shake the interleavings; the stage
    // ordering invariant must hold regardless.
    let threads = 4;
    let blocks = 60u64;
    let psync = PipelineSync::new(threads, 2, 1, 3, 1);
    let progress: Vec<AtomicU64> = (0..blocks).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let psync = &psync;
            let progress = &progress;
            s.spawn(move || {
                // Cheap xorshift for per-thread jitter.
                let mut state = 0x9e3779b97f4a7c15u64 ^ (tid as u64 + 1);
                for j in 0..blocks {
                    psync.wait_for_turn(tid, blocks);
                    let seen = progress[j as usize].load(Ordering::Acquire);
                    assert_eq!(seen, tid as u64, "block {j} out of order at thread {tid}");
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state.is_multiple_of(7) {
                        std::thread::sleep(Duration::from_micros(state % 200));
                    }
                    progress[j as usize].store(tid as u64 + 1, Ordering::Release);
                    psync.complete_block(tid);
                }
            });
        }
    });
    for (j, p) in progress.iter().enumerate() {
        assert_eq!(p.load(Ordering::Relaxed), threads as u64, "block {j}");
    }
}

#[test]
fn deep_dl_with_saturation_terminates() {
    // d_l = 5 with only 8 blocks: without end-of-sweep saturation the
    // tail would deadlock (regression test for the saturating wait).
    let threads = 3;
    let blocks = 8u64;
    let psync = PipelineSync::new(threads, 3, 5, 8, 0);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let psync = &psync;
            s.spawn(move || {
                for _ in 0..blocks {
                    psync.wait_for_turn(tid, blocks);
                    psync.complete_block(tid);
                }
            });
        }
    });
    for tid in 0..threads {
        assert_eq!(psync.count(tid), blocks);
    }
}

#[test]
fn many_team_sweeps_with_resets() {
    let threads = 4;
    let blocks = 16u64;
    let psync = PipelineSync::new(threads, 2, 1, 2, 0);
    let barrier = SpinBarrier::new(threads);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let psync = &psync;
            let barrier = &barrier;
            s.spawn(move || {
                for _sweep in 0..25 {
                    barrier.wait();
                    if tid == 0 {
                        psync.reset();
                    }
                    barrier.wait();
                    for _ in 0..blocks {
                        psync.wait_for_turn(tid, blocks);
                        psync.complete_block(tid);
                    }
                }
            });
        }
    });
    for tid in 0..threads {
        assert_eq!(psync.count(tid), blocks);
    }
}
