//! Stress tests for the pipelined executors: many configurations, odd
//! geometry, minimum-legal block sizes, repeated runs to shake out
//! scheduling nondeterminism — always with the region auditor armed.

use tb_grid::{init, norm, Dims3, Grid3, GridPair, Region3};
use tb_stencil::config::{GridScheme, PipelineConfig};
use tb_stencil::{baseline, pipeline, SyncMode};

fn reference(dims: Dims3, seed: u64, sweeps: usize) -> Grid3<f64> {
    let mut pair = GridPair::from_initial(init::random(dims, seed));
    baseline::seq_sweeps(&mut pair, sweeps);
    pair.current(sweeps).clone()
}

fn run_pipelined(dims: Dims3, seed: u64, sweeps: usize, cfg: &PipelineConfig) -> Grid3<f64> {
    let mut pair = GridPair::from_initial(init::random(dims, seed));
    pipeline::run(&mut pair, cfg, sweeps).unwrap();
    pair.current(sweeps).clone()
}

#[test]
fn blocks_exactly_equal_to_depth() {
    // The minimum legal block edge equals the pipeline depth; the shift
    // then squeezes the first block to a single layer at the last stage.
    let dims = Dims3::cube(20);
    let cfg = PipelineConfig {
        team_size: 3,
        n_teams: 1,
        updates_per_thread: 1,
        block: [3, 3, 3],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let want = reference(dims, 1, 6);
    let got = run_pipelined(dims, 1, 6, &cfg);
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), "min blocks");
}

#[test]
fn repeated_runs_are_deterministic() {
    // Thread interleavings differ between runs; results must not.
    let dims = Dims3::cube(24);
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 2,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::Relaxed {
            dl: 1,
            du: 2,
            dt: 1,
        },
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let first = run_pipelined(dims, 55, 7, &cfg);
    for rep in 0..4 {
        let again = run_pipelined(dims, 55, 7, &cfg);
        norm::assert_grids_identical(&first, &again, &Region3::whole(dims), &format!("rep {rep}"));
    }
}

#[test]
fn tall_thin_grid() {
    let dims = Dims3::new(8, 8, 80);
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [6, 6, 10],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let want = reference(dims, 2, 5);
    let got = run_pipelined(dims, 2, 5, &cfg);
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), "tall thin");
}

#[test]
fn pancake_grid() {
    let dims = Dims3::new(80, 8, 8);
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 2,
        block: [20, 6, 6],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let want = reference(dims, 3, 8);
    let got = run_pipelined(dims, 3, 8, &cfg);
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), "pancake");
}

#[test]
fn single_sweep_only_front_thread_works() {
    // sweeps=1 with depth 4: only stage 0 runs; threads 1..3 idle.
    let dims = Dims3::cube(18);
    let cfg = PipelineConfig {
        team_size: 4,
        n_teams: 1,
        updates_per_thread: 1,
        block: [6, 6, 6],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let want = reference(dims, 4, 1);
    let got = run_pipelined(dims, 4, 1, &cfg);
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), "1 sweep");
}

#[test]
fn compressed_stress_many_team_sweeps() {
    let dims = Dims3::cube(20);
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::Compressed,
        layout: None,
        audit: true,
    };
    let sweeps = 17; // 8 full down/up pairs + partial down
    let want = reference(dims, 8, sweeps);
    let initial: Grid3<f64> = init::random(dims, 8);
    let mut cg = tb_grid::CompressedGrid::from_grid(&initial, cfg.stages());
    pipeline::run_compressed(&mut cg, &cfg, sweeps).unwrap();
    norm::assert_grids_identical(&want, &cg.to_grid(), &Region3::whole(dims), "compressed 17");
}

#[test]
fn barrier_and_relaxed_agree_with_each_other() {
    let dims = Dims3::cube(22);
    let mk = |sync| PipelineConfig {
        team_size: 2,
        n_teams: 2,
        updates_per_thread: 1,
        block: [9, 9, 9],
        sync,
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let a = run_pipelined(dims, 31, 9, &mk(SyncMode::Barrier));
    let b = run_pipelined(dims, 31, 9, &mk(SyncMode::relaxed_default()));
    norm::assert_grids_identical(&a, &b, &Region3::whole(dims), "barrier vs relaxed");
}

#[test]
fn oversubscribed_pipeline_completes() {
    // Far more pipeline threads than cores: yielding spin-waits must
    // keep the pipeline live.
    let dims = Dims3::cube(26);
    let cfg = PipelineConfig {
        team_size: 4,
        n_teams: 3,
        updates_per_thread: 1,
        block: [12, 12, 12],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: false, // 12 threads through the auditor is too slow
    };
    let want = reference(dims, 6, 12);
    let got = run_pipelined(dims, 6, 12, &cfg);
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), "12 threads");
}
