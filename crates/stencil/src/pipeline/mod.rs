//! Pipelined temporal blocking (the paper's §1.3).
//!
//! * [`plan`] — block schedule geometry and its safety proof,
//! * [`exec`] — two-grid executor (barrier and relaxed sync),
//! * [`compressed`] — single-grid "compressed" executor with alternating
//!   ±(1,1,1) shifts and reversed sweeps.

pub mod compressed;
pub mod exec;
pub mod plan;
mod schedule;

pub use compressed::{run_compressed, run_compressed_on, run_compressed_op, run_compressed_op_on};
pub use exec::{
    run, run_on, run_op, run_op_on, run_team_sweep, run_team_sweep_op, run_team_sweep_op_on,
    PipelineRun,
};
pub use plan::PipelinePlan;
