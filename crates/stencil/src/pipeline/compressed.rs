//! Compressed-grid pipelined executor (paper §1.3).
//!
//! One allocation holds the whole state; every update writes its result
//! displaced by −1 in each coordinate during *down* team sweeps and by +1
//! during *up* team sweeps, which run in reversed block order with
//! descending row loops (the paper used SSE intrinsics here because its
//! compiler refused to vectorize backward loops; LLVM has no such
//! trouble). Boundary cells are carried along by copying — each stage's
//! region is extended with the adjacent boundary "shell"
//! ([`PipelinePlan::region_with_shell`]), so every frame a reader ever
//! consults contains valid Dirichlet values.
//!
//! Besides saving nearly half the memory, the paper notes non-temporal
//! stores are pointless here: blocks are evicted naturally after their
//! `n·t·T` in-cache updates.
//!
//! Like the two-grid executor, the entry points come in `*_on(&Runtime,
//! …)` and classic (one-shot runtime per call) forms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tb_grid::{AccessKind, CompressedGrid, Real, Region3, RegionAuditor};
use tb_runtime::Runtime;
use tb_sync::{PipelineSync, SpinBarrier};

use crate::config::PipelineConfig;
use crate::kernel;
use crate::op::{Jacobi6, StencilOp};
use crate::pipeline::plan::PipelinePlan;
use crate::pipeline::schedule::team_sweep_schedule;
use crate::stats::RunStats;

/// Run `sweeps` sweeps of `op` on a compressed grid with pipelined
/// temporal blocking, executing on the given persistent runtime (at
/// least `cfg.threads()` workers). The grid must start at displacement 0
/// and have `margin >= cfg.stages()`; on return its displacement records
/// where the data landed.
pub fn run_compressed_op_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    cg: &mut CompressedGrid<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    let logical = cg.logical_dims();
    cfg.validate(logical)?;
    let depth = cfg.stages();
    if cg.margin() < depth {
        return Err(format!(
            "compressed grid margin {} is smaller than pipeline depth {depth}",
            cg.margin()
        ));
    }
    if cg.displacement() != 0 {
        return Err("compressed run must start at displacement 0".into());
    }
    if sweeps == 0 {
        return Ok(RunStats::new(0, std::time::Duration::ZERO));
    }
    let threads = cfg.threads();
    if rt.threads() < threads {
        return Err(format!(
            "runtime has {} workers but the pipeline needs {threads}",
            rt.threads()
        ));
    }

    let interior = Region3::interior_of(logical);
    let plan = PipelinePlan::uniform(interior, cfg.block, depth);
    let nblocks = plan.num_blocks();
    let team_sweeps = sweeps.div_ceil(depth);
    let margin = cg.margin();

    let barrier = SpinBarrier::new(threads);
    let psync = PipelineSync::from_mode(threads, cfg.team_size, cfg.sync);
    let auditor = cfg.audit.then(RegionAuditor::new);
    let total_cells = AtomicU64::new(0);
    let view = cg.shared();
    let upt = cfg.updates_per_thread;

    let t0 = Instant::now();
    rt.run(threads, &|tid| {
        let mut my_cells = 0u64;
        for ts in 0..team_sweeps {
            let base = ts * depth;
            let stages_now = depth.min(sweeps - base);
            let down = ts % 2 == 0;
            my_cells += team_sweep_schedule(
                &barrier,
                psync.as_ref(),
                tid,
                threads,
                upt,
                nblocks,
                stages_now,
                |k| if down { k } else { nblocks - 1 - k },
                |j| {
                    update_block(
                        op,
                        &view,
                        &plan,
                        auditor.as_ref(),
                        logical,
                        margin,
                        depth,
                        tid,
                        j,
                        stages_now,
                        upt,
                        down,
                    )
                },
            );
        }
        total_cells.fetch_add(my_cells, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();

    // Record where the data ended up: full down/up pairs cancel; the last
    // (possibly partial) sweep leaves a residual displacement.
    let last_stages = sweeps - (team_sweeps - 1) * depth;
    let final_disp = if (team_sweeps - 1).is_multiple_of(2) {
        -(last_stages as i64) // last sweep went down
    } else {
        -(depth as i64) + last_stages as i64 // last sweep went up from -depth
    };
    cg.set_displacement(final_disp);
    Ok(RunStats::new(total_cells.load(Ordering::Relaxed), elapsed))
}

/// [`run_compressed_op_on`] on a one-shot runtime built from `cfg` —
/// the classic entry point. The reported elapsed time includes the
/// team spawn/join, as it always did.
pub fn run_compressed_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    cg: &mut CompressedGrid<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    cfg.validate(cg.logical_dims())?;
    let t0 = Instant::now();
    let stats = run_compressed_op_on(&cfg.one_shot_runtime(), op, cg, cfg, sweeps)?;
    Ok(if sweeps == 0 {
        stats
    } else {
        RunStats::new(stats.cell_updates, t0.elapsed())
    })
}

/// Classic-Jacobi form of [`run_compressed_op_on`].
pub fn run_compressed_on<T: Real>(
    rt: &Runtime,
    cg: &mut CompressedGrid<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_compressed_op_on(rt, &Jacobi6, cg, cfg, sweeps)
}

/// Classic-Jacobi form of [`run_compressed_op`].
pub fn run_compressed<T: Real>(
    cg: &mut CompressedGrid<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_compressed_op(&Jacobi6, cg, cfg, sweeps)
}

/// Apply thread `tid`'s stages to block `j`; returns cells produced
/// (stencil updates only, boundary copies excluded from the LUP count).
#[allow(clippy::too_many_arguments)]
fn update_block<T: Real, Op: StencilOp<T>>(
    op: &Op,
    view: &tb_grid::SharedGrid<T>,
    plan: &PipelinePlan,
    auditor: Option<&RegionAuditor>,
    logical: tb_grid::Dims3,
    margin: usize,
    depth: usize,
    tid: usize,
    j: usize,
    stages_now: usize,
    updates_per_thread: usize,
    down: bool,
) -> u64 {
    let mut cells = 0u64;
    let dir: i64 = if down { -1 } else { 1 };
    for u in 0..updates_per_thread {
        let stage = tid * updates_per_thread + u;
        if stage >= stages_now {
            break;
        }
        // Frame offsets: physical = logical + margin + displacement.
        // Down sweeps start at displacement 0, up sweeps at -depth.
        let (src_off, dst_off) = if down {
            (margin - stage, margin - stage - 1)
        } else {
            (margin - depth + stage, margin - depth + stage + 1)
        };
        let shell = plan.region_with_shell(j, stage, dir);
        if shell.is_empty() {
            continue;
        }
        let claims = auditor.map(|a| {
            let s = shell.shifted([src_off as i64; 3]);
            let d = shell.shifted([dst_off as i64; 3]);
            let r1 = a.claim(tid, 0, AccessKind::Read, s.expand(1));
            let w = a.claim(tid, 0, AccessKind::Write, d);
            (r1, w)
        });
        // SAFETY: plan geometry + sync distances give the disjointness
        // contract (see plan docs); iteration order matches the shift
        // direction as update_region_compressed requires.
        unsafe {
            kernel::update_region_compressed_op(op, view, logical, &shell, src_off, dst_off, !down);
        }
        if let (Some(a), Some((r1, w))) = (auditor, claims) {
            a.release(r1);
            a.release(w);
        }
        cells += plan.region(j, stage, dir).count() as u64;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::config::GridScheme;
    use tb_grid::{init, norm, Dims3, GridPair};
    use tb_sync::SyncMode;

    fn reference(dims: Dims3, seed: u64, sweeps: usize) -> tb_grid::Grid3<f64> {
        let mut pair = GridPair::from_initial(init::random(dims, seed));
        baseline::seq_sweeps(&mut pair, sweeps);
        pair.current(sweeps).clone()
    }

    fn cfg(
        team: usize,
        teams: usize,
        upt: usize,
        sync: SyncMode,
        block: [usize; 3],
    ) -> PipelineConfig {
        PipelineConfig {
            team_size: team,
            n_teams: teams,
            updates_per_thread: upt,
            block,
            sync,
            scheme: GridScheme::Compressed,
            layout: None,
            audit: true,
        }
    }

    fn assert_compressed_matches(dims: Dims3, sweeps: usize, cfg: &PipelineConfig) {
        let want = reference(dims, 77, sweeps);
        let initial = init::random(dims, 77);
        let mut cg = CompressedGrid::from_grid(&initial, cfg.stages());
        run_compressed(&mut cg, cfg, sweeps).unwrap();
        let got = cg.to_grid();
        norm::assert_grids_identical(
            &want,
            &got,
            &Region3::whole(dims),
            &format!("compressed {sweeps} sweeps"),
        );
    }

    #[test]
    fn one_full_down_sweep() {
        let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]);
        assert_compressed_matches(Dims3::cube(18), 2, &c); // depth 2
    }

    #[test]
    fn down_and_up_sweeps() {
        let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]);
        assert_compressed_matches(Dims3::cube(18), 4, &c); // two team sweeps
    }

    #[test]
    fn odd_number_of_team_sweeps() {
        let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]);
        assert_compressed_matches(Dims3::cube(18), 6, &c); // down,up,down
    }

    #[test]
    fn partial_final_down_sweep() {
        let c = cfg(2, 1, 2, SyncMode::relaxed_default(), [8, 8, 8]);
        // depth 4: 4 full (down) + partial up? 7 = down(4) + up(3 partial)
        assert_compressed_matches(Dims3::cube(20), 7, &c);
    }

    #[test]
    fn partial_first_sweep_smaller_than_depth() {
        let c = cfg(2, 1, 2, SyncMode::relaxed_default(), [8, 8, 8]);
        assert_compressed_matches(Dims3::cube(20), 3, &c); // partial down only
    }

    #[test]
    fn barrier_mode_compressed() {
        let c = cfg(3, 1, 1, SyncMode::Barrier, [8, 8, 8]);
        assert_compressed_matches(Dims3::cube(18), 6, &c);
    }

    #[test]
    fn two_teams_compressed() {
        let c = cfg(2, 2, 1, SyncMode::relaxed_default(), [10, 10, 10]);
        assert_compressed_matches(Dims3::cube(24), 8, &c); // depth 4
    }

    #[test]
    fn displacement_bookkeeping() {
        let dims = Dims3::cube(18);
        let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]); // depth 2
        let initial: tb_grid::Grid3<f64> = init::random(dims, 1);

        let mut cg = CompressedGrid::from_grid(&initial, 2);
        run_compressed(&mut cg, &c, 2).unwrap();
        assert_eq!(cg.displacement(), -2); // one down sweep

        let mut cg = CompressedGrid::from_grid(&initial, 2);
        run_compressed(&mut cg, &c, 4).unwrap();
        assert_eq!(cg.displacement(), 0); // down + up

        let mut cg = CompressedGrid::from_grid(&initial, 2);
        run_compressed(&mut cg, &c, 3).unwrap();
        assert_eq!(cg.displacement(), -1); // down + partial up
    }

    #[test]
    fn rejects_insufficient_margin() {
        let dims = Dims3::cube(18);
        let c = cfg(2, 1, 2, SyncMode::relaxed_default(), [8, 8, 8]); // depth 4
        let mut cg = CompressedGrid::from_grid(&init::random::<f64>(dims, 1), 2);
        assert!(run_compressed(&mut cg, &c, 4).is_err());
    }

    #[test]
    fn rejects_nonzero_start_displacement() {
        let dims = Dims3::cube(18);
        let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]);
        let mut cg = CompressedGrid::from_grid(&init::random::<f64>(dims, 1), 2);
        cg.set_displacement(-1);
        assert!(run_compressed(&mut cg, &c, 2).is_err());
    }

    #[test]
    fn memory_usage_is_single_grid() {
        let dims = Dims3::cube(40);
        let cg: CompressedGrid<f64> = CompressedGrid::zeroed(dims, 4);
        let pair_bytes = 2 * dims.bytes(8);
        assert!(cg.bytes() < (pair_bytes as f64 * 0.7) as usize);
    }
}
