//! The per-worker block schedule of one pipelined team sweep, shared by
//! the two-grid and compressed executors (and, through
//! [`super::exec::run_team_sweep_op_on`], by the distributed solver).
//!
//! Before this helper existed the barrier-vs-relaxed dispatch below was
//! copy-pasted into every executor; the schedules must stay literally
//! identical for the bitwise guarantees to mean anything, so they now
//! live in exactly one place.

use tb_sync::{PipelineSync, SpinBarrier};

/// Execute worker `tid`'s share of one team sweep over `nblocks` blocks.
///
/// * With relaxed sync (`psync = Some`): a barrier pair brackets the
///   counter reset, a worker whose stages all fall outside a partial
///   sweep reports completion so neighbours never wait for it, and the
///   rest walk the blocks in `order`, gated by Eq. 3 distances.
/// * With a global barrier (`psync = None`): lock-step rounds, worker
///   `tid` handles block `order(r - tid)` in round `r`, one barrier per
///   round.
///
/// `order` maps the worker's k-th turn to a block index (identity for
/// the two-grid executor, reversed on the compressed executor's up
/// sweeps); `work` performs the block update and returns cells updated.
/// Returns this worker's total.
#[allow(clippy::too_many_arguments)]
pub(crate) fn team_sweep_schedule(
    barrier: &SpinBarrier,
    psync: Option<&PipelineSync>,
    tid: usize,
    threads: usize,
    updates_per_thread: usize,
    nblocks: usize,
    stages_now: usize,
    order: impl Fn(usize) -> usize,
    mut work: impl FnMut(usize) -> u64,
) -> u64 {
    let mut cells = 0u64;
    match psync {
        Some(psync) => {
            barrier.wait();
            if tid == 0 {
                psync.reset();
            }
            barrier.wait();
            if tid * updates_per_thread >= stages_now {
                // All my stages fall outside this partial sweep: report
                // completion so neighbours never wait for me.
                psync.mark_complete(tid, nblocks as u64);
            } else {
                for k in 0..nblocks {
                    let j = order(k);
                    psync.wait_for_turn(tid, nblocks as u64);
                    cells += work(j);
                    psync.complete_block(tid);
                }
            }
        }
        None => {
            // Global barrier after every block update: lock-step rounds,
            // thread `tid` handles turn `r - tid` in round `r`.
            let rounds = nblocks + threads - 1;
            for r in 0..rounds {
                if let Some(k) = r.checked_sub(tid) {
                    if k < nblocks && tid * updates_per_thread < stages_now {
                        cells += work(order(k));
                    }
                }
                barrier.wait();
            }
        }
    }
    cells
}
