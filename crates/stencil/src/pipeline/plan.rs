//! The pipelined temporal blocking schedule: which cells each (block,
//! stage) pair updates.
//!
//! # Geometry
//!
//! A team sweep pushes every block of the domain through `S = n·t·T`
//! pipeline stages. Stage `s` re-applies the block partition *shifted
//! diagonally by `dir·s` cells* (`dir = -1` for normal/odd team sweeps,
//! `+1` for the reversed sweeps of the compressed-grid scheme):
//!
//! * interior block boundaries shift with the stage,
//! * the first block per dimension is pinned to the stage domain's low
//!   edge (it shrinks as the partition slides down),
//! * the last block per dimension is pinned to the high edge (it grows).
//!
//! This is the paper's "shifting the block by one cell in each direction
//! after an update avoids extra boundary copies" (Fig. 1).
//!
//! # Why `d_l >= 1` is race-free (two-grid scheme, `dir = -1`)
//!
//! Per dimension, an interior boundary between blocks `q` and `q+1` at
//! stage `s` sits at `B(q+1) - s`. Stage `s` updating block `q` reads the
//! source cells `[qB - s, (q+1)B - s + 1)` — exactly up to the last cell
//! stage `s-1` wrote for block `q` (`(q+1)B - s + 1 - 1 = (q+1)B - (s-1)
//! - 1`… the arithmetic telescopes so the read never needs block `q+1` of
//! stage `s-1`). Hence stage `s` may process block `j` (x-fastest linear
//! order) as soon as stage `s-1` has *completed* block `j`: counter
//! condition `c_{s-1} - c_s >= 1`. Concurrent accesses are disjoint: a
//! stage `s-δ` thread works on linear blocks `>= j + δ`, whose regions
//! are componentwise at least one cell beyond the reader's expanded
//! region in the dimension where they are ahead. The unit tests verify
//! this disjointness exhaustively over many geometries, and the runtime
//! [`tb_grid::RegionAuditor`] re-checks it during debug executions.

use tb_grid::{BlockPartition, Region3};

/// Precomputed schedule for one team sweep.
#[derive(Clone, Debug)]
pub struct PipelinePlan {
    partition: BlockPartition,
    /// `domains[s]` is the region stage `s` must cover ("R_s"). For the
    /// shared-memory solver every stage covers the grid interior; the
    /// distributed solver passes shrinking rings.
    domains: Vec<Region3>,
}

impl PipelinePlan {
    /// Plan with one domain for every stage (shared-memory case).
    pub fn uniform(domain: Region3, block: [usize; 3], stages: usize) -> Self {
        Self::with_domains(vec![domain; stages.max(1)], block)
    }

    /// Plan over per-stage domains. `domains[0]` hosts the partition;
    /// every later domain must satisfy `domains[s].expand(1) ⊆
    /// domains[s-1] ∪ never-written cells` — the caller (solver layer)
    /// guarantees that by construction.
    ///
    /// # Panics
    /// Panics if any block edge (after clamping to the domain) is smaller
    /// than the stage count, which would disorder interior boundaries.
    pub fn with_domains(domains: Vec<Region3>, block: [usize; 3]) -> Self {
        assert!(!domains.is_empty(), "need at least one stage");
        let partition = BlockPartition::new(domains[0], block);
        let stages = domains.len();
        let eff = partition.block_size();
        for (d, &eff_d) in eff.iter().enumerate() {
            assert!(
                eff_d >= stages || partition.counts()[d] == 1,
                "block edge {eff_d} in dim {d} is smaller than the pipeline depth {stages}"
            );
        }
        Self { partition, domains }
    }

    pub fn stages(&self) -> usize {
        self.domains.len()
    }

    pub fn num_blocks(&self) -> usize {
        self.partition.len()
    }

    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    pub fn domain(&self, stage: usize) -> Region3 {
        self.domains[stage]
    }

    /// Region updated when block `linear` passes stage `stage`, shifted by
    /// `dir * stage` (`dir ∈ {-1, +1}`). May be empty (the executor then
    /// just advances its counter).
    pub fn region(&self, linear: usize, stage: usize, dir: i64) -> Region3 {
        debug_assert!(dir == -1 || dir == 1);
        let b = self.partition.block_idx(linear);
        let idx = [b.bx, b.by, b.bz];
        let counts = self.partition.counts();
        let base = self.partition.region(b);
        let rs = &self.domains[stage];
        let shift = dir * stage as i64;
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for d in 0..3 {
            let l = if idx[d] == 0 {
                rs.lo[d]
            } else {
                clamp_i64(base.lo[d] as i64 + shift, rs.lo[d], rs.hi[d])
            };
            let h = if idx[d] + 1 == counts[d] {
                rs.hi[d]
            } else {
                clamp_i64(base.hi[d] as i64 + shift, rs.lo[d], rs.hi[d])
            };
            if h <= l {
                return Region3::empty();
            }
            lo[d] = l;
            hi[d] = h;
        }
        Region3 { lo, hi }
    }

    /// [`Self::region`] extended to cover adjacent Dirichlet boundary
    /// cells of `logical_interior`'s bounding grid — the per-stage
    /// "shell" the compressed-grid executor must copy. `logical_interior`
    /// is the stage-0 domain of the shared-memory plan (i.e. cells
    /// `[1, n-1)`); the extension adds coordinate `lo-1`/`hi` where the
    /// region touches it.
    pub fn region_with_shell(&self, linear: usize, stage: usize, dir: i64) -> Region3 {
        let r = self.region(linear, stage, dir);
        if r.is_empty() {
            return r;
        }
        let interior = &self.domains[stage];
        let mut out = r;
        for d in 0..3 {
            if r.lo[d] == interior.lo[d] && interior.lo[d] > 0 {
                out.lo[d] = interior.lo[d] - 1;
            }
            if r.hi[d] == interior.hi[d] {
                out.hi[d] = interior.hi[d] + 1;
            }
        }
        out
    }
}

fn clamp_i64(v: i64, lo: usize, hi: usize) -> usize {
    v.clamp(lo as i64, hi as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interior(n: usize) -> Region3 {
        Region3::new([1, 1, 1], [n - 1, n - 1, n - 1])
    }

    /// Union of all block regions at a stage must tile the stage domain
    /// exactly (cover everything, overlap nothing).
    fn check_coverage(plan: &PipelinePlan, dir: i64) {
        for s in 0..plan.stages() {
            let dom = plan.domain(s);
            let total: usize = (0..plan.num_blocks())
                .map(|j| plan.region(j, s, dir).count())
                .sum();
            assert_eq!(total, dom.count(), "stage {s} dir {dir}: wrong cell total");
            for j in 0..plan.num_blocks() {
                let rj = plan.region(j, s, dir);
                assert!(dom.contains_region(&rj), "stage {s} block {j} leaks");
                for k in 0..j {
                    let rk = plan.region(k, s, dir);
                    assert!(!rj.intersects(&rk), "stage {s}: blocks {j},{k} overlap");
                }
            }
        }
    }

    /// The dependency invariant: the cells stage `s` reads for block `j`
    /// (expanded region), intersected with what stage `s-1` updates at
    /// all, must already be covered by stage `s-1`'s blocks `0..=j` (for
    /// dir=-1; mirrored for dir=+1 where block order is reversed).
    fn check_dependencies(plan: &PipelinePlan, dir: i64) {
        let nb = plan.num_blocks();
        for s in 1..plan.stages() {
            for j in 0..nb {
                let read = plan.region(j, s, dir).expand(1);
                // Completed predecessors in traversal order.
                let done: Vec<Region3> = if dir == -1 {
                    (0..=j).map(|k| plan.region(k, s - 1, dir)).collect()
                } else {
                    (j..nb).map(|k| plan.region(k, s - 1, dir)).collect()
                };
                let prev_dom = plan.domain(s - 1);
                // Every read cell inside the previous stage's domain must
                // be in a completed predecessor block.
                for (x, y, z) in read.intersect(&prev_dom).iter() {
                    assert!(
                        done.iter().any(|r| r.contains(x, y, z)),
                        "stage {s} block {j} dir {dir} reads ({x},{y},{z}) \
                         not yet produced by stage {}",
                        s - 1
                    );
                }
            }
        }
    }

    /// Concurrency safety: with counter distance >= 1 per stage gap, a
    /// thread at stage `s-δ` works on traversal position >= p+δ while the
    /// stage-`s` thread works on position p. Their claims must be
    /// disjoint wherever they touch the same grid (two-grid parity).
    fn check_race_freedom_two_grid(plan: &PipelinePlan, dir: i64) {
        let nb = plan.num_blocks();
        let order: Vec<usize> = if dir == -1 {
            (0..nb).collect()
        } else {
            (0..nb).rev().collect()
        };
        for s in 0..plan.stages() {
            for delta in 1..=s {
                let sp = s - delta;
                for pi in 0..nb {
                    let j = order[pi];
                    let r_read = plan.region(j, s, dir).expand(1);
                    let r_write = plan.region(j, s, dir);
                    // Writer thread is at traversal position >= pi + delta.
                    for &jw in order.iter().skip(pi + delta) {
                        let w_write = plan.region(jw, sp, dir);
                        let w_read = plan.region(jw, sp, dir).expand(1);
                        // write(s-δ) vs read-src(s): same grid iff δ odd.
                        if delta % 2 == 1 {
                            assert!(
                                !w_write.intersects(&r_read),
                                "stage {s} blk {j} read races stage {sp} blk {jw} write"
                            );
                            assert!(
                                !w_read.intersects(&r_write),
                                "stage {sp} blk {jw} read races stage {s} blk {j} write"
                            );
                        } else {
                            // write-write on the same grid iff δ even.
                            assert!(
                                !w_write.intersects(&r_write),
                                "stage {s} blk {j} write races stage {sp} blk {jw} write"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_plan_basic_shape() {
        let plan = PipelinePlan::uniform(interior(20), [6, 6, 6], 4);
        assert_eq!(plan.stages(), 4);
        assert_eq!(plan.num_blocks(), 27);
        // Stage 0 block 0 is the unshifted block.
        assert_eq!(plan.region(0, 0, -1), Region3::new([1, 1, 1], [7, 7, 7]));
        // Stage 2 block 0 shrinks at the pinned low edge.
        assert_eq!(plan.region(0, 2, -1), Region3::new([1, 1, 1], [5, 5, 5]));
        // Stage 2, last block grows at the pinned high edge.
        let last = plan.num_blocks() - 1;
        assert_eq!(
            plan.region(last, 2, -1),
            Region3::new([11, 11, 11], [19, 19, 19])
        );
    }

    #[test]
    fn coverage_down_direction() {
        for (n, b, s) in [(20, [6, 6, 6], 4), (18, [16, 4, 4], 4), (12, [10, 5, 3], 3)] {
            let plan = PipelinePlan::uniform(interior(n), b, s);
            check_coverage(&plan, -1);
        }
    }

    #[test]
    fn coverage_up_direction() {
        for (n, b, s) in [(20, [6, 6, 6], 4), (18, [16, 4, 4], 4), (12, [10, 5, 3], 3)] {
            let plan = PipelinePlan::uniform(interior(n), b, s);
            check_coverage(&plan, 1);
        }
    }

    #[test]
    fn dependencies_down() {
        let plan = PipelinePlan::uniform(interior(14), [4, 4, 4], 4);
        check_dependencies(&plan, -1);
    }

    #[test]
    fn dependencies_up() {
        let plan = PipelinePlan::uniform(interior(14), [4, 4, 4], 4);
        check_dependencies(&plan, 1);
    }

    #[test]
    fn race_freedom_down() {
        let plan = PipelinePlan::uniform(interior(14), [4, 4, 4], 4);
        check_race_freedom_two_grid(&plan, -1);
    }

    #[test]
    fn race_freedom_up() {
        let plan = PipelinePlan::uniform(interior(14), [4, 4, 4], 4);
        check_race_freedom_two_grid(&plan, 1);
    }

    #[test]
    fn race_freedom_asymmetric_blocks() {
        // Long-x blocks as in the paper (b_x >> b_y, b_z).
        let plan = PipelinePlan::uniform(interior(18), [16, 4, 4], 4);
        check_race_freedom_two_grid(&plan, -1);
        check_dependencies(&plan, -1);
    }

    #[test]
    fn shrinking_domains_cover_and_depend() {
        // Distributed-style: stage s covers interior + (2 - s) ring of a
        // 12^3 local grid with ghost width 3 => allocated 18^3, interior
        // [3,15), ring domains with lo/hi moving by 1 per stage.
        let domains = vec![
            Region3::new([1, 1, 1], [17, 17, 17]),
            Region3::new([2, 2, 2], [16, 16, 16]),
            Region3::new([3, 3, 3], [15, 15, 15]),
        ];
        let plan = PipelinePlan::with_domains(domains, [8, 8, 8]);
        check_coverage(&plan, -1);
        check_dependencies(&plan, -1);
        check_race_freedom_two_grid(&plan, -1);
    }

    #[test]
    fn shell_extension_touches_boundary_only_at_edges() {
        let plan = PipelinePlan::uniform(interior(12), [5, 5, 5], 2);
        // Block 0 at stage 0 touches the low edges everywhere.
        let shell = plan.region_with_shell(0, 0, -1);
        assert_eq!(shell.lo, [0, 0, 0]);
        // Its high side at 6 < 11 is not extended.
        assert_eq!(shell.hi, [6, 6, 6]);
        // Last block extends to include the high boundary.
        let last = plan.num_blocks() - 1;
        let shell = plan.region_with_shell(last, 0, -1);
        assert_eq!(shell.hi, [12, 12, 12]);
        assert_eq!(shell.lo, [6, 6, 6]);
    }

    #[test]
    fn shells_tile_the_whole_grid() {
        // Regions-with-shell at any stage must tile interior + boundary
        // exactly: every boundary cell copied exactly once per stage.
        let plan = PipelinePlan::uniform(interior(12), [5, 5, 5], 2);
        for s in 0..plan.stages() {
            let total: usize = (0..plan.num_blocks())
                .map(|j| plan.region_with_shell(j, s, -1).count())
                .sum();
            assert_eq!(total, 12 * 12 * 12, "stage {s}");
            for j in 0..plan.num_blocks() {
                for k in 0..j {
                    let rj = plan.region_with_shell(j, s, -1);
                    let rk = plan.region_with_shell(k, s, -1);
                    assert!(!rj.intersects(&rk), "shells {j},{k} overlap at stage {s}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "smaller than the pipeline depth")]
    fn too_small_blocks_rejected() {
        let _ = PipelinePlan::uniform(interior(20), [3, 3, 3], 6);
    }

    #[test]
    fn single_block_any_depth_allowed() {
        // counts == 1 in every dim: the whole domain is one block; any
        // stage count is fine (plain temporal blocking without pipelining).
        let plan = PipelinePlan::uniform(interior(8), [64, 64, 64], 5);
        check_coverage(&plan, -1);
    }
}
