//! Two-grid pipelined temporal blocking executor (paper §1.3, Fig. 1).
//!
//! `n` teams of `t` threads form one pipeline of `n·t` threads; pipeline
//! thread `i` applies updates (stages) `i·T … (i+1)·T - 1` to every block.
//! Synchronization is either a global [`SpinBarrier`] after each block
//! update, or the relaxed counter scheme ([`PipelineSync`], Eq. 3).
//!
//! Team sweeps (each advancing the whole grid by `n·t·T` Jacobi sweeps)
//! are separated by barriers; a trailing partial team sweep handles sweep
//! counts that are not multiples of the pipeline depth, so `run` performs
//! *exactly* `sweeps` Jacobi sweeps for any request.
//!
//! Every entry point exists in two forms: `*_on(&Runtime, …)` executes
//! on a persistent [`tb_runtime::Runtime`] worker team (the paper's
//! long-lived pinned thread groups — share one runtime across repeated
//! solves to pay the spawn/pin cost once), and the classic form, which
//! builds a one-shot runtime per call and so keeps its historical
//! signature and cost profile.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tb_grid::{AccessKind, GridPair, Real, Region3, RegionAuditor, SharedGrid};
use tb_runtime::Runtime;
use tb_sync::{PipelineSync, SpinBarrier};

use crate::config::PipelineConfig;
use crate::kernel::{self, StoreMode};
use crate::op::{Jacobi6, StencilOp};
use crate::pipeline::plan::PipelinePlan;
use crate::pipeline::schedule::team_sweep_schedule;
use crate::stats::RunStats;

/// The shared state of one pipelined run: plan, grid views, and the
/// synchronization objects every worker of the team touches. Build it
/// once per run, then have each worker of the team call
/// [`PipelineRun::worker`]. This is the reusable core behind
/// [`run_op_on`]; `tb-dist`'s NUMA node solver drives one `PipelineRun`
/// per subdomain team on slices of a larger runtime.
pub struct PipelineRun<'a, T: Real, Op: StencilOp<T>> {
    op: &'a Op,
    views: [SharedGrid<T>; 2],
    plan: PipelinePlan,
    barrier: SpinBarrier,
    psync: Option<PipelineSync>,
    auditor: Option<RegionAuditor>,
    total_cells: AtomicU64,
    threads: usize,
    upt: usize,
    depth: usize,
    sweeps: usize,
    _pair: std::marker::PhantomData<&'a mut GridPair<T>>,
}

impl<'a, T: Real, Op: StencilOp<T>> PipelineRun<'a, T, Op> {
    /// Validate `cfg` against the pair and set up the run state for
    /// `sweeps` sweeps of `op`.
    pub fn new(
        op: &'a Op,
        pair: &'a mut GridPair<T>,
        cfg: &PipelineConfig,
        sweeps: usize,
    ) -> Result<Self, String> {
        cfg.validate(pair.dims())?;
        let dims = pair.dims();
        let interior = Region3::interior_of(dims);
        let depth = cfg.stages();
        let plan = PipelinePlan::uniform(interior, cfg.block, depth);
        let threads = cfg.threads();
        Ok(Self {
            op,
            views: pair.shared_views(),
            plan,
            barrier: SpinBarrier::new(threads),
            psync: PipelineSync::from_mode(threads, cfg.team_size, cfg.sync),
            auditor: cfg.audit.then(RegionAuditor::new),
            total_cells: AtomicU64::new(0),
            threads,
            upt: cfg.updates_per_thread,
            depth,
            sweeps,
            _pair: std::marker::PhantomData,
        })
    }

    /// Pipeline threads of this run (`n·t`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute pipeline thread `tid`'s share of the whole run: every
    /// team sweep, including the trailing partial one.
    ///
    /// # Safety
    /// Exactly [`PipelineRun::threads`] workers must call this
    /// concurrently, with distinct `tid`s in `0..threads`, and nothing
    /// else may touch the underlying grid pair for the duration — the
    /// plan geometry plus the synchronization distances then guarantee
    /// the disjointness contract of the shared-grid kernels.
    pub unsafe fn worker(&self, tid: usize) {
        let nblocks = self.plan.num_blocks();
        let team_sweeps = self.sweeps.div_ceil(self.depth);
        let mut my_cells = 0u64;
        for ts in 0..team_sweeps {
            let base = ts * self.depth;
            let stages_now = self.depth.min(self.sweeps - base);
            my_cells += team_sweep_schedule(
                &self.barrier,
                self.psync.as_ref(),
                tid,
                self.threads,
                self.upt,
                nblocks,
                stages_now,
                |k| k,
                |j| {
                    update_block(
                        self.op,
                        &self.views,
                        &self.plan,
                        self.auditor.as_ref(),
                        tid,
                        j,
                        base,
                        stages_now,
                        self.upt,
                    )
                },
            );
        }
        self.total_cells.fetch_add(my_cells, Ordering::Relaxed);
    }

    /// Cell updates performed so far (complete once all workers joined).
    pub fn cells(&self) -> u64 {
        self.total_cells.load(Ordering::Relaxed)
    }
}

/// Run `sweeps` sweeps of `op` over `pair` with pipelined temporal
/// blocking on the given persistent runtime (which must have at least
/// `cfg.threads()` workers; placement belongs to the runtime, so a
/// `cfg.layout` pin list is ignored here). On return the result lives
/// in `pair.current(sweeps)`.
pub fn run_op_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    pair: &mut GridPair<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    cfg.validate(pair.dims())?;
    if sweeps == 0 {
        return Ok(RunStats::new(0, std::time::Duration::ZERO));
    }
    if rt.threads() < cfg.threads() {
        return Err(format!(
            "runtime has {} workers but the pipeline needs {}",
            rt.threads(),
            cfg.threads()
        ));
    }
    let run = PipelineRun::new(op, pair, cfg, sweeps)?;
    let t0 = Instant::now();
    // SAFETY: the runtime dispatch hands out distinct tids 0..threads
    // and blocks until every worker finished; the pair stays exclusively
    // borrowed by `run` for that whole window.
    rt.run(run.threads(), &|tid| unsafe { run.worker(tid) });
    Ok(RunStats::new(run.cells(), t0.elapsed()))
}

/// [`run_op_on`] on a one-shot runtime built from `cfg` (pinned per
/// `cfg.layout` when present) — the classic entry point. The reported
/// elapsed time includes the team spawn/join, as it always did.
pub fn run_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    pair: &mut GridPair<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    cfg.validate(pair.dims())?;
    let t0 = Instant::now();
    let stats = run_op_on(&cfg.one_shot_runtime(), op, pair, cfg, sweeps)?;
    Ok(if sweeps == 0 {
        stats
    } else {
        RunStats::new(stats.cell_updates, t0.elapsed())
    })
}

/// Classic-Jacobi form of [`run_op_on`].
pub fn run_on<T: Real>(
    rt: &Runtime,
    pair: &mut GridPair<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_op_on(rt, &Jacobi6, pair, cfg, sweeps)
}

/// Classic-Jacobi form of [`run_op`].
pub fn run<T: Real>(
    pair: &mut GridPair<T>,
    cfg: &PipelineConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_op(&Jacobi6, pair, cfg, sweeps)
}

/// One pipelined team sweep over an externally built plan — the entry
/// point for the distributed solver, whose stage domains are shrinking
/// ghost rings rather than the plain interior. Executes on the given
/// persistent runtime (at least `cfg.threads()` workers).
///
/// * `views` — the two grid buffers (`views[s % 2]` is read by sweep `s`),
/// * `base_sweep` — global sweep number of stage 0 (fixes parity),
/// * `stages_now` — how many of the plan's stages to execute (allows a
///   trailing partial cycle).
///
/// Returns the number of cell updates performed.
///
/// # Safety
/// The caller must guarantee `views` point at live allocations of the
/// plan's grid extents and that no other thread accesses them during the
/// call. The plan must satisfy the `pipeline::plan` geometry contract
/// (construction via [`PipelinePlan::with_domains`] enforces it).
pub unsafe fn run_team_sweep_op_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    views: &[SharedGrid<T>; 2],
    plan: &PipelinePlan,
    cfg: &PipelineConfig,
    base_sweep: usize,
    stages_now: usize,
) -> u64 {
    let threads = cfg.threads();
    assert!(
        rt.threads() >= threads,
        "runtime has {} workers but the team sweep needs {threads}",
        rt.threads()
    );
    let nblocks = plan.num_blocks();
    let barrier = SpinBarrier::new(threads);
    let psync = PipelineSync::from_mode(threads, cfg.team_size, cfg.sync);
    let auditor = cfg.audit.then(RegionAuditor::new);
    let total_cells = AtomicU64::new(0);
    let upt = cfg.updates_per_thread;
    rt.run(threads, &|tid| {
        let cells = team_sweep_schedule(
            &barrier,
            psync.as_ref(),
            tid,
            threads,
            upt,
            nblocks,
            stages_now,
            |k| k,
            |j| {
                update_block(
                    op,
                    views,
                    plan,
                    auditor.as_ref(),
                    tid,
                    j,
                    base_sweep,
                    stages_now,
                    upt,
                )
            },
        );
        total_cells.fetch_add(cells, Ordering::Relaxed);
    });
    total_cells.load(Ordering::Relaxed)
}

/// [`run_team_sweep_op_on`] on a one-shot runtime built from `cfg`.
///
/// # Safety
/// Same contract as [`run_team_sweep_op_on`].
pub unsafe fn run_team_sweep_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    views: &[SharedGrid<T>; 2],
    plan: &PipelinePlan,
    cfg: &PipelineConfig,
    base_sweep: usize,
    stages_now: usize,
) -> u64 {
    run_team_sweep_op_on(
        &cfg.one_shot_runtime(),
        op,
        views,
        plan,
        cfg,
        base_sweep,
        stages_now,
    )
}

/// Classic-Jacobi form of [`run_team_sweep_op`].
///
/// # Safety
/// Same contract as [`run_team_sweep_op_on`].
pub unsafe fn run_team_sweep<T: Real>(
    views: &[SharedGrid<T>; 2],
    plan: &PipelinePlan,
    cfg: &PipelineConfig,
    base_sweep: usize,
    stages_now: usize,
) -> u64 {
    run_team_sweep_op(&Jacobi6, views, plan, cfg, base_sweep, stages_now)
}

/// Apply this thread's `T` consecutive stages to block `j` of the team
/// sweep starting at global sweep `base`. Returns cells updated.
#[allow(clippy::too_many_arguments)]
fn update_block<T: Real, Op: StencilOp<T>>(
    op: &Op,
    views: &[SharedGrid<T>; 2],
    plan: &PipelinePlan,
    auditor: Option<&RegionAuditor>,
    tid: usize,
    j: usize,
    base: usize,
    stages_now: usize,
    updates_per_thread: usize,
) -> u64 {
    let mut cells = 0u64;
    for u in 0..updates_per_thread {
        let stage = tid * updates_per_thread + u;
        if stage >= stages_now {
            break;
        }
        let sweep = base + stage;
        let region = plan.region(j, stage, -1);
        if region.is_empty() {
            continue;
        }
        let (sg, dg) = (sweep % 2, (sweep + 1) % 2);
        let claims = auditor.map(|a| {
            let read = a.claim(tid, sg, AccessKind::Read, region.expand(1));
            let write = a.claim(tid, dg, AccessKind::Write, region);
            (read, write)
        });
        // SAFETY: the plan geometry plus the synchronization distances
        // guarantee the disjointness contract of `update_region_shared_op`
        // (see plan module docs; re-checked here when auditing is on).
        unsafe {
            kernel::update_region_shared_op(op, &views[sg], &views[dg], &region, StoreMode::Normal)
        };
        if let (Some(a), Some((r, w))) = (auditor, claims) {
            a.release(r);
            a.release(w);
        }
        cells += region.count() as u64;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use tb_grid::{init, norm, Dims3, GridPair};
    use tb_sync::SyncMode;

    fn reference(dims: Dims3, seed: u64, sweeps: usize) -> tb_grid::Grid3<f64> {
        let mut pair = GridPair::from_initial(init::random(dims, seed));
        baseline::seq_sweeps(&mut pair, sweeps);
        pair.current(sweeps).clone()
    }

    fn run_cfg(dims: Dims3, seed: u64, sweeps: usize, cfg: &PipelineConfig) -> tb_grid::Grid3<f64> {
        let mut pair = GridPair::from_initial(init::random(dims, seed));
        run(&mut pair, cfg, sweeps).unwrap();
        pair.current(sweeps).clone()
    }

    fn assert_matches_reference(dims: Dims3, sweeps: usize, cfg: &PipelineConfig) {
        let want = reference(dims, 42, sweeps);
        let got = run_cfg(dims, 42, sweeps, cfg);
        norm::assert_grids_identical(
            &want,
            &got,
            &Region3::whole(dims),
            &format!("pipelined {sweeps} sweeps vs reference"),
        );
    }

    fn audit_cfg(
        team: usize,
        teams: usize,
        upt: usize,
        sync: SyncMode,
        block: [usize; 3],
    ) -> PipelineConfig {
        PipelineConfig {
            team_size: team,
            n_teams: teams,
            updates_per_thread: upt,
            block,
            sync,
            scheme: crate::config::GridScheme::TwoGrid,
            layout: None,
            audit: true,
        }
    }

    #[test]
    fn exact_multiple_of_depth_relaxed() {
        let cfg = audit_cfg(
            2,
            1,
            1,
            SyncMode::Relaxed {
                dl: 1,
                du: 2,
                dt: 0,
            },
            [8, 8, 8],
        );
        // depth = 2; 4 sweeps = 2 team sweeps.
        assert_matches_reference(Dims3::cube(20), 4, &cfg);
    }

    #[test]
    fn partial_final_team_sweep() {
        let cfg = audit_cfg(2, 1, 2, SyncMode::relaxed_default(), [8, 8, 8]);
        // depth = 4; 6 sweeps = one full + one partial (2 stages).
        assert_matches_reference(Dims3::cube(20), 6, &cfg);
    }

    #[test]
    fn barrier_mode_matches() {
        let cfg = audit_cfg(3, 1, 1, SyncMode::Barrier, [8, 8, 8]);
        assert_matches_reference(Dims3::cube(20), 5, &cfg);
    }

    #[test]
    fn two_teams_with_team_delay() {
        let cfg = audit_cfg(
            2,
            2,
            1,
            SyncMode::Relaxed {
                dl: 1,
                du: 4,
                dt: 2,
            },
            [8, 8, 8],
        );
        // depth = 4.
        assert_matches_reference(Dims3::cube(22), 8, &cfg);
    }

    #[test]
    fn deep_pipeline_multiple_updates() {
        let cfg = audit_cfg(2, 2, 2, SyncMode::relaxed_default(), [10, 10, 10]);
        // depth = 8 on a 24^3 grid (interior 22, blocks 10 >= 8).
        assert_matches_reference(Dims3::cube(24), 11, &cfg);
    }

    #[test]
    fn lockstep_du_equals_dl() {
        let cfg = audit_cfg(
            4,
            1,
            1,
            SyncMode::Relaxed {
                dl: 1,
                du: 1,
                dt: 0,
            },
            [8, 8, 8],
        );
        assert_matches_reference(Dims3::cube(18), 4, &cfg);
    }

    #[test]
    fn loose_pipeline_large_du() {
        let cfg = audit_cfg(
            4,
            1,
            1,
            SyncMode::Relaxed {
                dl: 1,
                du: 16,
                dt: 0,
            },
            [8, 8, 8],
        );
        assert_matches_reference(Dims3::cube(18), 4, &cfg);
    }

    #[test]
    fn asymmetric_paper_style_blocks() {
        let cfg = audit_cfg(2, 1, 2, SyncMode::relaxed_default(), [16, 5, 5]);
        assert_matches_reference(Dims3::new(20, 17, 13), 9, &cfg);
    }

    #[test]
    fn single_thread_pipeline_degenerates_to_blocked_sweeps() {
        let cfg = audit_cfg(1, 1, 3, SyncMode::relaxed_default(), [8, 8, 8]);
        assert_matches_reference(Dims3::cube(16), 7, &cfg);
    }

    #[test]
    fn zero_sweeps_is_noop() {
        let dims = Dims3::cube(16);
        let initial: tb_grid::Grid3<f64> = init::random(dims, 1);
        let mut pair = GridPair::from_initial(initial.clone());
        let cfg = PipelineConfig::small();
        let stats = run(&mut pair, &cfg, 0).unwrap();
        assert_eq!(stats.cell_updates, 0);
        norm::assert_grids_identical(&initial, pair.current(0), &Region3::whole(dims), "noop");
    }

    #[test]
    fn stats_count_matches_sweeps_times_interior() {
        let dims = Dims3::cube(20);
        let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 3));
        let cfg = audit_cfg(2, 1, 1, SyncMode::relaxed_default(), [9, 9, 9]);
        let sweeps = 6;
        let stats = run(&mut pair, &cfg, sweeps).unwrap();
        assert_eq!(stats.cell_updates, (sweeps * dims.interior_len()) as u64);
    }

    #[test]
    fn invalid_config_is_reported() {
        let dims = Dims3::cube(10);
        let mut pair: GridPair<f64> = GridPair::zeroed(dims);
        let mut cfg = PipelineConfig::small();
        cfg.updates_per_thread = 50;
        assert!(run(&mut pair, &cfg, 2).is_err());
    }

    #[test]
    fn shared_runtime_reproduces_the_one_shot_result() {
        let dims = Dims3::cube(20);
        let cfg = audit_cfg(2, 1, 2, SyncMode::relaxed_default(), [8, 8, 8]);
        let want = run_cfg(dims, 9, 6, &cfg);
        let rt = Runtime::with_threads(cfg.threads());
        for _ in 0..3 {
            let mut pair = GridPair::from_initial(init::random(dims, 9));
            run_on(&rt, &mut pair, &cfg, 6).unwrap();
            norm::assert_grids_identical(
                &want,
                pair.current(6),
                &Region3::whole(dims),
                "shared runtime",
            );
        }
    }

    #[test]
    fn undersized_runtime_is_rejected() {
        let dims = Dims3::cube(20);
        let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 1));
        let cfg = audit_cfg(3, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]);
        let rt = Runtime::with_threads(2);
        let err = run_on(&rt, &mut pair, &cfg, 2).unwrap_err();
        assert!(err.contains("workers"), "{err}");
    }
}
