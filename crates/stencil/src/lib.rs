//! # tb-stencil — pipelined temporal blocking of Jacobi stencils
//!
//! This crate is the paper's primary contribution. It contains:
//!
//! * [`kernel`] — the 3D Jacobi 6-point kernel (Eq. 1), in safe slice form,
//!   in unsafe [`tb_grid::SharedGrid`] form for the multi-threaded
//!   executors, and with x86-64 non-temporal-store variants;
//! * [`baseline`] — the "standard Jacobi" solvers: sequential, spatially
//!   blocked, and thread-parallel with streaming stores (§1.1);
//! * [`pipeline`] — **pipelined temporal blocking** (§1.3): the block
//!   schedule ([`pipeline::plan`]), the global-barrier executor, the
//!   relaxed-synchronization executor (Eq. 3), and the compressed-grid
//!   executor;
//! * [`wavefront`] — the wavefront method of Wellein et al. (ref. [2]),
//!   implemented as a comparator;
//! * [`stats`] — LUP/s accounting shared by examples and benches.
//!
//! # Determinism
//!
//! Every kernel evaluates `(west + east + south + north + bottom + top) *
//! (1/6)` in exactly that operand order. Consequently all solvers in this
//! crate — sequential, blocked, parallel, pipelined in any configuration,
//! wavefront, compressed — produce **bitwise identical** results after the
//! same number of sweeps, and the test-suite holds them to that.

pub mod baseline;
pub mod config;
pub mod kernel;
pub mod pipeline;
pub mod residual;
pub mod stats;
pub mod wavefront;

pub use config::PipelineConfig;
pub use stats::RunStats;
pub use tb_sync::SyncMode;
