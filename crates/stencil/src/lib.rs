//! # tb-stencil — pipelined temporal blocking of stencil codes
//!
//! This crate is the paper's primary contribution, generalized over a
//! stencil-operator layer. It contains:
//!
//! * [`op`] — the [`StencilOp`] trait (row-update primitive, radius,
//!   flops/LUP and bytes/LUP code balance) and the shipped operators:
//!   classic 6-point Jacobi ([`Jacobi6`], Eq. 1), 7-point with center
//!   weight ([`Jacobi7`], explicit-Euler heat), variable-coefficient
//!   7-point ([`VarCoeff7`]) and the dense 27-point average ([`Avg27`]);
//! * [`kernel`] — region-update drivers for every storage scheme: safe
//!   two-grid, unsafe [`tb_grid::SharedGrid`] for the multi-threaded
//!   executors, and the compressed diagonally-shifted scheme, plus the
//!   x86-64 non-temporal-store Jacobi row;
//! * [`baseline`] — the "standard" solvers: sequential, spatially
//!   blocked, and thread-parallel with streaming stores (§1.1);
//! * [`pipeline`] — **pipelined temporal blocking** (§1.3): the block
//!   schedule ([`pipeline::plan`]), the global-barrier executor, the
//!   relaxed-synchronization executor (Eq. 3), and the compressed-grid
//!   executor;
//! * [`simd`] — runtime-dispatched explicit AVX row kernels behind the
//!   portable lane path of [`op`] (stable `std::arch`, selected via
//!   `is_x86_feature_detected!`, bitwise identical to the scalar rows);
//! * [`wavefront`] — the wavefront method of Wellein et al. (ref. 2),
//!   implemented as a comparator;
//! * [`diamond`] — **wavefront-diamond temporal blocking** (Malas,
//!   Hager et al. 2015): diamond tiles along z × time executed row by
//!   row, removing the pipelined scheme's wind-up/wind-down waste and
//!   its block/delay tuning knobs;
//! * [`residual`] — operator-agnostic convergence diagnostics;
//! * [`stats`] — LUP/s and FLOP/s accounting shared by examples and
//!   benches.
//!
//! # Execution
//!
//! Every parallel entry point has a `*_on(&tb_runtime::Runtime, …)`
//! form running on a persistent, core-pinned worker team (share one
//! runtime across repeated solves), and a classic form that builds a
//! one-shot runtime per call — same signature and bitwise behaviour as
//! before the runtime existed.
//!
//! # Determinism
//!
//! Every operator evaluates its update in one fixed operand order (e.g.
//! `(west + east + south + north + bottom + top) * (1/6)` for
//! [`Jacobi6`]). Consequently all solvers in this crate — sequential,
//! blocked, parallel, pipelined in any configuration, wavefront,
//! compressed — produce **bitwise identical** results after the same
//! number of sweeps of the same operator, and the test-suite holds them
//! to that.

pub mod baseline;
pub mod config;
pub mod diamond;
pub mod kernel;
pub mod op;
pub mod pipeline;
pub mod residual;
pub mod simd;
pub mod stats;
pub mod wavefront;

pub use config::PipelineConfig;
pub use diamond::DiamondConfig;
pub use op::{Avg27, Jacobi6, Jacobi7, Rows9, ScalarPath, StencilOp, VarCoeff7};
pub use stats::RunStats;
pub use tb_sync::SyncMode;
