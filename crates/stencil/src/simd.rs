//! Runtime-dispatched explicit SIMD row kernels (x86-64 AVX).
//!
//! The portable `apply_row_simd` path in [`crate::op`] expresses the row
//! update over fixed-width [`tb_grid::Lane`]s and leaves the vector
//! instruction selection to LLVM. That is the right *portable* default,
//! but it caps the achievable width at whatever the build target
//! guarantees — a stock `x86_64-unknown-linux-gnu` binary is compiled
//! for SSE2 and never issues a 256-bit operation, no matter what the
//! host supports. This module closes that gap the classic
//! function-multiversioning way: each operator's row kernel also exists
//! as an explicit `std::arch` AVX implementation (stable since Rust
//! 1.27, well inside the MSRV), compiled under
//! `#[target_feature(enable = "avx")]` and selected at **runtime** via
//! a cached CPUID probe. Non-x86 targets, pre-AVX hardware, and exotic
//! element types all fall back to the portable lane path — the dispatch
//! functions simply return `false` and the caller keeps going.
//!
//! # Call-overhead discipline
//!
//! A `#[target_feature]` function can never inline into its
//! feature-less caller, so every row pays one real call. Stencil rows
//! are short (a 64³ problem has 62-element rows), which makes that
//! fixed cost the difference between a speedup and a slowdown; the
//! kernels therefore take a compact raw-pointer ABI (neighbor rows
//! pre-offset to their `+1` read position, the nine `Avg27` rows passed
//! as one pointer-table argument) instead of twelve slice halves, and
//! the feature probe is one relaxed atomic load off a module-local
//! cache.
//!
//! # Bitwise contract
//!
//! These kernels inherit the module-level determinism contract of
//! [`crate::op`]: every vector slot evaluates the *same expression tree
//! in the same operand order* as the scalar kernel — plain loads, adds
//! and multiplies, never FMA contraction (which would change results)
//! and never horizontal reductions. Each kernel peels a scalar head
//! until the store pointer reaches the 32-byte vector boundary, runs
//! aligned vector stores over the body (unrolled two vectors deep), and
//! finishes with a scalar tail; because per-slot arithmetic is
//! identical in all three phases, where the splits fall can never
//! change a bit. The `kernels_match_scalar_rows` test below pins that
//! promise for every operator at deliberately misaligned offsets.

use tb_grid::Real;

use crate::op::Rows9;

/// Whether the explicit AVX row kernels are active on this host (true
/// iff we are on x86-64 and the CPU reports AVX). Benches report this
/// so `simd: on` rows can be interpreted; on `false`, `apply_row_simd`
/// still runs — through the portable lane path.
#[inline(always)]
pub fn active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        detect::avx()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod detect {
    //! One-word cache in front of `is_x86_feature_detected!`. The std
    //! macro resolves to an out-of-line libstd call; paying that per
    //! *row* is measurable, a relaxed load of a module-local atomic is
    //! not.
    use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

    /// 0 = unknown, 1 = AVX available, 2 = not available.
    static AVX: AtomicU8 = AtomicU8::new(0);

    #[inline(always)]
    pub fn avx() -> bool {
        match AVX.load(Relaxed) {
            0 => init(),
            v => v == 1,
        }
    }

    #[cold]
    fn init() -> bool {
        let yes = std::arch::is_x86_feature_detected!("avx");
        AVX.store(if yes { 1 } else { 2 }, Relaxed);
        yes
    }
}

/// `true` iff `T` is exactly `U` — the guard under which the pointer
/// casts below are sound.
#[inline(always)]
fn is<T: 'static, U: 'static>() -> bool {
    std::any::TypeId::of::<T>() == std::any::TypeId::of::<U>()
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `#[target_feature(enable = "avx")]` kernel bodies.
    //!
    //! All pointer arguments follow the read convention of
    //! [`crate::op::Rows9`] with the `+1` neighbor offset already
    //! applied by the dispatcher: for destination cell `i`, the center
    //! row is read at `c[i]`, `c[i + 1]`, `c[i + 2]` and every neighbor
    //! row at exactly `[i]`. Everything here is `unsafe fn`: callers
    //! must have verified AVX support (see [`super::active`]) and that
    //! each pointer covers the stated range for `n` cells.
    #![allow(clippy::missing_safety_doc)]

    use std::arch::x86_64::*;

    /// One macro instantiation per element type: `$ty` is the scalar,
    /// `$w` the vector width (32 bytes / `$ty`), and the remaining
    /// idents name the matching `_mm256` intrinsics.
    macro_rules! avx_kernels {
        ($mod_:ident, $ty:ty, $w:expr,
         $loadu:ident, $store:ident, $add:ident, $sub:ident, $mul:ident, $set1:ident) => {
            pub mod $mod_ {
                use super::*;

                /// Scalar elements to peel before `dst` reaches a
                /// 32-byte (one-vector) store boundary, capped at `n`.
                #[inline(always)]
                fn head(dst: *const $ty, n: usize) -> usize {
                    let mis = (dst as usize) % 32;
                    if mis == 0 {
                        0
                    } else {
                        ((32 - mis) / std::mem::size_of::<$ty>()).min(n)
                    }
                }

                /// The six-face cross sum with the canonical operand
                /// order `c[i] + c[i+2] + ym + yp + zm + zp`, one vector
                /// at offset `i`.
                macro_rules! cross_sum {
                    ($i:expr, $c:expr, $ym:expr, $yp:expr, $zm:expr, $zp:expr) => {
                        $add(
                            $add(
                                $add(
                                    $add(
                                        $add($loadu($c.add($i)), $loadu($c.add($i + 2))),
                                        $loadu($ym.add($i)),
                                    ),
                                    $loadu($yp.add($i)),
                                ),
                                $loadu($zm.add($i)),
                            ),
                            $loadu($zp.add($i)),
                        )
                    };
                }

                /// `(west + east + south + north + bottom + top) / 6`.
                #[target_feature(enable = "avx")]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn jacobi6(
                    n: usize,
                    dst: *mut $ty,
                    c: *const $ty,
                    ym: *const $ty,
                    yp: *const $ty,
                    zm: *const $ty,
                    zp: *const $ty,
                ) {
                    let s = (1.0 as $ty) / (6.0 as $ty);
                    let vs = $set1(s);
                    macro_rules! scalar {
                        ($i:expr) => {
                            *dst.add($i) = (*c.add($i)
                                + *c.add($i + 2)
                                + *ym.add($i)
                                + *yp.add($i)
                                + *zm.add($i)
                                + *zp.add($i))
                                * s;
                        };
                    }
                    let mut i = 0;
                    let h = head(dst, n);
                    while i < h {
                        scalar!(i);
                        i += 1;
                    }
                    while i + 2 * $w <= n {
                        let a = cross_sum!(i, c, ym, yp, zm, zp);
                        let b = cross_sum!(i + $w, c, ym, yp, zm, zp);
                        $store(dst.add(i), $mul(a, vs));
                        $store(dst.add(i + $w), $mul(b, vs));
                        i += 2 * $w;
                    }
                    while i + $w <= n {
                        let a = cross_sum!(i, c, ym, yp, zm, zp);
                        $store(dst.add(i), $mul(a, vs));
                        i += $w;
                    }
                    while i < n {
                        scalar!(i);
                        i += 1;
                    }
                }

                /// `center·u + neighbor·Σ(6 faces)`.
                #[target_feature(enable = "avx")]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn jacobi7(
                    n: usize,
                    cw: $ty,
                    nw: $ty,
                    dst: *mut $ty,
                    c: *const $ty,
                    ym: *const $ty,
                    yp: *const $ty,
                    zm: *const $ty,
                    zp: *const $ty,
                ) {
                    let (vcw, vnw) = ($set1(cw), $set1(nw));
                    macro_rules! scalar {
                        ($i:expr) => {
                            let sum = *c.add($i)
                                + *c.add($i + 2)
                                + *ym.add($i)
                                + *yp.add($i)
                                + *zm.add($i)
                                + *zp.add($i);
                            *dst.add($i) = *c.add($i + 1) * cw + sum * nw;
                        };
                    }
                    macro_rules! vector {
                        ($i:expr) => {{
                            let sum = cross_sum!($i, c, ym, yp, zm, zp);
                            let u = $loadu(c.add($i + 1));
                            $store(dst.add($i), $add($mul(u, vcw), $mul(sum, vnw)));
                        }};
                    }
                    let mut i = 0;
                    let h = head(dst, n);
                    while i < h {
                        scalar!(i);
                        i += 1;
                    }
                    while i + 2 * $w <= n {
                        vector!(i);
                        vector!(i + $w);
                        i += 2 * $w;
                    }
                    while i + $w <= n {
                        vector!(i);
                        i += $w;
                    }
                    while i < n {
                        scalar!(i);
                        i += 1;
                    }
                }

                /// `u + (Σ(6 faces) − 6u)·k(x,y,z)`; `k` points at the
                /// coefficient row pre-sliced to the destination cells.
                #[target_feature(enable = "avx")]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn varcoeff7(
                    n: usize,
                    dst: *mut $ty,
                    k: *const $ty,
                    c: *const $ty,
                    ym: *const $ty,
                    yp: *const $ty,
                    zm: *const $ty,
                    zp: *const $ty,
                ) {
                    let six = 6.0 as $ty;
                    let vsix = $set1(six);
                    macro_rules! scalar {
                        ($i:expr) => {
                            let u = *c.add($i + 1);
                            let sum = *c.add($i)
                                + *c.add($i + 2)
                                + *ym.add($i)
                                + *yp.add($i)
                                + *zm.add($i)
                                + *zp.add($i);
                            *dst.add($i) = u + (sum - u * six) * *k.add($i);
                        };
                    }
                    macro_rules! vector {
                        ($i:expr) => {{
                            let sum = cross_sum!($i, c, ym, yp, zm, zp);
                            let u = $loadu(c.add($i + 1));
                            let vk = $loadu(k.add($i));
                            $store(dst.add($i), $add(u, $mul($sub(sum, $mul(u, vsix)), vk)));
                        }};
                    }
                    let mut i = 0;
                    let h = head(dst, n);
                    while i < h {
                        scalar!(i);
                        i += 1;
                    }
                    while i + 2 * $w <= n {
                        vector!(i);
                        vector!(i + $w);
                        i += 2 * $w;
                    }
                    while i + $w <= n {
                        vector!(i);
                        i += $w;
                    }
                    while i < n {
                        scalar!(i);
                        i += 1;
                    }
                }

                /// Mean of the dense 3×3×3 neighborhood, accumulated in
                /// the scalar kernel's plane-by-plane left-fold order.
                /// `rows` is the pointer table `rows[3·dz + dy]`, each
                /// entry at its `x0 - 1` base (offsets 0, 1, 2 read).
                #[target_feature(enable = "avx")]
                pub unsafe fn avg27(n: usize, dst: *mut $ty, rows: &[*const $ty; 9]) {
                    let w = (1.0 as $ty) / (27.0 as $ty);
                    let vw = $set1(w);
                    macro_rules! scalar {
                        ($i:expr) => {
                            let mut acc = 0.0 as $ty;
                            for r in rows {
                                acc += *r.add($i);
                                acc += *r.add($i + 1);
                                acc += *r.add($i + 2);
                            }
                            *dst.add($i) = acc * w;
                        };
                    }
                    let mut i = 0;
                    let h = head(dst, n);
                    while i < h {
                        scalar!(i);
                        i += 1;
                    }
                    while i + $w <= n {
                        let mut acc = $set1(0.0 as $ty);
                        for r in rows {
                            acc = $add(acc, $loadu(r.add(i)));
                            acc = $add(acc, $loadu(r.add(i + 1)));
                            acc = $add(acc, $loadu(r.add(i + 2)));
                        }
                        $store(dst.add(i), $mul(acc, vw));
                        i += $w;
                    }
                    while i < n {
                        scalar!(i);
                        i += 1;
                    }
                }
            }
        };
    }

    avx_kernels!(
        f64k,
        f64,
        4,
        _mm256_loadu_pd,
        _mm256_store_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        _mm256_set1_pd
    );
    avx_kernels!(
        f32k,
        f32,
        8,
        _mm256_loadu_ps,
        _mm256_store_ps,
        _mm256_add_ps,
        _mm256_sub_ps,
        _mm256_mul_ps,
        _mm256_set1_ps
    );
}

/// Reinterpret a `T` pointer/value as `U`; sound only under an
/// [`is::<T, U>()`] guard (same type, hence same layout).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn cast_ptr<T, U>(p: *const T) -> *const U {
    p as *const U
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn cast_val<T: Copy, U: Copy>(v: T) -> U {
    *(&v as *const T as *const U)
}

/// The cross-stencil read pointers `(c, ym, yp, zm, zp)` with the
/// neighbor rows pre-offset to their `+1` read position.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn cross_ptrs<T: Real>(src: &Rows9<'_, T>) -> [*const T; 5] {
    [
        src.row(0, 0).as_ptr(),
        // SAFETY: rows have length n + 2 ≥ 2, so `+1` stays in bounds.
        unsafe { src.row(-1, 0).as_ptr().add(1) },
        unsafe { src.row(1, 0).as_ptr().add(1) },
        unsafe { src.row(0, -1).as_ptr().add(1) },
        unsafe { src.row(0, 1).as_ptr().add(1) },
    ]
}

/// Jacobi6 through the AVX kernels. Returns `false` (having written
/// nothing) when no kernel applies — caller falls back to the portable
/// lane path.
#[inline(always)]
pub(crate) fn jacobi6<T: Real>(dst: &mut [T], src: &Rows9<'_, T>) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let n = dst.len();
        let [c, ym, yp, zm, zp] = cross_ptrs(src);
        if is::<T, f64>() && active() {
            // SAFETY: T == f64 (guard above), AVX verified by `active`,
            // pointers cover n (+2 for the center row) reads per Rows9.
            unsafe {
                x86::f64k::jacobi6(
                    n,
                    dst.as_mut_ptr() as *mut f64,
                    cast_ptr(c),
                    cast_ptr(ym),
                    cast_ptr(yp),
                    cast_ptr(zm),
                    cast_ptr(zp),
                );
            }
            return true;
        }
        if is::<T, f32>() && active() {
            // SAFETY: as above with T == f32.
            unsafe {
                x86::f32k::jacobi6(
                    n,
                    dst.as_mut_ptr() as *mut f32,
                    cast_ptr(c),
                    cast_ptr(ym),
                    cast_ptr(yp),
                    cast_ptr(zm),
                    cast_ptr(zp),
                );
            }
            return true;
        }
    }
    let _ = (dst, src);
    false
}

/// Jacobi7 (weights already converted to `T`) through the AVX kernels.
#[inline(always)]
pub(crate) fn jacobi7<T: Real>(dst: &mut [T], src: &Rows9<'_, T>, cw: T, nw: T) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let n = dst.len();
        let [c, ym, yp, zm, zp] = cross_ptrs(src);
        if is::<T, f64>() && active() {
            // SAFETY: T == f64 (guard above), AVX verified by `active`,
            // pointers cover n (+2 for the center row) reads per Rows9.
            unsafe {
                x86::f64k::jacobi7(
                    n,
                    cast_val(cw),
                    cast_val(nw),
                    dst.as_mut_ptr() as *mut f64,
                    cast_ptr(c),
                    cast_ptr(ym),
                    cast_ptr(yp),
                    cast_ptr(zm),
                    cast_ptr(zp),
                );
            }
            return true;
        }
        if is::<T, f32>() && active() {
            // SAFETY: as above with T == f32.
            unsafe {
                x86::f32k::jacobi7(
                    n,
                    cast_val(cw),
                    cast_val(nw),
                    dst.as_mut_ptr() as *mut f32,
                    cast_ptr(c),
                    cast_ptr(ym),
                    cast_ptr(yp),
                    cast_ptr(zm),
                    cast_ptr(zp),
                );
            }
            return true;
        }
    }
    let _ = (dst, src, cw, nw);
    false
}

/// VarCoeff7 (`k` is the pre-sliced coefficient row of length `n`)
/// through the AVX kernels.
#[inline(always)]
pub(crate) fn varcoeff7<T: Real>(dst: &mut [T], src: &Rows9<'_, T>, k: &[T]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let n = dst.len();
        debug_assert_eq!(k.len(), n);
        let [c, ym, yp, zm, zp] = cross_ptrs(src);
        if is::<T, f64>() && active() {
            // SAFETY: T == f64 (guard above), AVX verified by `active`,
            // pointers cover n (+2 for the center row) reads per Rows9.
            unsafe {
                x86::f64k::varcoeff7(
                    n,
                    dst.as_mut_ptr() as *mut f64,
                    cast_ptr(k.as_ptr()),
                    cast_ptr(c),
                    cast_ptr(ym),
                    cast_ptr(yp),
                    cast_ptr(zm),
                    cast_ptr(zp),
                );
            }
            return true;
        }
        if is::<T, f32>() && active() {
            // SAFETY: as above with T == f32.
            unsafe {
                x86::f32k::varcoeff7(
                    n,
                    dst.as_mut_ptr() as *mut f32,
                    cast_ptr(k.as_ptr()),
                    cast_ptr(c),
                    cast_ptr(ym),
                    cast_ptr(yp),
                    cast_ptr(zm),
                    cast_ptr(zp),
                );
            }
            return true;
        }
    }
    let _ = (dst, src, k);
    false
}

/// Avg27 (all nine rows, as a pointer table) through the AVX kernels.
#[inline(always)]
pub(crate) fn avg27<T: Real>(dst: &mut [T], src: &Rows9<'_, T>) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let n = dst.len();
        // Plane-major (dz outer, dy inner) — the scalar summation order.
        let rows: [*const T; 9] = [
            src.row(-1, -1).as_ptr(),
            src.row(0, -1).as_ptr(),
            src.row(1, -1).as_ptr(),
            src.row(-1, 0).as_ptr(),
            src.row(0, 0).as_ptr(),
            src.row(1, 0).as_ptr(),
            src.row(-1, 1).as_ptr(),
            src.row(0, 1).as_ptr(),
            src.row(1, 1).as_ptr(),
        ];
        if is::<T, f64>() && active() {
            // SAFETY: T == f64 (guard above), AVX verified by `active`,
            // every row covers n + 2 reads per Rows9.
            unsafe {
                let rows: [*const f64; 9] = std::array::from_fn(|j| cast_ptr(rows[j]));
                x86::f64k::avg27(n, dst.as_mut_ptr() as *mut f64, &rows);
            }
            return true;
        }
        if is::<T, f32>() && active() {
            // SAFETY: as above with T == f32.
            unsafe {
                let rows: [*const f32; 9] = std::array::from_fn(|j| cast_ptr(rows[j]));
                x86::f32k::avg27(n, dst.as_mut_ptr() as *mut f32, &rows);
            }
            return true;
        }
    }
    let _ = (dst, src);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Avg27, Jacobi6, Jacobi7, ScalarPath, StencilOp, VarCoeff7};
    use tb_grid::{init, Dims3, Grid3};

    /// Every AVX kernel is bitwise identical to its scalar oracle at
    /// deliberately awkward offsets and row lengths (head/tail splits in
    /// play). On hosts without AVX the dispatchers return `false` and
    /// this test degenerates to scalar-vs-scalar — still a valid check
    /// that `apply_row_simd` writes the oracle rows.
    #[test]
    fn kernels_match_scalar_rows() {
        fn check<T: Real, Op: StencilOp<T>>(op: &Op, dims: Dims3, seed: u64) {
            let g: Grid3<T> = init::random(dims, seed);
            let sp = ScalarPath(op.clone());
            for (x0, x1) in [(1, dims.nx - 1), (2, dims.nx - 2), (5, 5 + 9)] {
                for (y, z) in [(1, 1), (2, 3)] {
                    let rows = Rows9::from_grid(&g, x0, x1, y, z);
                    let mut simd = vec![T::ZERO; x1 - x0];
                    let mut scalar = vec![T::ZERO; x1 - x0];
                    op.apply_row_simd(&mut simd, &rows, x0, y, z);
                    sp.apply_row_simd(&mut scalar, &rows, x0, y, z);
                    // f32 → f64 widening is exact, so comparing the f64
                    // bit patterns is bitwise equality for both types.
                    let bits = |v: &T| v.to_f64().to_bits();
                    assert!(
                        simd.iter().zip(&scalar).all(|(a, b)| bits(a) == bits(b)),
                        "{} x0={x0} x1={x1} y={y} z={z}: simd diverged from scalar",
                        op.name()
                    );
                }
            }
        }
        let dims = Dims3::new(23, 6, 6);
        check::<f64, _>(&Jacobi6, dims, 1);
        check::<f64, _>(&Jacobi7::heat(0.12), dims, 2);
        check::<f64, _>(&VarCoeff7::banded(dims), dims, 3);
        check::<f64, _>(&Avg27, dims, 4);
        check::<f32, _>(&Jacobi6, dims, 5);
        check::<f32, _>(&Jacobi7::heat(0.12), dims, 6);
        check::<f32, _>(&VarCoeff7::banded(dims), dims, 7);
        check::<f32, _>(&Avg27, dims, 8);
    }
}
