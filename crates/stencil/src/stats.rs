//! Timing and lattice-site-update accounting.
//!
//! The paper reports performance in MLUP/s ("million lattice site updates
//! per second"); every solver here returns a [`RunStats`] so examples and
//! benches share one notion of the metric.

use std::time::{Duration, Instant};

/// Result of one solver run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Total cell updates performed (sweeps x interior cells for full
    /// sweeps; pipelined partial stages count exactly what they updated).
    pub cell_updates: u64,
    /// Wall-clock time of the update loop (excludes allocation).
    pub elapsed: Duration,
}

impl RunStats {
    pub fn new(cell_updates: u64, elapsed: Duration) -> Self {
        Self {
            cell_updates,
            elapsed,
        }
    }

    /// Million lattice-site updates per second.
    pub fn mlups(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.cell_updates as f64 / secs / 1.0e6
    }

    /// GLUP/s, the unit of the paper's Fig. 6.
    pub fn glups(&self) -> f64 {
        self.mlups() / 1000.0
    }

    /// MFLOP/s given the operator's arithmetic intensity
    /// ([`crate::op::StencilOp::flops_per_lup`]) — LUP/s is the paper's
    /// cross-operator metric, FLOP/s is what hardware counters report.
    pub fn mflops(&self, flops_per_lup: f64) -> f64 {
        self.mlups() * flops_per_lup
    }

    /// Combine two runs (e.g. per-rank stats into a node total: same wall
    /// clock window, summed updates).
    pub fn merge_parallel(&self, other: &RunStats) -> RunStats {
        RunStats {
            cell_updates: self.cell_updates + other.cell_updates,
            elapsed: self.elapsed.max(other.elapsed),
        }
    }
}

/// Measure `f`, returning its output and the elapsed time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlups_arithmetic() {
        let s = RunStats::new(2_000_000, Duration::from_secs(2));
        assert!((s.mlups() - 1.0).abs() < 1e-12);
        assert!((s.glups() - 0.001).abs() < 1e-15);
    }

    #[test]
    fn mflops_scales_with_operator_intensity() {
        let s = RunStats::new(2_000_000, Duration::from_secs(2));
        assert!((s.mflops(6.0) - 6.0).abs() < 1e-12);
        assert!((s.mflops(27.0) - 27.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_is_infinite_rate() {
        let s = RunStats::new(10, Duration::ZERO);
        assert!(s.mlups().is_infinite());
    }

    #[test]
    fn merge_takes_max_time_sum_updates() {
        let a = RunStats::new(100, Duration::from_millis(10));
        let b = RunStats::new(50, Duration::from_millis(30));
        let m = a.merge_parallel(&b);
        assert_eq!(m.cell_updates, 150);
        assert_eq!(m.elapsed, Duration::from_millis(30));
    }

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49995000);
        assert!(d >= Duration::ZERO);
    }
}
