//! Wavefront-diamond temporal blocking (Malas, Hager et al. 2015).
//!
//! The successor of the paper's pipelined scheme: instead of pushing
//! spatial blocks through a thread pipeline (which needs a block size,
//! per-thread update counts and `d_l`/`d_u` distances, and wastes
//! wind-up/wind-down work at team-sweep boundaries), the z × sweep
//! plane is tiled with *diamonds* whose edges follow the stencil's
//! dependence slopes. Geometry and its correctness argument live in
//! [`geometry`]; this module executes the schedule:
//!
//! * tiles of one diamond **row** are mutually independent, so the team
//!   walks the rows in order — one [`tb_sync::SpinBarrier`] epoch per
//!   row — with tiles assigned to workers statically (round-robin, no
//!   work stealing, no per-tile synchronization);
//! * within a tile, sweeps advance in order on the two-grid buffers,
//!   each sweep updating full x/y planes of the tile's z-slab.
//!
//! Exactly like the pipelined executors, the whole run is one dispatch
//! on a persistent [`tb_runtime::Runtime`] team, results are **bitwise
//! identical** to the sequential oracle for every operator, and a
//! classic (one-shot-runtime) entry point keeps the historical
//! signature shape. The in-cache working set is `≈ 2·(w + 2R)` grid
//! planes (see `tb-model`'s diamond estimate), tuned by the single
//! width parameter `w`.

pub mod geometry;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tb_grid::{AccessKind, Dims3, GridPair, Real, Region3, RegionAuditor, SharedGrid};
use tb_runtime::Runtime;
use tb_sync::SpinBarrier;

use crate::kernel::{self, StoreMode};
use crate::op::{Jacobi6, StencilOp};
use crate::stats::RunStats;

pub use geometry::{DiamondRow, DiamondTile, DiamondTiling};

/// Parameters of a diamond-blocked run. Compared to
/// [`crate::PipelineConfig`] there is deliberately little to tune: the
/// team size and one width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiamondConfig {
    /// Workers executing each diamond row.
    pub threads: usize,
    /// Diamond width `w` in transformed coordinates (`z + R·s`); the
    /// widest z-slab of a tile. Larger widths raise in-cache reuse
    /// (`w / 2R` updates per memory traversal) and the working set
    /// (`≈ 2·(w + 2R)` planes) together.
    pub width: usize,
    /// MWD (Malas et al.'s multi-dimensional intra-tile
    /// parallelization): workers cooperating on *one* tile. `1` is the
    /// classic one-thread-per-tile schedule; larger values split each
    /// tile's z-extent into a per-lane wavefront (one intra-tile
    /// barrier per sweep), so `threads / threads_per_tile` tiles run
    /// concurrently and they *share* one tile working set in cache
    /// instead of each dragging in their own. Must divide `threads`.
    pub threads_per_tile: usize,
    /// Run the debug region auditor (serializes claims; test/debug only).
    pub audit: bool,
}

impl DiamondConfig {
    /// A small, always-valid configuration for quick starts and tests.
    pub fn small() -> Self {
        Self {
            threads: 2,
            width: 8,
            threads_per_tile: 1,
            audit: false,
        }
    }

    /// Config with explicit team size and width, one thread per tile,
    /// auditing off.
    pub fn with_width(threads: usize, width: usize) -> Self {
        Self {
            threads,
            width,
            threads_per_tile: 1,
            audit: false,
        }
    }

    /// Builder-style override of the MWD sub-team size.
    pub fn with_threads_per_tile(mut self, threads_per_tile: usize) -> Self {
        self.threads_per_tile = threads_per_tile;
        self
    }

    /// Validate against a grid and operator radius. Unlike the
    /// pipelined scheme there is no depth/block-size coupling to check —
    /// diamonds clamp to the domain, and any sweep count works.
    pub fn validate(&self, dims: Dims3, radius: usize) -> Result<(), String> {
        if self.threads == 0 {
            return Err("diamond needs at least one thread".into());
        }
        if self.threads_per_tile == 0 {
            return Err("threads_per_tile must be >= 1".into());
        }
        if self.threads_per_tile > self.threads
            || !self.threads.is_multiple_of(self.threads_per_tile)
        {
            return Err(format!(
                "threads_per_tile {} must divide the team size {}",
                self.threads_per_tile, self.threads
            ));
        }
        if radius == 0 {
            return Err("operator radius must be >= 1".into());
        }
        if self.width < 2 * radius {
            return Err(format!(
                "diamond width {} is narrower than 2·radius = {}; \
                 reads would skip a diamond row",
                self.width,
                2 * radius
            ));
        }
        if Region3::interior_of(dims).is_empty() {
            return Err(format!("grid {dims} has no interior"));
        }
        Ok(())
    }
}

/// Execute a prebuilt diamond schedule on the runtime's workers: one
/// dispatch, one barrier epoch per diamond row, tiles round-robin per
/// worker. `base_sweep` is the global sweep number of schedule sweep 0
/// (it fixes which buffer of `views` each sweep reads). Returns cells
/// updated.
///
/// # Safety
/// `views` must point at live allocations covering every region of the
/// tiling, nothing else may access them during the call, and the
/// tiling's domains must satisfy the trapezoid contract documented in
/// [`geometry`] (uniform domains satisfy it trivially). Radius safety:
/// the tiling must have been built with the operator's radius.
pub unsafe fn run_diamond_schedule_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    views: &[SharedGrid<T>; 2],
    tiling: &DiamondTiling,
    cfg: &DiamondConfig,
    base_sweep: usize,
) -> u64 {
    assert_eq!(
        tiling.radius(),
        Op::RADIUS,
        "tiling radius must match the operator"
    );
    let threads = cfg.threads;
    assert!(
        rt.threads() >= threads,
        "runtime has {} workers but the diamond team needs {threads}",
        rt.threads()
    );
    let tpt = cfg.threads_per_tile.max(1);
    assert!(
        threads.is_multiple_of(tpt),
        "threads_per_tile {tpt} must divide the team size {threads}"
    );
    // MWD: the team splits into `groups` sub-teams of `tpt` lanes; each
    // sub-team advances one tile cooperatively, so only `groups` tile
    // working sets are live in cache at a time. tpt == 1 degenerates to
    // the classic one-thread-per-tile schedule (same tile assignment,
    // no intra-tile barriers).
    let groups = threads / tpt;
    let barrier = SpinBarrier::new(threads);
    let intra: Vec<SpinBarrier> = (0..groups).map(|_| SpinBarrier::new(tpt)).collect();
    let auditor = cfg.audit.then(RegionAuditor::new);
    let total_cells = AtomicU64::new(0);
    rt.run(threads, &|tid| {
        let (group, lane) = (tid / tpt, tid % tpt);
        let intra_b = (tpt > 1).then(|| &intra[group]);
        let mut my_cells = 0u64;
        for row in tiling.rows() {
            for tile in row.tiles.iter().skip(group).step_by(groups) {
                // SAFETY: forwarded from this function's contract; the
                // static row-major assignment hands concurrent sub-teams
                // tiles of the same row only, and within a sub-team the
                // lanes partition each sweep's z-extent disjointly.
                my_cells += unsafe {
                    update_tile(
                        op,
                        views,
                        tiling,
                        auditor.as_ref(),
                        tid,
                        tile,
                        base_sweep,
                        lane,
                        tpt,
                        intra_b,
                    )
                };
            }
            // Row epoch: every dependency of the next row is sealed once
            // all workers pass this barrier.
            barrier.wait();
        }
        total_cells.fetch_add(my_cells, Ordering::Relaxed);
    });
    total_cells.load(Ordering::Relaxed)
}

/// Advance one tile through its sweeps — lane `lane` of a `tpt`-lane
/// sub-team updates its `geometry::split_z` chunk of each sweep's
/// region, with one intra-tile barrier *between* consecutive sweeps
/// (`intra`, present iff `tpt > 1`): a chunk's reads reach `radius`
/// planes past its bounds, i.e. into neighboring lanes' sweep-`k−1`
/// writes, which the barrier seals. No barrier is needed after the last
/// sweep — same-row tiles are disjoint at arbitrary relative progress
/// (see `geometry`), so sub-teams never wait on each other's tiles.
/// Returns cells updated by this lane.
///
/// Every lane of a sub-team walks the same tiles and the same sweep
/// indices (empty chunks are skipped *after* the barrier), so the
/// barrier participation count always matches.
///
/// # Safety
/// See [`run_diamond_schedule_on`]; additionally the caller guarantees
/// concurrent sub-teams hold tiles of the same row only and that lanes
/// of one sub-team call this for the same tiles in the same order.
#[allow(clippy::too_many_arguments)]
unsafe fn update_tile<T: Real, Op: StencilOp<T>>(
    op: &Op,
    views: &[SharedGrid<T>; 2],
    tiling: &DiamondTiling,
    auditor: Option<&RegionAuditor>,
    tid: usize,
    tile: &DiamondTile,
    base_sweep: usize,
    lane: usize,
    tpt: usize,
    intra: Option<&SpinBarrier>,
) -> u64 {
    let mut cells = 0u64;
    for (k, region) in tile.regions.iter().enumerate() {
        if let (Some(b), true) = (intra, k > 0) {
            // Seal the other lanes' sweep-(k−1) writes before any lane
            // reads across a chunk boundary at sweep k.
            b.wait();
        }
        let chunk = if tpt > 1 {
            geometry::split_z(region, tpt, lane)
        } else {
            *region
        };
        if chunk.is_empty() {
            continue;
        }
        let sweep = base_sweep + tile.s_lo + k;
        let (sg, dg) = (sweep % 2, (sweep + 1) % 2);
        let claims = auditor.map(|a| {
            let read = a.claim(tid, sg, AccessKind::Read, chunk.expand(tiling.radius()));
            let write = a.claim(tid, dg, AccessKind::Write, chunk);
            (read, write)
        });
        // SAFETY: row ordering seals every cross-row dependency, the
        // same-row disjointness argument in `geometry` covers concurrent
        // tiles, and the intra-tile barrier above orders cross-lane
        // chunk dependencies — re-checked by the auditor when enabled.
        kernel::update_region_shared_op(op, &views[sg], &views[dg], &chunk, StoreMode::Normal);
        if let (Some(a), Some((r, w))) = (auditor, claims) {
            a.release(r);
            a.release(w);
        }
        cells += chunk.count() as u64;
    }
    cells
}

/// Run `sweeps` sweeps of `op` with wavefront-diamond temporal blocking
/// on the given persistent runtime (which must have at least
/// `cfg.threads` workers). On return the result is in
/// `pair.current(sweeps)`.
pub fn run_diamond_op_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    pair: &mut GridPair<T>,
    cfg: &DiamondConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    let dims = pair.dims();
    cfg.validate(dims, Op::RADIUS)?;
    if rt.threads() < cfg.threads {
        return Err(format!(
            "runtime has {} workers but the diamond team needs {}",
            rt.threads(),
            cfg.threads
        ));
    }
    if sweeps == 0 {
        return Ok(RunStats::new(0, std::time::Duration::ZERO));
    }
    let tiling = DiamondTiling::uniform(Region3::interior_of(dims), cfg.width, Op::RADIUS, sweeps);
    let views = pair.shared_views();
    let t0 = Instant::now();
    // SAFETY: the pair is exclusively borrowed for the whole dispatch,
    // the tiling was built over this grid's interior with the operator's
    // radius, and uniform domains satisfy the trapezoid contract.
    let cells = unsafe { run_diamond_schedule_on(rt, op, &views, &tiling, cfg, 0) };
    Ok(RunStats::new(cells, t0.elapsed()))
}

/// [`run_diamond_op_on`] on a one-shot runtime — the classic form. The
/// reported elapsed time includes the team spawn/join, matching the
/// other classic entry points.
pub fn run_diamond_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    pair: &mut GridPair<T>,
    cfg: &DiamondConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    cfg.validate(pair.dims(), Op::RADIUS)?;
    let t0 = Instant::now();
    let stats = run_diamond_op_on(&Runtime::with_threads(cfg.threads), op, pair, cfg, sweeps)?;
    Ok(if sweeps == 0 {
        stats
    } else {
        RunStats::new(stats.cell_updates, t0.elapsed())
    })
}

/// Classic-Jacobi form of [`run_diamond_op_on`].
pub fn run_diamond_on<T: Real>(
    rt: &Runtime,
    pair: &mut GridPair<T>,
    cfg: &DiamondConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_diamond_op_on(rt, &Jacobi6, pair, cfg, sweeps)
}

/// Classic-Jacobi form of [`run_diamond_op`].
pub fn run_diamond<T: Real>(
    pair: &mut GridPair<T>,
    cfg: &DiamondConfig,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_diamond_op(&Jacobi6, pair, cfg, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::op::{Avg27, Jacobi7, VarCoeff7};
    use tb_grid::{init, norm, Dims3};

    fn reference(dims: Dims3, seed: u64, sweeps: usize) -> tb_grid::Grid3<f64> {
        let mut pair = GridPair::from_initial(init::random(dims, seed));
        baseline::seq_sweeps(&mut pair, sweeps);
        pair.current(sweeps).clone()
    }

    fn audit_cfg(threads: usize, width: usize) -> DiamondConfig {
        DiamondConfig {
            threads,
            width,
            threads_per_tile: 1,
            audit: true,
        }
    }

    fn check(dims: Dims3, threads: usize, width: usize, sweeps: usize) {
        let want = reference(dims, 23, sweeps);
        let mut pair = GridPair::from_initial(init::random(dims, 23));
        run_diamond(&mut pair, &audit_cfg(threads, width), sweeps).unwrap();
        norm::assert_grids_identical(
            &want,
            pair.current(sweeps),
            &Region3::whole(dims),
            &format!("diamond t={threads} w={width} sweeps={sweeps}"),
        );
    }

    #[test]
    fn single_thread_matches_sequential() {
        check(Dims3::cube(12), 1, 4, 5);
    }

    #[test]
    fn team_matches_sequential_various_widths() {
        for width in [2, 4, 6, 8, 16] {
            check(Dims3::cube(16), 3, width, 6);
        }
    }

    #[test]
    fn width_larger_than_grid_is_fine() {
        // One diamond column swallows the whole z-extent: degenerates to
        // plain multi-sweep blocking, still exact.
        check(Dims3::new(10, 12, 8), 2, 64, 5);
    }

    #[test]
    fn thin_grids_and_odd_widths() {
        check(Dims3::new(14, 6, 20), 2, 5, 7);
        check(Dims3::new(6, 14, 4), 4, 3, 4);
    }

    #[test]
    fn every_operator_matches_its_oracle() {
        let dims = Dims3::cube(14);
        let initial: tb_grid::Grid3<f64> = init::random(dims, 31);
        fn run_both<Op: StencilOp<f64>>(op: &Op, initial: &tb_grid::Grid3<f64>, sweeps: usize) {
            let dims = initial.dims();
            let mut want = GridPair::from_initial(initial.clone());
            baseline::seq_sweeps_op(op, &mut want, sweeps);
            let mut pair = GridPair::from_initial(initial.clone());
            run_diamond_op(op, &mut pair, &audit_cfg(2, 6), sweeps).unwrap();
            norm::assert_grids_identical(
                want.current(sweeps),
                pair.current(sweeps),
                &Region3::whole(dims),
                &format!("diamond {}", op.name()),
            );
        }
        run_both(&Jacobi6, &initial, 5);
        run_both(&Jacobi7::heat(0.12), &initial, 5);
        run_both(&VarCoeff7::banded(dims), &initial, 5);
        run_both(&Avg27, &initial, 5);
    }

    #[test]
    fn shared_runtime_reproduces_one_shot_result() {
        let dims = Dims3::cube(16);
        let cfg = audit_cfg(2, 6);
        let want = {
            let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 3));
            run_diamond(&mut pair, &cfg, 6).unwrap();
            pair.current(6).clone()
        };
        let rt = Runtime::with_threads(4); // oversized: subset dispatch
        for round in 0..3 {
            let mut pair = GridPair::from_initial(init::random(dims, 3));
            run_diamond_on(&rt, &mut pair, &cfg, 6).unwrap();
            norm::assert_grids_identical(
                &want,
                pair.current(6),
                &Region3::whole(dims),
                &format!("shared runtime round {round}"),
            );
        }
    }

    #[test]
    fn mwd_matches_sequential_for_every_subteam_shape() {
        // threads_per_tile ∈ {1, 2, 3, 4, 6} over a 6-thread team (audit
        // on): the intra-tile wavefront must stay bitwise-exact however
        // the team is split between tiles and lanes.
        let dims = Dims3::new(14, 10, 18);
        let sweeps = 6;
        let want = reference(dims, 41, sweeps);
        for tpt in [1usize, 2, 3, 6] {
            for width in [3usize, 6, 10] {
                let cfg = audit_cfg(6, width).with_threads_per_tile(tpt);
                let mut pair = GridPair::from_initial(init::random(dims, 41));
                run_diamond(&mut pair, &cfg, sweeps).unwrap();
                norm::assert_grids_identical(
                    &want,
                    pair.current(sweeps),
                    &Region3::whole(dims),
                    &format!("mwd tpt={tpt} w={width}"),
                );
            }
        }
        // Whole team on one tile at a time (threads == threads_per_tile).
        let cfg = audit_cfg(4, 5).with_threads_per_tile(4);
        let mut pair = GridPair::from_initial(init::random(dims, 41));
        let s = run_diamond(&mut pair, &cfg, sweeps).unwrap();
        norm::assert_grids_identical(
            &want,
            pair.current(sweeps),
            &Region3::whole(dims),
            "mwd full-team tile",
        );
        assert_eq!(s.cell_updates, (sweeps * dims.interior_len()) as u64);
    }

    #[test]
    fn mwd_every_operator_matches_its_oracle() {
        let dims = Dims3::cube(13);
        let initial: tb_grid::Grid3<f64> = init::random(dims, 53);
        fn run_both<Op: StencilOp<f64>>(op: &Op, initial: &tb_grid::Grid3<f64>, sweeps: usize) {
            let dims = initial.dims();
            let mut want = GridPair::from_initial(initial.clone());
            baseline::seq_sweeps_op(op, &mut want, sweeps);
            let mut pair = GridPair::from_initial(initial.clone());
            let cfg = audit_cfg(4, 6).with_threads_per_tile(2);
            run_diamond_op(op, &mut pair, &cfg, sweeps).unwrap();
            norm::assert_grids_identical(
                want.current(sweeps),
                pair.current(sweeps),
                &Region3::whole(dims),
                &format!("mwd diamond {}", op.name()),
            );
        }
        run_both(&Jacobi6, &initial, 5);
        run_both(&Jacobi7::heat(0.12), &initial, 5);
        run_both(&VarCoeff7::banded(dims), &initial, 5);
        run_both(&Avg27, &initial, 5); // corner reads cross chunk bounds
    }

    #[test]
    fn mwd_invalid_subteam_rejected() {
        let dims = Dims3::cube(10);
        let mut pair: GridPair<f64> = GridPair::zeroed(dims);
        for (threads, tpt) in [(4, 3), (2, 4), (3, 0)] {
            let cfg = DiamondConfig::with_width(threads, 6).with_threads_per_tile(tpt);
            let err = run_diamond(&mut pair, &cfg, 1).unwrap_err();
            assert!(err.contains("threads_per_tile"), "({threads},{tpt}): {err}");
        }
    }

    #[test]
    fn stats_account_all_updates() {
        let dims = Dims3::cube(14);
        let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 8));
        let s = run_diamond(&mut pair, &DiamondConfig::with_width(2, 4), 5).unwrap();
        assert_eq!(s.cell_updates, (5 * dims.interior_len()) as u64);
    }

    #[test]
    fn zero_sweeps_noop() {
        let dims = Dims3::cube(10);
        let initial: tb_grid::Grid3<f64> = init::random(dims, 4);
        let mut pair = GridPair::from_initial(initial.clone());
        let s = run_diamond(&mut pair, &DiamondConfig::small(), 0).unwrap();
        assert_eq!(s.cell_updates, 0);
        norm::assert_grids_identical(&initial, pair.current(0), &Region3::whole(dims), "noop");
    }

    #[test]
    fn invalid_configs_rejected() {
        let dims = Dims3::cube(10);
        let mut pair: GridPair<f64> = GridPair::zeroed(dims);
        let mut cfg = DiamondConfig::small();
        cfg.threads = 0;
        assert!(run_diamond(&mut pair, &cfg, 1).is_err());
        let mut cfg = DiamondConfig::small();
        cfg.width = 1;
        let err = run_diamond(&mut pair, &cfg, 1).unwrap_err();
        assert!(err.contains("2·radius"), "{err}");
        assert!(DiamondConfig::small()
            .validate(Dims3::new(2, 8, 8), 1)
            .is_err());
    }

    #[test]
    fn undersized_runtime_rejected() {
        let dims = Dims3::cube(12);
        let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 2));
        let rt = Runtime::with_threads(1);
        let err = run_diamond_on(&rt, &mut pair, &DiamondConfig::with_width(3, 4), 2).unwrap_err();
        assert!(err.contains("workers"), "{err}");
    }
}
