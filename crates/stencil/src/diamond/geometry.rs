//! Pure diamond-tiling geometry over the z × sweep plane.
//!
//! # The tessellation
//!
//! Wavefront-diamond blocking (Malas, Hager et al. 2015) tiles the
//! space-time plane spanned by the slowest spatial axis `z` and the
//! sweep index `s` with *diamonds* whose edges follow the stencil's
//! dependence slopes `±R` (`R` = operator radius). In the transformed
//! coordinates
//!
//! ```text
//! a = z + R·s,    b = z − R·s
//! ```
//!
//! the dependence cone becomes axis-aligned, and the diamonds are plain
//! `w×w` squares: tile `(i, j)` is the set of `(z, s)` cells with
//!
//! ```text
//! i·w <= z + R·s < (i+1)·w    and    j·w <= z − R·s < (j+1)·w.
//! ```
//!
//! Because the map is injective on the cell lattice, the squares cover
//! every `(z, s)` cell **exactly once** — in particular every interior
//! cell is updated exactly once per sweep, with no wind-up/wind-down
//! waste and no overlap at equal time level. Each tile spans at most
//! `2·⌈w/(2R)⌉ − 1` sweeps, expanding by `R` cells of `z` per sweep up
//! to width `w`, then contracting.
//!
//! # Rows and the execution order
//!
//! The *row* of a tile is `r = i − j` (proportional to its center time
//! `r·w/(2R)`). Provided `w >= 2R`, a cell's reads at sweep `s − 1` land
//! either in its own tile or in tiles of **strictly earlier rows** (see
//! [`DiamondTiling::tile_of`] and the unit tests, which verify this
//! exhaustively): executing rows in increasing order with a barrier
//! between rows satisfies every dependency, and all tiles *within* one
//! row are mutually independent — they may run concurrently at
//! arbitrary relative paces without synchronization. The two-grid
//! disjointness argument (same-row tiles `X = (i,j)` and
//! `Y = (i+k, j+k)`, `k >= 1`):
//!
//! * `Y`'s slab at sweep `s_y` lies at `z >= max((i+k)·w − R·s_y,
//!   (j+k)·w + R·s_y)`, while `X`'s slab at `s_x` (expanded by `R` for
//!   its reads) ends at `z < min((i+1)·w − R·s_x, (j+1)·w + R·s_x) + R`;
//! * a read/write conflict needs opposite sweep parity, so
//!   `|s_x − s_y| >= 1`, which separates the two bounds by at least `R`
//!   in whichever transformed coordinate binds — the regions are
//!   disjoint for **any** radius;
//! * a write/write conflict needs equal parity, so `|s_x − s_y| >= 2`
//!   and the margin is `2R`.
//!
//! This is what removes the pipelined scheme's tuning burden: no block
//! size, no `d_l`/`d_u` distances, no per-thread update count — one
//! width parameter controls the cache working set, and the schedule is
//! a static row-major walk.
//!
//! # Per-sweep domains
//!
//! Like [`crate::pipeline::PipelinePlan`], the tiling takes one domain
//! per sweep. The shared-memory solver passes the grid interior for
//! every sweep; the distributed solver passes its shrinking interior
//! trapezoid (`domains[s].expand(R) ⊆ domains[s−1] ∪ never-written
//! cells` is the caller's contract, exactly as for the pipeline plan).
//! Tiles are clamped to the domains, which preserves both exact
//! coverage and disjointness.

use tb_grid::Region3;

/// Floor division for the transformed-coordinate tile lookup.
#[inline]
fn floor_div(n: i64, d: i64) -> i64 {
    n.div_euclid(d)
}

/// One diamond tile: its `(i, j)` square in transformed coordinates and
/// the (clamped) update region per sweep it covers.
#[derive(Clone, Debug)]
pub struct DiamondTile {
    /// Square index along `a = z + R·s`.
    pub i: i64,
    /// Square index along `b = z − R·s`.
    pub j: i64,
    /// First sweep this tile covers (clamped to the schedule).
    pub s_lo: usize,
    /// `regions[k]` is the region sweep `s_lo + k` updates — full x/y
    /// extent of that sweep's domain, z clamped to the tile's slab. May
    /// be empty for individual sweeps (the executor skips those).
    pub regions: Vec<Region3>,
}

impl DiamondTile {
    /// The tile's row `r = i − j`; rows execute in increasing order.
    pub fn row(&self) -> i64 {
        self.i - self.j
    }

    /// The region sweep `s` updates, if this tile covers sweep `s`.
    pub fn region_at(&self, s: usize) -> Option<Region3> {
        s.checked_sub(self.s_lo)
            .and_then(|k| self.regions.get(k))
            .copied()
    }

    /// Cells this tile updates in total.
    pub fn cells(&self) -> usize {
        self.regions.iter().map(Region3::count).sum()
    }

    /// The tiles this one reads from (its dependency edges). A read at
    /// sweep `s − 1` moves `a = z + R·s` down by at most `2R` and
    /// `b = z − R·s` up by at most `2R`, so the immediate cross-tile
    /// producers are `(i−1, j)` and `(i, j+1)` — both in row `r − 1`.
    /// Reads also come from the tile itself (earlier sweeps), which
    /// needs no edge — intra-tile order is the sweep order.
    pub fn dependencies(&self) -> [(i64, i64); 2] {
        [(self.i - 1, self.j), (self.i, self.j + 1)]
    }
}

/// One row of mutually independent tiles (equal `r = i − j`).
#[derive(Clone, Debug)]
pub struct DiamondRow {
    /// Row index `r`.
    pub r: i64,
    /// Tiles, ordered by increasing `z` center (`i + j`).
    pub tiles: Vec<DiamondTile>,
}

/// The complete static schedule of one diamond-blocked multi-sweep
/// advance: rows of independent tiles, executed row by row.
#[derive(Clone, Debug)]
pub struct DiamondTiling {
    width: usize,
    radius: usize,
    domains: Vec<Region3>,
    rows: Vec<DiamondRow>,
}

impl DiamondTiling {
    /// Tiling over per-sweep domains (`domains[s]` is what sweep `s`
    /// must update; `domains.len()` is the sweep count). The caller
    /// guarantees the trapezoid contract documented at module level.
    ///
    /// # Panics
    /// Panics unless `radius >= 1` and `width >= 2·radius` (narrower
    /// diamonds would let a read skip a row).
    pub fn new(domains: Vec<Region3>, width: usize, radius: usize) -> Self {
        assert!(radius >= 1, "diamond tiling needs a positive radius");
        assert!(
            width >= 2 * radius,
            "diamond width {width} must be at least 2·radius = {}",
            2 * radius
        );
        let rows = build_rows(&domains, width as i64, radius as i64);
        Self {
            width,
            radius,
            domains,
            rows,
        }
    }

    /// Tiling with the same `domain` for every sweep (shared memory).
    pub fn uniform(domain: Region3, width: usize, radius: usize, sweeps: usize) -> Self {
        Self::new(vec![domain; sweeps], width, radius)
    }

    /// Tile width `w` in transformed coordinates.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stencil radius `R` the slopes were built for.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of sweeps the schedule advances.
    pub fn sweeps(&self) -> usize {
        self.domains.len()
    }

    /// Domain of sweep `s`.
    pub fn domain(&self, s: usize) -> Region3 {
        self.domains[s]
    }

    /// The rows, in execution order.
    pub fn rows(&self) -> &[DiamondRow] {
        &self.rows
    }

    /// Total tiles across all rows.
    pub fn num_tiles(&self) -> usize {
        self.rows.iter().map(|row| row.tiles.len()).sum()
    }

    /// The `(i, j)` square owning space-time cell `(z, s)` — the pure
    /// tile-lookup function underlying the whole tessellation.
    pub fn tile_of(&self, z: usize, s: usize) -> (i64, i64) {
        let (w, r) = (self.width as i64, self.radius as i64);
        let (z, s) = (z as i64, s as i64);
        (floor_div(z + r * s, w), floor_div(z - r * s, w))
    }

    /// The z-interval (before domain clamping) tile `(i, j)` updates at
    /// sweep `s`; empty when the tile does not cover sweep `s`.
    pub fn slab(&self, i: i64, j: i64, s: usize) -> Option<(i64, i64)> {
        let (w, r) = (self.width as i64, self.radius as i64);
        let s = s as i64;
        let lo = (i * w - r * s).max(j * w + r * s);
        let hi = ((i + 1) * w - r * s).min((j + 1) * w + r * s);
        (lo < hi).then_some((lo, hi))
    }

    /// The z-extent of the cells tile `(i, j)` *reads* at sweep `s`
    /// (its slab expanded by the radius) — what the race-freedom
    /// argument and the auditor claims are phrased in.
    pub fn read_slab(&self, i: i64, j: i64, s: usize) -> Option<(i64, i64)> {
        self.slab(i, j, s)
            .map(|(lo, hi)| (lo - self.radius as i64, hi + self.radius as i64))
    }

    /// Cells updated across the whole schedule (equals
    /// `Σ_s domains[s].count()` — coverage is exact).
    pub fn cells(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|row| row.tiles.iter())
            .map(DiamondTile::cells)
            .sum()
    }
}

/// Balanced contiguous z-partition of one tile region for the MWD
/// (multi-threaded wavefront diamond) executor: lane `part` of a
/// `parts`-lane sub-team gets the `part`-th of `parts` near-equal
/// z-chunks of `region` (the first `extent % parts` chunks are one
/// plane larger). Chunks of one region are pairwise disjoint and cover
/// it exactly; lanes whose chunk is empty get [`Region3::empty`].
///
/// # Intra-tile ordering
///
/// The partition is *per sweep*: each lane updates its chunk of the
/// tile's sweep-`k` region. A chunk's reads reach `radius` planes past
/// its z-bounds, i.e. possibly into a *neighboring lane's* chunk of
/// sweep `k − 1` — which is why the MWD executor runs one intra-tile
/// barrier between consecutive sweeps of a tile (and needs none within
/// a sweep: same-sweep chunks write disjoint planes of the destination
/// grid and only read the source grid, which no lane writes at that
/// sweep). Reads leaving the tile entirely land in strictly earlier
/// diamond rows, sealed by the row barrier exactly as in the
/// single-threaded-tile schedule; `mwd_chunk_reads_stay_ordered` below
/// verifies both claims exhaustively.
///
/// # Panics
/// Panics unless `parts >= 1` and `part < parts`.
pub fn split_z(region: &Region3, parts: usize, part: usize) -> Region3 {
    assert!(parts >= 1, "split_z needs at least one part");
    assert!(part < parts, "part {part} out of range for {parts} parts");
    if region.is_empty() {
        return Region3::empty();
    }
    let n = region.hi[2] - region.lo[2];
    let (base, rem) = (n / parts, n % parts);
    let lo = region.lo[2] + part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    if len == 0 {
        return Region3::empty();
    }
    Region3 {
        lo: [region.lo[0], region.lo[1], lo],
        hi: [region.hi[0], region.hi[1], lo + len],
    }
}

/// Enumerate the rows intersecting sweeps `0..domains.len()` and their
/// non-empty tiles, clamped to the per-sweep domains.
fn build_rows(domains: &[Region3], w: i64, radius: i64) -> Vec<DiamondRow> {
    let sweeps = domains.len() as i64;
    let mut rows = Vec::new();
    if sweeps == 0 {
        return rows;
    }
    // Row r covers sweeps s with (r−1)·w < 2·R·s < (r+1)·w. Sweep 0
    // belongs to row 0 only; rows end once their first sweep >= sweeps.
    for r in 0.. {
        let s_lo = floor_div((r - 1) * w, 2 * radius) + 1;
        if s_lo >= sweeps {
            break;
        }
        // Exclusive: smallest s with 2·R·s >= (r+1)·w.
        let s_hi = floor_div((r + 1) * w - 1, 2 * radius) + 1;
        let s_lo = s_lo.max(0);
        let s_hi = s_hi.min(sweeps);
        if s_hi <= s_lo {
            continue;
        }
        // z bounds over the row's sweeps bound the tile centers to try:
        // every tile's slab satisfies c·w/2 <= z < c·w/2 + w, c = i + j.
        let (mut z_min, mut z_max) = (i64::MAX, i64::MIN);
        for s in s_lo..s_hi {
            let d = &domains[s as usize];
            if d.is_empty() {
                continue;
            }
            z_min = z_min.min(d.lo[2] as i64);
            z_max = z_max.max(d.hi[2] as i64);
        }
        let mut tiles = Vec::new();
        if z_min < z_max {
            let c_lo = floor_div(2 * (z_min - w) + 1, w);
            let c_hi = floor_div(2 * z_max, w);
            let mut c = c_lo + ((r + c_lo) % 2 + 2) % 2; // first c ≡ r (mod 2)
            while c <= c_hi {
                let (i, j) = ((c + r) / 2, (c - r) / 2);
                if let Some(tile) = build_tile(domains, w, radius, i, j, s_lo, s_hi) {
                    tiles.push(tile);
                }
                c += 2;
            }
        }
        rows.push(DiamondRow { r, tiles });
    }
    rows
}

/// Build tile `(i, j)`'s clamped per-sweep regions; `None` if every
/// sweep's region is empty.
fn build_tile(
    domains: &[Region3],
    w: i64,
    radius: i64,
    i: i64,
    j: i64,
    s_lo: i64,
    s_hi: i64,
) -> Option<DiamondTile> {
    let mut regions = Vec::with_capacity((s_hi - s_lo) as usize);
    let mut any = false;
    for s in s_lo..s_hi {
        let dom = &domains[s as usize];
        let lo = (i * w - radius * s).max(j * w + radius * s);
        let hi = ((i + 1) * w - radius * s).min((j + 1) * w + radius * s);
        let z_lo = lo.max(dom.lo[2] as i64);
        let z_hi = hi.min(dom.hi[2] as i64);
        if dom.is_empty() || z_hi <= z_lo {
            regions.push(Region3::empty());
            continue;
        }
        any = true;
        regions.push(Region3 {
            lo: [dom.lo[0], dom.lo[1], z_lo as usize],
            hi: [dom.hi[0], dom.hi[1], z_hi as usize],
        });
    }
    any.then_some(DiamondTile {
        i,
        j,
        s_lo: s_lo as usize,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::Dims3;

    fn interior(n: usize) -> Region3 {
        Region3::interior_of(Dims3::cube(n))
    }

    /// Every domain cell of every sweep is covered by exactly one tile
    /// region — no gaps, no overlap at equal time level.
    fn check_exact_coverage(t: &DiamondTiling) {
        for s in 0..t.sweeps() {
            let dom = t.domain(s);
            let mut regions = Vec::new();
            for row in t.rows() {
                for tile in &row.tiles {
                    if let Some(r) = tile.region_at(s) {
                        if !r.is_empty() {
                            assert!(
                                dom.contains_region(&r),
                                "sweep {s}: tile ({},{}) leaks {r} outside {dom}",
                                tile.i,
                                tile.j
                            );
                            regions.push((tile.i, tile.j, r));
                        }
                    }
                }
            }
            let total: usize = regions.iter().map(|(_, _, r)| r.count()).sum();
            assert_eq!(total, dom.count(), "sweep {s}: wrong cell total");
            for (a, (ia, ja, ra)) in regions.iter().enumerate() {
                for (ib, jb, rb) in regions.iter().take(a) {
                    assert!(
                        !ra.intersects(rb),
                        "sweep {s}: tiles ({ia},{ja}) and ({ib},{jb}) overlap"
                    );
                }
            }
        }
    }

    /// `tile_of` agrees with the enumerated tile regions.
    fn check_tile_lookup(t: &DiamondTiling) {
        for row in t.rows() {
            for tile in &row.tiles {
                for (k, r) in tile.regions.iter().enumerate() {
                    if r.is_empty() {
                        continue;
                    }
                    let s = tile.s_lo + k;
                    for z in r.lo[2]..r.hi[2] {
                        assert_eq!(
                            t.tile_of(z, s),
                            (tile.i, tile.j),
                            "cell (z={z}, s={s}) owned by the wrong tile"
                        );
                    }
                }
            }
        }
    }

    /// Radius-correct, acyclic dependencies: every read of sweep `s − 1`
    /// data lands in the reader's own tile or in a strictly earlier row,
    /// and cross-tile producers are exactly the two declared dependency
    /// edges (or tiles even lower). Row order is therefore a topological
    /// order — the edge relation cannot contain a cycle.
    fn check_dependencies(t: &DiamondTiling) {
        let radius = t.radius() as i64;
        for row in t.rows() {
            for tile in &row.tiles {
                let deps = tile.dependencies();
                for (k, r) in tile.regions.iter().enumerate() {
                    let s = tile.s_lo + k;
                    if r.is_empty() || s == 0 {
                        continue;
                    }
                    for z in r.lo[2]..r.hi[2] {
                        for dz in -radius..=radius {
                            let zr = z as i64 + dz;
                            if zr < 0 {
                                continue;
                            }
                            let owner = t.tile_of(zr as usize, s - 1);
                            if owner == (tile.i, tile.j) {
                                continue; // intra-tile: sweep order
                            }
                            let owner_row = owner.0 - owner.1;
                            assert!(
                                owner_row < tile.row(),
                                "tile ({},{}) sweep {s} reads z={zr} of sweep {} \
                                 owned by same-or-later row {owner_row}",
                                tile.i,
                                tile.j,
                                s - 1
                            );
                            // Immediate cross-tile producers are the two
                            // declared edges (deeper rows were finished
                            // even earlier, so edges to them are implied).
                            if owner_row == tile.row() - 1 {
                                assert!(
                                    deps.contains(&owner),
                                    "tile ({},{}) reads ({},{}) which is not a declared edge",
                                    tile.i,
                                    tile.j,
                                    owner.0,
                                    owner.1
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Same-row tiles must be race-free under the two-grid scheme at
    /// arbitrary relative progress: opposite-parity sweeps may not
    /// read/write-overlap, equal-parity sweeps may not write/write-
    /// overlap.
    fn check_same_row_independence(t: &DiamondTiling) {
        for row in t.rows() {
            for (a, x) in row.tiles.iter().enumerate() {
                for y in row.tiles.iter().skip(a + 1) {
                    for (kx, rx) in x.regions.iter().enumerate() {
                        if rx.is_empty() {
                            continue;
                        }
                        let sx = x.s_lo + kx;
                        let read_x = rx.expand(t.radius());
                        for (ky, ry) in y.regions.iter().enumerate() {
                            if ry.is_empty() {
                                continue;
                            }
                            let sy = y.s_lo + ky;
                            if sx.abs_diff(sy) % 2 == 1 {
                                assert!(
                                    !read_x.intersects(ry) && !ry.expand(t.radius()).intersects(rx),
                                    "row {}: read/write race between ({},{})@{sx} and \
                                     ({},{})@{sy}",
                                    row.r,
                                    x.i,
                                    x.j,
                                    y.i,
                                    y.j
                                );
                            } else if sx != sy {
                                assert!(
                                    !rx.intersects(ry),
                                    "row {}: write/write race between ({},{})@{sx} and \
                                     ({},{})@{sy}",
                                    row.r,
                                    x.i,
                                    x.j,
                                    y.i,
                                    y.j
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    fn check_all(t: &DiamondTiling) {
        check_exact_coverage(t);
        check_tile_lookup(t);
        check_dependencies(t);
        check_same_row_independence(t);
    }

    #[test]
    fn exhaustive_small_geometries_radius_one() {
        for n in [3usize, 4, 5, 8, 11, 14] {
            for width in [2usize, 3, 4, 6, 8] {
                for sweeps in [1usize, 2, 3, 5, 8] {
                    let t = DiamondTiling::uniform(interior(n), width, 1, sweeps);
                    check_all(&t);
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_geometries_radius_two() {
        // No shipped operator has radius 2 yet, but the geometry is
        // generic and must stay correct when one arrives.
        for n in [4usize, 7, 12] {
            for width in [4usize, 5, 8] {
                for sweeps in [1usize, 3, 6] {
                    let t = DiamondTiling::uniform(interior(n), width, 2, sweeps);
                    check_all(&t);
                }
            }
        }
    }

    #[test]
    fn shrinking_trapezoid_domains() {
        // Distributed-style: sweep s covers the owned box shrunk by s
        // cells — the overlapped interior trapezoid. Cores may empty out.
        for c in 1..=5usize {
            let domains: Vec<Region3> = (1..=c)
                .map(|jj| Region3::new([jj, jj, jj], [12 - jj, 12 - jj, 12 - jj]))
                .collect();
            let t = DiamondTiling::new(domains, 4, 1);
            check_all(&t);
        }
    }

    #[test]
    fn empty_and_mixed_domains_are_tolerated() {
        let t = DiamondTiling::new(vec![Region3::empty(); 3], 4, 1);
        assert_eq!(t.cells(), 0);
        let mixed = vec![
            Region3::new([1, 1, 1], [9, 9, 9]),
            Region3::empty(),
            Region3::new([3, 3, 3], [7, 7, 7]),
        ];
        // (Not a trapezoid chain, but coverage/disjointness per sweep
        // must still hold — the geometry treats domains independently.)
        let t = DiamondTiling::new(mixed, 4, 1);
        check_exact_coverage(&t);
        check_tile_lookup(&t);
    }

    #[test]
    fn zero_sweeps_yields_no_rows() {
        let t = DiamondTiling::uniform(interior(10), 4, 1, 0);
        assert!(t.rows().is_empty());
        assert_eq!(t.cells(), 0);
        assert_eq!(t.sweeps(), 0);
    }

    #[test]
    fn row_zero_covers_sweep_zero_only_tiles() {
        let t = DiamondTiling::uniform(interior(12), 4, 1, 6);
        let first = &t.rows()[0];
        assert_eq!(first.r, 0);
        // Row 0 spans sweeps 0..2 for w=4, R=1 (2·R·s < w).
        for tile in &first.tiles {
            assert_eq!(tile.s_lo, 0);
            assert!(tile.s_lo + tile.regions.len() <= 2);
        }
    }

    #[test]
    fn total_cells_equal_sweeps_times_interior() {
        for (n, w, s) in [(10, 4, 5), (13, 6, 7), (9, 2, 4)] {
            let t = DiamondTiling::uniform(interior(n), w, 1, s);
            assert_eq!(t.cells(), interior(n).count() * s);
        }
    }

    #[test]
    fn slabs_match_enumerated_regions() {
        let t = DiamondTiling::uniform(interior(14), 4, 1, 6);
        for row in t.rows() {
            for tile in &row.tiles {
                for (k, r) in tile.regions.iter().enumerate() {
                    if r.is_empty() {
                        continue;
                    }
                    let s = tile.s_lo + k;
                    let (lo, hi) = t
                        .slab(tile.i, tile.j, s)
                        .expect("non-empty region has a slab");
                    let dom = t.domain(s);
                    assert_eq!(r.lo[2] as i64, lo.max(dom.lo[2] as i64));
                    assert_eq!(r.hi[2] as i64, hi.min(dom.hi[2] as i64));
                    let (rl, rh) = t.read_slab(tile.i, tile.j, s).unwrap();
                    assert_eq!((rl, rh), (lo - 1, hi + 1));
                }
            }
        }
    }

    #[test]
    fn dependency_edges_point_to_earlier_rows() {
        let t = DiamondTiling::uniform(interior(12), 4, 1, 8);
        for row in t.rows() {
            for tile in &row.tiles {
                for (di, dj) in tile.dependencies() {
                    assert_eq!(di - dj, tile.row() - 1, "edges drop exactly one row");
                }
            }
        }
    }

    #[test]
    fn split_z_partitions_exactly() {
        let base = Region3::new([1, 1, 3], [9, 7, 17]); // 14 z-planes
        for parts in 1..=6usize {
            let chunks: Vec<Region3> = (0..parts).map(|p| split_z(&base, parts, p)).collect();
            // Disjoint, ordered, covering exactly.
            let total: usize = chunks.iter().map(Region3::count).sum();
            assert_eq!(total, base.count(), "parts={parts}");
            let mut z = base.lo[2];
            for (p, c) in chunks.iter().enumerate() {
                if c.is_empty() {
                    continue;
                }
                assert_eq!(c.lo[2], z, "parts={parts} part={p} leaves a gap");
                assert_eq!(c.lo[0..2], base.lo[0..2]);
                assert_eq!(c.hi[0..2], base.hi[0..2]);
                z = c.hi[2];
            }
            assert_eq!(z, base.hi[2], "parts={parts} does not reach the end");
            // Balanced: extents differ by at most one plane.
            let extents: Vec<usize> = chunks.iter().map(|c| c.extent(2)).collect();
            let (lo, hi) = (extents.iter().min().unwrap(), extents.iter().max().unwrap());
            assert!(hi - lo <= 1, "parts={parts}: unbalanced {extents:?}");
        }
    }

    #[test]
    fn split_z_degenerate_inputs() {
        // More parts than planes: trailing lanes get empty chunks.
        let thin = Region3::new([0, 0, 5], [4, 4, 7]); // 2 planes
        let chunks: Vec<Region3> = (0..4).map(|p| split_z(&thin, 4, p)).collect();
        assert!(!chunks[0].is_empty() && !chunks[1].is_empty());
        assert!(chunks[2].is_empty() && chunks[3].is_empty());
        assert_eq!(chunks[0].count() + chunks[1].count(), thin.count());
        // Empty region in, empty chunks out.
        assert!(split_z(&Region3::empty(), 3, 1).is_empty());
        // One part is the identity.
        assert_eq!(split_z(&thin, 1, 0), thin);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_z_rejects_bad_part() {
        let _ = split_z(&Region3::new([0, 0, 0], [2, 2, 2]), 2, 2);
    }

    /// The MWD executor's ordering argument, checked exhaustively: for
    /// every tile, lane count and sweep, every read of lane `l`'s chunk
    /// at sweep `s` lands in (a) the tile's own sweep `s − 1` region —
    /// own chunk (program order) or another lane's chunk (sealed by the
    /// intra-tile barrier between consecutive sweeps) — or (b) a tile
    /// of a strictly earlier diamond row (sealed by the row barrier).
    /// Same-sweep chunks of one tile never overlap (two-grid writes are
    /// disjoint). The test also proves the intra-tile barrier is
    /// load-bearing: cross-lane sweep-(s−1) reads must actually occur.
    #[test]
    fn mwd_chunk_reads_stay_ordered() {
        let mut cross_lane_reads = 0usize;
        for (n, w, radius, sweeps) in [(14, 4, 1, 6), (12, 6, 1, 5), (12, 6, 2, 5)] {
            let dom = interior(n);
            let t = DiamondTiling::uniform(dom, w, radius, sweeps);
            for tpt in [2usize, 3, 4] {
                for row in t.rows() {
                    for tile in &row.tiles {
                        for (k, region) in tile.regions.iter().enumerate() {
                            let s = tile.s_lo + k;
                            let chunks: Vec<Region3> =
                                (0..tpt).map(|l| split_z(region, tpt, l)).collect();
                            for (a, ca) in chunks.iter().enumerate() {
                                for cb in chunks.iter().skip(a + 1) {
                                    assert!(
                                        !ca.intersects(cb),
                                        "same-sweep chunks overlap in tile ({},{})",
                                        tile.i,
                                        tile.j
                                    );
                                }
                            }
                            if s == 0 {
                                continue;
                            }
                            let prev = tile.region_at(s - 1).unwrap_or_else(Region3::empty);
                            for (l, chunk) in chunks.iter().enumerate() {
                                if chunk.is_empty() {
                                    continue;
                                }
                                let own_prev = split_z(&prev, tpt, l);
                                let r = radius as i64;
                                for dz in -r..=r {
                                    for z in chunk.lo[2]..chunk.hi[2] {
                                        let zr = z as i64 + dz;
                                        if zr < 0 {
                                            continue;
                                        }
                                        let zr = zr as usize;
                                        if zr < dom.lo[2] || zr >= dom.hi[2] {
                                            // Boundary plane: never written by
                                            // any sweep, no ordering needed.
                                            continue;
                                        }
                                        let owner = t.tile_of(zr, s - 1);
                                        if owner == (tile.i, tile.j) {
                                            // Intra-tile read: must lie in the
                                            // previous sweep's region...
                                            assert!(
                                                prev.lo[2] <= zr && zr < prev.hi[2],
                                                "tile ({},{}) sweep {s}: intra-tile read \
                                                 z={zr} outside the sweep-{} region",
                                                tile.i,
                                                tile.j,
                                                s - 1
                                            );
                                            // ...and cross-lane ones are what
                                            // the intra-tile barrier seals.
                                            if !(own_prev.lo[2] <= zr && zr < own_prev.hi[2])
                                                || own_prev.is_empty()
                                            {
                                                cross_lane_reads += 1;
                                            }
                                        } else {
                                            assert!(
                                                owner.0 - owner.1 < tile.row(),
                                                "tile ({},{}) lane {l} sweep {s} reads \
                                                 z={zr} owned by same-or-later row",
                                                tile.i,
                                                tile.j
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(
            cross_lane_reads > 0,
            "no cross-lane intra-tile reads found — the intra-tile barrier \
             would be dead code and this test vacuous"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2·radius")]
    fn too_narrow_width_rejected() {
        let _ = DiamondTiling::uniform(interior(10), 1, 1, 2);
    }

    #[test]
    #[should_panic(expected = "positive radius")]
    fn zero_radius_rejected() {
        let _ = DiamondTiling::uniform(interior(10), 4, 0, 2);
    }
}
