//! Convergence diagnostics, generic over the stencil operator.
//!
//! The solvers themselves never look at values (they run a fixed sweep
//! count, like the paper's benchmarks); applications iterating to
//! convergence need a residual. The natural operator-agnostic one is the
//! *defect* `r(c) = Op(c) − c`: its magnitude at a cell is exactly the
//! change the next sweep would apply there, so `max_residual_op → 0`
//! certifies a fixed point of the iteration regardless of the operator.

use tb_grid::{Grid3, Real, Region3};

use crate::op::{Jacobi6, Rows9, StencilOp};

/// Apply `op` row-wise over the interior and fold `f` over
/// `(next_value, current_value)` pairs.
fn fold_defect<T: Real, Op: StencilOp<T>>(g: &Grid3<T>, op: &Op, mut f: impl FnMut(f64, f64)) {
    let dims = g.dims();
    let interior = Region3::interior_of(dims);
    if interior.is_empty() {
        return;
    }
    let (x0, x1) = (interior.lo[0], interior.hi[0]);
    let mut next = vec![T::ZERO; x1 - x0];
    for z in interior.lo[2]..interior.hi[2] {
        for y in interior.lo[1]..interior.hi[1] {
            let rows = Rows9::from_grid(g, x0, x1, y, z);
            op.apply_row_simd(&mut next, &rows, x0, y, z);
            let cur = &g.row(y, z)[x0..x1];
            for (n, c) in next.iter().zip(cur) {
                f(n.to_f64(), c.to_f64());
            }
        }
    }
}

/// Maximum |defect| over the interior (∞-norm of the next update step).
pub fn max_residual_op<T: Real, Op: StencilOp<T>>(g: &Grid3<T>, op: &Op) -> f64 {
    let mut worst = 0.0f64;
    fold_defect(g, op, |n, c| {
        let d = (n - c).abs();
        if d > worst {
            worst = d;
        }
    });
    worst
}

/// Classic-Jacobi form of [`max_residual_op`].
pub fn max_residual<T: Real>(g: &Grid3<T>) -> f64 {
    max_residual_op(g, &Jacobi6)
}

/// L2 norm of the defect over the interior.
pub fn l2_residual_op<T: Real, Op: StencilOp<T>>(g: &Grid3<T>, op: &Op) -> f64 {
    let mut acc = 0.0f64;
    fold_defect(g, op, |n, c| {
        let d = n - c;
        acc += d * d;
    });
    acc.sqrt()
}

/// Classic-Jacobi form of [`l2_residual_op`].
pub fn l2_residual<T: Real>(g: &Grid3<T>) -> f64 {
    l2_residual_op(g, &Jacobi6)
}

/// Iterate `step` (a closure advancing the grid by `chunk` sweeps of the
/// same operator) until the max-residual drops below `tol` or
/// `max_sweeps` is reached. Returns (sweeps executed, final residual,
/// residual history).
pub fn iterate_to_tolerance_op<T: Real, Op: StencilOp<T>>(
    grid: &mut Grid3<T>,
    op: &Op,
    chunk: usize,
    tol: f64,
    max_sweeps: usize,
    mut step: impl FnMut(Grid3<T>, usize) -> Grid3<T>,
) -> (usize, f64, Vec<f64>) {
    assert!(chunk >= 1);
    let mut done = 0usize;
    let mut history = Vec::new();
    let mut res = max_residual_op(grid, op);
    history.push(res);
    while res > tol && done < max_sweeps {
        let n = chunk.min(max_sweeps - done);
        let g = std::mem::replace(grid, Grid3::zeroed(grid.dims()));
        *grid = step(g, n);
        done += n;
        res = max_residual_op(grid, op);
        history.push(res);
    }
    (done, res, history)
}

/// Classic-Jacobi form of [`iterate_to_tolerance_op`].
pub fn iterate_to_tolerance<T: Real>(
    grid: &mut Grid3<T>,
    chunk: usize,
    tol: f64,
    max_sweeps: usize,
    step: impl FnMut(Grid3<T>, usize) -> Grid3<T>,
) -> (usize, f64, Vec<f64>) {
    iterate_to_tolerance_op(grid, &Jacobi6, chunk, tol, max_sweeps, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::op::{Avg27, Jacobi7};
    use tb_grid::{init, Dims3, GridPair};

    #[test]
    fn linear_fields_have_tiny_residual() {
        let g: Grid3<f64> = init::linear(Dims3::cube(12), 1.0, -2.0, 0.5, 4.0);
        assert!(max_residual(&g) < 1e-12);
        assert!(l2_residual(&g) < 1e-10);
        // Linear fields are fixed points of the 27-point average too.
        assert!(max_residual_op(&g, &Avg27) < 1e-12);
    }

    #[test]
    fn residual_decreases_under_sweeps() {
        let dims = Dims3::cube(14);
        let mut pair = GridPair::from_initial(init::hot_plate::<f64>(dims, 1.0, 0.0));
        let r0 = max_residual(pair.current(0));
        baseline::seq_sweeps(&mut pair, 30);
        let r30 = max_residual(pair.current(30));
        assert!(r30 < r0, "{r30} !< {r0}");
        assert!(r30 < 0.5 * r0);
    }

    #[test]
    fn max_residual_equals_next_step_change() {
        // The defect IS the next update, so after one sweep the max
        // change equals the previous residual — for any operator.
        fn check<Op: StencilOp<f64>>(op: &Op) {
            let dims = Dims3::cube(10);
            let initial = init::random::<f64>(dims, 3);
            let r = max_residual_op(&initial, op);
            let mut pair = GridPair::from_initial(initial.clone());
            baseline::seq_sweeps_op(op, &mut pair, 1);
            let change =
                tb_grid::norm::max_abs_diff(&initial, pair.current(1), &Region3::interior_of(dims));
            assert!((r - change).abs() < 1e-12, "{}: {r} vs {change}", op.name());
        }
        check(&Jacobi6);
        check(&Jacobi7::heat(0.12));
        check(&Avg27);
    }

    #[test]
    fn iterate_to_tolerance_stops() {
        let dims = Dims3::cube(10);
        let mut g = init::hot_plate::<f64>(dims, 1.0, 0.0);
        let (sweeps, res, history) = iterate_to_tolerance(&mut g, 5, 1e-4, 500, |g, n| {
            let mut pair = GridPair::from_initial(g);
            baseline::seq_sweeps(&mut pair, n);
            pair.current(n).clone()
        });
        assert!(res <= 1e-4, "residual {res}");
        assert!(sweeps <= 500);
        assert!(history.len() >= 2);
        assert!(history.windows(2).filter(|w| w[1] <= w[0]).count() >= history.len() / 2);
    }

    #[test]
    fn l2_dominates_max_over_cells() {
        let g = init::random::<f64>(Dims3::cube(10), 8);
        assert!(l2_residual(&g) >= max_residual(&g));
    }
}
