//! Convergence diagnostics for the Jacobi iteration.
//!
//! The solvers themselves never look at values (they run a fixed sweep
//! count, like the paper's benchmarks); applications iterating to
//! convergence need a residual. For the Laplace problem the natural one
//! is the defect of the averaging equation,
//! `r(c) = (Σ neighbors)/6 − c`, whose maximum magnitude is also exactly
//! the change the next Jacobi sweep would apply to `c`.

use tb_grid::{Grid3, Real, Region3};

/// Maximum |defect| over the interior (∞-norm of the next update step).
pub fn max_residual<T: Real>(g: &Grid3<T>) -> f64 {
    let dims = g.dims();
    let interior = Region3::interior_of(dims);
    let mut worst = 0.0f64;
    for z in interior.lo[2]..interior.hi[2] {
        for y in interior.lo[1]..interior.hi[1] {
            let c = g.row(y, z);
            let ym = g.row(y - 1, z);
            let yp = g.row(y + 1, z);
            let zm = g.row(y, z - 1);
            let zp = g.row(y, z + 1);
            for x in interior.lo[0]..interior.hi[0] {
                let avg = (c[x - 1] + c[x + 1] + ym[x] + yp[x] + zm[x] + zp[x]) * T::SIXTH;
                let d = (avg - c[x]).to_f64().abs();
                if d > worst {
                    worst = d;
                }
            }
        }
    }
    worst
}

/// L2 norm of the defect over the interior.
pub fn l2_residual<T: Real>(g: &Grid3<T>) -> f64 {
    let dims = g.dims();
    let interior = Region3::interior_of(dims);
    let mut acc = 0.0f64;
    for z in interior.lo[2]..interior.hi[2] {
        for y in interior.lo[1]..interior.hi[1] {
            let c = g.row(y, z);
            let ym = g.row(y - 1, z);
            let yp = g.row(y + 1, z);
            let zm = g.row(y, z - 1);
            let zp = g.row(y, z + 1);
            for x in interior.lo[0]..interior.hi[0] {
                let avg = (c[x - 1] + c[x + 1] + ym[x] + yp[x] + zm[x] + zp[x]) * T::SIXTH;
                let d = (avg - c[x]).to_f64();
                acc += d * d;
            }
        }
    }
    acc.sqrt()
}

/// Iterate `step` (a closure advancing the grid by `chunk` sweeps) until
/// the max-residual drops below `tol` or `max_sweeps` is reached. Returns
/// (sweeps executed, final residual, residual history).
pub fn iterate_to_tolerance<T: Real>(
    grid: &mut Grid3<T>,
    chunk: usize,
    tol: f64,
    max_sweeps: usize,
    mut step: impl FnMut(Grid3<T>, usize) -> Grid3<T>,
) -> (usize, f64, Vec<f64>) {
    assert!(chunk >= 1);
    let mut done = 0usize;
    let mut history = Vec::new();
    let mut res = max_residual(grid);
    history.push(res);
    while res > tol && done < max_sweeps {
        let n = chunk.min(max_sweeps - done);
        let g = std::mem::replace(grid, Grid3::zeroed(grid.dims()));
        *grid = step(g, n);
        done += n;
        res = max_residual(grid);
        history.push(res);
    }
    (done, res, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use tb_grid::{init, Dims3, GridPair};

    #[test]
    fn linear_fields_have_tiny_residual() {
        let g: Grid3<f64> = init::linear(Dims3::cube(12), 1.0, -2.0, 0.5, 4.0);
        assert!(max_residual(&g) < 1e-12);
        assert!(l2_residual(&g) < 1e-10);
    }

    #[test]
    fn residual_decreases_under_sweeps() {
        let dims = Dims3::cube(14);
        let mut pair = GridPair::from_initial(init::hot_plate::<f64>(dims, 1.0, 0.0));
        let r0 = max_residual(pair.current(0));
        baseline::seq_sweeps(&mut pair, 30);
        let r30 = max_residual(pair.current(30));
        assert!(r30 < r0, "{r30} !< {r0}");
        assert!(r30 < 0.5 * r0);
    }

    #[test]
    fn max_residual_equals_next_step_change() {
        // The defect IS the next Jacobi update, so after one sweep the
        // max change equals the previous residual (up to the kernel's
        // 1/6-multiplication rounding).
        let dims = Dims3::cube(10);
        let initial = init::random::<f64>(dims, 3);
        let r = max_residual(&initial);
        let mut pair = GridPair::from_initial(initial.clone());
        baseline::seq_sweeps(&mut pair, 1);
        let change =
            tb_grid::norm::max_abs_diff(&initial, pair.current(1), &Region3::interior_of(dims));
        assert!((r - change).abs() < 1e-12, "{r} vs {change}");
    }

    #[test]
    fn iterate_to_tolerance_stops() {
        let dims = Dims3::cube(10);
        let mut g = init::hot_plate::<f64>(dims, 1.0, 0.0);
        let (sweeps, res, history) = iterate_to_tolerance(&mut g, 5, 1e-4, 500, |g, n| {
            let mut pair = GridPair::from_initial(g);
            baseline::seq_sweeps(&mut pair, n);
            pair.current(n).clone()
        });
        assert!(res <= 1e-4, "residual {res}");
        assert!(sweeps <= 500);
        assert!(history.len() >= 2);
        assert!(history.windows(2).filter(|w| w[1] <= w[0]).count() >= history.len() / 2);
    }

    #[test]
    fn l2_dominates_max_over_cells() {
        let g = init::random::<f64>(Dims3::cube(10), 8);
        assert!(l2_residual(&g) >= max_residual(&g));
    }
}
