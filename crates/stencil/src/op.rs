//! The stencil-operator layer: what *one row update* computes.
//!
//! The paper presents pipelined temporal blocking for the 6-point Jacobi
//! kernel (Eq. 1), but the machinery — block schedules, relaxed
//! synchronization, compressed grids, multi-layer halos — is independent
//! of the operator. Its follow-ups (Wittmann et al. 2010, Malas et al.
//! 2014) apply the same scheduling to richer operators. This module
//! factors the operator out: every executor in the workspace is generic
//! over [`StencilOp`], so a new workload is one `impl` here instead of a
//! fork of seven modules.
//!
//! # Determinism contract
//!
//! An operator must evaluate its update in **one fixed operand order**
//! regardless of how the executor tiles, shifts or parallelizes the
//! traversal. That is what lets the test-suite hold every execution
//! strategy (sequential, blocked, parallel ± streaming stores, pipelined,
//! compressed, wavefront, distributed/hybrid) to *bitwise* equality with
//! the operator's own sequential oracle.
//!
//! # Shipped operators
//!
//! | op | stencil | notes |
//! |----|---------|-------|
//! | [`Jacobi6`] | 6-point cross | the paper's Eq. 1; streaming-store SSE2 path on x86-64 `f64` |
//! | [`Jacobi7`] | 7-point cross with center weight | explicit-Euler heat step `u + k·(Σnb − 6u)` |
//! | [`VarCoeff7`] | 7-point cross, per-cell coefficient | reads a conductivity grid (one extra stream) |
//! | [`Avg27`] | dense 27-point radius-1 average | maximal radius-1 neighborhood (corners) |

use std::marker::PhantomData;
use std::sync::Arc;

use tb_grid::lanes::{head_len, Lane, LANES};
use tb_grid::{Dims3, Grid3, Real, Region3};

use crate::kernel::{self, StoreMode};
use crate::simd;

/// The nine radius-1 source row segments available to update cells
/// `x0 .. x0 + n` of row `(y, z)`.
///
/// Each row covers the x-range `x0-1 ..= x0+n` (length `n + 2`), so the
/// neighbor at offset `(dx, dy, dz)` of cell `i` is
/// `rows.row(dy, dz)[i + 1 + dx]`.
///
/// Rows are materialized **lazily**: the table stores raw row pointers and
/// [`Rows9::row`] forms the slice on demand. This matters for the
/// compressed-grid executor, where the in-place diagonal shift makes the
/// write row coincide with one *corner* source row — an operator that
/// never calls `row(±1, ±1)` (see [`StencilOp::READS_CORNERS`]) never
/// creates a slice overlapping the live `&mut` destination.
#[derive(Clone, Copy)]
pub struct Rows9<'a, T> {
    /// `ptrs[dz + 1][dy + 1]` points at the first element (x = x0-1).
    ptrs: [[*const T; 3]; 3],
    /// Row segment length, `n + 2`.
    len: usize,
    _src: PhantomData<&'a [T]>,
}

impl<'a, T> Rows9<'a, T> {
    /// Build from nine explicit, equally long slices, indexed
    /// `rows[dz + 1][dy + 1]`. Fully safe: the borrows prove validity.
    pub fn from_slices(rows: [[&'a [T]; 3]; 3]) -> Self {
        let len = rows[0][0].len();
        assert!(len >= 2, "rows must cover x0-1 ..= x0+n (length n+2)");
        for plane in &rows {
            for r in plane {
                assert_eq!(r.len(), len, "all nine rows must have equal length");
            }
        }
        Self {
            ptrs: rows.map(|plane| plane.map(|r| r.as_ptr())),
            len,
            _src: PhantomData,
        }
    }

    /// Build the nine rows for updating cells `[x0, x1)` of row `(y, z)`
    /// from a plain grid — the one definition of the slice↔offset
    /// convention for safe callers. `(x0, y, z)` must be interior
    /// (slice bounds enforce it).
    pub fn from_grid(g: &'a Grid3<T>, x0: usize, x1: usize, y: usize, z: usize) -> Self
    where
        T: Real,
    {
        let seg = |dy: usize, dz: usize| &g.row(y + dy - 1, z + dz - 1)[x0 - 1..x1 + 1];
        Self::from_slices([
            [seg(0, 0), seg(1, 0), seg(2, 0)],
            [seg(0, 1), seg(1, 1), seg(2, 1)],
            [seg(0, 2), seg(1, 2), seg(2, 2)],
        ])
    }

    /// Build from raw row pointers (`ptrs[dz + 1][dy + 1]`, each valid
    /// for `len` reads).
    ///
    /// # Safety
    /// For the lifetime `'a`, every row the consuming operator
    /// materializes via [`Rows9::row`] must point at `len` initialized
    /// elements that are neither concurrently written nor overlapped by
    /// the operator's destination slice. Operators declare which rows
    /// they touch through [`StencilOp::READS_CORNERS`]; callers use that
    /// to decide whether corner rows need these guarantees.
    pub unsafe fn from_raw(ptrs: [[*const T; 3]; 3], len: usize) -> Self {
        debug_assert!(len >= 2);
        Self {
            ptrs,
            len,
            _src: PhantomData,
        }
    }

    /// Number of *destination* cells these rows can update (`len - 2`).
    #[inline(always)]
    pub fn cells(&self) -> usize {
        self.len - 2
    }

    /// The source row at offset `(dy, dz)`, covering `x0-1 ..= x0+n`.
    #[inline(always)]
    pub fn row(&self, dy: i32, dz: i32) -> &'a [T] {
        // SAFETY: per the constructor contracts, this row is valid for
        // `len` reads for 'a.
        unsafe {
            std::slice::from_raw_parts(self.ptrs[(dz + 1) as usize][(dy + 1) as usize], self.len)
        }
    }
}

/// A stencil operator: the row-update primitive plus the metadata the
/// solvers, the distributed layer and the performance models need.
///
/// Implementations must be cheap to clone (threads and ranks clone the
/// operator freely) and must uphold the module-level determinism
/// contract.
pub trait StencilOp<T: Real>: Clone + Send + Sync + 'static {
    /// Halo layers one sweep consumes (Chebyshev radius of the stencil).
    /// The distributed solver derives exchange depths and pipeline-depth
    /// limits from this; the row machinery currently ships radius-1
    /// operators only.
    const RADIUS: usize = 1;

    /// Whether [`StencilOp::apply_row`] reads the diagonal rows
    /// `row(±1, ±1)`. Cross-shaped operators override this to `false`,
    /// which lets the compressed-grid executor use the copy-free in-place
    /// path; the conservative default routes corner-reading operators
    /// through a scratch buffer instead.
    const READS_CORNERS: bool = true;

    /// Short identifier for reports and benchmark output.
    fn name(&self) -> &'static str;

    /// Floating-point operations per lattice-site update.
    fn flops_per_lup(&self) -> f64;

    /// Memory read streams beyond the source grid (e.g. a coefficient
    /// grid), in grid words per update.
    fn extra_read_streams(&self) -> f64 {
        0.0
    }

    /// Code balance in bytes per lattice-site update (paper §1.1): source
    /// read + write (+ read-for-ownership unless streaming stores), plus
    /// any operator-specific extra read streams. The roofline (Eq. 2) and
    /// the Fig. 5 halo model consume this instead of hardcoded 16/24.
    fn bytes_per_lup(&self, store: StoreMode) -> f64 {
        let grid_streams = match store {
            StoreMode::Normal => 3.0,    // read + RFO + write
            StoreMode::Streaming => 2.0, // read + write
        };
        (grid_streams + self.extra_read_streams()) * T::bytes() as f64
    }

    /// Update cells `x0 .. x0 + dst.len()` of row `(y, z)`: `dst[i]`
    /// becomes the next time step of cell `(x0 + i, y, z)`, computed from
    /// `src`. Coordinates are *logical* grid coordinates (executors that
    /// shift or relocate storage translate before calling), so operators
    /// may use them to address auxiliary per-cell data.
    fn apply_row(&self, dst: &mut [T], src: &Rows9<'_, T>, x0: usize, y: usize, z: usize);

    /// Variant for the baseline's non-temporal-store write stream. The
    /// default falls back to plain stores — results must stay bitwise
    /// identical either way.
    fn apply_row_streaming(
        &self,
        dst: &mut [T],
        src: &Rows9<'_, T>,
        x0: usize,
        y: usize,
        z: usize,
    ) {
        self.apply_row(dst, src, x0, y, z);
    }

    /// Explicitly vectorized variant of [`StencilOp::apply_row`] built on
    /// the fixed-width [`Lane`] type (`tb_grid::lanes`): scalar head to a
    /// lane-aligned store pointer, lane-wide body, scalar tail (see
    /// [`vectorize_row`]). Every region driver in [`crate::kernel`] calls
    /// this, so overriding it accelerates *all* executors at once.
    ///
    /// The contract is strict: results must be **bitwise identical** to
    /// [`StencilOp::apply_row`] — lane arithmetic is element-wise, so
    /// implementations keep the scalar operand order per slot and never
    /// introduce horizontal reductions or FMA contraction. The default
    /// falls back to the scalar path, which is what [`ScalarPath`] relies
    /// on to force the oracle route.
    fn apply_row_simd(&self, dst: &mut [T], src: &Rows9<'_, T>, x0: usize, y: usize, z: usize) {
        self.apply_row(dst, src, x0, y, z);
    }

    /// Operator for a sub-box of the global problem whose local cell
    /// `(0,0,0)` sits at `local_box.lo` in global coordinates. The
    /// distributed decomposition calls this once per rank; operators with
    /// per-cell data re-anchor their lookup, coordinate-free operators
    /// return themselves.
    fn restricted(&self, local_box: &Region3) -> Self {
        let _ = local_box;
        self.clone()
    }
}

/// Drive one row update through the three-phase SIMD shape: a scalar
/// head until the *store* pointer reaches a lane-width byte boundary,
/// [`LANES`]-wide stores over the body, and a scalar tail.
///
/// `scalar(i)` and `lane(i)` must compute cell `i` (respectively cells
/// `i .. i + LANES`) of the row with identical per-slot operand order —
/// then where the head/body/tail split falls can never change results,
/// which is how the `apply_row_simd` impls below keep their bitwise
/// promise for arbitrary `x0` offsets and row lengths.
#[inline(always)]
pub fn vectorize_row<T: Real>(
    dst: &mut [T],
    scalar: impl Fn(usize) -> T,
    lane: impl Fn(usize) -> Lane<T>,
) {
    let n = dst.len();
    let mut i = 0usize;
    let head = head_len(dst.as_ptr(), n);
    while i < head {
        dst[i] = scalar(i);
        i += 1;
    }
    while i + LANES <= n {
        lane(i).store(&mut dst[i..]);
        i += LANES;
    }
    while i < n {
        dst[i] = scalar(i);
        i += 1;
    }
}

/// Adapter that pins an operator to its scalar row kernel: it delegates
/// everything to the wrapped operator but leaves
/// [`StencilOp::apply_row_simd`] at the trait default (→ scalar
/// `apply_row`), so every executor runs the unvectorized path.
///
/// This is the oracle side of the SIMD verification story — benches and
/// the `simd_property` suite solve with `op` and `ScalarPath(op)` and
/// assert bitwise equality — and doubles as the `simd: off` rows in the
/// sweep bins. No global toggle, no config plumbing: the choice is in
/// the operator value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarPath<Op>(pub Op);

impl<T: Real, Op: StencilOp<T>> StencilOp<T> for ScalarPath<Op> {
    const RADIUS: usize = Op::RADIUS;
    const READS_CORNERS: bool = Op::READS_CORNERS;

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn flops_per_lup(&self) -> f64 {
        self.0.flops_per_lup()
    }

    fn extra_read_streams(&self) -> f64 {
        self.0.extra_read_streams()
    }

    fn bytes_per_lup(&self, store: StoreMode) -> f64 {
        self.0.bytes_per_lup(store)
    }

    #[inline]
    fn apply_row(&self, dst: &mut [T], src: &Rows9<'_, T>, x0: usize, y: usize, z: usize) {
        self.0.apply_row(dst, src, x0, y, z);
    }

    #[inline]
    fn apply_row_streaming(
        &self,
        dst: &mut [T],
        src: &Rows9<'_, T>,
        x0: usize,
        y: usize,
        z: usize,
    ) {
        self.0.apply_row_streaming(dst, src, x0, y, z);
    }

    // apply_row_simd deliberately NOT overridden: the trait default
    // routes it to `self.apply_row`, i.e. the wrapped scalar kernel.

    fn restricted(&self, local_box: &Region3) -> Self {
        ScalarPath(self.0.restricted(local_box))
    }
}

pub(crate) fn is_f64<T: 'static>() -> bool {
    std::any::TypeId::of::<T>() == std::any::TypeId::of::<f64>()
}

/// The paper's Eq. 1: `(west + east + south + north + bottom + top) / 6`,
/// evaluated in exactly that operand order everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Jacobi6;

impl Jacobi6 {
    pub fn new() -> Self {
        Self
    }
}

impl<T: Real> StencilOp<T> for Jacobi6 {
    const READS_CORNERS: bool = false;

    fn name(&self) -> &'static str {
        "jacobi6"
    }

    fn flops_per_lup(&self) -> f64 {
        6.0 // 5 adds + 1 multiply
    }

    #[inline]
    fn apply_row(&self, dst: &mut [T], src: &Rows9<'_, T>, _x0: usize, _y: usize, _z: usize) {
        let n = dst.len();
        kernel::jacobi_row(
            dst,
            src.row(0, 0),
            &src.row(-1, 0)[1..n + 1],
            &src.row(1, 0)[1..n + 1],
            &src.row(0, -1)[1..n + 1],
            &src.row(0, 1)[1..n + 1],
        );
    }

    #[inline]
    fn apply_row_streaming(
        &self,
        dst: &mut [T],
        src: &Rows9<'_, T>,
        x0: usize,
        y: usize,
        z: usize,
    ) {
        if !is_f64::<T>() {
            self.apply_row(dst, src, x0, y, z);
            return;
        }
        let n = dst.len();
        // SAFETY of the transmutes: guarded by `is_f64`.
        unsafe {
            kernel::jacobi_row_nt_f64(
                std::mem::transmute::<&mut [T], &mut [f64]>(dst),
                std::mem::transmute::<&[T], &[f64]>(src.row(0, 0)),
                std::mem::transmute::<&[T], &[f64]>(&src.row(-1, 0)[1..n + 1]),
                std::mem::transmute::<&[T], &[f64]>(&src.row(1, 0)[1..n + 1]),
                std::mem::transmute::<&[T], &[f64]>(&src.row(0, -1)[1..n + 1]),
                std::mem::transmute::<&[T], &[f64]>(&src.row(0, 1)[1..n + 1]),
            );
        }
    }

    #[inline]
    fn apply_row_simd(&self, dst: &mut [T], src: &Rows9<'_, T>, _x0: usize, _y: usize, _z: usize) {
        if simd::jacobi6(dst, src) {
            return;
        }
        let sixth = T::ONE / T::from_f64(6.0);
        let c = src.row(0, 0);
        let ym = src.row(-1, 0);
        let yp = src.row(1, 0);
        let zm = src.row(0, -1);
        let zp = src.row(0, 1);
        // Laundering the shifted view of `c` hides that it aliases `c`:
        // otherwise LLVM's SLP pass "optimizes" the two overlapping lane
        // loads into one load plus an element-shuffle network, which is
        // far slower than the two plain vector loads we want.
        let e = std::hint::black_box(&c[2..]);
        let vs = Lane::splat(sixth);
        vectorize_row(
            dst,
            // Eq. 1 in the canonical left-to-right order of jacobi_row.
            |i| (c[i] + e[i] + ym[i + 1] + yp[i + 1] + zm[i + 1] + zp[i + 1]) * sixth,
            |i| {
                (Lane::load(&c[i..])
                    + Lane::load(&e[i..])
                    + Lane::load(&ym[i + 1..])
                    + Lane::load(&yp[i + 1..])
                    + Lane::load(&zm[i + 1..])
                    + Lane::load(&zp[i + 1..]))
                    * vs
            },
        );
    }
}

/// 7-point cross with an explicit center weight:
/// `u' = center·u + neighbor·(w + e + s + n + b + t)`.
///
/// With `center = 1 − 6k, neighbor = k` this is one explicit-Euler step
/// of the heat equation `∂u/∂t = κ∇²u` (stable for `k < 1/6`); with
/// `center = 0, neighbor = 1/6` it degenerates to [`Jacobi6`] (up to the
/// different operand order — it is *not* bitwise-interchangeable).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Jacobi7 {
    /// Weight of the center cell.
    pub center: f64,
    /// Weight of each of the six face neighbors.
    pub neighbor: f64,
}

impl Jacobi7 {
    /// Explicit-Euler heat step with diffusion number `k` (stability
    /// requires `k < 1/6`).
    pub fn heat(k: f64) -> Self {
        assert!(k > 0.0 && k < 1.0 / 6.0, "heat step needs 0 < k < 1/6");
        Self {
            center: 1.0 - 6.0 * k,
            neighbor: k,
        }
    }
}

impl<T: Real> StencilOp<T> for Jacobi7 {
    const READS_CORNERS: bool = false;

    fn name(&self) -> &'static str {
        "jacobi7"
    }

    fn flops_per_lup(&self) -> f64 {
        8.0 // 5 + 1 adds + 2 multiplies
    }

    #[inline]
    fn apply_row(&self, dst: &mut [T], src: &Rows9<'_, T>, _x0: usize, _y: usize, _z: usize) {
        let n = dst.len();
        let cw = T::from_f64(self.center);
        let nw = T::from_f64(self.neighbor);
        let c = src.row(0, 0);
        let ym = src.row(-1, 0);
        let yp = src.row(1, 0);
        let zm = src.row(0, -1);
        let zp = src.row(0, 1);
        for i in 0..n {
            let sum = c[i] + c[i + 2] + ym[i + 1] + yp[i + 1] + zm[i + 1] + zp[i + 1];
            dst[i] = c[i + 1] * cw + sum * nw;
        }
    }

    #[inline]
    fn apply_row_simd(&self, dst: &mut [T], src: &Rows9<'_, T>, _x0: usize, _y: usize, _z: usize) {
        let cw = T::from_f64(self.center);
        let nw = T::from_f64(self.neighbor);
        if simd::jacobi7(dst, src, cw, nw) {
            return;
        }
        let c = src.row(0, 0);
        let ym = src.row(-1, 0);
        let yp = src.row(1, 0);
        let zm = src.row(0, -1);
        let zp = src.row(0, 1);
        // See Jacobi6: hide the aliasing between the three views of `c`
        // so SLP emits three plain loads, not a shuffle network.
        let u = std::hint::black_box(&c[1..]);
        let e = std::hint::black_box(&c[2..]);
        let (vcw, vnw) = (Lane::splat(cw), Lane::splat(nw));
        vectorize_row(
            dst,
            |i| {
                let sum = c[i] + e[i] + ym[i + 1] + yp[i + 1] + zm[i + 1] + zp[i + 1];
                u[i] * cw + sum * nw
            },
            |i| {
                let sum = Lane::load(&c[i..])
                    + Lane::load(&e[i..])
                    + Lane::load(&ym[i + 1..])
                    + Lane::load(&yp[i + 1..])
                    + Lane::load(&zm[i + 1..])
                    + Lane::load(&zp[i + 1..]);
                Lane::load(&u[i..]) * vcw + sum * vnw
            },
        );
    }
}

/// Variable-coefficient 7-point stencil: `u' = u + k(x,y,z)·(Σnb − 6u)`,
/// one explicit diffusion step with per-cell conductivity `k` read from a
/// coefficient grid (an extra memory stream, raising the code balance).
///
/// The coefficient grid always lives in **global** coordinates;
/// [`StencilOp::restricted`] re-anchors the lookup for a rank's local
/// box, so distributed runs read exactly the same coefficients as the
/// sequential oracle.
#[derive(Clone, Debug)]
pub struct VarCoeff7<T: Real> {
    kappa: Arc<Grid3<T>>,
    /// Global coordinate of local cell (0, 0, 0).
    origin: [usize; 3],
}

impl<T: Real> VarCoeff7<T> {
    /// Wrap a conductivity grid (same dims as the problem grid; stability
    /// of the diffusion step requires all values in `[0, 1/6)`).
    pub fn new(kappa: Grid3<T>) -> Self {
        Self {
            kappa: Arc::new(kappa),
            origin: [0; 3],
        }
    }

    /// A deterministic, integer-derived coefficient field in
    /// `[1/60, 2/15]` — convenient for tests and benches: reproducible
    /// bitwise on every platform, safely inside the stability bound.
    pub fn banded(dims: Dims3) -> Self {
        Self::new(Grid3::from_fn(dims, |x, y, z| {
            T::from_f64(((x + 2 * y + 3 * z) % 8 + 1) as f64 / 60.0)
        }))
    }

    /// The wrapped coefficient grid.
    pub fn kappa(&self) -> &Grid3<T> {
        &self.kappa
    }
}

impl<T: Real> StencilOp<T> for VarCoeff7<T> {
    const READS_CORNERS: bool = false;

    fn name(&self) -> &'static str {
        "varcoeff7"
    }

    fn flops_per_lup(&self) -> f64 {
        9.0 // 5 adds + (6u: 1 mul) + 1 sub + 1 mul + 1 add
    }

    fn extra_read_streams(&self) -> f64 {
        1.0 // the coefficient grid
    }

    #[inline]
    fn apply_row(&self, dst: &mut [T], src: &Rows9<'_, T>, x0: usize, y: usize, z: usize) {
        let n = dst.len();
        let six = T::from_f64(6.0);
        let gx = x0 + self.origin[0];
        let k = &self.kappa.row(y + self.origin[1], z + self.origin[2])[gx..gx + n];
        let c = src.row(0, 0);
        let ym = src.row(-1, 0);
        let yp = src.row(1, 0);
        let zm = src.row(0, -1);
        let zp = src.row(0, 1);
        for i in 0..n {
            let u = c[i + 1];
            let sum = c[i] + c[i + 2] + ym[i + 1] + yp[i + 1] + zm[i + 1] + zp[i + 1];
            dst[i] = u + (sum - u * six) * k[i];
        }
    }

    #[inline]
    fn apply_row_simd(&self, dst: &mut [T], src: &Rows9<'_, T>, x0: usize, y: usize, z: usize) {
        let n = dst.len();
        let six = T::from_f64(6.0);
        let gx = x0 + self.origin[0];
        let k = &self.kappa.row(y + self.origin[1], z + self.origin[2])[gx..gx + n];
        if simd::varcoeff7(dst, src, k) {
            return;
        }
        let c = src.row(0, 0);
        let ym = src.row(-1, 0);
        let yp = src.row(1, 0);
        let zm = src.row(0, -1);
        let zp = src.row(0, 1);
        // See Jacobi6: hide the aliasing between the three views of `c`
        // so SLP emits three plain loads, not a shuffle network.
        let u = std::hint::black_box(&c[1..]);
        let e = std::hint::black_box(&c[2..]);
        let vsix = Lane::splat(six);
        vectorize_row(
            dst,
            |i| {
                let u = u[i];
                let sum = c[i] + e[i] + ym[i + 1] + yp[i + 1] + zm[i + 1] + zp[i + 1];
                u + (sum - u * six) * k[i]
            },
            |i| {
                let u = Lane::load(&u[i..]);
                let sum = Lane::load(&c[i..])
                    + Lane::load(&e[i..])
                    + Lane::load(&ym[i + 1..])
                    + Lane::load(&yp[i + 1..])
                    + Lane::load(&zm[i + 1..])
                    + Lane::load(&zp[i + 1..]);
                u + (sum - u * vsix) * Lane::load(&k[i..])
            },
        );
    }

    fn restricted(&self, local_box: &Region3) -> Self {
        Self {
            kappa: self.kappa.clone(),
            origin: [
                self.origin[0] + local_box.lo[0],
                self.origin[1] + local_box.lo[1],
                self.origin[2] + local_box.lo[2],
            ],
        }
    }
}

/// Dense 27-point radius-1 average: the mean of the full 3×3×3
/// neighborhood (center included), summed plane-by-plane, row-by-row,
/// west-to-east. The only shipped operator that reads the diagonal rows,
/// exercising the corner paths of every executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Avg27;

impl Avg27 {
    pub fn new() -> Self {
        Self
    }
}

impl<T: Real> StencilOp<T> for Avg27 {
    const READS_CORNERS: bool = true;

    fn name(&self) -> &'static str {
        "avg27"
    }

    fn flops_per_lup(&self) -> f64 {
        27.0 // 26 adds + 1 multiply
    }

    #[inline]
    fn apply_row(&self, dst: &mut [T], src: &Rows9<'_, T>, _x0: usize, _y: usize, _z: usize) {
        let n = dst.len();
        let w = T::ONE / T::from_f64(27.0);
        let rows = [
            [src.row(-1, -1), src.row(0, -1), src.row(1, -1)],
            [src.row(-1, 0), src.row(0, 0), src.row(1, 0)],
            [src.row(-1, 1), src.row(0, 1), src.row(1, 1)],
        ];
        for i in 0..n {
            let mut acc = T::ZERO;
            for plane in &rows {
                for r in plane {
                    acc += r[i];
                    acc += r[i + 1];
                    acc += r[i + 2];
                }
            }
            dst[i] = acc * w;
        }
    }

    #[inline]
    fn apply_row_simd(&self, dst: &mut [T], src: &Rows9<'_, T>, _x0: usize, _y: usize, _z: usize) {
        if simd::avg27(dst, src) {
            return;
        }
        let w = T::ONE / T::from_f64(27.0);
        let rows = [
            [src.row(-1, -1), src.row(0, -1), src.row(1, -1)],
            [src.row(-1, 0), src.row(0, 0), src.row(1, 0)],
            [src.row(-1, 1), src.row(0, 1), src.row(1, 1)],
        ];
        // See Jacobi6: hide that the three x-offset views of each row
        // alias, so SLP emits plain loads instead of shuffle networks.
        let rows1 = rows.map(|p| p.map(|r| std::hint::black_box(&r[1..])));
        let rows2 = rows.map(|p| p.map(|r| std::hint::black_box(&r[2..])));
        let vw = Lane::splat(w);
        vectorize_row(
            dst,
            |i| {
                let mut acc = T::ZERO;
                for ((p0, p1), p2) in rows.iter().zip(&rows1).zip(&rows2) {
                    for ((r0, r1), r2) in p0.iter().zip(p1).zip(p2) {
                        acc += r0[i];
                        acc += r1[i];
                        acc += r2[i];
                    }
                }
                acc * w
            },
            |i| {
                // Same 27-term accumulation order, lane-wide.
                let mut acc = Lane::splat(T::ZERO);
                for ((p0, p1), p2) in rows.iter().zip(&rows1).zip(&rows2) {
                    for ((r0, r1), r2) in p0.iter().zip(p1).zip(p2) {
                        acc = acc + Lane::load(&r0[i..]);
                        acc = acc + Lane::load(&r1[i..]);
                        acc = acc + Lane::load(&r2[i..]);
                    }
                }
                acc * vw
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::init;

    fn rows_from_grid<T: Real>(
        g: &Grid3<T>,
        x0: usize,
        x1: usize,
        y: usize,
        z: usize,
    ) -> Rows9<'_, T> {
        Rows9::from_grid(g, x0, x1, y, z)
    }

    #[test]
    fn rows9_addressing() {
        let dims = Dims3::new(8, 5, 5);
        let g: Grid3<f64> = Grid3::from_fn(dims, |x, y, z| (x + 10 * y + 100 * z) as f64);
        let rows = rows_from_grid(&g, 2, 6, 2, 3);
        assert_eq!(rows.cells(), 4);
        // Neighbor (dx,dy,dz) of cell i at x0=2 has value
        // x0+i+dx + 10(y+dy) + 100(z+dz), at row index i + 1 + dx.
        assert_eq!(rows.row(0, 0)[1], (2 + 20 + 300) as f64); // i=0, dx=0
        assert_eq!(rows.row(-1, 1)[0], (1 + 10 + 400) as f64); // i=0, dx=-1
        assert_eq!(rows.row(1, -1)[5], (6 + 30 + 200) as f64); // i=3, dx=+1
    }

    #[test]
    fn jacobi6_row_matches_pointwise() {
        let dims = Dims3::cube(7);
        let g: Grid3<f64> = init::random(dims, 3);
        let rows = rows_from_grid(&g, 1, 6, 3, 3);
        let mut dst = vec![0.0; 5];
        StencilOp::<f64>::apply_row(&Jacobi6, &mut dst, &rows, 1, 3, 3);
        for (i, x) in (1..6).enumerate() {
            let want = (g.get(x - 1, 3, 3)
                + g.get(x + 1, 3, 3)
                + g.get(x, 2, 3)
                + g.get(x, 4, 3)
                + g.get(x, 3, 2)
                + g.get(x, 3, 4))
                * (1.0 / 6.0);
            assert_eq!(dst[i], want, "cell {x}");
        }
    }

    #[test]
    fn jacobi6_streaming_is_bitwise_equal() {
        let dims = Dims3::new(41, 5, 5); // odd width exercises NT head/tail
        let g: Grid3<f64> = init::random(dims, 17);
        let rows = rows_from_grid(&g, 1, 40, 2, 2);
        let mut a = vec![0.0; 39];
        let mut b = vec![0.0; 39];
        StencilOp::<f64>::apply_row(&Jacobi6, &mut a, &rows, 1, 2, 2);
        StencilOp::<f64>::apply_row_streaming(&Jacobi6, &mut b, &rows, 1, 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn jacobi7_heat_weights() {
        let op = Jacobi7::heat(0.1);
        assert!((op.center - 0.4).abs() < 1e-15);
        assert_eq!(op.neighbor, 0.1);
        let dims = Dims3::cube(5);
        let g: Grid3<f64> = init::random(dims, 5);
        let rows = rows_from_grid(&g, 1, 4, 2, 2);
        let mut dst = vec![0.0; 3];
        StencilOp::<f64>::apply_row(&op, &mut dst, &rows, 1, 2, 2);
        let x = 2usize;
        let sum = g.get(x - 1, 2, 2)
            + g.get(x + 1, 2, 2)
            + g.get(x, 1, 2)
            + g.get(x, 3, 2)
            + g.get(x, 2, 1)
            + g.get(x, 2, 3);
        assert_eq!(dst[1], g.get(x, 2, 2) * 0.4 + sum * 0.1);
    }

    #[test]
    #[should_panic(expected = "0 < k < 1/6")]
    fn unstable_heat_step_rejected() {
        let _ = Jacobi7::heat(0.2);
    }

    #[test]
    fn varcoeff_restriction_reanchors_lookup() {
        let dims = Dims3::cube(8);
        let op: VarCoeff7<f64> = VarCoeff7::banded(dims);
        let g: Grid3<f64> = init::random(dims, 9);

        // Global evaluation of row (y=3, z=4), cells 2..6.
        let rows = rows_from_grid(&g, 2, 6, 3, 4);
        let mut want = vec![0.0; 4];
        op.apply_row(&mut want, &rows, 2, 3, 4);

        // The same cells seen from a local box anchored at (1, 2, 2):
        // local coords are global - origin.
        let local = op.restricted(&Region3::new([1, 2, 2], [8, 8, 8]));
        let mut got = vec![0.0; 4];
        local.apply_row(&mut got, &rows, 1, 1, 2);
        assert_eq!(want, got);
    }

    #[test]
    fn banded_coefficients_are_stable() {
        let op: VarCoeff7<f64> = VarCoeff7::banded(Dims3::cube(6));
        for v in op.kappa().as_slice() {
            assert!(*v > 0.0 && *v < 1.0 / 6.0, "{v}");
        }
    }

    #[test]
    fn avg27_is_neighborhood_mean() {
        let dims = Dims3::cube(5);
        let g: Grid3<f64> = init::random(dims, 11);
        let rows = rows_from_grid(&g, 1, 4, 2, 2);
        let mut dst = vec![0.0; 3];
        StencilOp::<f64>::apply_row(&Avg27, &mut dst, &rows, 1, 2, 2);
        let x = 2usize;
        let mut sum = 0.0;
        for dz in 0..3 {
            for dy in 0..3 {
                for dx in 0..3 {
                    sum += g.get(x + dx - 1, 2 + dy - 1, 2 + dz - 1);
                }
            }
        }
        // Same value to rounding; bitwise equality is only promised
        // across executors, not against a reordered sum.
        assert!((dst[1] - sum / 27.0).abs() < 1e-12);
    }

    /// SIMD path ≡ scalar path, bitwise, for every shipped operator —
    /// including offsets that leave the store pointer unaligned and row
    /// lengths that are not lane multiples.
    #[test]
    fn simd_rows_bitwise_equal_scalar_rows() {
        fn check<Op: StencilOp<f64>>(op: &Op, dims: Dims3) {
            let g: Grid3<f64> = init::random(dims, 31);
            for (x0, x1) in [(1, dims.nx - 1), (3, dims.nx - 2), (5, 5 + LANES + 3)] {
                let n = x1 - x0;
                let rows = rows_from_grid(&g, x0, x1, 2, 3);
                let mut scalar = vec![0.0; n];
                let mut simd = vec![0.0; n];
                op.apply_row(&mut scalar, &rows, x0, 2, 3);
                op.apply_row_simd(&mut simd, &rows, x0, 2, 3);
                assert_eq!(scalar, simd, "{} x0={x0} n={n}", op.name());
                // The ScalarPath wrapper must route apply_row_simd back
                // to the scalar kernel.
                let mut wrapped = vec![0.0; n];
                ScalarPath(op.clone()).apply_row_simd(&mut wrapped, &rows, x0, 2, 3);
                assert_eq!(scalar, wrapped, "{} ScalarPath", op.name());
            }
        }
        let dims = Dims3::new(37, 6, 7); // nx not a lane multiple
        check(&Jacobi6, dims);
        check(&Jacobi7::heat(0.07), dims);
        check(&VarCoeff7::banded(dims), dims);
        check(&Avg27, dims);
    }

    #[test]
    fn scalar_path_preserves_metadata_and_restriction() {
        let dims = Dims3::cube(8);
        let op = ScalarPath(VarCoeff7::<f64>::banded(dims));
        assert_eq!(op.name(), "varcoeff7");
        assert_eq!(op.extra_read_streams(), 1.0);
        assert_eq!(
            op.bytes_per_lup(StoreMode::Normal),
            VarCoeff7::<f64>::banded(dims).bytes_per_lup(StoreMode::Normal)
        );
        const {
            assert!(<ScalarPath<Avg27> as StencilOp<f64>>::READS_CORNERS);
            assert!(!<ScalarPath<Jacobi6> as StencilOp<f64>>::READS_CORNERS);
        }
        // Restriction re-anchors through the wrapper.
        let g: Grid3<f64> = init::random(dims, 13);
        let rows = rows_from_grid(&g, 2, 6, 3, 4);
        let mut want = vec![0.0; 4];
        op.apply_row(&mut want, &rows, 2, 3, 4);
        let local = op.restricted(&Region3::new([1, 2, 2], [8, 8, 8]));
        let mut got = vec![0.0; 4];
        local.apply_row(&mut got, &rows, 1, 1, 2);
        assert_eq!(want, got);
    }

    #[test]
    fn code_balance_per_operator() {
        let j = Jacobi6;
        assert_eq!(StencilOp::<f64>::bytes_per_lup(&j, StoreMode::Normal), 24.0);
        assert_eq!(
            StencilOp::<f64>::bytes_per_lup(&j, StoreMode::Streaming),
            16.0
        );
        assert_eq!(
            StencilOp::<f32>::bytes_per_lup(&j, StoreMode::Streaming),
            8.0
        );
        let v: VarCoeff7<f64> = VarCoeff7::banded(Dims3::cube(4));
        assert_eq!(v.bytes_per_lup(StoreMode::Normal), 32.0);
        assert_eq!(v.bytes_per_lup(StoreMode::Streaming), 24.0);
        assert_eq!(StencilOp::<f64>::flops_per_lup(&Avg27), 27.0);
    }

    #[test]
    fn corner_declarations() {
        const {
            assert!(!<Jacobi6 as StencilOp<f64>>::READS_CORNERS);
            assert!(!<Jacobi7 as StencilOp<f64>>::READS_CORNERS);
            assert!(!<VarCoeff7<f64> as StencilOp<f64>>::READS_CORNERS);
            assert!(<Avg27 as StencilOp<f64>>::READS_CORNERS);
            assert!(<Avg27 as StencilOp<f64>>::RADIUS == 1);
        }
    }
}
