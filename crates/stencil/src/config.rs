//! Configuration of the pipelined temporal blocking executors.

use tb_grid::Dims3;
use tb_sync::SyncMode;
use tb_topology::{Machine, TeamLayout};

/// Grid storage strategy for the pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GridScheme {
    /// Two grids A/B written in turn (Fig. 1 of the paper).
    #[default]
    TwoGrid,
    /// Single "compressed" grid with alternating ±(1,1,1) shifts (§1.3).
    Compressed,
}

/// Full parameter set of a pipelined run. The paper's notation:
/// `t` = [`PipelineConfig::team_size`], `n` = [`PipelineConfig::n_teams`],
/// `T` = [`PipelineConfig::updates_per_thread`], `d_l`/`d_u`/`d_t` live
/// inside [`PipelineConfig::sync`], block size `b_x×b_y×b_z` in
/// [`PipelineConfig::block`].
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Threads per team (`t`); a team shares one cache group.
    pub team_size: usize,
    /// Number of teams (`n`); one per cache group.
    pub n_teams: usize,
    /// Consecutive updates each thread applies to a block (`T`).
    pub updates_per_thread: usize,
    /// Spatial block edges `[b_x, b_y, b_z]`.
    pub block: [usize; 3],
    /// Barrier or relaxed synchronization.
    pub sync: SyncMode,
    /// Storage scheme.
    pub scheme: GridScheme,
    /// Optional CPU pinning layout; `None` leaves threads unpinned.
    pub layout: Option<TeamLayout>,
    /// Run the debug region auditor (serializes claims; test/debug only).
    pub audit: bool,
}

impl PipelineConfig {
    /// A small, always-valid configuration for quick starts and tests.
    pub fn small() -> Self {
        Self {
            team_size: 2,
            n_teams: 1,
            updates_per_thread: 1,
            block: [32, 8, 8],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: None,
            audit: false,
        }
    }

    /// The paper's best-performing socket configuration scaled to an
    /// arbitrary machine: one team per cache group is the *node* config;
    /// pass `n_teams = 1` for the socket experiment.
    pub fn for_machine(machine: &Machine, n_teams: usize, updates_per_thread: usize) -> Self {
        let groups = machine.cache_groups();
        let team_size = groups.first().map(|g| g.len()).unwrap_or(1).max(1);
        let n_teams = n_teams.clamp(1, groups.len().max(1));
        Self {
            team_size,
            n_teams,
            updates_per_thread,
            block: [120, 20, 20], // paper §1.5 optimum on 600^3
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: Some(TeamLayout::new(machine, team_size, n_teams)),
            audit: false,
        }
    }

    /// Total pipeline threads `n * t`.
    pub fn threads(&self) -> usize {
        self.team_size * self.n_teams
    }

    /// A one-shot [`tb_runtime::Runtime`] for this config: one worker
    /// per pipeline thread, pinned per [`PipelineConfig::layout`] when
    /// present. The classic (non-`_on`) executor entry points build one
    /// of these per call; repeated solves should build a runtime once
    /// and use the `*_on` forms instead.
    pub fn one_shot_runtime(&self) -> tb_runtime::Runtime {
        match &self.layout {
            Some(layout) if layout.threads() == self.threads() => {
                tb_runtime::Runtime::from_cpus(layout.cpus.clone(), None)
            }
            _ => tb_runtime::Runtime::with_threads(self.threads()),
        }
    }

    /// Total pipeline stages per team sweep, `n * t * T`.
    pub fn stages(&self) -> usize {
        self.threads() * self.updates_per_thread
    }

    /// Validate against a grid. Returns a human-readable complaint.
    ///
    /// The key geometric constraint (see `pipeline::plan`): every block
    /// edge must be at least the total stage count, or the per-stage
    /// diagonal shift would push interior block boundaries out of order.
    pub fn validate(&self, dims: Dims3) -> Result<(), String> {
        if self.team_size == 0 || self.n_teams == 0 || self.updates_per_thread == 0 {
            return Err("team_size, n_teams, updates_per_thread must be >= 1".into());
        }
        if self.block.contains(&0) {
            return Err("block edges must be >= 1".into());
        }
        if dims.nx < 3 || dims.ny < 3 || dims.nz < 3 {
            return Err(format!("grid {dims} has no interior"));
        }
        let stages = self.stages();
        let interior = [dims.nx - 2, dims.ny - 2, dims.nz - 2];
        for (d, &int_d) in interior.iter().enumerate() {
            let b = self.block[d].min(int_d);
            if b < stages {
                return Err(format!(
                    "block edge {} (dim {d}, clamped to interior {int_d}) is smaller \
                     than the pipeline depth n*t*T = {stages}; enlarge blocks or \
                     reduce teams/updates",
                    self.block[d]
                ));
            }
        }
        if let SyncMode::Relaxed { dl, du, .. } = self.sync {
            if dl < 1 {
                return Err("d_l must be >= 1".into());
            }
            if du < dl {
                return Err("d_u must be >= d_l".into());
            }
        }
        if let Some(layout) = &self.layout {
            if layout.threads() != self.threads() {
                return Err(format!(
                    "layout has {} threads but config needs {}",
                    layout.threads(),
                    self.threads()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        let c = PipelineConfig::small();
        assert_eq!(c.threads(), 2);
        assert_eq!(c.stages(), 2);
        c.validate(Dims3::cube(34)).unwrap();
    }

    #[test]
    fn paper_node_config() {
        let m = Machine::nehalem_ep();
        let c = PipelineConfig::for_machine(&m, 2, 2);
        assert_eq!(c.team_size, 4);
        assert_eq!(c.n_teams, 2);
        assert_eq!(c.threads(), 8);
        assert_eq!(c.stages(), 16);
        c.validate(Dims3::cube(600)).unwrap();
    }

    #[test]
    fn too_deep_pipeline_rejected() {
        let mut c = PipelineConfig::small();
        c.updates_per_thread = 64;
        let err = c.validate(Dims3::cube(34)).unwrap_err();
        assert!(err.contains("pipeline depth"), "{err}");
    }

    #[test]
    fn degenerate_grid_rejected() {
        let c = PipelineConfig::small();
        assert!(c.validate(Dims3::new(2, 10, 10)).is_err());
    }

    #[test]
    fn bad_sync_rejected() {
        let mut c = PipelineConfig::small();
        c.sync = SyncMode::Relaxed {
            dl: 2,
            du: 1,
            dt: 0,
        };
        assert!(c.validate(Dims3::cube(34)).unwrap_err().contains("d_u"));
    }

    #[test]
    fn mismatched_layout_rejected() {
        let mut c = PipelineConfig::small();
        c.layout = Some(TeamLayout::new(&Machine::flat(8), 4, 2));
        assert!(c.validate(Dims3::cube(34)).unwrap_err().contains("layout"));
    }

    #[test]
    fn n_teams_clamped_to_cache_groups() {
        let m = Machine::nehalem_ep();
        let c = PipelineConfig::for_machine(&m, 99, 1);
        assert_eq!(c.n_teams, 2);
    }
}
