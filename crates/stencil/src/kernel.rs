//! Region-update drivers: apply a [`StencilOp`] to grid regions in all
//! the storage schemes the solvers need.
//!
//! The canonical Jacobi operand order — `(west + east + south + north +
//! bottom + top) * (1/6)` — is fixed in [`jacobi_row`]; every other
//! operator fixes its order in its `StencilOp::apply_row` impl. All
//! solvers funnel through the drivers here, which is what makes
//! cross-solver bitwise verification possible.
//!
//! Three drivers exist, one per storage scheme:
//!
//! * [`update_region_op`] — safe two-grid reference path,
//! * [`update_region_shared_op`] — [`SharedGrid`] path for the
//!   multi-threaded executors, with optional streaming stores,
//! * [`update_region_compressed_op`] — the single-allocation
//!   diagonally-shifted path of the compressed-grid scheme (§1.3).
//!
//! The `*_op`-less names are the classic-Jacobi forms kept for callers
//! that predate the operator layer.

use tb_grid::{Dims3, Grid3, Real, Region3, SharedGrid};

use crate::op::{Jacobi6, Rows9, StencilOp};

/// Update one row segment of `n = dst.len()` cells with the classic
/// 6-point Jacobi average.
///
/// * `dst` — destination cells `x0..x1` of row `(y, z)`,
/// * `c` — source center row covering `x0-1 ..= x1` (length `n + 2`),
/// * `ym`/`yp` — source rows `(y∓1, z)` covering `x0..x1`,
/// * `zm`/`zp` — source rows `(y, z∓1)` covering `x0..x1`.
///
/// This is the **scalar oracle** form of Eq. 1. The paper's SIMD
/// requirement is met elsewhere: the region drivers below route row
/// updates through [`StencilOp::apply_row_simd`], whose operator impls
/// are built on the explicit fixed-width lane module
/// (`tb_grid::lanes`) — aligned lane-wide body plus scalar head/tail,
/// bitwise identical to this kernel. Wrapping an operator in
/// [`crate::op::ScalarPath`] pins execution back to this scalar path.
#[inline]
pub fn jacobi_row<T: Real>(dst: &mut [T], c: &[T], ym: &[T], yp: &[T], zm: &[T], zp: &[T]) {
    let n = dst.len();
    assert_eq!(c.len(), n + 2, "center row must cover x0-1..=x1");
    assert!(ym.len() == n && yp.len() == n && zm.len() == n && zp.len() == n);
    // Derived once per row; `1/6` of exact constants is the same bit
    // pattern everywhere, preserving cross-solver bitwise equality.
    let sixth = T::ONE / T::from_f64(6.0);
    for i in 0..n {
        dst[i] = (c[i] + c[i + 2] + ym[i] + yp[i] + zm[i] + zp[i]) * sixth;
    }
}

/// Non-temporal-store variant of [`jacobi_row`] for `f64` on x86-64.
///
/// The paper's baseline uses streaming stores to avoid the read-for-
/// ownership on the write stream, cutting the code balance from 24 to
/// 16 B/LUP. `_mm_stream_pd` requires 16-byte alignment, so a scalar head
/// runs until `dst` is aligned and a scalar tail mops up. On other
/// architectures this falls back to the plain kernel.
#[inline]
pub fn jacobi_row_nt_f64(
    dst: &mut [f64],
    c: &[f64],
    ym: &[f64],
    yp: &[f64],
    zm: &[f64],
    zp: &[f64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: slice lengths are checked inside; SSE2 is part of the
        // x86-64 baseline.
        unsafe { jacobi_row_nt_f64_sse2(dst, c, ym, yp, zm, zp) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        jacobi_row(dst, c, ym, yp, zm, zp);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn jacobi_row_nt_f64_sse2(
    dst: &mut [f64],
    c: &[f64],
    ym: &[f64],
    yp: &[f64],
    zm: &[f64],
    zp: &[f64],
) {
    use std::arch::x86_64::*;
    let n = dst.len();
    assert_eq!(c.len(), n + 2);
    assert!(ym.len() == n && yp.len() == n && zm.len() == n && zp.len() == n);

    let mut i = 0usize;
    // Scalar head until dst is 16-byte aligned.
    while i < n && !(dst.as_ptr().add(i) as usize).is_multiple_of(16) {
        dst[i] = (c[i] + c[i + 2] + ym[i] + yp[i] + zm[i] + zp[i]) * (1.0 / 6.0);
        i += 1;
    }
    let sixth = _mm_set1_pd(1.0 / 6.0);
    while i + 2 <= n {
        let w = _mm_loadu_pd(c.as_ptr().add(i));
        let e = _mm_loadu_pd(c.as_ptr().add(i + 2));
        let s = _mm_loadu_pd(ym.as_ptr().add(i));
        let nn = _mm_loadu_pd(yp.as_ptr().add(i));
        let b = _mm_loadu_pd(zm.as_ptr().add(i));
        let t = _mm_loadu_pd(zp.as_ptr().add(i));
        // Fixed association: ((((w+e)+s)+n)+b)+t — identical to the scalar
        // kernel's left-to-right sum, so results stay bitwise equal.
        let sum = _mm_add_pd(
            _mm_add_pd(_mm_add_pd(_mm_add_pd(_mm_add_pd(w, e), s), nn), b),
            t,
        );
        _mm_stream_pd(dst.as_mut_ptr().add(i), _mm_mul_pd(sum, sixth));
        i += 2;
    }
    while i < n {
        dst[i] = (c[i] + c[i + 2] + ym[i] + yp[i] + zm[i] + zp[i]) * (1.0 / 6.0);
        i += 1;
    }
    _mm_sfence();
}

/// Storage behaviour for the write stream of baseline sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StoreMode {
    /// Plain stores (cache-allocating; incurs read-for-ownership).
    #[default]
    Normal,
    /// Non-temporal stores where the operator provides them (classic
    /// Jacobi on x86-64 `f64`; elsewhere falls back to plain stores).
    Streaming,
}

/// Apply one sweep of `op` to `region`, reading `src` and writing `dst`.
///
/// `region` must lie within the interior of the grids (every cell needs
/// its full radius-1 neighborhood). This is the safe reference
/// implementation that all concurrent executors are verified against.
pub fn update_region_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    src: &Grid3<T>,
    dst: &mut Grid3<T>,
    region: &Region3,
) {
    let dims = src.dims();
    assert_eq!(dims, dst.dims());
    assert!(
        Region3::interior_of(dims).contains_region(region),
        "region {region} not interior to {dims}"
    );
    if region.is_empty() {
        return;
    }
    let (x0, x1) = (region.lo[0], region.hi[0]);
    for z in region.lo[2]..region.hi[2] {
        for y in region.lo[1]..region.hi[1] {
            let rows = Rows9::from_grid(src, x0, x1, y, z);
            let d = &mut dst.row_mut(y, z)[x0..x1];
            op.apply_row_simd(d, &rows, x0, y, z);
        }
    }
}

/// Classic-Jacobi form of [`update_region_op`].
pub fn update_region<T: Real>(src: &Grid3<T>, dst: &mut Grid3<T>, region: &Region3) {
    update_region_op(&Jacobi6, src, dst, region);
}

/// Lazy row table for updating physical cells `[x0, x1)` of row `(y, z)`
/// through a shared view.
///
/// # Safety
/// Caller guarantees that every row the operator materializes (all nine
/// for corner-reading operators, the cross otherwise — see
/// [`StencilOp::READS_CORNERS`]) is in bounds, initialized, and neither
/// concurrently written nor overlapping the destination slice for the
/// lifetime of the returned table.
unsafe fn rows9_shared<T: Real>(
    g: &SharedGrid<T>,
    x0: usize,
    x1: usize,
    y: usize,
    z: usize,
) -> Rows9<'_, T> {
    let len = x1 - x0 + 2;
    let p =
        |dy: i64, dz: i64| g.row_ptr(x0 - 1, (y as i64 + dy) as usize, (z as i64 + dz) as usize);
    Rows9::from_raw(
        [
            [p(-1, -1), p(0, -1), p(1, -1)],
            [p(-1, 0), p(0, 0), p(1, 0)],
            [p(-1, 1), p(0, 1), p(1, 1)],
        ],
        len,
    )
}

/// Concurrent-executor version of [`update_region_op`] over shared views.
///
/// # Safety
/// Caller must guarantee that, for the duration of the call, no other
/// thread writes any cell of `region.expand(1)` in `src` nor reads/writes
/// any cell of `region` in `dst` (the pipeline plan's disjointness
/// invariant).
pub unsafe fn update_region_shared_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    src: &SharedGrid<T>,
    dst: &SharedGrid<T>,
    region: &Region3,
    store: StoreMode,
) {
    let dims = src.dims();
    debug_assert_eq!(dims, dst.dims());
    debug_assert!(Region3::interior_of(dims).contains_region(region));
    if region.is_empty() {
        return;
    }
    let (x0, x1) = (region.lo[0], region.hi[0]);
    for z in region.lo[2]..region.hi[2] {
        for y in region.lo[1]..region.hi[1] {
            let rows = rows9_shared(src, x0, x1, y, z);
            let d = dst.row_mut(x0, x1, y, z);
            match store {
                StoreMode::Normal => op.apply_row_simd(d, &rows, x0, y, z),
                StoreMode::Streaming => op.apply_row_streaming(d, &rows, x0, y, z),
            }
        }
    }
}

/// Classic-Jacobi form of [`update_region_shared_op`] with plain stores.
///
/// # Safety
/// Same contract as [`update_region_shared_op`].
pub unsafe fn update_region_shared<T: Real>(
    src: &SharedGrid<T>,
    dst: &SharedGrid<T>,
    region: &Region3,
) {
    update_region_shared_op(&Jacobi6, src, dst, region, StoreMode::Normal);
}

/// Compressed-grid stage kernel: stencil-update the interior cells of
/// `region` and *copy* its boundary cells, reading the frame displaced by
/// `src_off` and writing the frame displaced by `dst_off` of one shared
/// allocation.
///
/// * `op` — the stencil operator,
/// * `view` — the compressed grid's physical allocation,
/// * `logical` — extents of the logical domain (incl. Dirichlet layer),
/// * `region` — logical cells to produce, possibly including boundary
///   cells (the "shell" the executor assigns to this stage),
/// * `src_off`/`dst_off` — physical frame offsets (`physical = logical +
///   off`; the caller folds margin + displacement into them),
/// * `descending` — row iteration order. In-place safety requires
///   ascending rows when the frame moves down (`dst_off = src_off - 1`)
///   and descending rows when it moves up (`dst_off = src_off + 1`).
///
/// For cross-shaped operators the x order within a row never matters
/// because the diagonal shift moves writes onto different `(y, z)` lines.
/// Corner-reading operators ([`StencilOp::READS_CORNERS`]) *do* have one
/// source row coinciding with the write row — for those, the nine source
/// rows are staged through a scratch buffer before any write, which keeps
/// the result exact and the borrows disjoint.
///
/// # Safety
/// The physical source cells `region.expand(1) + src_off` must not be
/// concurrently written, and the physical destination cells `region +
/// dst_off` must not be concurrently accessed at all. The compressed
/// pipeline plan guarantees both (see `pipeline::plan`).
#[allow(clippy::too_many_arguments)]
pub unsafe fn update_region_compressed_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    view: &SharedGrid<T>,
    logical: Dims3,
    region: &Region3,
    src_off: usize,
    dst_off: usize,
    descending: bool,
) {
    if region.is_empty() {
        return;
    }
    debug_assert!(
        (dst_off + 1 == src_off && !descending) || (dst_off == src_off + 1 && descending),
        "iteration order must match shift direction"
    );
    let (x0, x1) = (region.lo[0], region.hi[0]);
    let interior = Region3::interior_of(logical);
    // Scratch for the corner-reading path: nine rows of the widest
    // possible segment, staged before the (aliasing) write.
    let mut scratch: Vec<T> = if Op::READS_CORNERS {
        vec![T::ZERO; 9 * (region.extent(0) + 2)]
    } else {
        Vec::new()
    };
    let zs: Vec<usize> = if descending {
        (region.lo[2]..region.hi[2]).rev().collect()
    } else {
        (region.lo[2]..region.hi[2]).collect()
    };
    let ys: Vec<usize> = if descending {
        (region.lo[1]..region.hi[1]).rev().collect()
    } else {
        (region.lo[1]..region.hi[1]).collect()
    };
    for &z in &zs {
        for &y in &ys {
            let row_is_boundary = y == 0 || z == 0 || y + 1 == logical.ny || z + 1 == logical.nz;
            if row_is_boundary {
                // Pure copy of the whole segment.
                copy_row(view, x0, x1, y, z, src_off, dst_off);
                continue;
            }
            // Boundary cells at the x ends are copied, the rest is the
            // stencil segment xs..xe.
            let lead = x0 == 0;
            let trail = x1 == logical.nx;
            let xs = if lead { 1 } else { x0 };
            let xe = if trail { logical.nx - 1 } else { x1 };
            let has_stencil = xs < xe;
            // Corner-reading operators: stage all nine source rows
            // *before any write to this row's destination line* — one
            // corner source row shares that physical line, and even the
            // x-end boundary copies below land inside its x-range.
            let len = xe.saturating_sub(xs) + 2;
            if has_stencil && Op::READS_CORNERS {
                for dz in 0..3usize {
                    for dy in 0..3usize {
                        let s = view.row(
                            xs - 1 + src_off,
                            xe + 1 + src_off,
                            y + dy - 1 + src_off,
                            z + dz - 1 + src_off,
                        );
                        let k = dz * 3 + dy;
                        scratch[k * len..(k + 1) * len].copy_from_slice(s);
                    }
                }
            }
            if lead {
                copy_row(view, 0, 1, y, z, src_off, dst_off);
            }
            if trail {
                copy_row(view, logical.nx - 1, logical.nx, y, z, src_off, dst_off);
            }
            if !has_stencil {
                continue;
            }
            debug_assert!(interior.contains(xs, y, z) && interior.contains(xe - 1, y, z));
            if Op::READS_CORNERS {
                let segs: [&[T]; 9] = std::array::from_fn(|k| &scratch[k * len..(k + 1) * len]);
                let rows = Rows9::from_slices([
                    [segs[0], segs[1], segs[2]],
                    [segs[3], segs[4], segs[5]],
                    [segs[6], segs[7], segs[8]],
                ]);
                let d = view.row_mut(xs + dst_off, xe + dst_off, y + dst_off, z + dst_off);
                op.apply_row_simd(d, &rows, xs, y, z);
            } else {
                let rows = rows9_shared(view, xs + src_off, xe + src_off, y + src_off, z + src_off);
                let d = view.row_mut(xs + dst_off, xe + dst_off, y + dst_off, z + dst_off);
                op.apply_row_simd(d, &rows, xs, y, z);
            }
        }
    }
}

/// Classic-Jacobi form of [`update_region_compressed_op`].
///
/// # Safety
/// Same contract as [`update_region_compressed_op`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn update_region_compressed<T: Real>(
    view: &SharedGrid<T>,
    logical: Dims3,
    region: &Region3,
    src_off: usize,
    dst_off: usize,
    descending: bool,
) {
    update_region_compressed_op(
        &Jacobi6, view, logical, region, src_off, dst_off, descending,
    );
}

/// Copy logical cells `[x0, x1) x {y} x {z}` from frame `src_off` to frame
/// `dst_off`.
///
/// # Safety
/// Same aliasing requirements as [`update_region_compressed_op`]. Source
/// and destination rows never overlap because the frames differ by exactly
/// one in every coordinate (diagonal displacement), which moves the row to
/// a different `(y, z)` line.
unsafe fn copy_row<T: Real>(
    view: &SharedGrid<T>,
    x0: usize,
    x1: usize,
    y: usize,
    z: usize,
    src_off: usize,
    dst_off: usize,
) {
    debug_assert_ne!(src_off, dst_off);
    let s = view.row(x0 + src_off, x1 + src_off, y + src_off, z + src_off);
    let d = view.row_mut(x0 + dst_off, x1 + dst_off, y + dst_off, z + dst_off);
    d.copy_from_slice(s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Avg27, VarCoeff7};
    use tb_grid::init;

    fn reference_cell(src: &Grid3<f64>, x: usize, y: usize, z: usize) -> f64 {
        (src.get(x - 1, y, z)
            + src.get(x + 1, y, z)
            + src.get(x, y - 1, z)
            + src.get(x, y + 1, z)
            + src.get(x, y, z - 1)
            + src.get(x, y, z + 1))
            * (1.0 / 6.0)
    }

    #[test]
    fn row_kernel_matches_pointwise_formula() {
        let dims = Dims3::new(8, 5, 5);
        let src: Grid3<f64> = init::random(dims, 11);
        let mut dst: Grid3<f64> = Grid3::zeroed(dims);
        let region = Region3::interior_of(dims);
        update_region(&src, &mut dst, &region);
        for (x, y, z) in region.iter() {
            assert_eq!(
                dst.get(x, y, z),
                reference_cell(&src, x, y, z),
                "at ({x},{y},{z})"
            );
        }
    }

    #[test]
    fn update_region_leaves_outside_untouched() {
        let dims = Dims3::cube(6);
        let src: Grid3<f64> = init::random(dims, 3);
        let mut dst: Grid3<f64> = Grid3::filled(dims, -1.0);
        let region = Region3::new([2, 2, 2], [4, 4, 4]);
        update_region(&src, &mut dst, &region);
        assert_eq!(dst.get(1, 1, 1), -1.0);
        assert_eq!(dst.get(4, 4, 4), -1.0);
        assert_ne!(dst.get(2, 2, 2), -1.0);
    }

    #[test]
    fn linear_field_is_fixed_point_to_rounding() {
        // Multiplying by 1/6 (inexact) instead of dividing by 6 leaves
        // ~1 ulp of slack, hence a tolerance here (bitwise determinism is
        // across solvers, not against the algebraic formula).
        let dims = Dims3::cube(7);
        let src: Grid3<f64> = init::linear(dims, 1.0, 2.0, -0.5, 3.0);
        let mut dst = src.clone();
        update_region(&src, &mut dst, &Region3::interior_of(dims));
        let d = tb_grid::norm::max_abs_diff(&src, &dst, &Region3::interior_of(dims));
        assert!(d < 1e-12, "linear field drifted by {d}");
    }

    #[test]
    fn shared_version_is_bitwise_equal_to_safe_version() {
        let dims = Dims3::new(16, 9, 7);
        let src: Grid3<f64> = init::random(dims, 5);
        let mut dst_a: Grid3<f64> = Grid3::zeroed(dims);
        let region = Region3::interior_of(dims);
        update_region(&src, &mut dst_a, &region);

        let mut src_b = src.clone();
        let mut dst_b: Grid3<f64> = Grid3::zeroed(dims);
        let sv = SharedGrid::from_raw(src_b.as_mut_ptr(), dims);
        let dv = SharedGrid::from_raw(dst_b.as_mut_ptr(), dims);
        unsafe { update_region_shared(&sv, &dv, &region) };
        tb_grid::norm::assert_grids_identical(&dst_a, &dst_b, &region, "shared kernel");
    }

    #[test]
    fn shared_version_matches_safe_version_for_every_op() {
        let dims = Dims3::new(14, 9, 8);
        let src: Grid3<f64> = init::random(dims, 21);
        let region = Region3::interior_of(dims);

        fn check<Op: StencilOp<f64>>(op: &Op, src: &Grid3<f64>, region: &Region3) {
            let mut want: Grid3<f64> = Grid3::zeroed(src.dims());
            update_region_op(op, src, &mut want, region);

            let mut src_b = src.clone();
            let mut got: Grid3<f64> = Grid3::zeroed(src.dims());
            let sv = SharedGrid::from_raw(src_b.as_mut_ptr(), src.dims());
            let dv = SharedGrid::from_raw(got.as_mut_ptr(), src.dims());
            for store in [StoreMode::Normal, StoreMode::Streaming] {
                unsafe { update_region_shared_op(op, &sv, &dv, region, store) };
                tb_grid::norm::assert_grids_identical(
                    &want,
                    &got,
                    region,
                    &format!("{} shared {store:?}", op.name()),
                );
            }
        }
        check(&Jacobi6, &src, &region);
        check(&crate::op::Jacobi7::heat(0.05), &src, &region);
        check(&VarCoeff7::banded(dims), &src, &region);
        check(&Avg27, &src, &region);
    }

    #[test]
    fn nt_store_row_is_bitwise_equal_to_plain_row() {
        let n = 37; // odd length to exercise head/tail handling
        let c: Vec<f64> = (0..n + 2).map(|i| (i as f64).sin()).collect();
        let ym: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let yp: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).sin()).collect();
        let zm: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let zp: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut d1 = vec![0.0; n];
        let mut d2 = vec![0.0; n];
        jacobi_row(&mut d1, &c, &ym, &yp, &zm, &zp);
        jacobi_row_nt_f64(&mut d2, &c, &ym, &yp, &zm, &zp);
        assert_eq!(d1, d2);
    }

    #[test]
    fn compressed_kernel_matches_two_grid_kernel() {
        // One full sweep through the compressed path (shift -1) must equal
        // the plain sweep.
        let dims = Dims3::cube(8);
        let initial: Grid3<f64> = init::random(dims, 9);
        // Plain reference.
        let mut ref_dst = initial.clone();
        update_region(&initial, &mut ref_dst, &Region3::interior_of(dims));

        // Compressed: margin 1, one stage. src frame disp 0 => offset
        // margin + 0 = 1; dst frame disp -1 => offset 0.
        let mut cg = tb_grid::CompressedGrid::from_grid(&initial, 1);
        let view = cg.shared();
        let whole = Region3::whole(dims);
        unsafe { update_region_compressed(&view, dims, &whole, 1, 0, false) };
        cg.set_displacement(-1);
        let got = cg.to_grid();
        tb_grid::norm::assert_grids_identical(
            &ref_dst,
            &got,
            &Region3::whole(dims),
            "compressed sweep",
        );
    }

    #[test]
    fn compressed_down_then_up_matches_two_plain_sweeps_per_op() {
        fn check<Op: StencilOp<f64>>(op: &Op, dims: Dims3) {
            let initial: Grid3<f64> = init::random(dims, 21);
            // Reference: two out-of-place sweeps.
            let a = initial.clone();
            let mut b = initial.clone();
            update_region_op(op, &a, &mut b, &Region3::interior_of(dims));
            let mut c = b.clone();
            update_region_op(op, &b, &mut c, &Region3::interior_of(dims));

            let mut cg = tb_grid::CompressedGrid::from_grid(&initial, 1);
            let view = cg.shared();
            let whole = Region3::whole(dims);
            // Down sweep: frame 0 -> frame -1 (offsets 1 -> 0), ascending.
            unsafe { update_region_compressed_op(op, &view, dims, &whole, 1, 0, false) };
            // Up sweep: frame -1 -> frame 0 (offsets 0 -> 1), descending.
            unsafe { update_region_compressed_op(op, &view, dims, &whole, 0, 1, true) };
            cg.set_displacement(0);
            let got = cg.to_grid();
            tb_grid::norm::assert_grids_identical(
                &c,
                &got,
                &Region3::whole(dims),
                &format!("{} down+up", op.name()),
            );
        }
        let dims = Dims3::cube(7);
        check(&Jacobi6, dims);
        check(&crate::op::Jacobi7::heat(0.08), dims);
        check(&VarCoeff7::banded(dims), dims);
        check(&Avg27, dims); // exercises the corner scratch path
    }

    #[test]
    #[should_panic(expected = "not interior")]
    fn update_region_rejects_boundary_region() {
        let dims = Dims3::cube(5);
        let src: Grid3<f64> = Grid3::zeroed(dims);
        let mut dst: Grid3<f64> = Grid3::zeroed(dims);
        update_region(&src, &mut dst, &Region3::whole(dims));
    }
}
