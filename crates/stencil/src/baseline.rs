//! The "standard" baseline solvers (paper §1.1), generic over the
//! stencil operator.
//!
//! These implement the paper's baseline: out-of-place sweeps over two
//! grids with spatial blocking and (optionally) non-temporal stores,
//! parallelized by splitting the outer (z) dimension across threads with
//! a barrier per sweep — structurally the OpenMP code of the paper.
//! They double as the *reference oracle*: every temporally blocked solver
//! is verified bitwise against [`seq_sweeps_op`] instantiated with the
//! same operator. The `*_op`-less names are the classic-Jacobi forms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tb_grid::{BlockPartition, GridPair, Real, Region3};
use tb_runtime::Runtime;
use tb_sync::SpinBarrier;

use crate::kernel::{self, StoreMode};
use crate::op::{Jacobi6, StencilOp};
use crate::stats::RunStats;

/// Sequential reference: plain full-interior sweeps of `op`.
pub fn seq_sweeps_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    pair: &mut GridPair<T>,
    sweeps: usize,
) -> RunStats {
    let interior = Region3::interior_of(pair.dims());
    let t0 = Instant::now();
    for s in 0..sweeps {
        let (src, dst) = pair.src_dst(s);
        kernel::update_region_op(op, src, dst, &interior);
    }
    RunStats::new((sweeps * interior.count()) as u64, t0.elapsed())
}

/// Classic-Jacobi form of [`seq_sweeps_op`].
pub fn seq_sweeps<T: Real>(pair: &mut GridPair<T>, sweeps: usize) -> RunStats {
    seq_sweeps_op(&Jacobi6, pair, sweeps)
}

/// Sequential sweeps with spatial blocking: each sweep visits the interior
/// block by block (better cache behaviour for large grids). Bitwise equal
/// to [`seq_sweeps_op`] because blocks are disjoint within a sweep.
pub fn seq_blocked_sweeps_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    pair: &mut GridPair<T>,
    sweeps: usize,
    block: [usize; 3],
) -> RunStats {
    let interior = Region3::interior_of(pair.dims());
    let partition = BlockPartition::new(interior, block);
    let t0 = Instant::now();
    for s in 0..sweeps {
        let (src, dst) = pair.src_dst(s);
        for (_, _, region) in partition.iter() {
            kernel::update_region_op(op, src, dst, &region);
        }
    }
    RunStats::new((sweeps * interior.count()) as u64, t0.elapsed())
}

/// Classic-Jacobi form of [`seq_blocked_sweeps_op`].
pub fn seq_blocked_sweeps<T: Real>(
    pair: &mut GridPair<T>,
    sweeps: usize,
    block: [usize; 3],
) -> RunStats {
    seq_blocked_sweeps_op(&Jacobi6, pair, sweeps, block)
}

/// Thread-parallel standard sweeps on `threads` workers of a persistent
/// runtime: the interior is split into contiguous z-slabs, one per
/// worker; every worker sweeps its slab and a barrier separates sweeps.
/// `store` selects plain or non-temporal stores (the paper's baseline
/// uses the latter; operators without a streaming row fall back to plain
/// stores, bitwise identically).
///
/// # Panics
/// Panics if `threads == 0` or `threads > rt.threads()`.
pub fn par_sweeps_op_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    pair: &mut GridPair<T>,
    sweeps: usize,
    threads: usize,
    store: StoreMode,
) -> RunStats {
    assert!(threads >= 1);
    let dims = pair.dims();
    let interior = Region3::interior_of(dims);
    if interior.is_empty() || sweeps == 0 {
        return RunStats::new(0, std::time::Duration::ZERO);
    }
    let barrier = SpinBarrier::new(threads);
    let total = AtomicU64::new(0);
    let views = pair.shared_views();

    // Contiguous z-slabs, remainder spread over the first slabs.
    let nz = interior.extent(2);
    let t0 = Instant::now();
    rt.run(threads, &|k| {
        let (z0, z1) = slab(nz, threads, k);
        let mut slab_region = interior;
        slab_region.lo[2] = interior.lo[2] + z0;
        slab_region.hi[2] = interior.lo[2] + z1;
        let mut cells = 0u64;
        for s in 0..sweeps {
            let (sg, dg) = (s % 2, (s + 1) % 2);
            if !slab_region.is_empty() {
                // SAFETY: slabs are disjoint between workers and
                // the barrier separates sweeps, so no cell is
                // concurrently written while read: reads of
                // sweep s come from the grid written in sweep
                // s-1, sealed by the barrier below.
                unsafe {
                    kernel::update_region_shared_op(
                        op,
                        &views[sg],
                        &views[dg],
                        &slab_region,
                        store,
                    );
                }
                cells += slab_region.count() as u64;
            }
            barrier.wait();
        }
        total.fetch_add(cells, Ordering::Relaxed);
    });
    RunStats::new(total.load(Ordering::Relaxed), t0.elapsed())
}

/// [`par_sweeps_op_on`] on a one-shot runtime — the classic entry
/// point. `cpus` optionally pins worker `k` to `cpus[k]`; the reported
/// elapsed time includes the team spawn/join, as it always did.
pub fn par_sweeps_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    pair: &mut GridPair<T>,
    sweeps: usize,
    threads: usize,
    store: StoreMode,
    cpus: Option<&[usize]>,
) -> RunStats {
    assert!(threads >= 1);
    if Region3::interior_of(pair.dims()).is_empty() || sweeps == 0 {
        return RunStats::new(0, std::time::Duration::ZERO);
    }
    let t0 = Instant::now();
    let rt = match cpus {
        Some(cpus) => {
            Runtime::from_cpus((0..threads).map(|k| cpus.get(k).copied()).collect(), None)
        }
        None => Runtime::with_threads(threads),
    };
    let stats = par_sweeps_op_on(&rt, op, pair, sweeps, threads, store);
    RunStats::new(stats.cell_updates, t0.elapsed())
}

/// Classic-Jacobi form of [`par_sweeps_op_on`].
pub fn par_sweeps_on<T: Real>(
    rt: &Runtime,
    pair: &mut GridPair<T>,
    sweeps: usize,
    threads: usize,
    store: StoreMode,
) -> RunStats {
    par_sweeps_op_on(rt, &Jacobi6, pair, sweeps, threads, store)
}

/// Classic-Jacobi form of [`par_sweeps_op`].
pub fn par_sweeps<T: Real>(
    pair: &mut GridPair<T>,
    sweeps: usize,
    threads: usize,
    store: StoreMode,
    cpus: Option<&[usize]>,
) -> RunStats {
    par_sweeps_op(&Jacobi6, pair, sweeps, threads, store, cpus)
}

/// Split `n` items into `threads` contiguous chunks; chunk `k` gets the
/// half-open range returned.
pub fn slab(n: usize, threads: usize, k: usize) -> (usize, usize) {
    let base = n / threads;
    let rem = n % threads;
    let lo = k * base + k.min(rem);
    let hi = lo + base + usize::from(k < rem);
    (lo, hi.min(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Avg27, Jacobi7, VarCoeff7};
    use tb_grid::{init, norm, Dims3};

    fn reference(dims: Dims3, seed: u64, sweeps: usize) -> tb_grid::Grid3<f64> {
        let mut pair = GridPair::from_initial(init::random(dims, seed));
        seq_sweeps(&mut pair, sweeps);
        pair.current(sweeps).clone()
    }

    #[test]
    fn slab_partition_covers_exactly() {
        for n in [1usize, 2, 7, 16, 33] {
            for threads in [1usize, 2, 3, 5, 8] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for k in 0..threads {
                    let (lo, hi) = slab(n, threads, k);
                    assert_eq!(lo, prev_hi, "gap at chunk {k}");
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn blocked_equals_plain_sequential() {
        let dims = Dims3::new(14, 11, 9);
        let want = reference(dims, 5, 4);
        let mut pair = GridPair::from_initial(init::random(dims, 5));
        seq_blocked_sweeps(&mut pair, 4, [5, 4, 3]);
        norm::assert_grids_identical(&want, pair.current(4), &Region3::whole(dims), "blocked");
    }

    #[test]
    fn parallel_equals_sequential_various_thread_counts() {
        let dims = Dims3::cube(16);
        let want = reference(dims, 8, 5);
        for threads in [1, 2, 3, 4, 7] {
            let mut pair = GridPair::from_initial(init::random(dims, 8));
            par_sweeps(&mut pair, 5, threads, StoreMode::Normal, None);
            norm::assert_grids_identical(
                &want,
                pair.current(5),
                &Region3::whole(dims),
                &format!("par {threads} threads"),
            );
        }
    }

    #[test]
    fn streaming_stores_bitwise_equal() {
        let dims = Dims3::cube(18);
        let want = reference(dims, 2, 3);
        let mut pair = GridPair::from_initial(init::random(dims, 2));
        par_sweeps(&mut pair, 3, 2, StoreMode::Streaming, None);
        norm::assert_grids_identical(&want, pair.current(3), &Region3::whole(dims), "nt");
    }

    #[test]
    fn more_threads_than_slabs_is_safe() {
        let dims = Dims3::new(10, 10, 5); // interior nz = 3 < 6 threads
        let want = reference(dims, 4, 2);
        let mut pair = GridPair::from_initial(init::random(dims, 4));
        par_sweeps(&mut pair, 2, 6, StoreMode::Normal, None);
        norm::assert_grids_identical(&want, pair.current(2), &Region3::whole(dims), "thin");
    }

    #[test]
    fn stats_account_updates() {
        let dims = Dims3::cube(10);
        let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 1));
        let s = par_sweeps(&mut pair, 3, 2, StoreMode::Normal, None);
        assert_eq!(s.cell_updates, (3 * dims.interior_len()) as u64);
    }

    #[test]
    fn f32_grids_work_too() {
        let dims = Dims3::cube(12);
        let mut a: GridPair<f32> = GridPair::from_initial(init::random(dims, 9));
        let mut b: GridPair<f32> = GridPair::from_initial(init::random(dims, 9));
        seq_sweeps(&mut a, 3);
        par_sweeps(&mut b, 3, 2, StoreMode::Streaming, None); // f32 => plain-store fallback
        norm::assert_grids_identical(a.current(3), b.current(3), &Region3::whole(dims), "f32");
    }

    #[test]
    fn every_operator_parallel_equals_its_sequential_oracle() {
        fn check<Op: StencilOp<f64>>(op: &Op, dims: Dims3, sweeps: usize) {
            let mut a = GridPair::from_initial(init::random(dims, 31));
            seq_sweeps_op(op, &mut a, sweeps);
            for store in [StoreMode::Normal, StoreMode::Streaming] {
                let mut b = GridPair::from_initial(init::random(dims, 31));
                par_sweeps_op(op, &mut b, sweeps, 3, store, None);
                norm::assert_grids_identical(
                    a.current(sweeps),
                    b.current(sweeps),
                    &Region3::whole(dims),
                    &format!("{} par {store:?}", op.name()),
                );
            }
            let mut c = GridPair::from_initial(init::random(dims, 31));
            seq_blocked_sweeps_op(op, &mut c, sweeps, [5, 4, 6]);
            norm::assert_grids_identical(
                a.current(sweeps),
                c.current(sweeps),
                &Region3::whole(dims),
                &format!("{} blocked", op.name()),
            );
        }
        let dims = Dims3::new(14, 12, 11);
        check(&Jacobi6, dims, 4);
        check(&Jacobi7::heat(0.1), dims, 4);
        check(&VarCoeff7::banded(dims), dims, 4);
        check(&Avg27, dims, 4);
    }
}
