//! The wavefront temporal blocking method of Wellein et al. (the paper's
//! ref. 2, COMPSAC 2009), implemented as a comparator.
//!
//! A team of `t` threads marches through the grid along z: thread `i`
//! applies sweep-stage `i` to plane `z_front - 2i`, so `t` updates happen
//! per memory traversal while planes stay in the shared cache. In
//! contrast to pipelined blocking this scheme keeps a fixed plane
//! distance (here 2, the minimum that averts races) and performs whole
//! planes per step — the paper's criticism is that it needs extra
//! boundary handling in the general blocked case and offers fewer tuning
//! knobs; our implementation uses full planes, which sidesteps boundary
//! copies but caps the in-cache working set at `t` z-planes.
//!
//! Results are bitwise identical to the baseline (same kernel, disjoint
//! planes per stage).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tb_grid::{GridPair, Real, Region3};
use tb_runtime::Runtime;
use tb_sync::{PipelineSync, SpinBarrier};

use crate::kernel::{self, StoreMode};
use crate::op::{Jacobi6, StencilOp};
use crate::stats::RunStats;

/// Minimum lead (in planes) of thread `i-1` over thread `i`: plane `z` at
/// stage `s` reads planes `z-1..=z+1` of stage `s-1`, so the predecessor
/// must have completed plane `z+1`, i.e. lead >= 2.
const PLANE_DISTANCE: u64 = 2;

/// Run `sweeps` sweeps of `op` with wavefront temporal blocking using
/// `threads` workers (= updates per traversal) of the given persistent
/// runtime. On return the result is in `pair.current(sweeps)`.
pub fn run_wavefront_op_on<T: Real, Op: StencilOp<T>>(
    rt: &Runtime,
    op: &Op,
    pair: &mut GridPair<T>,
    threads: usize,
    sweeps: usize,
) -> Result<RunStats, String> {
    if threads == 0 {
        return Err("wavefront needs at least one thread".into());
    }
    if rt.threads() < threads {
        return Err(format!(
            "runtime has {} workers but the wavefront needs {threads}",
            rt.threads()
        ));
    }
    let dims = pair.dims();
    let interior = Region3::interior_of(dims);
    if interior.is_empty() {
        return Err(format!("grid {dims} has no interior"));
    }
    if sweeps == 0 {
        return Ok(RunStats::new(0, std::time::Duration::ZERO));
    }
    let nplanes = interior.extent(2);
    let traversals = sweeps.div_ceil(threads);
    let barrier = SpinBarrier::new(threads);
    // Relaxed sync with the wavefront's fixed lower distance; du is
    // effectively unbounded (planes falling out of cache cost performance,
    // not correctness, and the comparator keeps the scheme minimal).
    let psync = PipelineSync::new(threads, threads, PLANE_DISTANCE, u64::MAX / 2, 0);
    let total_cells = AtomicU64::new(0);
    let views = pair.shared_views();

    let t0 = Instant::now();
    rt.run(threads, &|tid| {
        let mut my_cells = 0u64;
        for tr in 0..traversals {
            let base = tr * threads;
            let stages_now = threads.min(sweeps - base);
            barrier.wait();
            if tid == 0 {
                psync.reset();
            }
            barrier.wait();
            let stage = tid;
            if stage >= stages_now {
                psync.mark_complete(tid, nplanes as u64);
                continue;
            }
            let sweep = base + stage;
            let (sg, dg) = (sweep % 2, (sweep + 1) % 2);
            for p in 0..nplanes {
                psync.wait_for_turn(tid, nplanes as u64);
                let z = interior.lo[2] + p;
                let mut plane = interior;
                plane.lo[2] = z;
                plane.hi[2] = z + 1;
                // SAFETY: thread i works on plane p while thread
                // i-1 (stage s-1) has completed plane p+1 (lead
                // >= 2) — all reads of planes z-1..=z+1 in the
                // source grid (corners included: plane claims
                // cover whole planes) are sealed, and writes of
                // distinct stages go to alternating grids at
                // plane distance >= 2.
                unsafe {
                    kernel::update_region_shared_op(
                        op,
                        &views[sg],
                        &views[dg],
                        &plane,
                        StoreMode::Normal,
                    );
                }
                my_cells += plane.count() as u64;
                psync.complete_block(tid);
            }
        }
        total_cells.fetch_add(my_cells, Ordering::Relaxed);
    });
    Ok(RunStats::new(
        total_cells.load(Ordering::Relaxed),
        t0.elapsed(),
    ))
}

/// [`run_wavefront_op_on`] on a one-shot runtime — the classic form.
/// The reported elapsed time includes the team spawn/join, as it
/// always did.
pub fn run_wavefront_op<T: Real, Op: StencilOp<T>>(
    op: &Op,
    pair: &mut GridPair<T>,
    threads: usize,
    sweeps: usize,
) -> Result<RunStats, String> {
    if threads == 0 {
        return Err("wavefront needs at least one thread".into());
    }
    let t0 = Instant::now();
    let stats = run_wavefront_op_on(&Runtime::with_threads(threads), op, pair, threads, sweeps)?;
    Ok(if sweeps == 0 {
        stats
    } else {
        RunStats::new(stats.cell_updates, t0.elapsed())
    })
}

/// Classic-Jacobi form of [`run_wavefront_op_on`].
pub fn run_wavefront_on<T: Real>(
    rt: &Runtime,
    pair: &mut GridPair<T>,
    threads: usize,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_wavefront_op_on(rt, &Jacobi6, pair, threads, sweeps)
}

/// Classic-Jacobi form of [`run_wavefront_op`].
pub fn run_wavefront<T: Real>(
    pair: &mut GridPair<T>,
    threads: usize,
    sweeps: usize,
) -> Result<RunStats, String> {
    run_wavefront_op(&Jacobi6, pair, threads, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use tb_grid::{init, norm, Dims3};

    fn reference(dims: Dims3, seed: u64, sweeps: usize) -> tb_grid::Grid3<f64> {
        let mut pair = GridPair::from_initial(init::random(dims, seed));
        baseline::seq_sweeps(&mut pair, sweeps);
        pair.current(sweeps).clone()
    }

    fn check(dims: Dims3, threads: usize, sweeps: usize) {
        let want = reference(dims, 13, sweeps);
        let mut pair = GridPair::from_initial(init::random(dims, 13));
        run_wavefront(&mut pair, threads, sweeps).unwrap();
        norm::assert_grids_identical(
            &want,
            pair.current(sweeps),
            &Region3::whole(dims),
            &format!("wavefront t={threads} sweeps={sweeps}"),
        );
    }

    #[test]
    fn single_thread_is_plain_sweeps() {
        check(Dims3::cube(12), 1, 3);
    }

    #[test]
    fn two_threads_exact_traversals() {
        check(Dims3::cube(14), 2, 4);
    }

    #[test]
    fn three_threads_partial_traversal() {
        check(Dims3::cube(14), 3, 7);
    }

    #[test]
    fn four_threads_thin_grid() {
        // More threads than... planes is fine (nplanes=6 > distance*t? it
        // must still complete and match).
        check(Dims3::new(10, 10, 8), 4, 5);
    }

    #[test]
    fn stats_account_all_updates() {
        let dims = Dims3::cube(12);
        let mut pair: GridPair<f64> = GridPair::from_initial(init::random(dims, 2));
        let s = run_wavefront(&mut pair, 2, 5).unwrap();
        assert_eq!(s.cell_updates, (5 * dims.interior_len()) as u64);
    }

    #[test]
    fn zero_threads_rejected() {
        let mut pair: GridPair<f64> = GridPair::zeroed(Dims3::cube(8));
        assert!(run_wavefront(&mut pair, 0, 1).is_err());
    }

    #[test]
    fn zero_sweeps_noop() {
        let dims = Dims3::cube(8);
        let initial: tb_grid::Grid3<f64> = init::random(dims, 6);
        let mut pair = GridPair::from_initial(initial.clone());
        run_wavefront(&mut pair, 2, 0).unwrap();
        norm::assert_grids_identical(&initial, pair.current(0), &Region3::whole(dims), "noop");
    }
}
