//! Norms, differences and exact comparisons for verification.
//!
//! Every solver in this workspace evaluates the Jacobi 6-point average in
//! the same fixed operand order, so two correct solvers must agree
//! **bitwise** after the same number of sweeps. `assert_grids_identical`
//! is therefore the standard verification oracle; the tolerance-based
//! helpers exist for cross-kernel comparisons (e.g. `* (1/6)` vs `/ 6`).

use crate::{Grid3, Real, Region3};

/// Maximum absolute difference over `region`.
pub fn max_abs_diff<T: Real>(a: &Grid3<T>, b: &Grid3<T>, region: &Region3) -> f64 {
    assert_eq!(a.dims(), b.dims());
    let r = region.intersect(&Region3::whole(a.dims()));
    let mut m = 0.0f64;
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            let ra = &a.row(y, z)[r.lo[0]..r.hi[0]];
            let rb = &b.row(y, z)[r.lo[0]..r.hi[0]];
            for (va, vb) in ra.iter().zip(rb) {
                let d = (va.to_f64() - vb.to_f64()).abs();
                if d > m {
                    m = d;
                }
            }
        }
    }
    m
}

/// L2 norm of the difference over `region`.
pub fn l2_diff<T: Real>(a: &Grid3<T>, b: &Grid3<T>, region: &Region3) -> f64 {
    assert_eq!(a.dims(), b.dims());
    let r = region.intersect(&Region3::whole(a.dims()));
    let mut acc = 0.0f64;
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            let ra = &a.row(y, z)[r.lo[0]..r.hi[0]];
            let rb = &b.row(y, z)[r.lo[0]..r.hi[0]];
            for (va, vb) in ra.iter().zip(rb) {
                let d = va.to_f64() - vb.to_f64();
                acc += d * d;
            }
        }
    }
    acc.sqrt()
}

/// First cell (x-fastest order) where the two grids differ bitwise, with
/// both values; `None` if identical over `region`.
pub fn first_mismatch<T: Real>(
    a: &Grid3<T>,
    b: &Grid3<T>,
    region: &Region3,
) -> Option<((usize, usize, usize), T, T)> {
    assert_eq!(a.dims(), b.dims());
    let r = region.intersect(&Region3::whole(a.dims()));
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            let ra = &a.row(y, z)[r.lo[0]..r.hi[0]];
            let rb = &b.row(y, z)[r.lo[0]..r.hi[0]];
            for (i, (va, vb)) in ra.iter().zip(rb).enumerate() {
                if va.to_f64().to_bits() != vb.to_f64().to_bits() {
                    return Some(((r.lo[0] + i, y, z), *va, *vb));
                }
            }
        }
    }
    None
}

/// Panic with a precise location unless the grids match bitwise on `region`.
#[track_caller]
pub fn assert_grids_identical<T: Real>(a: &Grid3<T>, b: &Grid3<T>, region: &Region3, ctx: &str) {
    if let Some(((x, y, z), va, vb)) = first_mismatch(a, b, region) {
        let n = count_mismatches(a, b, region);
        panic!(
            "{ctx}: grids differ at ({x},{y},{z}): {va} vs {vb} \
             ({n} mismatching cells of {})",
            region.count()
        );
    }
}

/// Number of bitwise-mismatching cells over `region`.
pub fn count_mismatches<T: Real>(a: &Grid3<T>, b: &Grid3<T>, region: &Region3) -> usize {
    let r = region.intersect(&Region3::whole(a.dims()));
    let mut n = 0;
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            let ra = &a.row(y, z)[r.lo[0]..r.hi[0]];
            let rb = &b.row(y, z)[r.lo[0]..r.hi[0]];
            n += ra
                .iter()
                .zip(rb)
                .filter(|(va, vb)| va.to_f64().to_bits() != vb.to_f64().to_bits())
                .count();
        }
    }
    n
}

/// Order-independent checksum (sum of bit patterns); useful as a cheap
/// fingerprint in benchmark logs.
pub fn fingerprint<T: Real>(g: &Grid3<T>, region: &Region3) -> u64 {
    let r = region.intersect(&Region3::whole(g.dims()));
    let mut acc = 0u64;
    for z in r.lo[2]..r.hi[2] {
        for y in r.lo[1]..r.hi[1] {
            for v in &g.row(y, z)[r.lo[0]..r.hi[0]] {
                acc = acc.wrapping_add(v.to_f64().to_bits());
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Dims3};

    #[test]
    fn identical_grids_have_zero_norms() {
        let a: Grid3<f64> = init::random(Dims3::cube(6), 1);
        let b = a.clone();
        let r = Region3::whole(a.dims());
        assert_eq!(max_abs_diff(&a, &b, &r), 0.0);
        assert_eq!(l2_diff(&a, &b, &r), 0.0);
        assert!(first_mismatch(&a, &b, &r).is_none());
        assert_eq!(count_mismatches(&a, &b, &r), 0);
        assert_grids_identical(&a, &b, &r, "clone");
    }

    #[test]
    fn single_difference_is_located() {
        let mut a: Grid3<f64> = init::random(Dims3::cube(5), 7);
        a.set(2, 3, 1, 0.25);
        let mut b = a.clone();
        b.set(2, 3, 1, 1.25);
        let r = Region3::whole(a.dims());
        let ((x, y, z), _, _) = first_mismatch(&a, &b, &r).unwrap();
        assert_eq!((x, y, z), (2, 3, 1));
        assert_eq!(count_mismatches(&a, &b, &r), 1);
        assert_eq!(max_abs_diff(&a, &b, &r), 1.0);
        assert!((l2_diff(&a, &b, &r) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "grids differ at (1,1,1)")]
    fn assert_identical_panics_with_location() {
        let a: Grid3<f64> = Grid3::zeroed(Dims3::cube(4));
        let mut b = a.clone();
        b.set(1, 1, 1, 1.0);
        assert_grids_identical(&a, &b, &Region3::whole(a.dims()), "test");
    }

    #[test]
    fn fingerprint_detects_changes_and_is_order_free() {
        let a: Grid3<f64> = init::random(Dims3::cube(6), 3);
        let r = Region3::whole(a.dims());
        let f1 = fingerprint(&a, &r);
        let mut b = a.clone();
        b.set(1, 1, 1, 0.123);
        assert_ne!(f1, fingerprint(&b, &r));
    }

    #[test]
    fn region_restriction_ignores_outside_cells() {
        let a: Grid3<f64> = Grid3::zeroed(Dims3::cube(5));
        let mut b = a.clone();
        b.set(0, 0, 0, 9.0); // on the boundary
        let interior = Region3::interior_of(a.dims());
        assert_eq!(count_mismatches(&a, &b, &interior), 0);
        assert_grids_identical(&a, &b, &interior, "interior only");
    }
}
