//! Cache-line aligned heap storage.
//!
//! The paper's baseline applies "data alignment" as one of its standard
//! optimizations (§1.1). [`AlignedVec`] allocates zero-initialized storage
//! aligned to [`ALIGN`] bytes (one x86 cache line, also sufficient for
//! AVX-512 loads), so that grid rows never straddle a cache line needlessly
//! and streaming kernels vectorize cleanly.
//!
//! # Lane-width guarantee
//!
//! [`ALIGN`] is exactly [`crate::lanes::LANES`] `f64` elements (and two
//! `f32` lanes), so element 0 of every allocation starts a full SIMD
//! lane: the vectorized row kernels built on [`crate::lanes::Lane`] need
//! no head peel when a row segment starts at a grid row boundary, and
//! `head_len` reaches a lane boundary within the first lane otherwise.
//! The guarantee is a property of the *allocation*, so it survives any
//! amount of buffer reuse (e.g. `tb-runtime`'s `GridPool` recycling —
//! the pool hands back the same allocations, never reallocates them
//! unaligned; see the pool contract tests).

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment in bytes of every [`AlignedVec`] allocation.
pub const ALIGN: usize = 64;

/// A fixed-length, 64-byte aligned, zero-initialized vector.
///
/// Unlike `Vec<T>`, the length is fixed at construction; stencil grids never
/// grow. Dereferences to `[T]`.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; it is a plain buffer.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Allocate `len` zero-initialized elements.
    ///
    /// Only meaningful for plain number types where the all-zero bit
    /// pattern is a valid value (`f32`/`f64`/integers) — which is all this
    /// workspace stores.
    ///
    /// # Panics
    /// Panics if `len == 0` or the size computation overflows.
    pub fn zeroed(len: usize) -> Self {
        assert!(len > 0, "AlignedVec of length 0 is not supported");
        assert!(
            std::mem::size_of::<T>() > 0,
            "zero-sized elements not supported"
        );
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (both asserts above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw as *mut T) else {
            handle_alloc_error(layout)
        };
        Self { ptr, len }
    }

    /// Allocate and fill with `value`.
    pub fn filled(len: usize, value: T) -> Self {
        let mut v = Self::zeroed(len);
        v.fill(value);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(
            len.checked_mul(std::mem::size_of::<T>())
                .expect("allocation size overflow"),
            ALIGN,
        )
        .expect("invalid layout")
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw pointer to the first element (64-byte aligned).
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer to the first element (64-byte aligned).
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len * std::mem::size_of::<T>(), ALIGN)
            .expect("invalid layout");
        // SAFETY: ptr was allocated with exactly this layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, layout) }
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len elements; &mut self gives exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_aligned_and_zeroed() {
        let v: AlignedVec<f64> = AlignedVec::zeroed(1000);
        assert_eq!(v.as_ptr() as usize % ALIGN, 0);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filled_sets_every_element() {
        let v = AlignedVec::filled(17, 2.5f32);
        assert!(v.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn deref_mut_allows_writes() {
        let mut v: AlignedVec<f64> = AlignedVec::zeroed(8);
        v[3] = 42.0;
        assert_eq!(v[3], 42.0);
        v.fill(1.0);
        assert_eq!(v.iter().sum::<f64>(), 8.0);
    }

    #[test]
    fn clone_is_deep() {
        let mut a: AlignedVec<f64> = AlignedVec::zeroed(4);
        a[0] = 7.0;
        let b = a.clone();
        a[0] = 0.0;
        assert_eq!(b[0], 7.0);
        assert_eq!(b.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    #[should_panic]
    fn zero_length_panics() {
        let _ = AlignedVec::<f64>::zeroed(0);
    }

    #[test]
    fn many_sizes_alignment() {
        for len in [1usize, 3, 7, 8, 9, 63, 64, 65, 4096] {
            let v: AlignedVec<f64> = AlignedVec::zeroed(len);
            assert_eq!(v.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(v.len(), len);
        }
    }
}
