//! Grid extents and linear index arithmetic.
//!
//! Layout convention throughout the workspace: **x is the unit-stride
//! (innermost) dimension**, matching the paper's `b_x` inner loop length
//! discussion (§1.5); y has stride `nx`, z has stride `nx*ny`.

/// Extents of a 3D array, including any boundary/ghost layers it carries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// Cubic extents, `n` in each direction.
    pub const fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(x, y, z)`; x is unit stride.
    #[inline(always)]
    pub const fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`Self::idx`].
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Stride (in elements) of a step in y.
    pub const fn stride_y(&self) -> usize {
        self.nx
    }

    /// Stride (in elements) of a step in z.
    pub const fn stride_z(&self) -> usize {
        self.nx * self.ny
    }

    /// Extent along dimension `d` (0 = x, 1 = y, 2 = z).
    #[inline]
    pub const fn extent(&self, d: usize) -> usize {
        match d {
            0 => self.nx,
            1 => self.ny,
            _ => self.nz,
        }
    }

    pub const fn as_array(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    pub const fn from_array(a: [usize; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// True if `(x, y, z)` lies strictly inside (i.e. not on the outermost
    /// layer). The outermost layer of a Jacobi grid holds the Dirichlet
    /// boundary and is never updated.
    #[inline]
    pub const fn is_interior(&self, x: usize, y: usize, z: usize) -> bool {
        x >= 1 && y >= 1 && z >= 1 && x + 1 < self.nx && y + 1 < self.ny && z + 1 < self.nz
    }

    /// Number of interior (updatable) cells.
    pub const fn interior_len(&self) -> usize {
        if self.nx < 3 || self.ny < 3 || self.nz < 3 {
            return 0;
        }
        (self.nx - 2) * (self.ny - 2) * (self.nz - 2)
    }

    /// Memory footprint in bytes for elements of size `elem_bytes`.
    pub const fn bytes(&self, elem_bytes: usize) -> usize {
        self.len() * elem_bytes
    }
}

impl std::fmt::Display for Dims3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_x_fastest() {
        let d = Dims3::new(4, 3, 2);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 4);
        assert_eq!(d.idx(0, 0, 1), 12);
        assert_eq!(d.idx(3, 2, 1), 23);
        assert_eq!(d.len(), 24);
    }

    #[test]
    fn coords_inverts_idx() {
        let d = Dims3::new(5, 7, 3);
        for i in 0..d.len() {
            let (x, y, z) = d.coords(i);
            assert_eq!(d.idx(x, y, z), i);
        }
    }

    #[test]
    fn strides() {
        let d = Dims3::new(10, 20, 30);
        assert_eq!(d.stride_y(), 10);
        assert_eq!(d.stride_z(), 200);
        assert_eq!(d.extent(0), 10);
        assert_eq!(d.extent(1), 20);
        assert_eq!(d.extent(2), 30);
    }

    #[test]
    fn interior_classification() {
        let d = Dims3::cube(4);
        assert!(d.is_interior(1, 1, 1));
        assert!(d.is_interior(2, 2, 2));
        assert!(!d.is_interior(0, 1, 1));
        assert!(!d.is_interior(3, 1, 1));
        assert!(!d.is_interior(1, 0, 1));
        assert!(!d.is_interior(1, 1, 3));
        assert_eq!(d.interior_len(), 8);
    }

    #[test]
    fn degenerate_interior_is_zero() {
        assert_eq!(Dims3::new(2, 5, 5).interior_len(), 0);
        assert_eq!(Dims3::new(1, 1, 1).interior_len(), 0);
    }

    #[test]
    fn display_and_bytes() {
        let d = Dims3::new(600, 600, 600);
        assert_eq!(format!("{d}"), "600x600x600");
        assert_eq!(d.bytes(8), 600 * 600 * 600 * 8);
    }
}
