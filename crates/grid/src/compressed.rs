//! The "compressed grid" single-array storage scheme (paper §1.3).
//!
//! Instead of double-buffering two full grids, each sweep writes its result
//! shifted by (-1,-1,-1) relative to the read position; alternate *team
//! sweeps* shift by (+1,+1,+1) with reversed loops, so the data slides down
//! and up inside one allocation that is only `max_shift` cells larger per
//! dimension. This saves almost half the memory and reduces bandwidth
//! pressure.
//!
//! The struct stores the *logical* extents (the Jacobi domain including its
//! Dirichlet boundary layer) plus the current displacement of logical
//! coordinate (0,0,0) inside the allocation. Solvers that run sweeps
//! mid-flight track per-stage displacements themselves and call
//! [`CompressedGrid::set_displacement`] once a team sweep completes.
//!
//! Displacement convention: `physical = logical + margin + displacement`,
//! with `displacement ∈ [-margin, 0]`. A fresh grid has displacement 0.

use crate::{Dims3, Grid3, Real, SharedGrid};

/// Single-allocation grid supporting diagonal shift sweeps.
#[derive(Clone, Debug)]
pub struct CompressedGrid<T: Copy> {
    storage: Grid3<T>,
    logical: Dims3,
    margin: usize,
    displacement: i64,
}

impl<T: Real> CompressedGrid<T> {
    /// Allocate for a logical domain of `logical` cells and a maximum
    /// accumulated shift of `margin` cells (= updates per team sweep,
    /// `t*T` in the paper's notation).
    pub fn zeroed(logical: Dims3, margin: usize) -> Self {
        Self {
            storage: Grid3::zeroed(Self::alloc_dims_for(logical, margin)),
            logical,
            margin,
            displacement: 0,
        }
    }

    /// Build from an initial state (displacement 0).
    pub fn from_grid(initial: &Grid3<T>, margin: usize) -> Self {
        Self::from_grid_in(
            initial,
            margin,
            Grid3::zeroed(Self::alloc_dims_for(initial.dims(), margin)),
        )
    }

    /// Allocation extents for a logical domain with the given margin.
    pub fn alloc_dims_for(logical: Dims3, margin: usize) -> Dims3 {
        Dims3::new(
            logical.nx + margin,
            logical.ny + margin,
            logical.nz + margin,
        )
    }

    /// [`CompressedGrid::from_grid`] into caller-provided storage (e.g.
    /// recycled from a staging pool — reclaim it afterwards with
    /// [`CompressedGrid::into_storage`]). Stale storage contents outside
    /// the logical frame are harmless: every frame an executor reads was
    /// written either here or by an earlier stage of the run.
    ///
    /// # Panics
    /// Panics if `storage.dims()` is not exactly
    /// [`CompressedGrid::alloc_dims_for`]`(initial.dims(), margin)`.
    pub fn from_grid_in(initial: &Grid3<T>, margin: usize, storage: Grid3<T>) -> Self {
        assert_eq!(
            storage.dims(),
            Self::alloc_dims_for(initial.dims(), margin),
            "storage extents must match logical dims + margin"
        );
        let mut cg = Self {
            storage,
            logical: initial.dims(),
            margin,
            displacement: 0,
        };
        for z in 0..initial.dims().nz {
            for y in 0..initial.dims().ny {
                let (px, py, pz) = cg.physical(0, y, z);
                let src = initial.row(y, z);
                let start = cg.storage.idx(px, py, pz);
                cg.storage.as_mut_slice()[start..start + src.len()].copy_from_slice(src);
            }
        }
        cg
    }

    /// Give the backing allocation back (e.g. to a pool).
    pub fn into_storage(self) -> Grid3<T> {
        self.storage
    }

    pub fn logical_dims(&self) -> Dims3 {
        self.logical
    }

    pub fn alloc_dims(&self) -> Dims3 {
        self.storage.dims()
    }

    pub fn margin(&self) -> usize {
        self.margin
    }

    /// Current displacement of the logical origin (`∈ [-margin, 0]`).
    pub fn displacement(&self) -> i64 {
        self.displacement
    }

    /// Record the displacement after a completed (team) sweep.
    ///
    /// # Panics
    /// Panics if `d` is outside `[-margin, 0]`.
    pub fn set_displacement(&mut self, d: i64) {
        assert!(
            -(self.margin as i64) <= d && d <= 0,
            "displacement {d} outside [-{}, 0]",
            self.margin
        );
        self.displacement = d;
    }

    /// Physical coordinates of logical `(x, y, z)` at the current
    /// displacement.
    #[inline]
    pub fn physical(&self, x: usize, y: usize, z: usize) -> (usize, usize, usize) {
        let off = self.margin as i64 + self.displacement;
        (
            (x as i64 + off) as usize,
            (y as i64 + off) as usize,
            (z as i64 + off) as usize,
        )
    }

    /// Read logical cell at current displacement.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        let (px, py, pz) = self.physical(x, y, z);
        self.storage.get(px, py, pz)
    }

    /// Write logical cell at current displacement.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let (px, py, pz) = self.physical(x, y, z);
        self.storage.set(px, py, pz, v);
    }

    /// Unsynchronized view over the *allocation* (physical coordinates).
    /// Executors combine this with per-stage displacements.
    pub fn shared(&mut self) -> SharedGrid<T> {
        SharedGrid::from_raw(self.storage.as_mut_ptr(), self.storage.dims())
    }

    /// Extract the logical domain at the current displacement into a plain
    /// grid (verification helper).
    pub fn to_grid(&self) -> Grid3<T> {
        let mut out = Grid3::zeroed(self.logical);
        for z in 0..self.logical.nz {
            for y in 0..self.logical.ny {
                let (px, py, pz) = self.physical(0, y, z);
                let start = self.storage.idx(px, py, pz);
                let src = &self.storage.as_slice()[start..start + self.logical.nx];
                out.row_mut(y, z).copy_from_slice(src);
            }
        }
        out
    }

    /// Memory footprint in bytes; compare with `2 * logical` for the
    /// double-buffer scheme to see the saving.
    pub fn bytes(&self) -> usize {
        self.storage.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_at_zero_displacement() {
        let init: Grid3<f64> =
            Grid3::from_fn(Dims3::cube(5), |x, y, z| (x + 10 * y + 100 * z) as f64);
        let cg = CompressedGrid::from_grid(&init, 4);
        assert_eq!(cg.alloc_dims(), Dims3::cube(9));
        for (x, y, z) in crate::Region3::whole(init.dims()).iter() {
            assert_eq!(cg.get(x, y, z), init.get(x, y, z));
        }
        let back = cg.to_grid();
        assert_eq!(back.as_slice(), init.as_slice());
    }

    #[test]
    fn displacement_moves_window() {
        let mut cg: CompressedGrid<f64> = CompressedGrid::zeroed(Dims3::cube(4), 2);
        // Write a marker at logical (0,0,0), displacement 0 => physical (2,2,2).
        cg.set(0, 0, 0, 7.0);
        let (px, py, pz) = cg.physical(0, 0, 0);
        assert_eq!((px, py, pz), (2, 2, 2));
        // After shifting down by 2, logical (2,2,2) lands on physical (2,2,2).
        cg.set_displacement(-2);
        assert_eq!(cg.get(2, 2, 2), 7.0);
        let (px, py, pz) = cg.physical(0, 0, 0);
        assert_eq!((px, py, pz), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "displacement")]
    fn displacement_out_of_range_panics() {
        let mut cg: CompressedGrid<f64> = CompressedGrid::zeroed(Dims3::cube(4), 2);
        cg.set_displacement(-3);
    }

    #[test]
    fn memory_saving_vs_double_buffer() {
        let n = 64;
        let margin = 8;
        let cg: CompressedGrid<f64> = CompressedGrid::zeroed(Dims3::cube(n), margin);
        let double = 2 * Dims3::cube(n).bytes(8);
        // (n+m)^3 < 2 n^3 for m << n: the paper's "nearly half the memory".
        assert!(cg.bytes() < double);
        assert!((cg.bytes() as f64) / (double as f64) < 0.75);
    }

    #[test]
    fn shared_view_matches_physical_layout() {
        let init: Grid3<f64> = Grid3::from_fn(Dims3::cube(3), |x, _, _| x as f64);
        let mut cg = CompressedGrid::from_grid(&init, 1);
        let dims = cg.alloc_dims();
        let view = cg.shared();
        // logical (1,0,0) at displacement 0 sits at physical (2,1,1).
        let v = unsafe { view.get(2, 1, 1) };
        assert_eq!(v, 1.0);
        assert_eq!(dims, Dims3::cube(4));
    }
}
