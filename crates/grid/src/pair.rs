//! The A/B grid pair used by out-of-place Jacobi sweeps.

use crate::{Dims3, Grid3, Real, SharedGrid};

/// Double buffer of two equally sized grids.
///
/// Sweep `s` (0-based) reads `grid(s % 2)` and writes `grid((s+1) % 2)`, so
/// after `n` sweeps the current solution lives in `grid(n % 2)`. Keeping the
/// parity arithmetic in one place avoids an entire class of off-by-one bugs
/// in the pipelined executors, where many sweeps are in flight at once.
#[derive(Clone, Debug)]
pub struct GridPair<T: Copy> {
    a: Grid3<T>,
    b: Grid3<T>,
}

impl<T: Real> GridPair<T> {
    /// Two zero-filled grids.
    pub fn zeroed(dims: Dims3) -> Self {
        Self {
            a: Grid3::zeroed(dims),
            b: Grid3::zeroed(dims),
        }
    }

    /// Start from an initial state: grid A gets `initial`, grid B a copy.
    ///
    /// B must be a copy (not zeros) so that boundary cells — which sweeps
    /// never write — carry the correct Dirichlet values in both buffers.
    pub fn from_initial(initial: Grid3<T>) -> Self {
        let b = initial.clone();
        Self { a: initial, b }
    }

    /// Assemble a pair from two existing buffers (e.g. recycled from a
    /// staging pool). `b` must hold the same boundary values as `a` —
    /// sweeps never write the boundary, so callers typically copy `a`
    /// into `b` wholesale before handing both over.
    ///
    /// # Panics
    /// Panics if the dims differ.
    pub fn from_parts(a: Grid3<T>, b: Grid3<T>) -> Self {
        assert_eq!(a.dims(), b.dims(), "pair buffers must match");
        Self { a, b }
    }

    /// Disassemble into `(a, b)`, e.g. to keep the result buffer and
    /// return the other one to a pool.
    pub fn into_parts(self) -> (Grid3<T>, Grid3<T>) {
        (self.a, self.b)
    }

    pub fn dims(&self) -> Dims3 {
        self.a.dims()
    }

    /// Buffer holding the state after `sweeps_done` sweeps.
    pub fn current(&self, sweeps_done: usize) -> &Grid3<T> {
        if sweeps_done.is_multiple_of(2) {
            &self.a
        } else {
            &self.b
        }
    }

    /// Source and destination for sweep number `sweep` (0-based).
    pub fn src_dst(&mut self, sweep: usize) -> (&Grid3<T>, &mut Grid3<T>) {
        let (a, b) = (&mut self.a, &mut self.b);
        if sweep.is_multiple_of(2) {
            (&*a, b)
        } else {
            (&*b, a)
        }
    }

    pub fn a(&self) -> &Grid3<T> {
        &self.a
    }

    pub fn b(&self) -> &Grid3<T> {
        &self.b
    }

    pub fn a_mut(&mut self) -> &mut Grid3<T> {
        &mut self.a
    }

    pub fn b_mut(&mut self) -> &mut Grid3<T> {
        &mut self.b
    }

    /// Both raw base pointers, indexed by parity: `ptrs()[s % 2]` is the
    /// grid read by sweep `s`. Used by the unsafe shared executors.
    pub fn base_ptrs(&mut self) -> [*mut T; 2] {
        [self.a.as_mut_ptr(), self.b.as_mut_ptr()]
    }

    /// Both buffers as unsynchronized [`SharedGrid`] views, indexed by
    /// parity like [`GridPair::base_ptrs`]: `views[s % 2]` is the buffer
    /// sweep `s` reads, `views[(s + 1) % 2]` the one it writes. The one
    /// definition of the view↔parity convention for every multi-threaded
    /// executor. Constructing the views is safe; the disjointness
    /// contract of their unsafe accessors falls on the executor (see
    /// [`SharedGrid`]).
    pub fn shared_views(&mut self) -> [SharedGrid<T>; 2] {
        let dims = self.dims();
        let ptrs = self.base_ptrs();
        [
            SharedGrid::from_raw(ptrs[0], dims),
            SharedGrid::from_raw(ptrs[1], dims),
        ]
    }

    /// Swap the two buffers (an O(1) pointer swap). Lets a caller that
    /// ran an odd number of sweeps re-normalize so the current state is
    /// in grid A again — the distributed solver does this between
    /// exchange cycles.
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.a, &mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_bookkeeping() {
        let mut p: GridPair<f64> = GridPair::zeroed(Dims3::cube(4));
        p.a_mut().set(1, 1, 1, 5.0);
        assert_eq!(p.current(0).get(1, 1, 1), 5.0);
        assert_eq!(p.current(2).get(1, 1, 1), 5.0);
        assert_eq!(p.current(1).get(1, 1, 1), 0.0);

        let (src, dst) = p.src_dst(0);
        assert_eq!(src.get(1, 1, 1), 5.0);
        dst.set(1, 1, 1, 6.0); // simulate sweep 0 writing
        assert_eq!(p.current(1).get(1, 1, 1), 6.0);

        let (src, dst) = p.src_dst(1);
        assert_eq!(src.get(1, 1, 1), 6.0);
        dst.set(1, 1, 1, 7.0);
        assert_eq!(p.current(2).get(1, 1, 1), 7.0);
    }

    #[test]
    fn swap_renormalizes_parity() {
        let mut p: GridPair<f64> = GridPair::zeroed(Dims3::cube(4));
        p.b_mut().set(1, 1, 1, 3.0); // state after one sweep lives in B
        assert_eq!(p.current(1).get(1, 1, 1), 3.0);
        p.swap();
        assert_eq!(p.current(0).get(1, 1, 1), 3.0, "state is in A after swap");
    }

    #[test]
    fn from_initial_copies_boundary_into_both() {
        let g: Grid3<f64> = Grid3::filled(Dims3::cube(3), 4.0);
        let p = GridPair::from_initial(g);
        assert_eq!(p.a().get(0, 0, 0), 4.0);
        assert_eq!(p.b().get(0, 0, 0), 4.0);
    }
}
