//! A runtime region-overlap auditor — a lightweight race detector.
//!
//! The safety of the pipelined executors rests on a geometric claim:
//! *regions concurrently claimed by different threads never pair a write
//! with an overlapping read or write*. The auditor verifies exactly that
//! claim at runtime. Executors register every region before touching it and
//! release it afterwards; the auditor asserts on conflict, printing both
//! regions and their owners.
//!
//! The auditor serializes claims through a mutex, so it destroys
//! performance; it is compiled in always but only *used* by executors when
//! `cfg(debug_assertions)` holds or when tests enable it explicitly.

use parking_lot::Mutex;

use crate::Region3;

/// Kind of access a thread claims over a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Read,
    Write,
}

#[derive(Clone, Debug)]
struct Claim {
    owner: usize,
    grid_id: usize,
    kind: AccessKind,
    region: Region3,
    token: u64,
}

/// Shared overlap checker. Cloneable handle semantics are provided by
/// wrapping in `Arc` at the call site.
#[derive(Default, Debug)]
pub struct RegionAuditor {
    active: Mutex<Vec<Claim>>,
    counter: Mutex<u64>,
}

impl RegionAuditor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim `region` of grid `grid_id` for `kind` access by `owner`.
    ///
    /// # Panics
    /// Panics if the claim conflicts with an active claim from a different
    /// owner (write/write or read/write overlap on the same grid).
    pub fn claim(&self, owner: usize, grid_id: usize, kind: AccessKind, region: Region3) -> u64 {
        let token = {
            let mut c = self.counter.lock();
            *c += 1;
            *c
        };
        let mut active = self.active.lock();
        for existing in active.iter() {
            if existing.owner == owner || existing.grid_id != grid_id {
                continue;
            }
            let conflicting = matches!(
                (existing.kind, kind),
                (AccessKind::Write, _) | (_, AccessKind::Write)
            );
            if conflicting && existing.region.intersects(&region) {
                panic!(
                    "region race detected on grid {grid_id}: \
                     thread {owner} claims {kind:?} {region}, \
                     thread {} holds {:?} {}",
                    existing.owner, existing.kind, existing.region
                );
            }
        }
        active.push(Claim {
            owner,
            grid_id,
            kind,
            region,
            token,
        });
        token
    }

    /// Release a claim previously returned by [`Self::claim`].
    pub fn release(&self, token: u64) {
        let mut active = self.active.lock();
        if let Some(pos) = active.iter().position(|c| c.token == token) {
            active.swap_remove(pos);
        }
    }

    /// Number of currently active claims (test helper).
    pub fn active_claims(&self) -> usize {
        self.active.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [usize; 3], hi: [usize; 3]) -> Region3 {
        Region3::new(lo, hi)
    }

    #[test]
    fn disjoint_writes_pass() {
        let a = RegionAuditor::new();
        let t1 = a.claim(0, 0, AccessKind::Write, r([0, 0, 0], [4, 4, 4]));
        let t2 = a.claim(1, 0, AccessKind::Write, r([4, 0, 0], [8, 4, 4]));
        a.release(t1);
        a.release(t2);
        assert_eq!(a.active_claims(), 0);
    }

    #[test]
    fn overlapping_reads_pass() {
        let a = RegionAuditor::new();
        let _ = a.claim(0, 0, AccessKind::Read, r([0, 0, 0], [4, 4, 4]));
        let _ = a.claim(1, 0, AccessKind::Read, r([2, 2, 2], [6, 6, 6]));
    }

    #[test]
    #[should_panic(expected = "region race detected")]
    fn overlapping_write_write_panics() {
        let a = RegionAuditor::new();
        let _ = a.claim(0, 0, AccessKind::Write, r([0, 0, 0], [4, 4, 4]));
        let _ = a.claim(1, 0, AccessKind::Write, r([3, 3, 3], [5, 5, 5]));
    }

    #[test]
    #[should_panic(expected = "region race detected")]
    fn overlapping_read_write_panics() {
        let a = RegionAuditor::new();
        let _ = a.claim(0, 0, AccessKind::Read, r([0, 0, 0], [4, 4, 4]));
        let _ = a.claim(1, 0, AccessKind::Write, r([0, 0, 3], [4, 4, 5]));
    }

    #[test]
    fn different_grids_never_conflict() {
        let a = RegionAuditor::new();
        let _ = a.claim(0, 0, AccessKind::Write, r([0, 0, 0], [4, 4, 4]));
        let _ = a.claim(1, 1, AccessKind::Write, r([0, 0, 0], [4, 4, 4]));
    }

    #[test]
    fn same_owner_may_overlap_itself() {
        // A thread reading the neighborhood of the region it writes is the
        // normal stencil pattern; self-overlap must be allowed.
        let a = RegionAuditor::new();
        let _ = a.claim(0, 0, AccessKind::Write, r([1, 1, 1], [4, 4, 4]));
        let _ = a.claim(0, 0, AccessKind::Read, r([0, 0, 0], [5, 5, 5]));
    }

    #[test]
    fn release_unblocks_region() {
        let a = RegionAuditor::new();
        let t = a.claim(0, 0, AccessKind::Write, r([0, 0, 0], [4, 4, 4]));
        a.release(t);
        // Now the same region can be claimed by another owner.
        let _ = a.claim(1, 0, AccessKind::Write, r([0, 0, 0], [4, 4, 4]));
    }
}
