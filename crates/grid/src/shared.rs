//! Shared mutable grid views for multi-threaded executors.
//!
//! The pipelined temporal blocking executors update *one pair of grids from
//! many threads at once*. Rust's aliasing rules cannot express the
//! scheme's invariant ("concurrently active stage regions are disjoint"),
//! so this module provides a raw-pointer view with the invariant documented
//! and — in debug builds and in the test-suite — *checked* by
//! [`crate::RegionAuditor`].
//!
//! # Safety contract
//!
//! A [`SharedGrid`] may be freely copied across threads. Callers of the
//! `unsafe` accessors must guarantee:
//!
//! 1. the underlying allocation outlives every copy of the view (enforced
//!    structurally by the executors: they only hand views to scoped
//!    threads borrowing the grids);
//! 2. no cell is written by one thread while any other thread reads or
//!    writes it. For the pipeline this follows from the plan geometry: see
//!    `tb-stencil::pipeline::plan` for the proof, and the auditor for the
//!    runtime check.

use crate::{Dims3, Region3};

/// An unsynchronized, shareable view of a `Grid3`'s storage.
#[derive(Clone, Copy, Debug)]
pub struct SharedGrid<T> {
    ptr: *mut T,
    dims: Dims3,
}

// SAFETY: see module-level contract; all dereferences are `unsafe fn`s whose
// callers take on the disjointness obligation.
unsafe impl<T: Send> Send for SharedGrid<T> {}
unsafe impl<T: Send> Sync for SharedGrid<T> {}

impl<T: Copy> SharedGrid<T> {
    /// Create a view over `ptr`, which must point at `dims.len()` elements.
    ///
    /// Not `unsafe` by itself: constructing the view is harmless; only the
    /// accessors dereference.
    pub fn from_raw(ptr: *mut T, dims: Dims3) -> Self {
        Self { ptr, dims }
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Read one cell.
    ///
    /// # Safety
    /// Caller must uphold the module-level contract (no concurrent writer
    /// of this cell) and `(x,y,z)` must be in bounds.
    #[inline(always)]
    pub unsafe fn get(&self, x: usize, y: usize, z: usize) -> T {
        debug_assert!(x < self.dims.nx && y < self.dims.ny && z < self.dims.nz);
        *self.ptr.add(self.dims.idx(x, y, z))
    }

    /// Write one cell.
    ///
    /// # Safety
    /// Caller must uphold the module-level contract (exclusive access to
    /// this cell) and `(x,y,z)` must be in bounds.
    #[inline(always)]
    pub unsafe fn set(&self, x: usize, y: usize, z: usize, v: T) {
        debug_assert!(x < self.dims.nx && y < self.dims.ny && z < self.dims.nz);
        *self.ptr.add(self.dims.idx(x, y, z)) = v;
    }

    /// Raw pointer to cell `(x0, y, z)` — pointer arithmetic only, no
    /// dereference. Used by the stencil-operator layer to describe
    /// candidate source rows *without* materializing slices
    /// (materializing a slice that overlaps a live `&mut` write row
    /// would be UB even if never read).
    ///
    /// # Safety
    /// `(x0, y, z)` must index into (or one past the x-end of) the
    /// allocation this view was constructed over — `ptr::add` requires
    /// the offset to stay in bounds even without a dereference.
    #[inline(always)]
    pub unsafe fn row_ptr(&self, x0: usize, y: usize, z: usize) -> *const T {
        debug_assert!(x0 <= self.dims.nx && y < self.dims.ny && z < self.dims.nz);
        self.ptr.add(self.dims.idx(x0, y, z))
    }

    /// Immutable slice over the x-range `[x0, x1)` of row `(y, z)`.
    ///
    /// # Safety
    /// No concurrent writer may touch these cells; range must be in bounds.
    #[inline(always)]
    pub unsafe fn row(&self, x0: usize, x1: usize, y: usize, z: usize) -> &[T] {
        debug_assert!(x0 <= x1 && x1 <= self.dims.nx && y < self.dims.ny && z < self.dims.nz);
        std::slice::from_raw_parts(self.ptr.add(self.dims.idx(x0, y, z)), x1 - x0)
    }

    /// Mutable slice over the x-range `[x0, x1)` of row `(y, z)`.
    ///
    /// # Safety
    /// Caller must have exclusive access to these cells; range must be in
    /// bounds.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)] // the whole point of this type
    pub unsafe fn row_mut(&self, x0: usize, x1: usize, y: usize, z: usize) -> &mut [T] {
        debug_assert!(x0 <= x1 && x1 <= self.dims.nx && y < self.dims.ny && z < self.dims.nz);
        std::slice::from_raw_parts_mut(self.ptr.add(self.dims.idx(x0, y, z)), x1 - x0)
    }

    /// Copy `region` out into a `Vec` (x fastest). Test/debug helper.
    ///
    /// # Safety
    /// No concurrent writer may touch `region`.
    pub unsafe fn read_region(&self, region: &Region3) -> Vec<T> {
        let mut out = Vec::with_capacity(region.count());
        for z in region.lo[2]..region.hi[2] {
            for y in region.lo[1]..region.hi[1] {
                out.extend_from_slice(self.row(region.lo[0], region.hi[0], y, z));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grid3, Real};

    #[test]
    fn view_reads_and_writes_through() {
        let mut g: Grid3<f64> = Grid3::zeroed(Dims3::cube(4));
        let v = SharedGrid::from_raw(g.as_mut_ptr(), g.dims());
        unsafe {
            v.set(1, 2, 3, 8.0);
            assert_eq!(v.get(1, 2, 3), 8.0);
        }
        assert_eq!(g.get(1, 2, 3), 8.0);
    }

    #[test]
    fn rows_alias_grid_rows() {
        let mut g: Grid3<f64> = Grid3::from_fn(Dims3::new(6, 3, 3), |x, _, _| x as f64);
        let v = SharedGrid::from_raw(g.as_mut_ptr(), g.dims());
        unsafe {
            assert_eq!(v.row(1, 4, 2, 2), &[1.0, 2.0, 3.0]);
            v.row_mut(0, 6, 1, 1).fill(5.0);
        }
        assert_eq!(g.row(1, 1), &[5.0; 6]);
    }

    #[test]
    fn read_region_is_x_fastest() {
        let mut g: Grid3<f64> =
            Grid3::from_fn(Dims3::cube(3), |x, y, z| (x + 10 * y + 100 * z) as f64);
        let v = SharedGrid::from_raw(g.as_mut_ptr(), g.dims());
        let r = Region3::new([0, 0, 0], [2, 2, 1]);
        let vals = unsafe { v.read_region(&r) };
        assert_eq!(vals, vec![0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn concurrent_disjoint_writes_are_race_free() {
        // Two threads write disjoint halves through the same view; the
        // result must be deterministic. (This is the pattern the pipeline
        // executors rely on.)
        let dims = Dims3::new(64, 8, 8);
        let mut g: Grid3<f64> = Grid3::zeroed(dims);
        let v = SharedGrid::from_raw(g.as_mut_ptr(), dims);
        std::thread::scope(|s| {
            for half in 0..2usize {
                s.spawn(move || {
                    let z0 = half * 4;
                    for z in z0..z0 + 4 {
                        for y in 0..8 {
                            // SAFETY: z-ranges of the two threads are disjoint.
                            unsafe { v.row_mut(0, 64, y, z).fill(half as f64 + 1.0) };
                        }
                    }
                });
            }
        });
        assert_eq!(g.get(0, 0, 0), 1.0);
        assert_eq!(g.get(0, 0, 7), 2.0);
        let s = g.sum_region(&Region3::whole(dims));
        assert_eq!(s, (64 * 8 * 4) as f64 * (1.0 + 2.0));
        let _ = f64::ZERO; // keep Real in scope for doc parity
    }
}
