//! Deterministic grid initializers for solvers, tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dims3, Grid3, Real, Region3};

/// Classic boundary-value setup: interior cells at `interior`, the whole
/// outermost layer (the Dirichlet boundary) at `boundary`.
pub fn dirichlet<T: Real>(dims: Dims3, boundary: T, interior: T) -> Grid3<T> {
    let mut g = Grid3::filled(dims, boundary);
    g.fill_region(&Region3::interior_of(dims), interior);
    g
}

/// A "hot plate": one face (z = 0) held at `hot`, everything else `cold`.
/// Mirrors the quickstart example's heat-diffusion scenario.
pub fn hot_plate<T: Real>(dims: Dims3, hot: T, cold: T) -> Grid3<T> {
    let mut g = Grid3::filled(dims, cold);
    g.fill_region(&Region3::new([0, 0, 0], [dims.nx, dims.ny, 1]), hot);
    g
}

/// Reproducible pseudo-random interior in `[0, 1)`, boundary zero. The same
/// seed always produces bitwise identical grids — required because our
/// verification compares grids exactly.
pub fn random<T: Real>(dims: Dims3, seed: u64) -> Grid3<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let interior = Region3::interior_of(dims);
    Grid3::from_fn(dims, |x, y, z| {
        let v: f64 = rng.gen();
        if interior.contains(x, y, z) {
            T::from_f64(v)
        } else {
            T::ZERO
        }
    })
}

/// Linear field `a*x + b*y + c*z + d`, including on the boundary.
///
/// Linear fields are **exact fixed points of the Jacobi stencil**: the
/// 6-neighbor average of a linear function equals its center value. Any
/// number of sweeps by a correct solver must reproduce the input bitwise
/// (up to floating-point associativity, which our fixed-order kernel
/// eliminates) — the sharpest cheap correctness probe we have.
pub fn linear<T: Real>(dims: Dims3, a: f64, b: f64, c: f64, d: f64) -> Grid3<T> {
    Grid3::from_fn(dims, |x, y, z| {
        T::from_f64(a * x as f64 + b * y as f64 + c * z as f64 + d)
    })
}

/// Single unit spike in the center of an otherwise zero grid; useful for
/// watching the stencil's light cone spread in tests.
pub fn center_spike<T: Real>(dims: Dims3) -> Grid3<T> {
    let mut g = Grid3::zeroed(dims);
    g.set(dims.nx / 2, dims.ny / 2, dims.nz / 2, T::ONE);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirichlet_layout() {
        let g: Grid3<f64> = dirichlet(Dims3::cube(4), 1.0, 0.5);
        assert_eq!(g.get(0, 0, 0), 1.0);
        assert_eq!(g.get(3, 2, 1), 1.0);
        assert_eq!(g.get(1, 1, 1), 0.5);
        assert_eq!(g.get(2, 2, 2), 0.5);
    }

    #[test]
    fn hot_plate_layout() {
        let g: Grid3<f64> = hot_plate(Dims3::cube(4), 100.0, 0.0);
        assert_eq!(g.get(2, 2, 0), 100.0);
        assert_eq!(g.get(2, 2, 1), 0.0);
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let a: Grid3<f64> = random(Dims3::cube(6), 42);
        let b: Grid3<f64> = random(Dims3::cube(6), 42);
        assert_eq!(a.as_slice(), b.as_slice());
        let c: Grid3<f64> = random(Dims3::cube(6), 43);
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        assert_eq!(a.get(0, 0, 0), 0.0, "boundary must be zero");
    }

    #[test]
    fn linear_field_values() {
        let g: Grid3<f64> = linear(Dims3::cube(4), 1.0, 2.0, 3.0, 4.0);
        assert_eq!(g.get(0, 0, 0), 4.0);
        assert_eq!(g.get(1, 1, 1), 10.0);
        assert_eq!(g.get(3, 2, 1), 14.0);
    }

    #[test]
    fn linear_field_is_jacobi_fixed_point_pointwise() {
        let g: Grid3<f64> = linear(Dims3::cube(5), 0.5, -1.25, 2.0, 3.0);
        for (x, y, z) in Region3::interior_of(g.dims()).iter() {
            let avg = (g.get(x - 1, y, z)
                + g.get(x + 1, y, z)
                + g.get(x, y - 1, z)
                + g.get(x, y + 1, z)
                + g.get(x, y, z - 1)
                + g.get(x, y, z + 1))
                / 6.0;
            assert_eq!(avg, g.get(x, y, z), "at ({x},{y},{z})");
        }
    }

    #[test]
    fn center_spike_has_unit_mass() {
        let g: Grid3<f64> = center_spike(Dims3::cube(7));
        assert_eq!(g.sum_region(&Region3::whole(g.dims())), 1.0);
        assert_eq!(g.get(3, 3, 3), 1.0);
    }
}
