//! Fixed-width SIMD-style lanes for the stencil row kernels.
//!
//! The paper's roofline analysis (Eq. 2/4) prices bytes per LUP and
//! assumes the in-cache phases created by temporal blocking run at the
//! core's *vector* compute ceiling. Scalar loops over `&[T]` rely on
//! LLVM spotting the vectorization opportunity through bounds checks and
//! slice recombination; this module makes the shape explicit instead:
//! a [`Lane`] is a plain `[T; LANES]` array, and every arithmetic op is
//! an element-wise loop over a fixed, compile-time width. That form
//! autovectorizes deterministically on **stable** Rust (no nightly
//! `std::simd`, MSRV 1.87 holds) on every backend, and degrades to the
//! scalar loop — never to something slower — where the target has no
//! vector units.
//!
//! # Bitwise contract
//!
//! Lane arithmetic is *element-wise only*: `a + b` performs `LANES`
//! independent scalar additions, never a horizontal reduction, so an
//! expression tree over [`Lane`]s evaluates each slot in exactly the
//! same operand order as the equivalent scalar expression. That is what
//! lets `StencilOp::apply_row_simd` (in `tb-stencil`) promise **bitwise
//! identity** with the scalar `apply_row` oracle.
//!
//! # Alignment
//!
//! [`LANES`] is 8, so one `f64` lane is 64 bytes — exactly
//! [`crate::aligned::ALIGN`], the alignment every [`crate::AlignedVec`]
//! (and therefore every `Grid3` allocation) guarantees. Kernels peel a
//! scalar head until the destination pointer reaches a lane boundary
//! ([`head_len`]), run aligned lane stores over the body, and mop up a
//! scalar tail; because the per-element arithmetic is identical in all
//! three phases, where the split falls never changes results.

use std::ops::{Add, Mul, Sub};

use crate::real::Real;

/// Number of elements per [`Lane`]. 8 × `f64` = 64 bytes (one x86 cache
/// line / one AVX-512 register), 8 × `f32` = 32 bytes (one AVX register).
pub const LANES: usize = 8;

/// A fixed-width vector of `LANES` elements with element-wise
/// arithmetic. See the module docs for the bitwise contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lane<T>([T; LANES]);

impl<T: Real> Lane<T> {
    /// All `LANES` slots set to `v`.
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        Self([v; LANES])
    }

    /// Load the first `LANES` elements of `src`.
    ///
    /// # Panics
    /// Panics if `src.len() < LANES`.
    #[inline(always)]
    pub fn load(src: &[T]) -> Self {
        assert!(src.len() >= LANES, "lane load");
        // SAFETY: length checked above.
        Self(unsafe { *(src.as_ptr() as *const [T; LANES]) })
    }

    /// Store into the first `LANES` elements of `dst`.
    ///
    /// # Panics
    /// Panics if `dst.len() < LANES`.
    #[inline(always)]
    pub fn store(self, dst: &mut [T]) {
        let arr: &mut [T; LANES] = (&mut dst[..LANES]).try_into().expect("lane store");
        *arr = self.0;
    }

    /// Slot `i` of the lane (test/debug helper).
    #[inline(always)]
    pub fn get(self, i: usize) -> T {
        self.0[i]
    }
}

macro_rules! elementwise {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<T: Real> $trait for Lane<T> {
            type Output = Self;
            #[inline(always)]
            // One macro body serves +, - and *; the `a = a op b` shape
            // is deliberate (`+=` exists only for Add).
            #[allow(clippy::assign_op_pattern)]
            fn $method(self, rhs: Self) -> Self {
                let mut out = self.0;
                // Fixed-width loop with no early exit: the exact shape
                // LLVM turns into straight vector instructions.
                for i in 0..LANES {
                    out[i] = out[i] $op rhs.0[i];
                }
                Self(out)
            }
        }
    };
}

elementwise!(Add, add, +);
elementwise!(Sub, sub, -);
elementwise!(Mul, mul, *);

/// Number of scalar elements to peel off the front of a row starting at
/// `ptr` before the write pointer reaches a lane-width byte boundary
/// (`LANES · size_of::<T>()`), capped at `n`. Rows handed out by
/// [`crate::AlignedVec`]-backed grids start 64-byte aligned, so for full
/// rows of `f64` this is 0 and the whole body runs aligned.
#[inline(always)]
pub fn head_len<T>(ptr: *const T, n: usize) -> usize {
    let lane_bytes = LANES * std::mem::size_of::<T>();
    let misalign = (ptr as usize) % lane_bytes;
    if misalign == 0 {
        0
    } else {
        ((lane_bytes - misalign) / std::mem::size_of::<T>()).min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::{AlignedVec, ALIGN};

    #[test]
    fn splat_load_store_roundtrip() {
        let src: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let lane = Lane::load(&src[2..]);
        for i in 0..LANES {
            assert_eq!(lane.get(i), (i + 2) as f64);
        }
        let mut dst = vec![0.0f64; LANES + 1];
        lane.store(&mut dst);
        assert_eq!(&dst[..LANES], &src[2..2 + LANES]);
        assert_eq!(dst[LANES], 0.0);
        assert_eq!(Lane::splat(3.5f32).get(7), 3.5);
    }

    #[test]
    fn arithmetic_is_elementwise_and_order_preserving() {
        let a: Vec<f64> = (0..LANES).map(|i| 1.0 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..LANES).map(|i| 0.3 + i as f64 * 0.7).collect();
        let c: Vec<f64> = (0..LANES).map(|i| 2.0 - i as f64 * 0.01).collect();
        let (la, lb, lc) = (Lane::load(&a), Lane::load(&b), Lane::load(&c));
        let got = (la + lb) * lc - la;
        for i in 0..LANES {
            // Bitwise equality with the scalar expression, slot by slot.
            assert_eq!(got.get(i), (a[i] + b[i]) * c[i] - a[i], "slot {i}");
        }
    }

    #[test]
    fn head_len_reaches_alignment() {
        let v: AlignedVec<f64> = AlignedVec::zeroed(64);
        let lane_bytes = LANES * std::mem::size_of::<f64>();
        assert_eq!(lane_bytes, ALIGN); // one f64 lane is one cache line
        assert_eq!(head_len(v.as_ptr(), 64), 0);
        for off in 1..LANES {
            let h = head_len(unsafe { v.as_ptr().add(off) }, 64);
            assert_eq!(h, LANES - off, "offset {off}");
            let p = unsafe { v.as_ptr().add(off + h) };
            assert_eq!(p as usize % lane_bytes, 0);
        }
    }

    #[test]
    fn head_len_caps_at_row_length() {
        let v: AlignedVec<f64> = AlignedVec::zeroed(16);
        let h = head_len(unsafe { v.as_ptr().add(1) }, 3);
        assert_eq!(h, 3);
    }

    #[test]
    fn f32_lane_is_half_a_cache_line() {
        let v: AlignedVec<f32> = AlignedVec::zeroed(64);
        assert_eq!(head_len(v.as_ptr(), 64), 0);
        // Misaligned by one f32: 7 scalars reach the 32-byte boundary.
        assert_eq!(head_len(unsafe { v.as_ptr().add(1) }, 64), 7);
    }
}
