//! Dense 3D grid with x-fastest layout.

use crate::{AlignedVec, Dims3, Real, Region3};

/// A dense 3D array of `T` with unit stride along x.
///
/// The grid makes no assumption about which cells are boundary, ghost, or
/// interior — that interpretation belongs to the solver layer. Helper
/// constructors for the common "interior + 1 boundary layer" Jacobi setup
/// live in [`crate::init`].
#[derive(Clone, Debug)]
pub struct Grid3<T: Copy> {
    dims: Dims3,
    data: AlignedVec<T>,
}

impl<T: Real> Grid3<T> {
    /// Zero-filled grid of the given extents.
    pub fn zeroed(dims: Dims3) -> Self {
        Self {
            dims,
            data: AlignedVec::zeroed(dims.len()),
        }
    }

    /// Grid filled with a constant.
    pub fn filled(dims: Dims3, value: T) -> Self {
        Self {
            dims,
            data: AlignedVec::filled(dims.len(), value),
        }
    }

    /// Grid initialized from a function of the coordinates.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut g = Self::zeroed(dims);
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                let row = g.row_mut(y, z);
                for (x, cell) in row.iter_mut().enumerate() {
                    *cell = f(x, y, z);
                }
            }
        }
        g
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        self.dims.idx(x, y, z)
    }

    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.dims.idx(x, y, z)]
    }

    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.dims.idx(x, y, z);
        self.data[i] = v;
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    pub fn as_ptr(&self) -> *const T {
        self.data.as_ptr()
    }

    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.data.as_mut_ptr()
    }

    /// One x-row: the cells `(0..nx, y, z)`.
    #[inline]
    pub fn row(&self, y: usize, z: usize) -> &[T] {
        let start = self.dims.idx(0, y, z);
        &self.data[start..start + self.dims.nx]
    }

    /// One mutable x-row.
    #[inline]
    pub fn row_mut(&mut self, y: usize, z: usize) -> &mut [T] {
        let start = self.dims.idx(0, y, z);
        let nx = self.dims.nx;
        &mut self.data[start..start + nx]
    }

    /// Fill every cell of `region` with `v`.
    pub fn fill_region(&mut self, region: &Region3, v: T) {
        let r = region.intersect(&Region3::whole(self.dims));
        for z in r.lo[2]..r.hi[2] {
            for y in r.lo[1]..r.hi[1] {
                let row = self.row_mut(y, z);
                row[r.lo[0]..r.hi[0]].fill(v);
            }
        }
    }

    /// Copy the cells of `region` from `src` (same dims required).
    pub fn copy_region_from(&mut self, src: &Grid3<T>, region: &Region3) {
        assert_eq!(self.dims, src.dims, "copy_region_from requires equal dims");
        let r = region.intersect(&Region3::whole(self.dims));
        for z in r.lo[2]..r.hi[2] {
            for y in r.lo[1]..r.hi[1] {
                let s = src.dims.idx(r.lo[0], y, z);
                let e = s + (r.hi[0] - r.lo[0]);
                let d = self.dims.idx(r.lo[0], y, z);
                let (dst_s, dst_e) = (d, d + (r.hi[0] - r.lo[0]));
                self.data[dst_s..dst_e].copy_from_slice(&src.data[s..e]);
            }
        }
    }

    /// Sum over a region (deterministic order: x fastest).
    pub fn sum_region(&self, region: &Region3) -> T {
        let r = region.intersect(&Region3::whole(self.dims));
        let mut acc = T::ZERO;
        for z in r.lo[2]..r.hi[2] {
            for y in r.lo[1]..r.hi[1] {
                let row = self.row(y, z);
                for &v in &row[r.lo[0]..r.hi[0]] {
                    acc += v;
                }
            }
        }
        acc
    }

    /// Memory footprint of the payload in bytes.
    pub fn bytes(&self) -> usize {
        self.dims.bytes(std::mem::size_of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_set_get() {
        let mut g: Grid3<f64> = Grid3::zeroed(Dims3::new(4, 5, 6));
        assert_eq!(g.get(3, 4, 5), 0.0);
        g.set(2, 3, 4, 9.5);
        assert_eq!(g.get(2, 3, 4), 9.5);
        assert_eq!(g.as_slice()[g.idx(2, 3, 4)], 9.5);
    }

    #[test]
    fn from_fn_matches_coordinates() {
        let g: Grid3<f64> =
            Grid3::from_fn(Dims3::new(3, 4, 5), |x, y, z| (x + 10 * y + 100 * z) as f64);
        assert_eq!(g.get(2, 3, 4), 432.0);
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn rows_are_contiguous() {
        let g: Grid3<f64> = Grid3::from_fn(Dims3::new(5, 2, 2), |x, _, _| x as f64);
        assert_eq!(g.row(1, 1), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fill_region_only_touches_region() {
        let mut g: Grid3<f64> = Grid3::zeroed(Dims3::cube(5));
        let r = Region3::new([1, 1, 1], [4, 4, 4]);
        g.fill_region(&r, 1.0);
        let total = g.sum_region(&Region3::whole(g.dims()));
        assert_eq!(total, 27.0);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.get(1, 1, 1), 1.0);
        assert_eq!(g.get(4, 4, 4), 0.0);
    }

    #[test]
    fn copy_region_from_copies_exactly() {
        let src: Grid3<f64> = Grid3::from_fn(Dims3::cube(4), |x, y, z| (x + y + z) as f64);
        let mut dst: Grid3<f64> = Grid3::zeroed(Dims3::cube(4));
        let r = Region3::new([1, 1, 1], [3, 3, 3]);
        dst.copy_region_from(&src, &r);
        for (x, y, z) in Region3::whole(src.dims()).iter() {
            if r.contains(x, y, z) {
                assert_eq!(dst.get(x, y, z), src.get(x, y, z));
            } else {
                assert_eq!(dst.get(x, y, z), 0.0);
            }
        }
    }

    #[test]
    fn fill_region_clamps_to_grid() {
        let mut g: Grid3<f32> = Grid3::zeroed(Dims3::cube(3));
        g.fill_region(&Region3::new([0, 0, 0], [10, 10, 10]), 2.0);
        assert_eq!(g.sum_region(&Region3::whole(g.dims())), 27.0 * 2.0);
    }
}
