//! Floating-point element abstraction.
//!
//! The paper works in double precision; `f32` support is provided because
//! lattice-Boltzmann-style descendants of the code (the paper's outlook)
//! commonly use single precision. Only the tiny set of operations needed by
//! the stencil operators and the verification helpers is abstracted;
//! operator weights (1/6 for Jacobi, …) live with the operators in
//! `tb-stencil::op`, not here.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Element type of grids and stencil kernels.
pub trait Real:
    Copy
    + Send
    + Sync
    + Default
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + 'static
{
    const ZERO: Self;
    const ONE: Self;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn abs(self) -> Self;
    /// Size of one element in bytes (used for bandwidth accounting).
    fn bytes() -> usize {
        std::mem::size_of::<Self>()
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_exact() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        // Operator weights are derived, not stored: division of exact
        // constants must be bitwise reproducible across call sites.
        assert_eq!(f64::ONE / f64::from_f64(6.0), 1.0 / 6.0);
        assert_eq!(f32::ONE / f32::from_f64(6.0), 1.0f32 / 6.0f32);
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(f64::from_f64(3.25).to_f64(), 3.25);
        assert_eq!(f32::from_f64(3.25).to_f64(), 3.25);
        assert_eq!((-2.0f64).abs(), 2.0);
        assert_eq!((-2.0f32).abs(), 2.0);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(<f64 as Real>::bytes(), 8);
        assert_eq!(<f32 as Real>::bytes(), 4);
    }
}
