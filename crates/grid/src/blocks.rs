//! Spatial block decomposition of a region.
//!
//! The pipelined temporal blocking scheme (paper §1.3) streams *blocks* of
//! the domain through the team pipeline. [`BlockPartition`] tiles a region
//! with blocks of a requested size; the last block in each dimension absorbs
//! the remainder. Blocks are enumerated **x-fastest** (linear index
//! `bx + kx*(by + ky*bz)`), which is the traversal order assumed by the
//! race-freedom proof in `tb-stencil::pipeline::plan`.

use crate::Region3;

/// 3D block coordinates within a partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BlockIdx {
    pub bx: usize,
    pub by: usize,
    pub bz: usize,
}

/// A tiling of a region into blocks of approximately `block` size.
#[derive(Clone, Copy, Debug)]
pub struct BlockPartition {
    domain: Region3,
    block: [usize; 3],
    counts: [usize; 3],
}

impl BlockPartition {
    /// Tile `domain` with blocks of size `block` (clamped to the domain
    /// extent). The final block per dimension absorbs the remainder, so it
    /// can be up to `2*block-1` long.
    ///
    /// # Panics
    /// Panics if `domain` is empty or any requested block edge is zero.
    pub fn new(domain: Region3, block: [usize; 3]) -> Self {
        assert!(!domain.is_empty(), "cannot partition an empty domain");
        assert!(block.iter().all(|&b| b > 0), "block edges must be positive");
        let mut counts = [0usize; 3];
        let mut clamped = block;
        for d in 0..3 {
            let ext = domain.extent(d);
            clamped[d] = block[d].min(ext);
            counts[d] = (ext / clamped[d]).max(1);
        }
        Self {
            domain,
            block: clamped,
            counts,
        }
    }

    pub fn domain(&self) -> Region3 {
        self.domain
    }

    /// Block edge lengths actually in use (after clamping).
    pub fn block_size(&self) -> [usize; 3] {
        self.block
    }

    /// Number of blocks along each dimension.
    pub fn counts(&self) -> [usize; 3] {
        self.counts
    }

    /// Total number of blocks.
    pub fn len(&self) -> usize {
        self.counts.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Convert a linear block index (x fastest) to 3D block coordinates.
    #[inline]
    pub fn block_idx(&self, linear: usize) -> BlockIdx {
        debug_assert!(linear < self.len());
        let bx = linear % self.counts[0];
        let by = (linear / self.counts[0]) % self.counts[1];
        let bz = linear / (self.counts[0] * self.counts[1]);
        BlockIdx { bx, by, bz }
    }

    /// Inverse of [`Self::block_idx`].
    #[inline]
    pub fn linear(&self, b: BlockIdx) -> usize {
        b.bx + self.counts[0] * (b.by + self.counts[1] * b.bz)
    }

    /// The unshifted region of block `b`: `[lo + i*B, lo + (i+1)*B)` per
    /// dimension, with the last block extended to the domain edge.
    pub fn region(&self, b: BlockIdx) -> Region3 {
        let idx = [b.bx, b.by, b.bz];
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for d in 0..3 {
            lo[d] = self.domain.lo[d] + idx[d] * self.block[d];
            hi[d] = if idx[d] + 1 == self.counts[d] {
                self.domain.hi[d]
            } else {
                self.domain.lo[d] + (idx[d] + 1) * self.block[d]
            };
        }
        Region3 { lo, hi }
    }

    /// Iterate over all blocks in linear (x-fastest) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, BlockIdx, Region3)> + '_ {
        (0..self.len()).map(move |l| {
            let b = self.block_idx(l);
            (l, b, self.region(b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_of(dom: Region3, blk: [usize; 3]) -> [usize; 3] {
        BlockPartition::new(dom, blk).counts()
    }

    #[test]
    fn exact_tiling() {
        let dom = Region3::new([1, 1, 1], [13, 9, 5]); // 12 x 8 x 4
        let p = BlockPartition::new(dom, [4, 4, 2]);
        assert_eq!(p.counts(), [3, 2, 2]);
        assert_eq!(p.len(), 12);
        // Blocks must exactly cover the domain with no overlap.
        let total: usize = p.iter().map(|(_, _, r)| r.count()).sum();
        assert_eq!(total, dom.count());
        for (i, _, ri) in p.iter() {
            for (j, _, rj) in p.iter() {
                if i != j {
                    assert!(!ri.intersects(&rj), "blocks {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn remainder_goes_to_last_block() {
        let dom = Region3::new([0, 0, 0], [10, 10, 10]);
        let p = BlockPartition::new(dom, [4, 4, 4]);
        assert_eq!(p.counts(), [2, 2, 2]);
        let last = p.region(BlockIdx {
            bx: 1,
            by: 1,
            bz: 1,
        });
        assert_eq!(last, Region3::new([4, 4, 4], [10, 10, 10]));
        let total: usize = p.iter().map(|(_, _, r)| r.count()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn oversized_block_clamps() {
        let dom = Region3::new([1, 1, 1], [5, 5, 5]);
        let p = BlockPartition::new(dom, [100, 100, 100]);
        assert_eq!(p.counts(), [1, 1, 1]);
        assert_eq!(
            p.region(BlockIdx {
                bx: 0,
                by: 0,
                bz: 0
            }),
            dom
        );
    }

    #[test]
    fn linear_roundtrip_is_x_fastest() {
        let dom = Region3::new([0, 0, 0], [12, 12, 12]);
        let p = BlockPartition::new(dom, [4, 6, 3]);
        assert_eq!(p.counts(), [3, 2, 4]);
        for l in 0..p.len() {
            assert_eq!(p.linear(p.block_idx(l)), l);
        }
        assert_eq!(
            p.block_idx(1),
            BlockIdx {
                bx: 1,
                by: 0,
                bz: 0
            }
        );
        assert_eq!(
            p.block_idx(3),
            BlockIdx {
                bx: 0,
                by: 1,
                bz: 0
            }
        );
        assert_eq!(
            p.block_idx(6),
            BlockIdx {
                bx: 0,
                by: 0,
                bz: 1
            }
        );
    }

    #[test]
    fn paper_geometry_600_cube() {
        // 600^3 grid, interior 598^3, blocks ~120x20x20 as in §1.5.
        let dom = Region3::new([1, 1, 1], [599, 599, 599]);
        let p = BlockPartition::new(dom, [120, 20, 20]);
        assert_eq!(p.counts(), [4, 29, 29]); // 598/120 = 4, 598/20 = 29
        let total: usize = p.iter().map(|(_, _, r)| r.count()).sum();
        assert_eq!(total, 598 * 598 * 598);
    }

    #[test]
    fn counts_never_zero() {
        assert_eq!(
            counts_of(Region3::new([0, 0, 0], [1, 1, 1]), [5, 5, 5]),
            [1, 1, 1]
        );
        assert_eq!(
            counts_of(Region3::new([0, 0, 0], [7, 3, 2]), [2, 2, 2]),
            [3, 1, 1]
        );
    }
}
