//! # tb-grid — 3D grid substrate for temporal-blocking stencil codes
//!
//! This crate provides the data-structure foundation used by every other
//! crate in the workspace:
//!
//! * [`AlignedVec`] — cache-line/SIMD aligned heap storage,
//! * [`Grid3`] — a dense 3D array with x-fastest (unit-stride) layout,
//! * [`GridPair`] — the classic A/B double-buffer used by Jacobi sweeps,
//! * [`CompressedGrid`] — the single-array "compressed grid" optimization
//!   of the paper (§1.3), where every sweep writes its results shifted by
//!   ±(1,1,1) so only one grid allocation is needed,
//! * [`Region3`] / [`BlockPartition`] — the region algebra and spatial block
//!   decomposition on which the pipelined temporal blocking plan is built,
//! * [`SharedGrid`] — an unsafe shared-mutation view with documented
//!   invariants, used by the multi-threaded executors,
//! * [`RegionAuditor`] — a debug-mode race detector that checks that
//!   concurrently claimed read/write regions are disjoint,
//! * deterministic initializers and norms for verification.
//!
//! The Jacobi solvers in `tb-stencil` are deterministic: the 6-point average
//! is always evaluated in the same operand order, so any correct schedule
//! must produce *bitwise identical* grids. The comparison helpers in
//! [`norm`] exploit that.

pub mod aligned;
pub mod audit;
pub mod blocks;
pub mod compressed;
pub mod dims;
pub mod grid3;
pub mod init;
pub mod lanes;
pub mod norm;
pub mod pair;
pub mod real;
pub mod region;
pub mod shared;

pub use aligned::AlignedVec;
pub use audit::{AccessKind, RegionAuditor};
pub use blocks::{BlockIdx, BlockPartition};
pub use compressed::CompressedGrid;
pub use dims::Dims3;
pub use grid3::Grid3;
pub use lanes::{Lane, LANES};
pub use pair::GridPair;
pub use real::Real;
pub use region::Region3;
pub use shared::SharedGrid;
