//! Axis-aligned boxes ("regions") of grid cells.
//!
//! A [`Region3`] is half-open: it covers cells with `lo[d] <= c[d] < hi[d]`.
//! Regions are the currency of the pipelined temporal blocking plan: every
//! stage of the pipeline updates one region, and the race-freedom argument
//! is phrased entirely in terms of region disjointness.

/// Half-open axis-aligned box of cells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Region3 {
    pub lo: [usize; 3],
    pub hi: [usize; 3],
}

impl Region3 {
    pub const fn new(lo: [usize; 3], hi: [usize; 3]) -> Self {
        Self { lo, hi }
    }

    /// The empty region.
    pub const fn empty() -> Self {
        Self {
            lo: [0; 3],
            hi: [0; 3],
        }
    }

    /// Region covering `[1, n-1)` in each dimension of `dims` — the interior
    /// (non-boundary) cells of a Jacobi grid.
    pub fn interior_of(dims: crate::Dims3) -> Self {
        let a = dims.as_array();
        Self {
            lo: [1, 1, 1],
            hi: [
                a[0].saturating_sub(1),
                a[1].saturating_sub(1),
                a[2].saturating_sub(1),
            ],
        }
    }

    /// Region covering the whole of `dims`.
    pub fn whole(dims: crate::Dims3) -> Self {
        Self {
            lo: [0; 3],
            hi: dims.as_array(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.hi[d] <= self.lo[d])
    }

    /// Number of cells covered.
    pub fn count(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (0..3).map(|d| self.hi[d] - self.lo[d]).product()
        }
    }

    /// Extent along dimension `d`; zero if empty in that dimension.
    pub fn extent(&self, d: usize) -> usize {
        self.hi[d].saturating_sub(self.lo[d])
    }

    #[inline]
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        let c = [x, y, z];
        (0..3).all(|d| c[d] >= self.lo[d] && c[d] < self.hi[d])
    }

    /// True if `other` is fully inside `self`.
    pub fn contains_region(&self, other: &Region3) -> bool {
        other.is_empty() || (0..3).all(|d| other.lo[d] >= self.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Intersection (may be empty).
    pub fn intersect(&self, other: &Region3) -> Region3 {
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for d in 0..3 {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if hi[d] < lo[d] {
                return Region3::empty();
            }
        }
        Region3 { lo, hi }
    }

    pub fn intersects(&self, other: &Region3) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && (0..3).all(|d| self.lo[d] < other.hi[d] && other.lo[d] < self.hi[d])
    }

    /// Grow by `g` cells on every side, clamped so coordinates stay
    /// non-negative.
    pub fn expand(&self, g: usize) -> Region3 {
        if self.is_empty() {
            return *self;
        }
        let mut r = *self;
        for d in 0..3 {
            r.lo[d] = r.lo[d].saturating_sub(g);
            r.hi[d] += g;
        }
        r
    }

    /// Shrink by `g` cells on every side (may become empty).
    pub fn shrink(&self, g: usize) -> Region3 {
        let mut r = *self;
        for d in 0..3 {
            r.lo[d] += g;
            r.hi[d] = r.hi[d].saturating_sub(g);
        }
        r
    }

    /// Translate by a signed offset, clamping below at zero. Cells that
    /// would move to negative coordinates are dropped.
    pub fn shifted(&self, offset: [i64; 3]) -> Region3 {
        if self.is_empty() {
            return Region3::empty();
        }
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for d in 0..3 {
            let l = self.lo[d] as i64 + offset[d];
            let h = self.hi[d] as i64 + offset[d];
            if h <= 0 {
                return Region3::empty();
            }
            lo[d] = l.max(0) as usize;
            hi[d] = h as usize;
        }
        Region3 { lo, hi }
    }

    /// Iterate over all `(x, y, z)` cells, x fastest.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let r = *self;
        (r.lo[2]..r.hi[2]).flat_map(move |z| {
            (r.lo[1]..r.hi[1]).flat_map(move |y| (r.lo[0]..r.hi[0]).map(move |x| (x, y, z)))
        })
    }

    /// The face of thickness `w` on the low side of dimension `d`.
    pub fn low_face(&self, d: usize, w: usize) -> Region3 {
        let mut r = *self;
        r.hi[d] = (r.lo[d] + w).min(r.hi[d]);
        r
    }

    /// The face of thickness `w` on the high side of dimension `d`.
    pub fn high_face(&self, d: usize, w: usize) -> Region3 {
        let mut r = *self;
        r.lo[d] = r.hi[d].saturating_sub(w).max(r.lo[d]);
        r
    }
}

impl std::fmt::Display for Region3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{},{})x[{},{})x[{},{})",
            self.lo[0], self.hi[0], self.lo[1], self.hi[1], self.lo[2], self.hi[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dims3;

    #[test]
    fn count_and_empty() {
        let r = Region3::new([1, 1, 1], [4, 3, 2]);
        assert_eq!(r.count(), (3 * 2));
        assert!(!r.is_empty());
        assert!(Region3::empty().is_empty());
        assert_eq!(Region3::empty().count(), 0);
        assert!(Region3::new([2, 0, 0], [2, 5, 5]).is_empty());
    }

    #[test]
    fn interior_of_dims() {
        let r = Region3::interior_of(Dims3::cube(6));
        assert_eq!(r, Region3::new([1, 1, 1], [5, 5, 5]));
        assert_eq!(r.count(), 64);
    }

    #[test]
    fn intersection() {
        let a = Region3::new([0, 0, 0], [4, 4, 4]);
        let b = Region3::new([2, 2, 2], [6, 6, 6]);
        let i = a.intersect(&b);
        assert_eq!(i, Region3::new([2, 2, 2], [4, 4, 4]));
        assert!(a.intersects(&b));
        let c = Region3::new([4, 0, 0], [5, 4, 4]);
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn expand_shrink_roundtrip() {
        let r = Region3::new([2, 3, 4], [6, 7, 8]);
        assert_eq!(r.expand(1).shrink(1), r);
        assert_eq!(r.expand(2).lo, [0, 1, 2]);
        assert_eq!(Region3::new([0, 0, 0], [2, 2, 2]).expand(1).lo, [0, 0, 0]);
        assert!(r.shrink(2).is_empty());
    }

    #[test]
    fn shifted_clamps_at_zero() {
        let r = Region3::new([1, 1, 1], [4, 4, 4]);
        assert_eq!(r.shifted([-1, 0, 2]), Region3::new([0, 1, 3], [3, 4, 6]));
        assert_eq!(r.shifted([-2, -2, -2]).lo, [0, 0, 0]);
        assert!(r.shifted([-4, 0, 0]).is_empty());
    }

    #[test]
    fn iter_visits_all_cells_x_fastest() {
        let r = Region3::new([1, 2, 3], [3, 4, 4]);
        let cells: Vec<_> = r.iter().collect();
        assert_eq!(cells.len(), r.count());
        assert_eq!(cells[0], (1, 2, 3));
        assert_eq!(cells[1], (2, 2, 3));
        assert_eq!(cells[2], (1, 3, 3));
        assert!(cells.iter().all(|&(x, y, z)| r.contains(x, y, z)));
    }

    #[test]
    fn faces() {
        let r = Region3::new([0, 0, 0], [10, 10, 10]);
        let lf = r.low_face(0, 2);
        assert_eq!(lf, Region3::new([0, 0, 0], [2, 10, 10]));
        let hf = r.high_face(2, 3);
        assert_eq!(hf, Region3::new([0, 0, 7], [10, 10, 10]));
        // Thickness larger than the region degenerates to the region itself.
        assert_eq!(r.low_face(1, 99), r);
    }

    #[test]
    fn contains_region_edge_cases() {
        let a = Region3::new([0, 0, 0], [4, 4, 4]);
        assert!(a.contains_region(&Region3::new([1, 1, 1], [4, 4, 4])));
        assert!(!a.contains_region(&Region3::new([1, 1, 1], [5, 4, 4])));
        assert!(a.contains_region(&Region3::empty()));
    }
}
