//! Property-based tests for the grid substrate.

use proptest::prelude::*;
use tb_grid::{init, AlignedVec, BlockPartition, CompressedGrid, Dims3, Grid3, Region3};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// idx/coords are inverse bijections over the whole index space.
    #[test]
    fn index_bijection(ext in prop::array::uniform3(1usize..12)) {
        let d = Dims3::new(ext[0], ext[1], ext[2]);
        let mut seen = vec![false; d.len()];
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    let i = d.idx(x, y, z);
                    prop_assert!(!seen[i], "index collision at ({x},{y},{z})");
                    seen[i] = true;
                    prop_assert_eq!(d.coords(i), (x, y, z));
                }
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// Aligned allocations are always 64-byte aligned and zeroed.
    #[test]
    fn aligned_vec_properties(len in 1usize..10_000) {
        let v: AlignedVec<f64> = AlignedVec::zeroed(len);
        prop_assert_eq!(v.as_ptr() as usize % 64, 0);
        prop_assert_eq!(v.len(), len);
        prop_assert!(v.iter().all(|&x| x == 0.0));
    }

    /// region.count() equals the number of iterated cells, and iteration
    /// respects containment.
    #[test]
    fn region_iteration_consistency(
        lo in prop::array::uniform3(0usize..8),
        ext in prop::array::uniform3(0usize..6),
    ) {
        let r = Region3::new(lo, [lo[0]+ext[0], lo[1]+ext[1], lo[2]+ext[2]]);
        let cells: Vec<_> = r.iter().collect();
        prop_assert_eq!(cells.len(), r.count());
        for (x, y, z) in cells {
            prop_assert!(r.contains(x, y, z));
        }
    }

    /// Any partition's blocks, expanded by one, stay within the domain
    /// expanded by one (the read-halo property executors rely on).
    #[test]
    fn block_expansion_stays_in_expanded_domain(
        ext in prop::array::uniform3(4usize..20),
        blk in prop::array::uniform3(2usize..8),
    ) {
        let dom = Region3::new([1, 1, 1], [1+ext[0], 1+ext[1], 1+ext[2]]);
        let p = BlockPartition::new(dom, blk);
        let fence = dom.expand(1);
        for (_, _, r) in p.iter() {
            prop_assert!(fence.contains_region(&r.expand(1)));
        }
    }

    /// Compressed-grid round trip at any legal displacement preserves the
    /// logical contents written at that displacement.
    #[test]
    fn compressed_roundtrip(n in 3usize..10, margin in 1usize..5, disp in 0i64..5) {
        prop_assume!(disp <= margin as i64);
        let dims = Dims3::cube(n);
        let mut cg: CompressedGrid<f64> = CompressedGrid::zeroed(dims, margin);
        cg.set_displacement(-disp);
        for (i, (x, y, z)) in Region3::whole(dims).iter().enumerate() {
            cg.set(x, y, z, i as f64);
        }
        let g = cg.to_grid();
        for (i, (x, y, z)) in Region3::whole(dims).iter().enumerate() {
            prop_assert_eq!(g.get(x, y, z), i as f64);
        }
    }

    /// Deterministic initializers: same seed same bits, different seeds
    /// differ somewhere (overwhelmingly likely).
    #[test]
    fn random_init_determinism(n in 4usize..12, seed in 0u64..1_000_000) {
        let a: Grid3<f64> = init::random(Dims3::cube(n), seed);
        let b: Grid3<f64> = init::random(Dims3::cube(n), seed);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        let c: Grid3<f64> = init::random(Dims3::cube(n), seed ^ 0xdeadbeef);
        prop_assert!(a.as_slice() != c.as_slice());
    }
}
