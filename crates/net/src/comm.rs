//! The communicator: blocking point-to-point with tag matching, plus the
//! handful of collectives the solvers use.

use std::collections::VecDeque;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use crate::simnet::SimNet;

/// A message in flight.
#[derive(Clone, Debug)]
pub(crate) struct Msg {
    pub tag: u64,
    pub data: Bytes,
    /// Virtual arrival time at the receiver (0 when simulation is off).
    pub arrival: f64,
}

/// Reduction operators for [`Comm::allreduce_f64`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Per-rank communication endpoint. Created by [`crate::Universe`]; one
/// per rank thread, used mutably (the virtual clock and the tag-matching
/// buffers are rank-local state).
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    /// `to[d]` sends to rank `d`.
    pub(crate) to: Vec<Sender<Msg>>,
    /// `from[s]` receives from rank `s`.
    pub(crate) from: Vec<Receiver<Msg>>,
    /// Out-of-order messages per source awaiting a matching tag.
    pub(crate) pending: Vec<VecDeque<Msg>>,
    /// Virtual clock in seconds (stays 0 when `net` is `None`).
    pub(crate) clock: f64,
    pub(crate) net: Option<SimNet>,
}

impl Comm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time (seconds). Only meaningful in simulation
    /// mode; real runs use wall clocks instead.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Advance the virtual clock by `dt` seconds of (modeled) computation.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.clock += dt;
    }

    /// Blocking send (buffered — returns once the message is queued; the
    /// virtual clock pays the pack cost).
    pub fn send(&mut self, dst: usize, tag: u64, data: Bytes) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(dst, self.rank, "self-send unsupported (use local state)");
        let arrival = if let Some(net) = &self.net {
            self.clock += net.pack_time(data.len());
            self.clock + net.wire_time(data.len())
        } else {
            0.0
        };
        self.to[dst]
            .send(Msg { tag, data, arrival })
            .expect("peer rank hung up");
    }

    /// Blocking receive of the next message from `src` carrying `tag`.
    /// Messages with other tags are buffered for later receives.
    pub fn recv(&mut self, src: usize, tag: u64) -> Bytes {
        assert!(src < self.size);
        assert_ne!(src, self.rank);
        // Check the reorder buffer first.
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).unwrap();
            return self.finish_recv(msg);
        }
        loop {
            let msg = self.from[src].recv().expect("peer rank hung up");
            if msg.tag == tag {
                return self.finish_recv(msg);
            }
            self.pending[src].push_back(msg);
        }
    }

    fn finish_recv(&mut self, msg: Msg) -> Bytes {
        if let Some(net) = &self.net {
            self.clock = self.clock.max(msg.arrival) + net.unpack_time(msg.data.len());
        }
        msg.data
    }

    /// Paired exchange with one neighbor (the halo pattern). Send first,
    /// then receive — safe because sends are buffered.
    pub fn sendrecv(&mut self, peer: usize, tag: u64, data: Bytes) -> Bytes {
        self.send(peer, tag, data);
        self.recv(peer, tag)
    }

    /// Synchronize all ranks; in simulation mode every clock is set to
    /// the maximum *entry* time (a barrier is as slow as its last
    /// arrival; the barrier's own messages are not charged, mirroring
    /// the paper's model which has no collectives in the inner loop).
    pub fn barrier(&mut self) {
        let entry = self.clock;
        let t = self.allreduce_f64(entry, ReduceOp::Max);
        if self.net.is_some() {
            self.clock = t;
        }
    }

    /// Allreduce one f64 (gather to rank 0, reduce, broadcast).
    pub fn allreduce_f64(&mut self, value: f64, op: ReduceOp) -> f64 {
        const TAG: u64 = u64::MAX - 1;
        if self.size == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let b = self.recv(src, TAG);
                acc = op.apply(acc, f64_from_bytes(&b));
            }
            for dst in 1..self.size {
                self.send(dst, TAG, f64_to_bytes(acc));
            }
            acc
        } else {
            self.send(0, TAG, f64_to_bytes(value));
            f64_from_bytes(&self.recv(0, TAG))
        }
    }

    /// Gather one f64 per rank to rank 0 (others get an empty vec).
    pub fn gather_f64(&mut self, value: f64) -> Vec<f64> {
        const TAG: u64 = u64::MAX - 2;
        if self.rank == 0 {
            let mut out = vec![value];
            for src in 1..self.size {
                out.push(f64_from_bytes(&self.recv(src, TAG)));
            }
            out
        } else {
            self.send(0, TAG, f64_to_bytes(value));
            Vec::new()
        }
    }
}

pub(crate) fn f64_to_bytes(v: f64) -> Bytes {
    Bytes::copy_from_slice(&v.to_ne_bytes())
}

pub(crate) fn f64_from_bytes(b: &Bytes) -> f64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[..8]);
    f64::from_ne_bytes(buf)
}

/// Pack an `f64` slice into `Bytes` (native endianness; the mesh never
/// leaves the process).
pub fn pack_f64s(v: &[f64]) -> Bytes {
    // SAFETY: f64 and u8 have no invalid bit patterns; alignment of u8 is
    // 1; the byte length is exact.
    let bytes: &[u8] = unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 8) };
    Bytes::copy_from_slice(bytes)
}

/// Unpack [`pack_f64s`] output into a caller-provided buffer.
pub fn unpack_f64s(b: &Bytes, out: &mut [f64]) {
    assert_eq!(b.len(), out.len() * 8, "payload length mismatch");
    for (i, chunk) in b.chunks_exact(8).enumerate() {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        out[i] = f64::from_ne_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn ring_pass_delivers_in_order() {
        let results = Universe::run(3, None, |comm| {
            let next = (comm.rank() + 1) % 3;
            let prev = (comm.rank() + 3 - 1) % 3;
            for round in 0..5u64 {
                comm.send(next, round, f64_to_bytes(comm.rank() as f64 + round as f64));
                let got = f64_from_bytes(&comm.recv(prev, round));
                assert_eq!(got, prev as f64 + round as f64);
            }
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2]);
    }

    #[test]
    fn tag_matching_reorders() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, f64_to_bytes(7.0));
                comm.send(1, 8, f64_to_bytes(8.0));
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(f64_from_bytes(&comm.recv(0, 8)), 8.0);
                assert_eq!(f64_from_bytes(&comm.recv(0, 7)), 7.0);
            }
            0
        });
    }

    #[test]
    fn allreduce_ops() {
        let r = Universe::run(4, None, |comm| {
            let v = comm.rank() as f64 + 1.0; // 1,2,3,4
            (
                comm.allreduce_f64(v, ReduceOp::Sum),
                comm.allreduce_f64(v, ReduceOp::Min),
                comm.allreduce_f64(v, ReduceOp::Max),
            )
        });
        for (s, mn, mx) in r {
            assert_eq!(s, 10.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 4.0);
        }
    }

    #[test]
    fn gather_collects_on_root() {
        let r = Universe::run(3, None, |comm| comm.gather_f64(comm.rank() as f64 * 2.0));
        assert_eq!(r[0], vec![0.0, 2.0, 4.0]);
        assert!(r[1].is_empty() && r[2].is_empty());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let v: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let b = pack_f64s(&v);
        assert_eq!(b.len(), 17 * 8);
        let mut out = vec![0.0; 17];
        unpack_f64s(&b, &mut out);
        assert_eq!(v, out);
    }

    #[test]
    fn virtual_clock_advances_through_messages() {
        let net = SimNet {
            latency: 1e-3,
            bandwidth: 1e6,
            copy_bandwidth: f64::INFINITY,
        };
        let times = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                comm.advance(5e-3); // compute 5 ms
                comm.send(1, 0, pack_f64s(&vec![0.0; 125])); // 1000 B -> 1 ms wire
            } else {
                let _ = comm.recv(0, 0);
            }
            comm.time()
        });
        // Receiver: max(0, 5ms + 1ms latency + 1ms wire) = 7 ms.
        assert!((times[1] - 7e-3).abs() < 1e-9, "rank1 time {}", times[1]);
        // Sender paid no wire time (buffered send) and no pack cost.
        assert!((times[0] - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let net = SimNet::ideal();
        let times = Universe::run(3, Some(net), |comm| {
            comm.advance(comm.rank() as f64 * 1e-3);
            comm.barrier();
            comm.time()
        });
        for t in times {
            assert!((t - 2e-3).abs() < 1e-12, "clock {t}");
        }
    }

    #[test]
    fn sendrecv_pairs() {
        Universe::run(2, None, |comm| {
            let peer = 1 - comm.rank();
            let got = comm.sendrecv(peer, 3, f64_to_bytes(comm.rank() as f64));
            assert_eq!(f64_from_bytes(&got), peer as f64);
            0
        });
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn same_tag_messages_arrive_in_fifo_order() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u64 {
                    comm.send(1, 9, f64_to_bytes(i as f64));
                }
            } else {
                for i in 0..50u64 {
                    assert_eq!(f64_from_bytes(&comm.recv(0, 9)), i as f64);
                }
            }
            0
        });
    }

    #[test]
    fn large_payload_roundtrip() {
        let n = 1 << 18; // 2 MiB of f64
        Universe::run(2, None, move |comm| {
            if comm.rank() == 0 {
                let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
                comm.send(1, 0, pack_f64s(&v));
            } else {
                let b = comm.recv(0, 0);
                let mut out = vec![0.0f64; n];
                unpack_f64s(&b, &mut out);
                assert_eq!(out[0], 0.0);
                assert_eq!(out[n - 1], (n - 1) as f64);
            }
            0
        });
    }

    #[test]
    fn interleaved_tags_across_many_rounds() {
        // Both tags flow continuously; receiving them out of order per
        // round must never mix payloads up.
        Universe::run(2, None, |comm| {
            let peer = 1 - comm.rank();
            for round in 0..20u64 {
                comm.send(peer, 1, f64_to_bytes(round as f64));
                comm.send(peer, 2, f64_to_bytes(-(round as f64)));
                assert_eq!(f64_from_bytes(&comm.recv(peer, 2)), -(round as f64));
                assert_eq!(f64_from_bytes(&comm.recv(peer, 1)), round as f64);
            }
            0
        });
    }

    #[test]
    fn pack_cost_charged_to_sender_clock() {
        let net = crate::SimNet {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            copy_bandwidth: 1e6,
        };
        let times = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, pack_f64s(&vec![0.0; 125])); // 1000 B -> 1 ms pack
            } else {
                let _ = comm.recv(0, 0);
            }
            comm.time()
        });
        assert!((times[0] - 1e-3).abs() < 1e-9, "sender {}", times[0]);
        // Receiver: arrival at 1 ms (pack) + unpack 1 ms = 2 ms.
        assert!((times[1] - 2e-3).abs() < 1e-9, "receiver {}", times[1]);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn unpack_length_mismatch_panics() {
        let b = pack_f64s(&[1.0, 2.0]);
        let mut out = vec![0.0; 3];
        unpack_f64s(&b, &mut out);
    }
}
