//! The communicator: blocking and nonblocking point-to-point with tag
//! matching, plus the handful of collectives the solvers use.
//!
//! # Nonblocking operations and the comm-core model
//!
//! [`Comm::isend`]/[`Comm::irecv`] return [`Request`] handles completed
//! by [`Comm::wait`]/[`Comm::waitall`] or polled with [`Comm::test`].
//! Data always flows through the same channels as the blocking calls, so
//! tag matching, FIFO order per (source, tag) and protocol errors behave
//! identically.
//!
//! Virtual-time accounting differs deliberately: blocking calls charge
//! pack/unpack to the calling rank's clock (the paper's baseline, which
//! has "no explicit or implicit overlapping"), while nonblocking calls
//! charge buffer copies to a separate **comm-core timeline**
//! (`comm_busy`) — the model of the paper's proposed dedicated
//! communication core. A `wait` resumes the rank clock no earlier than
//! the comm core finished; [`Comm::overlap_join`] then credits back the
//! communication that computation hid, so [`Comm::comm_seconds`] reports
//! only the *exposed* communication time.

use std::collections::VecDeque;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use crate::simnet::SimNet;

/// A message in flight.
#[derive(Clone, Debug)]
pub(crate) struct Msg {
    pub tag: u64,
    pub data: Bytes,
    /// Virtual arrival time at the receiver (0 when simulation is off).
    pub arrival: f64,
}

/// Reduction operators for [`Comm::allreduce_f64`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Handle of a pending nonblocking operation started by [`Comm::isend`]
/// or [`Comm::irecv`]. Complete it with [`Comm::wait`]/[`Comm::waitall`]
/// or poll it with [`Comm::test`].
#[derive(Debug)]
pub enum Request {
    Send(SendRequest),
    Recv(RecvRequest),
}

/// Pending nonblocking send (see [`Comm::isend`]).
#[derive(Debug)]
pub struct SendRequest {
    /// Comm-core virtual time at which packing finished and the send
    /// buffer is reusable (0 when simulation is off).
    complete_at: f64,
}

/// Pending nonblocking receive (see [`Comm::irecv`]). Holds no message
/// itself — matching state lives in the communicator's reorder buffer,
/// so dropping a request (even after a successful [`Comm::test`]) never
/// loses data.
#[derive(Debug)]
pub struct RecvRequest {
    src: usize,
    tag: u64,
}

/// Per-rank communication endpoint. Created by [`crate::Universe`]; one
/// per rank thread, used mutably (the virtual clock and the tag-matching
/// buffers are rank-local state).
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    /// `to[d]` sends to rank `d`.
    pub(crate) to: Vec<Sender<Msg>>,
    /// `from[s]` receives from rank `s`.
    pub(crate) from: Vec<Receiver<Msg>>,
    /// Out-of-order messages per source awaiting a matching tag.
    pub(crate) pending: Vec<VecDeque<Msg>>,
    /// Virtual clock in seconds (stays 0 when `net` is `None`).
    pub(crate) clock: f64,
    /// Virtual time until which the modeled dedicated communication core
    /// is busy packing/unpacking nonblocking message buffers.
    pub(crate) comm_busy: f64,
    /// Exposed communication seconds accumulated on the compute timeline
    /// (see [`Comm::comm_seconds`]).
    pub(crate) comm_seconds: f64,
    pub(crate) net: Option<SimNet>,
}

impl Comm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time (seconds). Only meaningful in simulation
    /// mode; real runs use wall clocks instead.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Advance the virtual clock by `dt` seconds of (modeled) computation.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.clock += dt;
    }

    /// Exposed communication seconds so far: virtual clock time spent
    /// inside communication calls. Blocking calls charge their full cost;
    /// nonblocking waits bracketed by [`Comm::overlap_join`] charge only
    /// the share computation could not hide. Zero when simulation is off.
    pub fn comm_seconds(&self) -> f64 {
        self.comm_seconds
    }

    /// Blocking send (buffered — returns once the message is queued; the
    /// virtual clock pays the pack cost).
    pub fn send(&mut self, dst: usize, tag: u64, data: Bytes) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(dst, self.rank, "self-send unsupported (use local state)");
        let before = self.clock;
        let arrival = if let Some(net) = &self.net {
            self.clock += net.pack_time(data.len());
            self.clock + net.wire_time(data.len())
        } else {
            0.0
        };
        self.charge_comm(before);
        self.to[dst]
            .send(Msg { tag, data, arrival })
            .expect("peer rank hung up");
    }

    /// Blocking receive of the next message from `src` carrying `tag`.
    /// Messages with other tags are buffered for later receives.
    pub fn recv(&mut self, src: usize, tag: u64) -> Bytes {
        assert!(src < self.size);
        assert_ne!(src, self.rank);
        let msg = self.take_matching(src, tag);
        self.finish_recv(msg)
    }

    /// Pull the next message from `src` carrying `tag`, buffering other
    /// tags (the shared tag-matching core of `recv` and `wait`).
    fn take_matching(&mut self, src: usize, tag: u64) -> Msg {
        // Check the reorder buffer first.
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            return self.pending[src].remove(pos).unwrap();
        }
        loop {
            let msg = self.from[src].recv().expect("peer rank hung up");
            if msg.tag == tag {
                return msg;
            }
            self.pending[src].push_back(msg);
        }
    }

    fn finish_recv(&mut self, msg: Msg) -> Bytes {
        let before = self.clock;
        if let Some(net) = &self.net {
            self.clock = self.clock.max(msg.arrival) + net.unpack_time(msg.data.len());
        }
        self.charge_comm(before);
        msg.data
    }

    /// Blocking calls keep the comm core in lockstep with the clock and
    /// charge the clock advance as exposed communication.
    fn charge_comm(&mut self, before: f64) {
        self.comm_seconds += self.clock - before;
        self.comm_busy = self.comm_busy.max(self.clock);
    }

    /// Nonblocking send. The message is queued immediately (sends are
    /// buffered, so posting never deadlocks); in simulation mode the pack
    /// cost runs on the comm-core timeline instead of the caller's clock,
    /// serialized after any copies the core is already doing.
    pub fn isend(&mut self, dst: usize, tag: u64, data: Bytes) -> Request {
        assert!(dst < self.size, "isend to rank {dst} of {}", self.size);
        assert_ne!(dst, self.rank, "self-send unsupported (use local state)");
        let (complete_at, arrival) = if let Some(net) = &self.net {
            let start = self.clock.max(self.comm_busy);
            let complete = start + net.pack_time(data.len());
            (complete, complete + net.wire_time(data.len()))
        } else {
            (0.0, 0.0)
        };
        self.comm_busy = self.comm_busy.max(complete_at);
        self.to[dst]
            .send(Msg { tag, data, arrival })
            .expect("peer rank hung up");
        Request::Send(SendRequest { complete_at })
    }

    /// Nonblocking receive of the next message from `src` carrying `tag`.
    /// Posting records intent only; matching happens in `test`/`wait`.
    pub fn irecv(&mut self, src: usize, tag: u64) -> Request {
        assert!(src < self.size);
        assert_ne!(src, self.rank);
        Request::Recv(RecvRequest { src, tag })
    }

    /// Poll a request without blocking. A send is complete once its pack
    /// finished on the comm-core timeline; a receive once a matching
    /// message is physically present *and* has virtually arrived.
    /// `false` is always a legal answer (e.g. before the peer posts).
    /// Matched messages stay in the reorder buffer until a `wait`
    /// consumes them, so an abandoned request loses nothing.
    pub fn test(&mut self, req: &mut Request) -> bool {
        match req {
            Request::Send(s) => self.net.is_none() || s.complete_at <= self.clock,
            Request::Recv(r) => {
                if !self.pending[r.src].iter().any(|m| m.tag == r.tag) {
                    // Drain arrived messages into the reorder buffer,
                    // stopping once a match shows up.
                    let mut found = false;
                    while let Some(msg) = self.from[r.src].try_recv() {
                        found = msg.tag == r.tag;
                        self.pending[r.src].push_back(msg);
                        if found {
                            break;
                        }
                    }
                    if !found {
                        return false;
                    }
                }
                let msg = self.pending[r.src]
                    .iter()
                    .find(|m| m.tag == r.tag)
                    .expect("matched above");
                self.net.is_none() || msg.arrival <= self.clock
            }
        }
    }

    /// Complete one request: block until done, apply the comm-core time
    /// accounting, and return the payload (`Some` for receives, `None`
    /// for sends).
    pub fn wait(&mut self, req: Request) -> Option<Bytes> {
        let before = self.clock;
        let out = match req {
            Request::Send(s) => {
                if self.net.is_some() {
                    self.clock = self.clock.max(s.complete_at);
                }
                None
            }
            Request::Recv(r) => {
                let msg = self.take_matching(r.src, r.tag);
                if let Some(net) = &self.net {
                    // The comm core unpacks as soon as the message has
                    // arrived (independent of the caller's clock); the
                    // caller resumes at whichever is later.
                    let done = self.comm_busy.max(msg.arrival) + net.unpack_time(msg.data.len());
                    self.comm_busy = done;
                    self.clock = self.clock.max(done);
                }
                Some(msg.data)
            }
        };
        self.comm_seconds += self.clock - before;
        out
    }

    /// Complete every request, in posting order. One entry per request:
    /// `Some(payload)` for receives, `None` for sends.
    pub fn waitall(&mut self, reqs: Vec<Request>) -> Vec<Option<Bytes>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Fold `compute_seconds` of modeled computation that ran
    /// concurrently with communication since virtual time `t0` into the
    /// clock, crediting the overlap window back to
    /// [`Comm::comm_seconds`]: only communication that outlasted the
    /// computation stays exposed.
    pub fn overlap_join(&mut self, t0: f64, compute_seconds: f64) {
        debug_assert!(compute_seconds >= 0.0);
        let comm_done = self.clock;
        self.clock = comm_done.max(t0 + compute_seconds);
        let hidden = compute_seconds.min((comm_done - t0).max(0.0));
        self.comm_seconds -= hidden;
    }

    /// Paired exchange with one neighbor (the halo pattern). Send first,
    /// then receive — safe because sends are buffered.
    pub fn sendrecv(&mut self, peer: usize, tag: u64, data: Bytes) -> Bytes {
        self.send(peer, tag, data);
        self.recv(peer, tag)
    }

    /// Synchronize all ranks; in simulation mode every clock is set to
    /// the maximum *entry* time (a barrier is as slow as its last
    /// arrival; the barrier's own messages are not charged, mirroring
    /// the paper's model which has no collectives in the inner loop).
    pub fn barrier(&mut self) {
        let entry = self.clock;
        let t = self.allreduce_f64(entry, ReduceOp::Max);
        if self.net.is_some() {
            self.clock = t;
        }
    }

    /// Allreduce one f64 (gather to rank 0, reduce, broadcast).
    pub fn allreduce_f64(&mut self, value: f64, op: ReduceOp) -> f64 {
        const TAG: u64 = u64::MAX - 1;
        if self.size == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let b = self.recv(src, TAG);
                acc = op.apply(acc, f64_from_bytes(&b));
            }
            for dst in 1..self.size {
                self.send(dst, TAG, f64_to_bytes(acc));
            }
            acc
        } else {
            self.send(0, TAG, f64_to_bytes(value));
            f64_from_bytes(&self.recv(0, TAG))
        }
    }

    /// Gather one f64 per rank to rank 0 (others get an empty vec).
    pub fn gather_f64(&mut self, value: f64) -> Vec<f64> {
        const TAG: u64 = u64::MAX - 2;
        if self.rank == 0 {
            let mut out = vec![value];
            for src in 1..self.size {
                out.push(f64_from_bytes(&self.recv(src, TAG)));
            }
            out
        } else {
            self.send(0, TAG, f64_to_bytes(value));
            Vec::new()
        }
    }
}

pub(crate) fn f64_to_bytes(v: f64) -> Bytes {
    Bytes::copy_from_slice(&v.to_ne_bytes())
}

pub(crate) fn f64_from_bytes(b: &Bytes) -> f64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[..8]);
    f64::from_ne_bytes(buf)
}

/// Pack an `f64` slice into `Bytes` (native endianness; the mesh never
/// leaves the process).
pub fn pack_f64s(v: &[f64]) -> Bytes {
    // SAFETY: f64 and u8 have no invalid bit patterns; alignment of u8 is
    // 1; the byte length is exact.
    let bytes: &[u8] = unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 8) };
    Bytes::copy_from_slice(bytes)
}

/// Unpack [`pack_f64s`] output into a caller-provided buffer.
pub fn unpack_f64s(b: &Bytes, out: &mut [f64]) {
    assert_eq!(b.len(), out.len() * 8, "payload length mismatch");
    for (i, chunk) in b.chunks_exact(8).enumerate() {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        out[i] = f64::from_ne_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn ring_pass_delivers_in_order() {
        let results = Universe::run(3, None, |comm| {
            let next = (comm.rank() + 1) % 3;
            let prev = (comm.rank() + 3 - 1) % 3;
            for round in 0..5u64 {
                comm.send(next, round, f64_to_bytes(comm.rank() as f64 + round as f64));
                let got = f64_from_bytes(&comm.recv(prev, round));
                assert_eq!(got, prev as f64 + round as f64);
            }
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2]);
    }

    #[test]
    fn tag_matching_reorders() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, f64_to_bytes(7.0));
                comm.send(1, 8, f64_to_bytes(8.0));
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(f64_from_bytes(&comm.recv(0, 8)), 8.0);
                assert_eq!(f64_from_bytes(&comm.recv(0, 7)), 7.0);
            }
            0
        });
    }

    #[test]
    fn allreduce_ops() {
        let r = Universe::run(4, None, |comm| {
            let v = comm.rank() as f64 + 1.0; // 1,2,3,4
            (
                comm.allreduce_f64(v, ReduceOp::Sum),
                comm.allreduce_f64(v, ReduceOp::Min),
                comm.allreduce_f64(v, ReduceOp::Max),
            )
        });
        for (s, mn, mx) in r {
            assert_eq!(s, 10.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 4.0);
        }
    }

    #[test]
    fn gather_collects_on_root() {
        let r = Universe::run(3, None, |comm| comm.gather_f64(comm.rank() as f64 * 2.0));
        assert_eq!(r[0], vec![0.0, 2.0, 4.0]);
        assert!(r[1].is_empty() && r[2].is_empty());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let v: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let b = pack_f64s(&v);
        assert_eq!(b.len(), 17 * 8);
        let mut out = vec![0.0; 17];
        unpack_f64s(&b, &mut out);
        assert_eq!(v, out);
    }

    #[test]
    fn virtual_clock_advances_through_messages() {
        let net = SimNet {
            latency: 1e-3,
            bandwidth: 1e6,
            copy_bandwidth: f64::INFINITY,
        };
        let times = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                comm.advance(5e-3); // compute 5 ms
                comm.send(1, 0, pack_f64s(&vec![0.0; 125])); // 1000 B -> 1 ms wire
            } else {
                let _ = comm.recv(0, 0);
            }
            comm.time()
        });
        // Receiver: max(0, 5ms + 1ms latency + 1ms wire) = 7 ms.
        assert!((times[1] - 7e-3).abs() < 1e-9, "rank1 time {}", times[1]);
        // Sender paid no wire time (buffered send) and no pack cost.
        assert!((times[0] - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let net = SimNet::ideal();
        let times = Universe::run(3, Some(net), |comm| {
            comm.advance(comm.rank() as f64 * 1e-3);
            comm.barrier();
            comm.time()
        });
        for t in times {
            assert!((t - 2e-3).abs() < 1e-12, "clock {t}");
        }
    }

    #[test]
    fn sendrecv_pairs() {
        Universe::run(2, None, |comm| {
            let peer = 1 - comm.rank();
            let got = comm.sendrecv(peer, 3, f64_to_bytes(comm.rank() as f64));
            assert_eq!(f64_from_bytes(&got), peer as f64);
            0
        });
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn same_tag_messages_arrive_in_fifo_order() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u64 {
                    comm.send(1, 9, f64_to_bytes(i as f64));
                }
            } else {
                for i in 0..50u64 {
                    assert_eq!(f64_from_bytes(&comm.recv(0, 9)), i as f64);
                }
            }
            0
        });
    }

    #[test]
    fn large_payload_roundtrip() {
        let n = 1 << 18; // 2 MiB of f64
        Universe::run(2, None, move |comm| {
            if comm.rank() == 0 {
                let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
                comm.send(1, 0, pack_f64s(&v));
            } else {
                let b = comm.recv(0, 0);
                let mut out = vec![0.0f64; n];
                unpack_f64s(&b, &mut out);
                assert_eq!(out[0], 0.0);
                assert_eq!(out[n - 1], (n - 1) as f64);
            }
            0
        });
    }

    #[test]
    fn interleaved_tags_across_many_rounds() {
        // Both tags flow continuously; receiving them out of order per
        // round must never mix payloads up.
        Universe::run(2, None, |comm| {
            let peer = 1 - comm.rank();
            for round in 0..20u64 {
                comm.send(peer, 1, f64_to_bytes(round as f64));
                comm.send(peer, 2, f64_to_bytes(-(round as f64)));
                assert_eq!(f64_from_bytes(&comm.recv(peer, 2)), -(round as f64));
                assert_eq!(f64_from_bytes(&comm.recv(peer, 1)), round as f64);
            }
            0
        });
    }

    #[test]
    fn pack_cost_charged_to_sender_clock() {
        let net = crate::SimNet {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            copy_bandwidth: 1e6,
        };
        let times = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, pack_f64s(&vec![0.0; 125])); // 1000 B -> 1 ms pack
            } else {
                let _ = comm.recv(0, 0);
            }
            comm.time()
        });
        assert!((times[0] - 1e-3).abs() < 1e-9, "sender {}", times[0]);
        // Receiver: arrival at 1 ms (pack) + unpack 1 ms = 2 ms.
        assert!((times[1] - 2e-3).abs() < 1e-9, "receiver {}", times[1]);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn unpack_length_mismatch_panics() {
        let b = pack_f64s(&[1.0, 2.0]);
        let mut out = vec![0.0; 3];
        unpack_f64s(&b, &mut out);
    }
}

#[cfg(test)]
mod nonblocking_tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn irecv_matches_tags_out_of_order() {
        // Receives posted in the opposite order of the sends; waitall
        // must still pair every payload with its tag.
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                let mut reqs = Vec::new();
                for tag in [7u64, 8, 9] {
                    reqs.push(comm.isend(1, tag, f64_to_bytes(tag as f64)));
                }
                comm.waitall(reqs);
            } else {
                let reqs: Vec<Request> = [9u64, 7, 8].iter().map(|&t| comm.irecv(0, t)).collect();
                let got = comm.waitall(reqs);
                let vals: Vec<f64> = got
                    .into_iter()
                    .map(|b| f64_from_bytes(&b.expect("recv request returns a payload")))
                    .collect();
                assert_eq!(vals, vec![9.0, 7.0, 8.0]);
            }
            0
        });
    }

    #[test]
    fn test_is_false_before_the_peer_posts() {
        // Rank 0 blocks on a go-ahead message before sending tag 5, so
        // rank 1's first poll is guaranteed to happen before the send.
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 0); // go-ahead
                comm.send(1, 5, f64_to_bytes(5.0));
            } else {
                let mut req = comm.irecv(0, 5);
                assert!(!comm.test(&mut req), "nothing sent yet");
                comm.send(0, 0, f64_to_bytes(0.0)); // go-ahead
                let got = comm.wait(req).unwrap();
                assert_eq!(f64_from_bytes(&got), 5.0);
            }
            0
        });
    }

    #[test]
    fn test_completes_and_wait_consumes_the_match() {
        // A successful test() must not lose the message for the wait.
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, f64_to_bytes(3.0));
                let _ = comm.recv(1, 4); // keep ranks in lockstep
            } else {
                let mut req = comm.irecv(0, 3);
                while !comm.test(&mut req) {
                    std::thread::yield_now();
                }
                assert_eq!(f64_from_bytes(&comm.wait(req).unwrap()), 3.0);
                comm.send(0, 4, f64_to_bytes(4.0));
            }
            0
        });
    }

    #[test]
    fn dropping_a_tested_request_loses_nothing() {
        // test() must leave the matched message in the reorder buffer:
        // abandoning the request and receiving through another path
        // (blocking recv here) still delivers the payload.
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, f64_to_bytes(6.0));
                let _ = comm.recv(1, 0); // lockstep
            } else {
                {
                    let mut req = comm.irecv(0, 6);
                    while !comm.test(&mut req) {
                        std::thread::yield_now();
                    }
                    // `req` is abandoned here, never waited.
                }
                assert_eq!(f64_from_bytes(&comm.recv(0, 6)), 6.0);
                comm.send(0, 0, f64_to_bytes(0.0));
            }
            0
        });
    }

    #[test]
    fn waitall_over_mixed_directions() {
        // Both ranks keep sends and receives of several tags in one
        // request batch; payloads must land on the right tags.
        Universe::run(2, None, |comm| {
            let peer = 1 - comm.rank();
            let me = comm.rank() as f64;
            let reqs = vec![
                comm.irecv(peer, 11),
                comm.isend(peer, 12, f64_to_bytes(me + 12.0)),
                comm.irecv(peer, 12),
                comm.isend(peer, 11, f64_to_bytes(me + 11.0)),
            ];
            let got = comm.waitall(reqs);
            assert!(got[1].is_none() && got[3].is_none(), "sends yield None");
            let other = peer as f64;
            assert_eq!(f64_from_bytes(got[0].as_ref().unwrap()), other + 11.0);
            assert_eq!(f64_from_bytes(got[2].as_ref().unwrap()), other + 12.0);
            0
        });
    }

    #[test]
    fn interleaved_nonblocking_and_blocking_share_matching() {
        // An irecv and a blocking recv of different tags from the same
        // source must each get their own message regardless of order.
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 21, f64_to_bytes(21.0));
                comm.send(1, 20, f64_to_bytes(20.0));
            } else {
                let req = comm.irecv(0, 20);
                // Blocking recv of 21 buffers nothing (21 arrives first).
                assert_eq!(f64_from_bytes(&comm.recv(0, 21)), 21.0);
                assert_eq!(f64_from_bytes(&comm.wait(req).unwrap()), 20.0);
            }
            0
        });
    }

    #[test]
    fn isend_charges_the_comm_core_not_the_sender_clock() {
        let net = SimNet {
            latency: 1e-3,
            bandwidth: 1e6,
            copy_bandwidth: 1e6,
        };
        let times = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                // 1000 B: pack 1 ms (comm core), wire 1 ms + 1 ms latency.
                let req = comm.isend(1, 0, pack_f64s(&vec![0.0; 125]));
                assert_eq!(comm.time(), 0.0, "posting must not advance the clock");
                let mut req = req;
                assert!(!comm.test(&mut req), "pack still running at t = 0");
                comm.wait(req);
                // Clock resumes at pack completion.
                assert!((comm.time() - 1e-3).abs() < 1e-12, "{}", comm.time());
            } else {
                let req = comm.irecv(0, 0);
                let _ = comm.wait(req);
                // arrival = 1 ms pack + 1 ms latency + 1 ms wire; + 1 ms unpack.
                assert!((comm.time() - 4e-3).abs() < 1e-12, "{}", comm.time());
                assert!((comm.comm_seconds() - 4e-3).abs() < 1e-12);
            }
            comm.time()
        });
        assert!(times[1] > times[0]);
    }

    #[test]
    fn overlap_join_hides_communication_behind_compute() {
        let net = SimNet {
            latency: 1e-3,
            bandwidth: 1e6,
            copy_bandwidth: 1e6,
        };
        let seconds = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(1, 0, pack_f64s(&vec![0.0; 125]));
                comm.wait(req);
                0.0
            } else {
                let t0 = comm.time();
                let req = comm.irecv(0, 0);
                // wait at t0: clock -> 4 ms, all charged...
                let _ = comm.wait(req);
                // ...then 5 ms of concurrent compute folds in: everything
                // is hidden, the cycle ends at t0 + 5 ms.
                comm.overlap_join(t0, 5e-3);
                assert!((comm.time() - 5e-3).abs() < 1e-12, "{}", comm.time());
                comm.comm_seconds()
            }
        });
        assert!(
            seconds[1].abs() < 1e-12,
            "fully hidden comm must expose 0 s, got {}",
            seconds[1]
        );
    }

    #[test]
    fn overlap_join_exposes_the_residual() {
        let net = SimNet {
            latency: 1e-3,
            bandwidth: 1e6,
            copy_bandwidth: f64::INFINITY,
        };
        let exposed = Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(1, 0, pack_f64s(&vec![0.0; 125]));
                comm.wait(req);
                0.0
            } else {
                let t0 = comm.time();
                let req = comm.irecv(0, 0);
                let _ = comm.wait(req); // arrival at 2 ms, no unpack cost
                comm.overlap_join(t0, 0.5e-3); // compute hides only 0.5 ms
                assert!((comm.time() - 2e-3).abs() < 1e-12);
                comm.comm_seconds()
            }
        });
        assert!(
            (exposed[1] - 1.5e-3).abs() < 1e-12,
            "exposed must be 2 ms - 0.5 ms, got {}",
            exposed[1]
        );
    }

    #[test]
    fn send_request_tests_complete_once_the_clock_passes_pack() {
        let net = SimNet {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            copy_bandwidth: 1e6,
        };
        Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                let mut req = comm.isend(1, 0, pack_f64s(&vec![0.0; 125]));
                assert!(!comm.test(&mut req));
                comm.advance(2e-3); // compute past the 1 ms pack
                assert!(comm.test(&mut req));
                comm.wait(req);
                assert!((comm.time() - 2e-3).abs() < 1e-12, "wait is then free");
            } else {
                let req = comm.irecv(0, 0);
                let _ = comm.wait(req);
            }
            0
        });
    }
}
