//! # tb-net — in-process message passing with virtual-time simulation
//!
//! The paper's distributed experiments use plain blocking MPI point-to-
//! point halo exchanges ("no explicit or implicit overlapping of
//! communication and computation", §2.2). This crate provides the same
//! semantics without an MPI installation:
//!
//! * [`Universe`] — spawns `n` ranks as threads and wires a full mesh of
//!   lossless FIFO channels,
//! * [`Comm`] — blocking send/recv with tag matching, barrier,
//!   allreduce, gather — the subset of MPI the solver needs — plus
//!   nonblocking [`Comm::isend`]/[`Comm::irecv`] returning [`Request`]
//!   handles (`test`/`wait`/`waitall`), whose buffer copies run on a
//!   modeled dedicated comm-core timeline so that
//!   [`Comm::overlap_join`] can report how much communication the
//!   computation hid,
//! * [`CartComm`] — 3D Cartesian rank topology (our `MPI_Cart_create`),
//! * [`SimNet`] — an optional **virtual clock** per rank: sends stamp
//!   messages with a latency/bandwidth/copy-cost model and receives
//!   advance the local clock to the message arrival time. This is a
//!   conservative discrete-event simulation adequate for bulk-
//!   synchronous codes, and is what lets a 2-core host reproduce the
//!   shape of the paper's 64-node Fig. 6.
//!
//! Real data always flows — simulation only affects *clocks* — so
//! protocol bugs (mismatched tags, wrong neighbors, deadlocks) surface in
//! tests exactly as they would on a real cluster.

pub mod cart;
pub mod comm;
pub mod simnet;
pub mod universe;

pub use cart::CartComm;
pub use comm::{Comm, RecvRequest, ReduceOp, Request, SendRequest};
pub use simnet::SimNet;
pub use universe::Universe;
