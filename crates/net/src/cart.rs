//! 3D Cartesian rank topology (the solver-facing analogue of
//! `MPI_Cart_create`).
//!
//! Ranks are arranged x-fastest on a `px × py × pz` grid. The topology is
//! non-periodic: the Jacobi domain has physical Dirichlet boundaries, so
//! edge ranks simply have no neighbor there.

use bytes::Bytes;

use crate::comm::{Comm, Request};

/// Cartesian view over a [`Comm`].
pub struct CartComm<'a> {
    pub comm: &'a mut Comm,
    dims: [usize; 3],
    coords: [usize; 3],
}

impl<'a> CartComm<'a> {
    /// # Panics
    /// Panics unless `dims` multiply to the communicator size.
    pub fn new(comm: &'a mut Comm, dims: [usize; 3]) -> Self {
        let n: usize = dims.iter().product();
        assert_eq!(n, comm.size(), "dims {dims:?} != {} ranks", comm.size());
        let rank = comm.rank();
        let coords = [
            rank % dims[0],
            (rank / dims[0]) % dims[1],
            rank / (dims[0] * dims[1]),
        ];
        Self { comm, dims, coords }
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn coords(&self) -> [usize; 3] {
        self.coords
    }

    /// Rank of the given coordinates.
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        debug_assert!((0..3).all(|d| c[d] < self.dims[d]));
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Neighbor along dimension `d` in direction `dir` (−1 or +1);
    /// `None` at the physical boundary.
    pub fn neighbor(&self, d: usize, dir: i64) -> Option<usize> {
        debug_assert!(d < 3 && (dir == -1 || dir == 1));
        let c = self.coords[d] as i64 + dir;
        if c < 0 || c >= self.dims[d] as i64 {
            return None;
        }
        let mut n = self.coords;
        n[d] = c as usize;
        Some(self.rank_of(n))
    }

    /// True if this rank touches the physical boundary on side `dir` of
    /// dimension `d`.
    pub fn at_boundary(&self, d: usize, dir: i64) -> bool {
        self.neighbor(d, dir).is_none()
    }

    /// Nonblocking send to a neighbor rank — see [`Comm::isend`].
    pub fn isend(&mut self, peer: usize, tag: u64, data: Bytes) -> Request {
        self.comm.isend(peer, tag, data)
    }

    /// Nonblocking receive from a neighbor rank — see [`Comm::irecv`].
    pub fn irecv(&mut self, peer: usize, tag: u64) -> Request {
        self.comm.irecv(peer, tag)
    }

    /// Poll a request — see [`Comm::test`].
    pub fn test(&mut self, req: &mut Request) -> bool {
        self.comm.test(req)
    }

    /// Complete a request — see [`Comm::wait`].
    pub fn wait(&mut self, req: Request) -> Option<Bytes> {
        self.comm.wait(req)
    }

    /// Complete a batch of requests — see [`Comm::waitall`].
    pub fn waitall(&mut self, reqs: Vec<Request>) -> Vec<Option<Bytes>> {
        self.comm.waitall(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn coords_roundtrip() {
        Universe::run(12, None, |comm| {
            let cart = CartComm::new(comm, [3, 2, 2]);
            let c = cart.coords();
            assert_eq!(cart.rank_of(c), cart.comm.rank());
            c
        });
    }

    #[test]
    fn neighbors_are_mutual() {
        let infos = Universe::run(8, None, |comm| {
            let cart = CartComm::new(comm, [2, 2, 2]);
            let mut nbrs = Vec::new();
            for d in 0..3 {
                for dir in [-1i64, 1] {
                    nbrs.push(cart.neighbor(d, dir));
                }
            }
            (cart.comm.rank(), nbrs)
        });
        // If a sees b along (d,+1), then b sees a along (d,-1).
        for (rank, nbrs) in &infos {
            for d in 0..3 {
                if let Some(b) = nbrs[2 * d + 1] {
                    let back = &infos[b].1[2 * d];
                    assert_eq!(*back, Some(*rank), "asymmetric neighbor at dim {d}");
                }
            }
        }
    }

    #[test]
    fn boundary_detection() {
        Universe::run(4, None, |comm| {
            let cart = CartComm::new(comm, [4, 1, 1]);
            let x = cart.coords()[0];
            assert_eq!(cart.at_boundary(0, -1), x == 0);
            assert_eq!(cart.at_boundary(0, 1), x == 3);
            // Singleton dims are always at both boundaries.
            assert!(cart.at_boundary(1, -1) && cart.at_boundary(1, 1));
            0
        });
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn wrong_dims_rejected() {
        Universe::run(5, None, |comm| {
            let _ = CartComm::new(comm, [2, 2, 2]);
            0
        });
    }
}
