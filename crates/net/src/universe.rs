//! Spawning a set of ranks wired with a full channel mesh.

use std::collections::VecDeque;

use crossbeam::channel::unbounded;

use crate::comm::{Comm, Msg};
use crate::simnet::SimNet;

/// A fixed-size group of in-process ranks.
pub struct Universe;

impl Universe {
    /// Spawn `n` rank threads, give each a [`Comm`], run `f` on every
    /// rank and return the per-rank results in rank order.
    ///
    /// `net = Some(...)` enables virtual-time accounting on every
    /// communication operation.
    ///
    /// Panics in any rank propagate (the scope unwinds) — a rank failure
    /// is a test failure.
    pub fn run<R, F>(n: usize, net: Option<SimNet>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        assert!(n >= 1, "need at least one rank");
        // senders[src][dst], receivers[dst][src]
        let mut senders: Vec<Vec<_>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut receivers: Vec<Vec<_>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for sender_row in &mut senders {
            for receiver_row in &mut receivers {
                let (tx, rx) = unbounded::<Msg>();
                sender_row.push(tx);
                receiver_row.push(rx);
            }
        }
        let mut comms: Vec<Comm> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to, from))| Comm {
                rank,
                size: n,
                to,
                from,
                pending: (0..n).map(|_| VecDeque::new()).collect(),
                clock: 0.0,
                comm_busy: 0.0,
                comm_seconds: 0.0,
                net,
            })
            .collect();

        let f = &f;
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter_mut()
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank panicked"));
            }
        });
        out.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe() {
        let r = Universe::run(1, None, |comm| {
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.rank(), 0);
            comm.barrier();
            comm.allreduce_f64(3.0, crate::ReduceOp::Sum)
        });
        assert_eq!(r, vec![3.0]);
    }

    #[test]
    fn results_are_in_rank_order() {
        let r = Universe::run(8, None, |comm| comm.rank() * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn many_ranks_oversubscribed() {
        // Far more ranks than cores: must still complete (channel recv
        // blocks, so oversubscription cannot livelock).
        let r = Universe::run(64, None, |comm| {
            comm.barrier();
            comm.allreduce_f64(1.0, crate::ReduceOp::Sum)
        });
        assert!(r.iter().all(|&v| v == 64.0));
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn rank_panic_propagates() {
        let _ = Universe::run(2, None, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 does not wait on rank 1 (panic must still propagate
            // through join).
            0
        });
    }
}
