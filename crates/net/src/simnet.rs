//! Virtual-time network cost model.

/// Latency/bandwidth/copy parameters for the virtual clock. Mirrors the
//  paper's QDR-IB model (§2.1) plus the buffer-copy overhead observed in
//  §2.2 profiling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimNet {
    /// One-way message latency (seconds).
    pub latency: f64,
    /// Wire bandwidth (bytes/second).
    pub bandwidth: f64,
    /// Pack/unpack memory bandwidth (bytes/second); `INFINITY` disables.
    pub copy_bandwidth: f64,
}

impl SimNet {
    /// The paper's QDR InfiniBand numbers; copy bandwidth calibrated so
    /// that pack + unpack together cost one wire transfer (§2.2: buffer
    /// copies cost "about the same" as the transfer).
    pub fn qdr_infiniband() -> Self {
        Self {
            latency: 1.8e-6,
            bandwidth: 3.2e9,
            copy_bandwidth: 6.4e9,
        }
    }

    /// Zero-cost network: virtual clocks still advance through compute.
    pub fn ideal() -> Self {
        Self {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            copy_bandwidth: f64::INFINITY,
        }
    }

    /// Sender-side cost before the message is on the wire (packing).
    pub fn pack_time(&self, bytes: usize) -> f64 {
        if self.copy_bandwidth.is_infinite() {
            0.0
        } else {
            bytes as f64 / self.copy_bandwidth
        }
    }

    /// Receiver-side cost after arrival (unpacking).
    pub fn unpack_time(&self, bytes: usize) -> f64 {
        self.pack_time(bytes)
    }

    /// Wire time from send to arrival.
    pub fn wire_time(&self, bytes: usize) -> f64 {
        if self.bandwidth.is_infinite() {
            self.latency
        } else {
            self.latency + bytes as f64 / self.bandwidth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdr_matches_paper() {
        let n = SimNet::qdr_infiniband();
        assert_eq!(n.latency, 1.8e-6);
        assert_eq!(n.bandwidth, 3.2e9);
    }

    #[test]
    fn ideal_is_free() {
        let n = SimNet::ideal();
        assert_eq!(n.wire_time(1 << 20), 0.0);
        assert_eq!(n.pack_time(1 << 20), 0.0);
    }

    #[test]
    fn costs_scale_with_bytes() {
        let n = SimNet::qdr_infiniband();
        assert!(n.wire_time(2 << 20) > n.wire_time(1 << 20));
        assert!((n.wire_time(3_200_000) - (1.8e-6 + 1e-3)).abs() < 1e-9);
    }
}
