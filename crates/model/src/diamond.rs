//! In-cache working-set and memory-traffic estimate for wavefront-
//! diamond temporal blocking, alongside the paper's Eq. 4 pipeline
//! model.
//!
//! A diamond of width `w` (stencil radius `R`) updates `w²/(4R²)·2R =
//! w²/(2R)` z-planes worth of cells while spanning `w` distinct planes
//! of `z`, so each memory traversal of the grid performs
//!
//! ```text
//! u(w) = w / (2R)
//! ```
//!
//! sweeps — the diamond analogue of the pipeline's `t·T` updates per
//! traversal, but achieved without wind-up/wind-down waste and
//! controlled by the single width parameter. The Eq. 4 cost structure
//! carries over: the first update of a tile streams its planes from
//! memory at the operator's streaming code balance, every further
//! update moves one load + one store (plus the operator's extra read
//! streams) through the shared cache. That structure holds while the
//! tile's planes stay cached, i.e. while the **working set**
//!
//! ```text
//! W(w) = (2 + extra_read_streams) · (w + 2R) · nx · ny · bytes
//! ```
//!
//! (both grid buffers over the widest slab plus its read halo, and the
//! coefficient grid if the operator reads one) fits the shared cache.
//! [`max_cached_width`] inverts that bound — the width autotuning and
//! the `diamond_sweep` bench use it as the starting point.

use tb_grid::Real;
use tb_stencil::kernel::StoreMode;
use tb_stencil::StencilOp;

use crate::machine::MachineParams;

/// Sweeps one memory traversal performs at diamond width `w`:
/// `u = w / (2R)`. The diamond analogue of the pipeline's `t·T`.
pub fn diamond_reuse(width: usize, radius: usize) -> f64 {
    assert!(radius >= 1 && width >= 2 * radius);
    width as f64 / (2.0 * radius as f64)
}

/// In-cache working set of one active diamond tile, in bytes: both
/// grid buffers over the widest slab plus its `R`-deep read halo
/// (`w + 2R` planes of `nx·ny` cells), plus the operator's extra read
/// streams (e.g. a coefficient grid) over the same planes. Each worker
/// of a team holds one such tile live.
pub fn diamond_working_set_bytes<T: Real, Op: StencilOp<T>>(
    op: &Op,
    nx: usize,
    ny: usize,
    width: usize,
) -> usize {
    let radius = Op::RADIUS;
    assert!(radius >= 1 && width >= 2 * radius);
    let planes = width + 2 * radius;
    let streams = 2.0 + op.extra_read_streams();
    (streams * (planes * nx * ny * T::bytes()) as f64) as usize
}

/// Largest diamond width whose per-tile working set (times the team
/// size, one live tile per worker) fits the machine's shared cache;
/// never below the legal minimum `2R`.
pub fn max_cached_width<T: Real, Op: StencilOp<T>>(
    machine: &MachineParams,
    op: &Op,
    nx: usize,
    ny: usize,
    team: usize,
) -> usize {
    let radius = Op::RADIUS;
    let plane = ((2.0 + op.extra_read_streams()) * (nx * ny * T::bytes()) as f64) as usize;
    let team = team.max(1);
    if plane == 0 {
        return 2 * radius;
    }
    let planes = machine.cache_bytes / (plane * team);
    planes.saturating_sub(2 * radius).max(2 * radius)
}

/// Number of tiles a team holds live at once under MWD: with
/// `threads_per_tile` lanes cooperating on each tile, only
/// `⌈team / threads_per_tile⌉` tile working sets compete for the shared
/// cache. This is the whole point of Malas et al.'s multi-dimensional
/// intra-tile parallelization — the per-tile working set
/// ([`diamond_working_set_bytes`]) is **unchanged** (lanes partition
/// the same planes, they do not add any), the *count* of concurrent
/// working sets shrinks.
pub fn concurrent_tiles(team: usize, threads_per_tile: usize) -> usize {
    let team = team.max(1);
    let tpt = threads_per_tile.max(1).min(team);
    team.div_ceil(tpt)
}

/// [`max_cached_width`] under MWD: the shared cache is split between
/// [`concurrent_tiles`] live tiles instead of one per worker, so larger
/// sub-teams afford wider (higher-reuse) diamonds at equal cache
/// pressure. `threads_per_tile = 1` reduces to [`max_cached_width`].
///
/// Note what the lane count of the SIMD row kernels does *not* do here:
/// vectorization raises the in-cache compute ceiling but moves no extra
/// bytes, so it enters neither the working set nor the code balance —
/// see the module docs of `tb-model`.
pub fn max_cached_width_mwd<T: Real, Op: StencilOp<T>>(
    machine: &MachineParams,
    op: &Op,
    nx: usize,
    ny: usize,
    team: usize,
    threads_per_tile: usize,
) -> usize {
    max_cached_width::<T, Op>(
        machine,
        op,
        nx,
        ny,
        concurrent_tiles(team, threads_per_tile),
    )
}

/// Eq. 4 transplanted to diamond tiles: wall time (seconds per lattice
/// site × `u`) for the `u = w/(2R)` updates a tile performs per memory
/// traversal. First update streams from memory, the rest hit the
/// shared cache — valid while [`diamond_working_set_bytes`] fits.
pub fn diamond_block_time_op<T: Real, Op: StencilOp<T>>(
    machine: &MachineParams,
    op: &Op,
    width: usize,
) -> f64 {
    let u = diamond_reuse(width, Op::RADIUS);
    let bytes_mem = op.bytes_per_lup(StoreMode::Streaming);
    let bytes_cache = (2.0 + op.extra_read_streams()) * T::bytes() as f64;
    bytes_mem / machine.ms1 + (u - 1.0) * bytes_cache / machine.mc
}

/// Expected speedup of diamond blocking over the standard solver — the
/// Eq. 5 form with `t·T` replaced by the diamond reuse `w/(2R)`:
///
/// `T_0/T_d = (M_{s,1}/M_s) · u / (1 + (u−1)·M_{s,1}/M_c)`
pub fn diamond_speedup(machine: &MachineParams, width: usize, radius: usize) -> f64 {
    let u = diamond_reuse(width, radius);
    let r = machine.ms1 / machine.mc;
    (machine.ms1 / machine.ms) * u / (1.0 + (u - 1.0) * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::pipeline_speedup;
    use tb_stencil::{Jacobi6, VarCoeff7};

    #[test]
    fn reuse_counts_sweeps_per_traversal() {
        assert_eq!(diamond_reuse(2, 1), 1.0); // minimal width: no reuse
        assert_eq!(diamond_reuse(8, 1), 4.0);
        assert_eq!(diamond_reuse(8, 2), 2.0);
    }

    #[test]
    fn speedup_matches_pipeline_model_at_equal_reuse() {
        // Same cost structure ⟹ same predicted speedup when the
        // diamond reuse u equals the pipeline depth t·T.
        let m = MachineParams::nehalem_ep();
        for (t, upd) in [(1usize, 1usize), (4, 1), (4, 2), (2, 8)] {
            let width = 2 * t * upd; // u = w/2 = t·T at radius 1
            let d = diamond_speedup(&m, width, 1);
            let p = pipeline_speedup(&m, t, upd);
            assert!((d - p).abs() < 1e-12, "w={width}: {d} vs {p}");
        }
    }

    #[test]
    fn minimal_width_gains_nothing() {
        let m = MachineParams::nehalem_ep();
        let s = diamond_speedup(&m, 2, 1);
        assert!((s - m.ms1 / m.ms).abs() < 1e-12, "u = 1 is a plain sweep");
    }

    #[test]
    fn limit_is_mc_over_ms() {
        let m = MachineParams::nehalem_ep();
        let s = diamond_speedup(&m, 1 << 20, 1);
        assert!((s - m.max_speedup()).abs() / m.max_speedup() < 1e-3);
    }

    #[test]
    fn block_time_monotone_in_width() {
        let m = MachineParams::nehalem_ep();
        let t4: f64 = diamond_block_time_op::<f64, _>(&m, &Jacobi6, 4);
        let t8: f64 = diamond_block_time_op::<f64, _>(&m, &Jacobi6, 8);
        assert!(t8 > t4, "more in-cache updates per traversal cost time");
        // Width 2 (u = 1) is exactly the streaming memory fetch.
        let base: f64 = diamond_block_time_op::<f64, _>(&m, &Jacobi6, 2);
        assert!((base - 16.0 / m.ms1).abs() < 1e-18);
    }

    #[test]
    fn working_set_scales_with_width_and_streams() {
        let j = Jacobi6;
        let w8 = diamond_working_set_bytes::<f64, _>(&j, 100, 100, 8);
        assert_eq!(w8, 2 * (8 + 2) * 100 * 100 * 8);
        let w16 = diamond_working_set_bytes::<f64, _>(&j, 100, 100, 16);
        assert!(w16 > w8);
        // The coefficient grid adds one stream over the same planes.
        let v: VarCoeff7<f64> = VarCoeff7::banded(tb_grid::Dims3::cube(8));
        let wv = diamond_working_set_bytes::<f64, _>(&v, 100, 100, 8);
        assert_eq!(wv, 3 * (8 + 2) * 100 * 100 * 8);
    }

    #[test]
    fn max_cached_width_inverts_the_working_set() {
        let m = MachineParams::nehalem_ep();
        let w = max_cached_width::<f64, _>(&m, &Jacobi6, 100, 100, 1);
        assert!(w >= 2);
        assert!(diamond_working_set_bytes::<f64, _>(&Jacobi6, 100, 100, w) <= m.cache_bytes);
        // A team splits the cache; huge planes degrade to the minimum.
        let w4 = max_cached_width::<f64, _>(&m, &Jacobi6, 100, 100, 4);
        assert!(w4 <= w);
        let tiny = max_cached_width::<f64, _>(&m, &Jacobi6, 4000, 4000, 4);
        assert_eq!(tiny, 2);
    }

    #[test]
    fn mwd_shrinks_concurrent_tiles_not_the_working_set() {
        assert_eq!(concurrent_tiles(8, 1), 8);
        assert_eq!(concurrent_tiles(8, 2), 4);
        assert_eq!(concurrent_tiles(8, 8), 1);
        assert_eq!(concurrent_tiles(6, 4), 2); // non-divisor rounds up
        assert_eq!(concurrent_tiles(0, 0), 1); // degenerate clamps
                                               // Full-team tiles see the whole cache: same width as team = 1.
        let m = MachineParams::nehalem_ep();
        let solo = max_cached_width::<f64, _>(&m, &Jacobi6, 100, 100, 1);
        let mwd = max_cached_width_mwd::<f64, _>(&m, &Jacobi6, 100, 100, 8, 8);
        assert_eq!(mwd, solo);
        // Sub-teams interpolate monotonically between the extremes.
        let w1 = max_cached_width_mwd::<f64, _>(&m, &Jacobi6, 100, 100, 8, 1);
        let w2 = max_cached_width_mwd::<f64, _>(&m, &Jacobi6, 100, 100, 8, 2);
        assert_eq!(w1, max_cached_width::<f64, _>(&m, &Jacobi6, 100, 100, 8));
        assert!(w1 <= w2 && w2 <= mwd);
    }
}
