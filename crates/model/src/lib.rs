//! # tb-model — the paper's analytic performance models
//!
//! Pure functions, no I/O, reproducing every quantitative model in the
//! paper:
//!
//! * [`machine`] — bandwidth/latency parameter sets ([`MachineParams`]),
//!   with the Nehalem EP preset used throughout the paper;
//! * [`roofline`] — the memory-bound baseline estimate `P0 = M_s / B_c`
//!   (Eq. 2), with the code balance `B_c` taken from the stencil
//!   operator ([`tb_stencil::StencilOp::bytes_per_lup`]);
//! * [`pipeline`] — the single-cache diagnostic model of §1.4 (Eqs. 4–5)
//!   predicting the speedup of pipelined temporal blocking;
//! * [`diamond`] — the same cost structure transplanted to
//!   wavefront-diamond tiles: working set `(w + 2R)` planes per buffer,
//!   reuse `w/(2R)` sweeps per memory traversal, and the MWD variant
//!   where sub-teams share tiles (fewer concurrent working sets);
//!
//! All models price *memory traffic*, so the SIMD lane width of the row
//! kernels never appears: vectorization raises the in-cache compute
//! ceiling but moves no extra bytes, leaving `B_c` and every working-set
//! bound unchanged (see [`diamond::concurrent_tiles`] for the one place
//! thread counts — not lane counts — enter the cache model);
//! * [`network`] — the latency/bandwidth message time model;
//! * [`halo`] — the multi-layer halo advantage model behind Fig. 5;
//! * [`scaling`] — strong/weak scaling predictions and ideal lines for
//!   Fig. 6.
//!
//! ## Predictions as a search pruner
//!
//! Beyond reproducing the paper's figures, these models drive the
//! `tb-plan` autotuner: every candidate configuration is *scored*
//! analytically before anything runs — Eq. 2 sets the baseline, Eq. 5 /
//! [`diamond_speedup`] / [`pipeline::wavefront_speedup`] the temporal
//! gain, and the working-set bounds ([`diamond_working_set_bytes`],
//! [`max_cached_width`], the `(t·T)·d_u` blocks the pipeline keeps
//! resident) demote any candidate whose tiles cannot stay cached to
//! baseline speed. Only the top-scoring few are ever measured, so the
//! models discard most of the candidate space for free; the measured
//! rows in a `TuneReport` record predicted vs. achieved MLUP/s so model
//! error stays visible instead of silently steering the search.

pub mod diamond;
pub mod halo;
pub mod machine;
pub mod network;
pub mod pipeline;
pub mod roofline;
pub mod scaling;

pub use diamond::{
    concurrent_tiles, diamond_block_time_op, diamond_reuse, diamond_speedup,
    diamond_working_set_bytes, max_cached_width, max_cached_width_mwd,
};
pub use halo::{
    computational_efficiency, fig5_network, halo_advantage, halo_cycle_time, HaloWorkload,
};
pub use machine::MachineParams;
pub use network::NetworkParams;
pub use pipeline::{pipeline_speedup, team_block_time, team_block_time_op, wavefront_speedup};
pub use roofline::{
    jacobi_roofline_lups, op_roofline_lups, placed_bandwidth, placed_roofline_lups, roofline_lups,
    service_floor_seconds,
};
pub use scaling::{ScalingConfig, ScalingMode, ScalingPoint};
