//! Strong/weak scaling predictions for the distributed solvers (Fig. 6).
//!
//! The model composes the per-node rates (calibrated from Fig. 3 class
//! measurements) with the multi-layer halo model of [`crate::halo`]:
//! aggregate performance of `N` nodes × `ppn` ranks is
//!
//! `ranks · bulk_cells / time_per_update(local, h)`
//!
//! with rank subdomains from a balanced 3D factorization and no overlap
//! of communication and computation — the same assumptions the paper
//! states for its Fig. 5/6 analysis. Intra-node messages are charged at
//! network cost too (a simplification the paper shares: its model
//! "disregards some important effects like switching of message
//! protocols").

use serde::{Deserialize, Serialize};

use crate::halo::{halo_cycle_time, HaloWorkload};
use crate::network::NetworkParams;

/// Strong (fixed total) or weak (fixed per-process) scaling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ScalingMode {
    Strong,
    Weak,
}

/// One curve of Fig. 6.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Processes per node (paper: 1, 2 or 8).
    pub ppn: usize,
    /// Aggregate node performance of the in-node solver in LUP/s
    /// (standard or pipelined; from measurement or the §1.4 model).
    pub node_lups: f64,
    /// Halo width = updates per exchange cycle (1 for the standard
    /// solver, `n·t·T` for pipelined temporal blocking).
    pub halo_h: usize,
    pub net: NetworkParams,
    pub mode: ScalingMode,
    /// Cube edge of the problem: total for strong, per *process* for weak
    /// (paper Fig. 6 caption).
    pub base_edge: usize,
}

/// A predicted point of a Fig. 6 curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    pub nodes: usize,
    pub ranks: usize,
    pub glups: f64,
    pub efficiency: f64,
}

/// Balanced 3D factorization of `n` ranks: the factor triple `(a,b,c)`
/// with `a·b·c = n` minimizing `a+b+c` (which minimizes per-rank surface
/// for a cubic global domain) — our stand-in for `MPI_Dims_create`.
pub fn balanced_dims(n: usize) -> [usize; 3] {
    assert!(n >= 1);
    let mut best = [n, 1, 1];
    let mut best_sum = n + 2;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let m = n / a;
        for b in 1..=m {
            if !m.is_multiple_of(b) {
                continue;
            }
            let c = m / b;
            let sum = a + b + c;
            if sum < best_sum {
                best_sum = sum;
                best = [a, b, c];
            }
        }
    }
    best.sort_unstable_by(|x, y| y.cmp(x)); // largest first, x direction
    best
}

impl ScalingConfig {
    /// Predict aggregate performance on `nodes` nodes.
    pub fn predict(&self, nodes: usize) -> ScalingPoint {
        let ranks = nodes * self.ppn;
        let grid = balanced_dims(ranks);
        let local = match self.mode {
            ScalingMode::Strong => {
                let g = self.base_edge;
                [g / grid[0], g / grid[1], g / grid[2]]
            }
            ScalingMode::Weak => [self.base_edge; 3],
        };
        let local = [local[0].max(1), local[1].max(1), local[2].max(1)];
        let w = HaloWorkload::realistic(
            local,
            [grid[0] > 1, grid[1] > 1, grid[2] > 1],
            self.node_lups / self.ppn as f64,
        );
        let per_update = halo_cycle_time(&w, &self.net, self.halo_h) / self.halo_h as f64;
        let bulk: usize = local.iter().product();
        let agg = ranks as f64 * bulk as f64 / per_update;
        let ideal = self.ideal(nodes);
        ScalingPoint {
            nodes,
            ranks,
            glups: agg / 1e9,
            efficiency: agg / ideal,
        }
    }

    /// Ideal (communication-free, perfectly scaling) aggregate LUP/s.
    pub fn ideal(&self, nodes: usize) -> f64 {
        nodes as f64 * self.node_lups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ppn: usize, node_lups: f64, h: usize, mode: ScalingMode) -> ScalingConfig {
        ScalingConfig {
            ppn,
            node_lups,
            halo_h: h,
            net: NetworkParams::qdr_infiniband(),
            mode,
            base_edge: 600,
        }
    }

    #[test]
    fn balanced_dims_cases() {
        assert_eq!(balanced_dims(1), [1, 1, 1]);
        assert_eq!(balanced_dims(8), [2, 2, 2]);
        assert_eq!(balanced_dims(27), [3, 3, 3]);
        assert_eq!(balanced_dims(64), [4, 4, 4]);
        assert_eq!(balanced_dims(12), [3, 2, 2]);
        let d = balanced_dims(512);
        assert_eq!(d, [8, 8, 8]);
        assert_eq!(balanced_dims(7), [7, 1, 1]);
    }

    #[test]
    fn single_node_has_no_comm_penalty() {
        let c = cfg(1, 2.0e9, 1, ScalingMode::Strong);
        let p = c.predict(1);
        assert!((p.glups - 2.0).abs() < 1e-9, "{}", p.glups);
        assert!((p.efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weak_scaling_stays_efficient() {
        // 600^3 per process is huge: communication is negligible, so weak
        // scaling must stay above ~90% efficiency out to 64 nodes.
        let c = cfg(2, 3.4e9, 16, ScalingMode::Weak);
        let p = c.predict(64);
        assert!(p.efficiency > 0.8, "weak eff {}", p.efficiency);
        assert!(p.glups > 0.8 * 64.0 * 3.4);
    }

    #[test]
    fn strong_scaling_loses_efficiency_at_scale() {
        // 600^3 split over 512 ranks -> 75^3 locals: the paper's Fig. 5
        // says that regime is communication-limited.
        let weak = cfg(8, 4.6e9, 1, ScalingMode::Weak).predict(64);
        let strong = cfg(8, 4.6e9, 1, ScalingMode::Strong).predict(64);
        assert!(strong.efficiency < weak.efficiency);
        assert!(strong.efficiency < 0.9, "strong eff {}", strong.efficiency);
        // And the *pipelined* strong config (h=16) collapses much harder:
        // its rings/aggregated messages grow with h while locals shrink.
        let pipe_strong = cfg(2, 3.4e9, 16, ScalingMode::Strong).predict(64);
        assert!(
            pipe_strong.efficiency < strong.efficiency,
            "pipelined strong eff {} should trail standard {}",
            pipe_strong.efficiency,
            strong.efficiency
        );
    }

    #[test]
    fn pipelined_weak_keeps_most_of_its_speedup() {
        // §2.2: "About 80% of the pipelined blocking speedup can be
        // maintained for the distributed-memory parallel case."
        let std_node = 2.9e9;
        let pipe_node = 3.4e9; // ~17% node-level speedup per Fig. 3 class
        let std64 = cfg(2, std_node, 1, ScalingMode::Weak).predict(64);
        let pipe64 = cfg(2, pipe_node, 16, ScalingMode::Weak).predict(64);
        let speedup_single = pipe_node / std_node;
        let speedup_64 = pipe64.glups / std64.glups;
        let retained = (speedup_64 - 1.0) / (speedup_single - 1.0);
        // Our model keeps less than the paper's measured ~80% because it
        // charges buffer copies and expanded slabs; the qualitative claim
        // (pipelined stays ahead in weak scaling) must hold.
        assert!(speedup_64 > 1.0, "pipelined fell behind: {speedup_64}");
        assert!(retained > 0.3, "retained {retained}");
    }

    #[test]
    fn strong_scaling_monotone_in_nodes_but_sublinear() {
        let c = cfg(8, 4.6e9, 1, ScalingMode::Strong);
        let p1 = c.predict(1);
        let p8 = c.predict(8);
        let p64 = c.predict(64);
        assert!(p8.glups > p1.glups);
        assert!(p64.glups > p8.glups);
        assert!(p64.glups < 64.0 * p1.glups);
    }

    #[test]
    fn ideal_lines_are_linear() {
        let c = cfg(2, 3.0e9, 1, ScalingMode::Weak);
        assert_eq!(c.ideal(64), 64.0 * 3.0e9);
    }
}
