//! Bandwidth roofline for the standard Jacobi sweep (Eq. 2).
//!
//! With spatial blocking and non-temporal stores the kernel moves 16 bytes
//! per lattice-site update over the memory bus (one 8-byte read + one
//! 8-byte write), so a "perfect" baseline runs at `P0 = M_s / 16 B`
//! LUP/s per socket. The paper quotes 2.3 GLUP/s for its 18.5 GB/s
//! Nehalem socket.

use crate::machine::MachineParams;

/// Expected memory-bound LUP/s for the baseline Jacobi on one socket,
/// given the per-update traffic `bytes_per_lup` (16 with streaming
/// stores, 24 with read-for-ownership).
pub fn jacobi_roofline_lups(machine: &MachineParams, bytes_per_lup: f64) -> f64 {
    assert!(bytes_per_lup > 0.0);
    machine.ms / bytes_per_lup
}

/// Eq. 2 with the paper's default 16 B/LUP.
pub fn jacobi_roofline_default(machine: &MachineParams) -> f64 {
    jacobi_roofline_lups(machine, 16.0)
}

/// Naive code balance of the unblocked kernel in words/flop (paper §1.1:
/// `B_c = 8/6 W/F` counting the RFO).
pub fn naive_code_balance_words_per_flop() -> f64 {
    8.0 / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_expectation_matches_paper() {
        // "leading to an expectation of 2.3 GLUP/s for a standard Jacobi
        // algorithm in main memory" (§1.1) — per node (2 sockets x
        // 18.5 GB/s / 16 B = 2.31 GLUP/s... the paper's 2.3 GLUP/s is the
        // two-socket figure: 2 * 18.5e9/16 = 2.3125e9).
        let m = MachineParams::nehalem_ep();
        let node = 2.0 * jacobi_roofline_default(&m);
        assert!((node / 1e9 - 2.3125).abs() < 1e-9);
    }

    #[test]
    fn rfo_lowers_the_roofline() {
        let m = MachineParams::nehalem_ep();
        let with_nt = jacobi_roofline_lups(&m, 16.0);
        let with_rfo = jacobi_roofline_lups(&m, 24.0);
        assert!((with_nt / with_rfo - 1.5).abs() < 1e-12);
    }

    #[test]
    fn code_balance_value() {
        assert!((naive_code_balance_words_per_flop() - 1.333).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_traffic_rejected() {
        let _ = jacobi_roofline_lups(&MachineParams::nehalem_ep(), 0.0);
    }
}
