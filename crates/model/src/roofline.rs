//! Bandwidth roofline for standard stencil sweeps (Eq. 2).
//!
//! With spatial blocking the kernel moves `B_c` bytes per lattice-site
//! update over the memory bus, so a "perfect" baseline runs at
//! `P0 = M_s / B_c` LUP/s per socket. `B_c` comes from the *operator*
//! ([`StencilOp::bytes_per_lup`]): 16 B/LUP for classic Jacobi `f64`
//! with streaming stores (the paper quotes 2.3 GLUP/s for its 18.5 GB/s
//! Nehalem socket), 24 with the read-for-ownership, more for operators
//! with extra read streams.

use tb_grid::Real;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{Jacobi6, StencilOp};

use crate::machine::MachineParams;

/// Expected memory-bound LUP/s for a baseline sweep on one socket, given
/// the per-update traffic `bytes_per_lup`.
pub fn roofline_lups(machine: &MachineParams, bytes_per_lup: f64) -> f64 {
    assert!(bytes_per_lup > 0.0);
    machine.ms / bytes_per_lup
}

/// Eq. 2 for an arbitrary operator: the traffic term is the operator's
/// code balance, not a hardcoded constant.
pub fn op_roofline_lups<T: Real, Op: StencilOp<T>>(
    machine: &MachineParams,
    op: &Op,
    store: StoreMode,
) -> f64 {
    roofline_lups(machine, op.bytes_per_lup(store))
}

/// Backwards-compatible name for [`roofline_lups`].
pub fn jacobi_roofline_lups(machine: &MachineParams, bytes_per_lup: f64) -> f64 {
    roofline_lups(machine, bytes_per_lup)
}

/// Eq. 2 with the paper's default: classic Jacobi, double precision,
/// streaming stores.
pub fn jacobi_roofline_default(machine: &MachineParams) -> f64 {
    op_roofline_lups::<f64, _>(machine, &Jacobi6, StoreMode::Streaming)
}

/// Naive code balance of the unblocked kernel in words/flop (paper §1.1:
/// `B_c = 8/6 W/F` counting the RFO).
pub fn naive_code_balance_words_per_flop() -> f64 {
    8.0 / 6.0
}

/// Words moved per flop for an arbitrary operator and store mode — the
/// generalization of the paper's `8/6 W/F`.
pub fn code_balance_words_per_flop<T: Real, Op: StencilOp<T>>(op: &Op, store: StoreMode) -> f64 {
    (op.bytes_per_lup(store) / T::bytes() as f64) / op.flops_per_lup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::Dims3;
    use tb_stencil::VarCoeff7;

    #[test]
    fn nehalem_expectation_matches_paper() {
        // "leading to an expectation of 2.3 GLUP/s for a standard Jacobi
        // algorithm in main memory" (§1.1) — per node (2 sockets x
        // 18.5 GB/s / 16 B = 2.31 GLUP/s... the paper's 2.3 GLUP/s is the
        // two-socket figure: 2 * 18.5e9/16 = 2.3125e9).
        let m = MachineParams::nehalem_ep();
        let node = 2.0 * jacobi_roofline_default(&m);
        assert!((node / 1e9 - 2.3125).abs() < 1e-9);
    }

    #[test]
    fn rfo_lowers_the_roofline() {
        let m = MachineParams::nehalem_ep();
        let j = Jacobi6;
        let with_nt = op_roofline_lups::<f64, _>(&m, &j, StoreMode::Streaming);
        let with_rfo = op_roofline_lups::<f64, _>(&m, &j, StoreMode::Normal);
        assert!((with_nt / with_rfo - 1.5).abs() < 1e-12);
    }

    #[test]
    fn extra_streams_lower_the_roofline_further() {
        let m = MachineParams::nehalem_ep();
        let v: VarCoeff7<f64> = VarCoeff7::banded(Dims3::cube(4));
        let jac = op_roofline_lups::<f64, _>(&m, &Jacobi6, StoreMode::Streaming);
        let var = op_roofline_lups::<f64, _>(&m, &v, StoreMode::Streaming);
        // One extra 8-byte read stream on top of 16 B/LUP: 2/3 the rate.
        assert!((var / jac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn code_balance_value() {
        assert!((naive_code_balance_words_per_flop() - 1.333).abs() < 1e-3);
        // The naive 8/6 counts the unblocked kernel's halo re-reads; the
        // generalized (blocked) form for classic Jacobi with RFO is
        // 3 words per 6-flop update.
        let b = code_balance_words_per_flop::<f64, _>(&Jacobi6, StoreMode::Normal);
        assert!((b - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_traffic_rejected() {
        let _ = roofline_lups(&MachineParams::nehalem_ep(), 0.0);
    }
}
