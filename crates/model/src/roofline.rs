//! Bandwidth roofline for standard stencil sweeps (Eq. 2).
//!
//! With spatial blocking the kernel moves `B_c` bytes per lattice-site
//! update over the memory bus, so a "perfect" baseline runs at
//! `P0 = M_s / B_c` LUP/s per socket. `B_c` comes from the *operator*
//! ([`StencilOp::bytes_per_lup`]): 16 B/LUP for classic Jacobi `f64`
//! with streaming stores (the paper quotes 2.3 GLUP/s for its 18.5 GB/s
//! Nehalem socket), 24 with the read-for-ownership, more for operators
//! with extra read streams.

use tb_grid::Real;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{Jacobi6, StencilOp};

use crate::machine::MachineParams;

/// Expected memory-bound LUP/s for a baseline sweep on one socket, given
/// the per-update traffic `bytes_per_lup`.
pub fn roofline_lups(machine: &MachineParams, bytes_per_lup: f64) -> f64 {
    assert!(bytes_per_lup > 0.0);
    machine.ms / bytes_per_lup
}

/// Eq. 2 for an arbitrary operator: the traffic term is the operator's
/// code balance, not a hardcoded constant.
pub fn op_roofline_lups<T: Real, Op: StencilOp<T>>(
    machine: &MachineParams,
    op: &Op,
    store: StoreMode,
) -> f64 {
    roofline_lups(machine, op.bytes_per_lup(store))
}

/// Backwards-compatible name for [`roofline_lups`].
pub fn jacobi_roofline_lups(machine: &MachineParams, bytes_per_lup: f64) -> f64 {
    roofline_lups(machine, bytes_per_lup)
}

/// Eq. 2 with the paper's default: classic Jacobi, double precision,
/// streaming stores.
pub fn jacobi_roofline_default(machine: &MachineParams) -> f64 {
    op_roofline_lups::<f64, _>(machine, &Jacobi6, StoreMode::Streaming)
}

/// Effective streaming bandwidth (B/s) when a fraction of a team's
/// traffic crosses to a remote ccNUMA domain.
///
/// First-touch page placement decides this fraction: a team whose
/// grids were touched by its own pinned workers streams everything at
/// the local rate (`remote_fraction = 0`), while a team computing on
/// pages the submitting client touched on another domain pays the
/// interconnect (QPI/HT) rate for that share. The two streams proceed
/// concurrently, so the combined rate is the harmonic (serial-fraction)
/// mix of the local rate `ms` and the remote rate
/// `ms * remote_penalty`:
///
/// `ms_eff = 1 / ((1 - f) / ms + f / (ms * penalty))`
///
/// `remote_penalty` is the remote-to-local bandwidth ratio in `(0, 1]`
/// (~0.6–0.7 measured on the paper's Nehalem EP testbed; 1.0 on UMA).
pub fn placed_bandwidth(machine: &MachineParams, remote_fraction: f64, remote_penalty: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&remote_fraction),
        "remote fraction is a share in [0, 1]"
    );
    assert!(
        remote_penalty > 0.0 && remote_penalty <= 1.0,
        "remote penalty is a bandwidth ratio in (0, 1]"
    );
    let local = machine.ms;
    let remote = machine.ms * remote_penalty;
    1.0 / ((1.0 - remote_fraction) / local + remote_fraction / remote)
}

/// Eq. 2 with NUMA placement folded in: the roofline at the effective
/// bandwidth of [`placed_bandwidth`]. With `remote_fraction = 0`
/// (worker-first-touched grids) this is exactly [`roofline_lups`];
/// with `remote_fraction = 1` (all pages on the wrong domain) the
/// expectation drops by the full remote penalty — the gap a serving
/// slice's ingest copy exists to close.
pub fn placed_roofline_lups(
    machine: &MachineParams,
    bytes_per_lup: f64,
    remote_fraction: f64,
    remote_penalty: f64,
) -> f64 {
    assert!(bytes_per_lup > 0.0);
    placed_bandwidth(machine, remote_fraction, remote_penalty) / bytes_per_lup
}

/// Optimistic service-time **floor** in seconds for a job of
/// `cell_updates` lattice-site updates with code balance `bytes_per_lup`.
///
/// Even a perfectly temporally blocked schedule cannot stream data
/// faster than the shared-cache bandwidth `M_c` — §1.4's asymptotic
/// speedup `M_c/M_s` caps every method in this workspace — so no
/// executor on this machine finishes the job sooner than
/// `cell_updates · B_c / M_c`. That makes the floor the right
/// admission-control test for deadline scheduling: a job whose deadline
/// is tighter than its floor would miss **even starting immediately on
/// an idle slice with the best possible plan**, so a server sheds it at
/// submission instead of queueing doomed work (`Rejected::Infeasible`
/// in `temporal_blocking::serve`). Callers pass the *streaming-store*
/// code balance (the lowest-traffic variant) to keep the bound
/// optimistic.
pub fn service_floor_seconds(
    machine: &MachineParams,
    bytes_per_lup: f64,
    cell_updates: u64,
) -> f64 {
    assert!(bytes_per_lup > 0.0);
    cell_updates as f64 * bytes_per_lup / machine.mc
}

/// Naive code balance of the unblocked kernel in words/flop (paper §1.1:
/// `B_c = 8/6 W/F` counting the RFO).
pub fn naive_code_balance_words_per_flop() -> f64 {
    8.0 / 6.0
}

/// Words moved per flop for an arbitrary operator and store mode — the
/// generalization of the paper's `8/6 W/F`.
pub fn code_balance_words_per_flop<T: Real, Op: StencilOp<T>>(op: &Op, store: StoreMode) -> f64 {
    (op.bytes_per_lup(store) / T::bytes() as f64) / op.flops_per_lup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::Dims3;
    use tb_stencil::VarCoeff7;

    #[test]
    fn nehalem_expectation_matches_paper() {
        // "leading to an expectation of 2.3 GLUP/s for a standard Jacobi
        // algorithm in main memory" (§1.1) — per node (2 sockets x
        // 18.5 GB/s / 16 B = 2.31 GLUP/s... the paper's 2.3 GLUP/s is the
        // two-socket figure: 2 * 18.5e9/16 = 2.3125e9).
        let m = MachineParams::nehalem_ep();
        let node = 2.0 * jacobi_roofline_default(&m);
        assert!((node / 1e9 - 2.3125).abs() < 1e-9);
    }

    #[test]
    fn rfo_lowers_the_roofline() {
        let m = MachineParams::nehalem_ep();
        let j = Jacobi6;
        let with_nt = op_roofline_lups::<f64, _>(&m, &j, StoreMode::Streaming);
        let with_rfo = op_roofline_lups::<f64, _>(&m, &j, StoreMode::Normal);
        assert!((with_nt / with_rfo - 1.5).abs() < 1e-12);
    }

    #[test]
    fn extra_streams_lower_the_roofline_further() {
        let m = MachineParams::nehalem_ep();
        let v: VarCoeff7<f64> = VarCoeff7::banded(Dims3::cube(4));
        let jac = op_roofline_lups::<f64, _>(&m, &Jacobi6, StoreMode::Streaming);
        let var = op_roofline_lups::<f64, _>(&m, &v, StoreMode::Streaming);
        // One extra 8-byte read stream on top of 16 B/LUP: 2/3 the rate.
        assert!((var / jac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn code_balance_value() {
        assert!((naive_code_balance_words_per_flop() - 1.333).abs() < 1e-3);
        // The naive 8/6 counts the unblocked kernel's halo re-reads; the
        // generalized (blocked) form for classic Jacobi with RFO is
        // 3 words per 6-flop update.
        let b = code_balance_words_per_flop::<f64, _>(&Jacobi6, StoreMode::Normal);
        assert!((b - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_traffic_rejected() {
        let _ = roofline_lups(&MachineParams::nehalem_ep(), 0.0);
    }

    #[test]
    fn local_placement_recovers_the_plain_roofline() {
        let m = MachineParams::nehalem_ep();
        for penalty in [0.3, 0.65, 1.0] {
            assert_eq!(
                placed_roofline_lups(&m, 16.0, 0.0, penalty),
                roofline_lups(&m, 16.0),
                "no remote traffic → placement cannot matter"
            );
        }
        // UMA (penalty 1): the fraction cannot matter either.
        assert!((placed_roofline_lups(&m, 16.0, 0.7, 1.0) - roofline_lups(&m, 16.0)).abs() < 1e-3);
    }

    #[test]
    fn remote_traffic_degrades_monotonically_to_the_penalty() {
        let m = MachineParams::nehalem_ep();
        let penalty = 0.65;
        let mut prev = f64::INFINITY;
        for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let lups = placed_roofline_lups(&m, 16.0, f, penalty);
            assert!(lups < prev || f == 0.0, "fraction {f} must not speed up");
            prev = lups;
        }
        // Fully remote: exactly the penalty times the local roofline.
        let full = placed_roofline_lups(&m, 16.0, 1.0, penalty);
        assert!((full / roofline_lups(&m, 16.0) - penalty).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "remote penalty")]
    fn zero_penalty_rejected() {
        let _ = placed_bandwidth(&MachineParams::nehalem_ep(), 0.5, 0.0);
    }

    #[test]
    fn service_floor_is_the_cache_bandwidth_bound() {
        let m = MachineParams::nehalem_ep();
        // 1e9 updates at the streaming Jacobi balance (16 B/LUP):
        // 16 GB over Mc = 80 GB/s is exactly 0.2 s.
        let floor = service_floor_seconds(&m, 16.0, 1_000_000_000);
        assert!((floor - 0.2).abs() < 1e-12);
        // The floor is below the memory roofline's time (Mc > Ms): a
        // baseline sweep at Eq. 2 speed takes Mc/Ms times longer.
        let roofline_time = 1e9 / roofline_lups(&m, 16.0);
        assert!(floor < roofline_time);
        assert!((roofline_time / floor - m.max_speedup()).abs() < 1e-9);
        // Linear in work and in traffic.
        assert_eq!(service_floor_seconds(&m, 16.0, 2_000_000_000), 2.0 * floor);
        assert_eq!(service_floor_seconds(&m, 32.0, 1_000_000_000), 2.0 * floor);
    }

    #[test]
    #[should_panic]
    fn service_floor_rejects_zero_traffic() {
        let _ = service_floor_seconds(&MachineParams::nehalem_ep(), 0.0, 1);
    }
}
