//! Latency/bandwidth network model (paper §2.1).
//!
//! A message of `b` bytes costs `λ + b/BW` seconds; the paper sets QDR
//! InfiniBand parameters (asymptotic unidirectional bandwidth 3.2 GB/s,
//! latency 1.8 µs) and assumes no overlap of communication and
//! computation. The same struct also carries a buffer-copy bandwidth: the
//! paper's profiling found that packing halo data into send buffers costs
//! about as much as the wire transfer itself (§2.2), which the
//! distributed solver models explicitly.

use serde::{Deserialize, Serialize};

/// Point-to-point network parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Asymptotic unidirectional bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Memory bandwidth for packing/unpacking message buffers (B/s);
    /// `f64::INFINITY` disables copy cost.
    pub copy_bandwidth: f64,
}

impl NetworkParams {
    /// The paper's QDR InfiniBand fabric (§2.1): 3.2 GB/s, 1.8 µs.
    /// Copy bandwidth calibrated from the §2.2 profiling observation
    /// ("copying halo data … causes about the same overhead as the
    /// actual data transfer"): pack + unpack *together* cost one wire
    /// transfer, i.e. each side copies at 2x the wire bandwidth.
    pub fn qdr_infiniband() -> Self {
        Self {
            latency: 1.8e-6,
            bandwidth: 3.2e9,
            copy_bandwidth: 6.4e9,
        }
    }

    /// An idealized zero-cost network (for ideal-scaling lines).
    pub fn ideal() -> Self {
        Self {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            copy_bandwidth: f64::INFINITY,
        }
    }

    /// Wire time of one message.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Pack + unpack cost of shipping `bytes` through intermediate
    /// buffers (both sides, once each).
    pub fn copy_time(&self, bytes: usize) -> f64 {
        if self.copy_bandwidth.is_infinite() {
            0.0
        } else {
            2.0 * bytes as f64 / self.copy_bandwidth
        }
    }

    /// Total cost of one halo message including buffer copies.
    pub fn halo_message_time(&self, bytes: usize) -> f64 {
        self.message_time(bytes) + self.copy_time(bytes)
    }

    /// Effective bandwidth of a message of `bytes` (the paper's
    /// "effective bandwidth rises dramatically with growing message size
    /// in the latency-dominated regime").
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        bytes as f64 / self.message_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdr_parameters() {
        let n = NetworkParams::qdr_infiniband();
        assert_eq!(n.latency, 1.8e-6);
        assert_eq!(n.bandwidth, 3.2e9);
    }

    #[test]
    fn tiny_messages_are_latency_bound() {
        let n = NetworkParams::qdr_infiniband();
        let t8 = n.message_time(8);
        assert!((t8 - 1.8e-6) / 1.8e-6 < 0.01);
        // Effective bandwidth of an 8-byte message is puny.
        assert!(n.effective_bandwidth(8) < 5e6);
    }

    #[test]
    fn large_messages_approach_asymptotic_bandwidth() {
        let n = NetworkParams::qdr_infiniband();
        let eff = n.effective_bandwidth(64 * 1024 * 1024);
        assert!(eff > 0.99 * n.bandwidth);
    }

    #[test]
    fn aggregation_beats_fragmentation() {
        // h messages of size b cost more than one message of size h*b —
        // the whole point of multi-layer halos at small L.
        let n = NetworkParams::qdr_infiniband();
        let h = 16;
        let b = 800; // a 10x10 f64 face
        assert!(h as f64 * n.message_time(b) > n.message_time(h * b));
    }

    #[test]
    fn copy_cost_matches_paper_observation() {
        // §2.2: pack + unpack together cost about one wire transfer.
        let n = NetworkParams::qdr_infiniband();
        let bytes = 1 << 20;
        let wire = n.message_time(bytes);
        let copy = n.copy_time(bytes);
        assert!((copy / wire - 1.0).abs() < 0.02);
        let ideal = NetworkParams::ideal();
        assert_eq!(ideal.copy_time(bytes), 0.0);
        assert_eq!(ideal.message_time(bytes), 0.0);
    }
}
