//! The single-cache diagnostic performance model (paper §1.4, Eqs. 4–5).
//!
//! Assumptions (quoted from the paper): the shared cache holds `(t-1)·d_u`
//! blocks; the block size makes the shared cache supply exactly one load
//! and one store per stencil update; all upper cache levels are infinitely
//! fast; code execution is purely bandwidth-bound and the memory bus is
//! saturated. The model is *diagnostic*: the paper shows it matches
//! measurements at `T = 1` and fails at larger `T` once execution
//! decouples from memory bandwidth — reproducing that failure is part of
//! experiment E6.

use tb_grid::Real;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{Jacobi6, StencilOp};

use crate::machine::MachineParams;

/// Generalized Eq. 4: wall time (seconds per lattice site) for the `t·T`
/// block updates a team performs while a block travels its pipeline. The
/// first update streams the block from memory at the operator's
/// streaming code balance; each further update moves one load + one
/// store (plus the operator's extra read streams) through the shared
/// cache.
pub fn team_block_time_op<T: Real, Op: StencilOp<T>>(
    machine: &MachineParams,
    op: &Op,
    t: usize,
    updates: usize,
) -> f64 {
    let tt = (t * updates) as f64;
    assert!(tt >= 1.0);
    let bytes_mem = op.bytes_per_lup(StoreMode::Streaming);
    let bytes_cache = (2.0 + op.extra_read_streams()) * T::bytes() as f64;
    bytes_mem / machine.ms1 + (tt - 1.0) * bytes_cache / machine.mc
}

/// Eq. 4 as printed in the paper (classic Jacobi, double precision):
///
/// `T_b = 16B/M_{s,1} + 2(tT - 1) · 8B/M_c`
pub fn team_block_time(machine: &MachineParams, t: usize, updates: usize) -> f64 {
    team_block_time_op::<f64, _>(machine, &Jacobi6, t, updates)
}

/// Eq. 5: expected speedup of pipelined temporal blocking over the
/// standard Jacobi:
///
/// `T_0/T_b = (M_{s,1}/M_s) · tT / (1 + (tT-1)·M_{s,1}/M_c)`
pub fn pipeline_speedup(machine: &MachineParams, t: usize, updates: usize) -> f64 {
    let tt = (t * updates) as f64;
    assert!(tt >= 1.0);
    let r = machine.ms1 / machine.mc;
    (machine.ms1 / machine.ms) * tt / (1.0 + (tt - 1.0) * r)
}

/// Expected speedup of wavefront temporal blocking over the standard
/// solver: with `t` threads stacked along the time axis, one memory
/// traversal performs `t` updates — Eq. 5 at depth `t·T` with `T = 1`.
/// Valid while the wavefront's working set (≈ `2R·t + 2R` planes of
/// both buffers) stays in the shared cache; the tuner in `tb-plan`
/// checks that bound before trusting this number.
pub fn wavefront_speedup(machine: &MachineParams, threads: usize) -> f64 {
    pipeline_speedup(machine, threads.max(1), 1)
}

/// Predicted socket performance in LUP/s: Eq. 2 baseline times Eq. 5.
pub fn predicted_socket_lups(machine: &MachineParams, t: usize, updates: usize) -> f64 {
    crate::roofline::jacobi_roofline_default(machine) * pipeline_speedup(machine, t, updates)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §1.4: "leading to an expected speedup of 16T/(7+4T) at t = 4, or
    /// 1.45 at T = 1".
    #[test]
    fn nehalem_t4_formula() {
        let m = MachineParams::nehalem_ep();
        for updates in 1..=8 {
            let tt = updates as f64;
            // Derive the paper's closed form with Ms/Ms,1 = 2 and
            // Mc/Ms,1 = 8 exactly: speedup = (1/2)·4T/(1+(4T-1)/8)
            //                              = 16T/(7+4T).
            let paper = 16.0 * tt / (7.0 + 4.0 * tt);
            // Our params use Ms = 18.5 (ratio 1.85, not exactly 2); use a
            // machine with the paper's idealized ratios for the check.
            let ideal = MachineParams {
                ms: 20.0e9,
                ms1: 10.0e9,
                mc: 80.0e9,
                ..m
            };
            let got = pipeline_speedup(&ideal, 4, updates);
            assert!((got - paper).abs() < 1e-12, "T={updates}: {got} vs {paper}");
        }
    }

    #[test]
    fn t1_speedup_is_about_1_45() {
        let ideal = MachineParams {
            ms: 20.0e9,
            ms1: 10.0e9,
            mc: 80.0e9,
            ..MachineParams::nehalem_ep()
        };
        let s = pipeline_speedup(&ideal, 4, 1);
        assert!((s - 16.0 / 11.0).abs() < 1e-12);
        assert!((s - 1.4545).abs() < 1e-3);
    }

    #[test]
    fn limit_is_mc_over_ms() {
        // "In the limit of very large t·T, this ratio becomes Mc/Ms."
        let m = MachineParams::nehalem_ep();
        let s = pipeline_speedup(&m, 4, 100_000);
        assert!((s - m.max_speedup()).abs() / m.max_speedup() < 1e-3);
    }

    #[test]
    fn bandwidth_scaling_machine_gains_nothing() {
        // "if the memory bandwidth scales with core count, the factor of t
        // in the numerator is canceled".
        let m = MachineParams::bandwidth_scaling(4);
        let s = pipeline_speedup(&m, 4, 1);
        assert!(s <= 1.0 + 1e-12, "speedup {s} should not exceed 1");
    }

    #[test]
    fn speedup_increases_with_saturation() {
        // More bandwidth-starved designs profit more (paper §3).
        let nehalem = MachineParams::nehalem_ep();
        let core2 = MachineParams::core2_like();
        assert!(
            pipeline_speedup(&core2, 2, 2) / (core2.mc / core2.ms)
                > pipeline_speedup(&nehalem, 4, 1) / (nehalem.mc / nehalem.ms) - 1.0
        );
        // Direct check: core2-like saturation ratio is closer to 1 so its
        // relative gain at equal tT is larger.
        assert!(pipeline_speedup(&core2, 4, 1) > pipeline_speedup(&nehalem, 4, 1));
    }

    #[test]
    fn wavefront_matches_pipeline_at_unit_updates() {
        let m = MachineParams::nehalem_ep();
        for t in [1usize, 2, 4, 8] {
            assert_eq!(wavefront_speedup(&m, t), pipeline_speedup(&m, t, 1));
        }
        assert_eq!(wavefront_speedup(&m, 0), pipeline_speedup(&m, 1, 1));
    }

    #[test]
    fn block_time_monotone_in_depth() {
        let m = MachineParams::nehalem_ep();
        assert!(team_block_time(&m, 4, 2) > team_block_time(&m, 4, 1));
        // First update costs the memory fetch; extra updates only cache BW.
        let base = team_block_time(&m, 1, 1);
        assert!((base - 16.0 / m.ms1).abs() < 1e-18);
    }

    #[test]
    fn predicted_socket_lups_reasonable() {
        // At T=1 the paper measures ~1600 MLUP/s on one socket; prediction
        // with the idealized ratios is P0 * 1.45 ≈ 1.45-1.7 GLUP/s.
        let m = MachineParams::nehalem_ep();
        let p = predicted_socket_lups(&m, 4, 1);
        assert!(p > 1.4e9 && p < 2.0e9, "{p}");
    }
}
