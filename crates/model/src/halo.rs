//! The multi-layer halo advantage model (paper §2.1, Fig. 5).
//!
//! A subdomain of `l_x × l_y × l_z` cells exchanges `h` halo layers once
//! per `h` updates. Costs per cycle of `h` updates:
//!
//! * bulk computation: `h · l_x l_y l_z / P`,
//! * extra face work: update `s` (1-based) covers a domain `h - s` layers
//!   larger in each (communicating) direction,
//! * communication: ghost-cell expansion — two messages per direction,
//!   sent consecutively along x, then y (x-extended), then z (x- and
//!   y-extended), with a latency/bandwidth cost each (Fig. 4),
//!
//! with *no* overlap of communication and computation. The advantage
//! plotted in Fig. 5 is `time_per_update(h = 1) / time_per_update(h)`.

use crate::network::NetworkParams;

/// One subdomain's workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct HaloWorkload {
    /// Subdomain extents in cells (owned cells, excluding ghosts).
    pub local: [usize; 3],
    /// Which directions actually communicate (false at physical domain
    /// boundaries or when the rank grid has extent 1 in that dim).
    pub comm: [bool; 3],
    /// Node (process) performance in LUP/s, assumed independent of the
    /// working set (the paper uses 2000 MLUP/s).
    pub lups: f64,
    /// Bytes per grid word (8 for f64).
    pub word: usize,
    /// Account the ghost-cell-expansion growth of y/z slabs. The paper's
    /// Fig. 5 model treats "edge and corner contributions" as negligible
    /// (`false`); the real exchange ships them (`true`), which matters
    /// once `h` approaches `L`.
    pub expanded_slabs: bool,
}

impl HaloWorkload {
    /// The paper's Fig. 5 setup: cubic subdomain `L³`, all directions
    /// communicating, 2000 MLUP/s, double precision, and the paper's
    /// simplifications (no slab expansion; pair with a copy-free
    /// [`NetworkParams`], see [`fig5_network`]).
    pub fn fig5(l: usize) -> Self {
        Self {
            local: [l, l, l],
            comm: [true, true, true],
            lups: 2.0e9,
            word: 8,
            expanded_slabs: false,
        }
    }

    /// Realistic variant: same workload but accounting expanded slabs.
    pub fn realistic(local: [usize; 3], comm: [bool; 3], lups: f64) -> Self {
        Self {
            local,
            comm,
            lups,
            word: 8,
            expanded_slabs: true,
        }
    }

    /// Workload whose compute rate is the *operator's* Eq. 2 roofline on
    /// `machine` (instead of an assumed constant) and whose transfer
    /// word size is the operator's element type — the Fig. 5 model fed
    /// by per-operator code balance.
    pub fn for_op<T: tb_grid::Real, Op: tb_stencil::StencilOp<T>>(
        local: [usize; 3],
        comm: [bool; 3],
        machine: &crate::MachineParams,
        op: &Op,
        store: tb_stencil::kernel::StoreMode,
    ) -> Self {
        Self {
            local,
            comm,
            lups: crate::roofline::op_roofline_lups(machine, op, store),
            word: T::bytes(),
            expanded_slabs: true,
        }
    }
}

/// The network parameters of the paper's Fig. 5 analysis: QDR InfiniBand
/// wire model *without* buffer-copy costs ("this simple model disregards
/// … overhead for copying to and from message buffers", §2.1).
pub fn fig5_network() -> NetworkParams {
    NetworkParams {
        copy_bandwidth: f64::INFINITY,
        ..NetworkParams::qdr_infiniband()
    }
}

/// Cells in the slab sent along direction `d` for halo width `h`,
/// following the ghost-cell-expansion ordering: x slabs are `h·l_y·l_z`,
/// y slabs include the x ghosts (`(l_x+2h)`), z slabs include x and y
/// ghosts.
pub fn slab_cells(w: &HaloWorkload, d: usize, h: usize) -> usize {
    let ext = |dim: usize| -> usize {
        if w.expanded_slabs && w.comm[dim] {
            w.local[dim] + 2 * h
        } else {
            w.local[dim]
        }
    };
    match d {
        0 => h * w.local[1] * w.local[2],
        1 => h * ext(0) * w.local[2],
        _ => h * ext(0) * ext(1),
    }
}

/// Communication time of one full h-layer exchange (6 messages, or fewer
/// at physical boundaries), serialized as the paper assumes.
pub fn exchange_time(w: &HaloWorkload, net: &NetworkParams, h: usize) -> f64 {
    let mut t = 0.0;
    for d in 0..3 {
        if w.comm[d] {
            let bytes = slab_cells(w, d, h) * w.word;
            t += 2.0 * net.halo_message_time(bytes);
        }
    }
    t
}

/// Extra (redundant) cell updates in one cycle: update `s` covers a
/// domain `h - s` layers larger per communicating direction. Following
/// the paper's cost breakdown ("'bulk' and additional 'face' stencil
/// updates"), only the six face slabs are counted — edge and corner
/// volumes are dropped, exactly like the edge/corner message traffic in
/// the unexpanded slab model. (The *real* distributed solver of tb-dist
/// does update those edges/corners; this is the paper's model, not the
/// implementation.)
pub fn extra_cells_per_cycle(w: &HaloWorkload, h: usize) -> usize {
    let mut extra = 0usize;
    for s in 1..=h {
        let g = h - s;
        for d in 0..3 {
            if w.comm[d] {
                let face: usize = (0..3).filter(|&e| e != d).map(|e| w.local[e]).product();
                extra += 2 * g * face;
            }
        }
    }
    extra
}

/// Wall time of one cycle of `h` updates (compute + extra + exchange).
pub fn halo_cycle_time(w: &HaloWorkload, net: &NetworkParams, h: usize) -> f64 {
    assert!(h >= 1);
    let bulk: usize = w.local.iter().product();
    let compute = (h * bulk) as f64 / w.lups;
    let extra = extra_cells_per_cycle(w, h) as f64 / w.lups;
    compute + extra + exchange_time(w, net, h)
}

/// Fig. 5's y-axis: `advantage(h) = t(h=1)/t(h)` per update.
pub fn halo_advantage(w: &HaloWorkload, net: &NetworkParams, h: usize) -> f64 {
    let t1 = halo_cycle_time(w, net, 1);
    let th = halo_cycle_time(w, net, h) / h as f64;
    t1 / th
}

/// Fig. 5 inset: useful computation time over total time per cycle.
pub fn computational_efficiency(w: &HaloWorkload, net: &NetworkParams, h: usize) -> f64 {
    let bulk: usize = w.local.iter().product();
    let compute = (h * bulk) as f64 / w.lups;
    compute / halo_cycle_time(w, net, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkParams {
        super::fig5_network()
    }

    #[test]
    fn for_op_derives_rate_and_word_from_operator() {
        use tb_stencil::kernel::StoreMode;
        use tb_stencil::Jacobi6;
        let m = crate::MachineParams::nehalem_ep();
        let w =
            HaloWorkload::for_op::<f64, _>([30; 3], [true; 3], &m, &Jacobi6, StoreMode::Streaming);
        assert!((w.lups - m.ms / 16.0).abs() < 1e-6);
        assert_eq!(w.word, 8);
        let w32 =
            HaloWorkload::for_op::<f32, _>([30; 3], [true; 3], &m, &Jacobi6, StoreMode::Streaming);
        assert_eq!(w32.word, 4);
        assert!(w32.lups > w.lups, "f32 halves the code balance");
    }

    #[test]
    fn slab_sizes_follow_ghost_expansion() {
        let w = HaloWorkload::realistic([10, 10, 10], [true; 3], 2.0e9);
        assert_eq!(slab_cells(&w, 0, 2), 2 * 10 * 10);
        assert_eq!(slab_cells(&w, 1, 2), 2 * 14 * 10);
        assert_eq!(slab_cells(&w, 2, 2), 2 * 14 * 14);
        // Paper model: no expansion.
        let p = HaloWorkload::fig5(10);
        assert_eq!(slab_cells(&p, 2, 2), 2 * 10 * 10);
    }

    #[test]
    fn no_comm_no_cost() {
        let mut w = HaloWorkload::fig5(10);
        w.comm = [false, false, false];
        assert_eq!(exchange_time(&w, &net(), 4), 0.0);
        assert_eq!(extra_cells_per_cycle(&w, 4), 0);
        // Advantage degenerates to exactly 1 (pure compute both ways).
        assert!((halo_advantage(&w, &net(), 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_work_formula_h2() {
        // h=2 on L=10: update 1 adds six 1-layer faces (6*100), update 2
        // adds none.
        let w = HaloWorkload::fig5(10);
        assert_eq!(extra_cells_per_cycle(&w, 2), 6 * 100);
        // One-sided communication counts only that direction's faces.
        let mut one = w;
        one.comm = [true, false, false];
        assert_eq!(extra_cells_per_cycle(&one, 2), 2 * 100);
    }

    #[test]
    fn advantage_tends_to_one_at_large_l() {
        // "multi-layer halos have no influence at large subdomain sizes."
        // The extra-work fraction scales like 3h/L, so small h converges
        // within the plotted range and h=32 recovers monotonically.
        for h in [2usize, 4, 8] {
            let w = HaloWorkload::fig5(400);
            let a = halo_advantage(&w, &net(), h);
            assert!((a - 1.0).abs() < 0.12, "h={h}: {a}");
        }
        let a100 = halo_advantage(&HaloWorkload::fig5(100), &net(), 32);
        let a1000 = halo_advantage(&HaloWorkload::fig5(1000), &net(), 32);
        let a4000 = halo_advantage(&HaloWorkload::fig5(4000), &net(), 32);
        assert!(a100 < a1000 && a1000 < a4000, "{a100} {a1000} {a4000}");
        assert!((a4000 - 1.0).abs() < 0.1, "{a4000}");
    }

    #[test]
    fn aggregation_wins_at_small_l() {
        // "At even smaller L <~ 20, the positive effect of message
        // aggregation over-compensates the halo overhead."
        for h in [4usize, 8, 16, 32] {
            let w = HaloWorkload::fig5(4);
            let a = halo_advantage(&w, &net(), h);
            assert!(a > 1.2, "h={h}: {a}");
        }
        // And the gain grows with h in this regime (Fig. 5 ordering).
        let w = HaloWorkload::fig5(4);
        let a8 = halo_advantage(&w, &net(), 8);
        let a32 = halo_advantage(&w, &net(), 32);
        assert!(a32 > a8, "{a32} vs {a8}");
    }

    #[test]
    fn extra_work_dips_below_one_mid_range() {
        // "As the domain gets smaller (20 <~ L <~ 100), extra halo work
        // starts to degrade performance … a relevant impact can only be
        // expected at h >~ 16."
        let w = HaloWorkload::fig5(40);
        let a32 = halo_advantage(&w, &net(), 32);
        assert!(a32 < 0.95, "h=32 at L=40 should lose: {a32}");
        let a2 = halo_advantage(&w, &net(), 2);
        assert!(a2 > 0.95, "h=2 should be near-neutral at L=40: {a2}");
    }

    #[test]
    fn efficiency_collapses_below_l100() {
        // Inset: "the algorithm is strongly communication-limited below
        // L ≈ 100, such that parallel efficiency is very low."
        let e_small = computational_efficiency(&HaloWorkload::fig5(10), &net(), 2);
        let e_large = computational_efficiency(&HaloWorkload::fig5(300), &net(), 2);
        assert!(e_small < 0.45, "{e_small}");
        assert!(e_large > 0.85, "{e_large}");
        // Efficiency is monotone-ish in L for fixed h.
        let e_mid = computational_efficiency(&HaloWorkload::fig5(100), &net(), 2);
        assert!(e_small < e_mid && e_mid < e_large);
    }

    #[test]
    fn advantage_at_one_is_identity() {
        let w = HaloWorkload::fig5(30);
        assert!((halo_advantage(&w, &net(), 1) - 1.0).abs() < 1e-12);
    }
}
