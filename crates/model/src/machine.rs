//! Machine parameter sets for the analytic models.

use serde::{Deserialize, Serialize};

/// Bandwidth parameters of one shared-memory node, in the paper's
/// notation (§1.1, §1.4):
///
/// * `ms` — saturated STREAM COPY bandwidth of a socket (`M_s`),
/// * `ms1` — single-threaded STREAM COPY bandwidth (`M_{s,1}`),
/// * `mc` — multi-threaded shared-cache bandwidth (`M_c`),
///
/// all in bytes/second, plus enough structure for the cluster models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Saturated per-socket memory bandwidth `M_s` (B/s).
    pub ms: f64,
    /// Single-thread memory bandwidth `M_{s,1}` (B/s).
    pub ms1: f64,
    /// Shared-cache bandwidth `M_c` (B/s).
    pub mc: f64,
    /// Cores per socket (`t`, the natural team size).
    pub cores_per_socket: usize,
    /// Sockets per node.
    pub sockets: usize,
    /// Shared cache capacity per socket in bytes.
    pub cache_bytes: usize,
}

impl MachineParams {
    /// The paper's Nehalem EP testbed: `M_s = 18.5 GB/s`, `M_{s,1} ≈
    /// 10 GB/s`, `M_c ≈ 8 × M_{s,1}` (§1.1 and §1.4: "On the Nehalem
    /// system we use, Ms/Ms,1 ≈ 2 and Mc/Ms,1 ≈ 8").
    pub fn nehalem_ep() -> Self {
        Self {
            ms: 18.5e9,
            ms1: 10.0e9,
            mc: 80.0e9,
            cores_per_socket: 4,
            sockets: 2,
            cache_bytes: 8 * 1024 * 1024,
        }
    }

    /// An (idealized) Core 2–era machine: bandwidth-starved — memory
    /// bandwidth saturates with one core (`M_s ≈ M_{s,1}`), so temporal
    /// blocking has the most to gain (paper §3: older designs "profit
    /// more from temporal blocking").
    pub fn core2_like() -> Self {
        Self {
            ms: 8.0e9,
            ms1: 7.0e9,
            mc: 48.0e9,
            cores_per_socket: 2,
            sockets: 2,
            cache_bytes: 6 * 1024 * 1024,
        }
    }

    /// A hypothetical machine whose memory bandwidth scales with core
    /// count (`M_s = t · M_{s,1}`) — the paper's "bad candidate for
    /// temporal blocking".
    pub fn bandwidth_scaling(cores: usize) -> Self {
        Self {
            ms: 10.0e9 * cores as f64,
            ms1: 10.0e9,
            mc: 80.0e9,
            cores_per_socket: cores,
            sockets: 1,
            cache_bytes: 8 * 1024 * 1024,
        }
    }

    /// `M_s / M_{s,1}`: how far one thread is from saturating the bus.
    pub fn saturation_ratio(&self) -> f64 {
        self.ms / self.ms1
    }

    /// `M_c / M_s`: the asymptotic temporal-blocking speedup (§1.4).
    pub fn max_speedup(&self) -> f64 {
        self.mc / self.ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_ratios_match_paper() {
        let m = MachineParams::nehalem_ep();
        // Ms/Ms,1 ≈ 2, Mc/Ms,1 ≈ 8, Mc/Ms ≈ 4 (all quoted in §1.4).
        assert!((m.saturation_ratio() - 1.85).abs() < 0.1);
        assert!((m.mc / m.ms1 - 8.0).abs() < 1e-12);
        assert!((m.max_speedup() - 4.32).abs() < 0.1);
    }

    #[test]
    fn bandwidth_scaling_machine_saturates_per_core() {
        let m = MachineParams::bandwidth_scaling(4);
        assert_eq!(m.saturation_ratio(), 4.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = MachineParams::nehalem_ep();
        let s = format!("{m:?}");
        assert!(s.contains("18500000000"));
    }
}
