//! Staging-grid recycling.
//!
//! Per-cycle staging allocations — overlapped-exchange snapshot grids,
//! the B buffer of a two-grid pipeline, compressed-grid storage, NUMA
//! subdomain boxes — are the allocator-side twin of per-sweep thread
//! spawning: cheap once, expensive times ten thousand. [`GridPool`]
//! keeps returned grids and hands them back to the next acquirer with
//! matching dimensions.
//!
//! **Reuse contract:** a reused grid keeps the *stale contents* of its
//! previous life (a fresh one is zeroed by allocation). Every consumer
//! in this workspace writes a region before reading it — staging shells
//! are snapshotted, ghost slabs unpacked, pipeline B buffers copied from
//! the initial state — and the bitwise verification suites hold them to
//! that, so no zeroing pass is spent per acquire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tb_grid::{Dims3, Grid3, Real};

/// Default number of grids a pool parks before evicting the oldest:
/// long-running services solving many distinct problem shapes must not
/// accumulate dead allocations without bound. Large enough for every
/// concurrent consumer in this workspace (a NUMA node run parks two
/// grids per team). Long-lived per-tenant runtimes serving a wide
/// problem mix raise it with [`GridPool::with_capacity`] /
/// [`crate::Runtime::with_pool_capacity`].
pub const DEFAULT_POOL_CAPACITY: usize = 8;

/// A pool of same-typed grids, keyed by their dimensions.
pub struct GridPool<T: Real> {
    free: Mutex<Vec<Grid3<T>>>,
    capacity: usize,
    /// Fresh `Grid3::zeroed` allocations performed by [`GridPool::acquire`]
    /// misses over the pool's lifetime — the observable half of the
    /// "warm paths allocate nothing" contract.
    fresh: AtomicU64,
}

impl<T: Real> GridPool<T> {
    /// A pool with the default capacity ([`DEFAULT_POOL_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_POOL_CAPACITY)
    }

    /// A pool parking at most `capacity` grids (≥ 1); beyond that,
    /// [`GridPool::release`] evicts the oldest parked grid.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a grid pool needs capacity >= 1");
        Self {
            free: Mutex::new(Vec::new()),
            capacity,
            fresh: AtomicU64::new(0),
        }
    }

    /// The eviction bound this pool was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Take a grid of exactly `dims`: a recycled one when available
    /// (stale contents — see the module docs), else a fresh zeroed
    /// allocation.
    pub fn acquire(&self, dims: Dims3) -> Grid3<T> {
        match self.try_acquire(dims) {
            Some(g) => g,
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Grid3::zeroed(dims)
            }
        }
    }

    /// The pool-hit half of [`GridPool::acquire`]: a recycled grid of
    /// exactly `dims` (stale contents), or `None` without allocating.
    /// Placement-aware callers ([`crate::Runtime::acquire_grid`]) use
    /// this to tell a reuse (pages already placed by a previous life)
    /// from a miss that needs a first-touch pass.
    pub fn try_acquire(&self, dims: Dims3) -> Option<Grid3<T>> {
        let mut free = self.free.lock();
        free.iter()
            .position(|g| g.dims() == dims)
            .map(|i| free.swap_remove(i))
    }

    /// Fresh allocations performed by acquire misses since the pool was
    /// built. A warm serving path holds this flat across jobs.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Count `n` externally performed fresh allocations against this
    /// pool's [`GridPool::fresh_allocations`] ledger (used by
    /// [`crate::Runtime::acquire_grid`], which allocates outside the
    /// pool lock so it can first-touch before anyone sees the grid).
    pub(crate) fn note_fresh(&self, n: u64) {
        self.fresh.fetch_add(n, Ordering::Relaxed);
    }

    /// Return a grid for later reuse. The oldest parked grid is dropped
    /// when the pool is already full ([`GridPool::capacity`]), so a pool
    /// shared across many problem shapes stays bounded.
    pub fn release(&self, grid: Grid3<T>) {
        let mut free = self.free.lock();
        if free.len() >= self.capacity {
            free.remove(0);
        }
        free.push(grid);
    }

    /// [`GridPool::acquire`] wrapped so the grid returns automatically.
    pub fn acquire_pooled(self: &Arc<Self>, dims: Dims3) -> PooledGrid<T> {
        PooledGrid {
            grid: Some(self.acquire(dims)),
            pool: Arc::clone(self),
        }
    }

    /// Number of grids currently waiting for reuse (diagnostics/tests).
    pub fn free_grids(&self) -> usize {
        self.free.lock().len()
    }
}

impl<T: Real> Default for GridPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII wrapper: dereferences to the grid, returns it to its pool on
/// drop. Keeps the pool alive through an `Arc`, so it may outlive the
/// [`crate::Runtime`] that handed it out.
pub struct PooledGrid<T: Real> {
    grid: Option<Grid3<T>>,
    pool: Arc<GridPool<T>>,
}

impl<T: Real> std::ops::Deref for PooledGrid<T> {
    type Target = Grid3<T>;
    fn deref(&self) -> &Grid3<T> {
        self.grid.as_ref().expect("grid present until drop")
    }
}

impl<T: Real> std::ops::DerefMut for PooledGrid<T> {
    fn deref_mut(&mut self) -> &mut Grid3<T> {
        self.grid.as_mut().expect("grid present until drop")
    }
}

impl<T: Real> Drop for PooledGrid<T> {
    fn drop(&mut self) {
        if let Some(grid) = self.grid.take() {
            self.pool.release(grid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_matching_dims_only() {
        let pool: GridPool<f64> = GridPool::new();
        let mut g = pool.acquire(Dims3::cube(6));
        g.set(1, 1, 1, 42.0);
        pool.release(g);
        assert_eq!(pool.free_grids(), 1);

        // Different dims: fresh allocation, the cached grid stays.
        let other = pool.acquire(Dims3::cube(8));
        assert_eq!(other.dims(), Dims3::cube(8));
        assert_eq!(pool.free_grids(), 1);

        // Matching dims: the recycled grid comes back, stale contents
        // and all (the documented contract).
        let again = pool.acquire(Dims3::cube(6));
        assert_eq!(again.get(1, 1, 1), 42.0);
        assert_eq!(pool.free_grids(), 0);
    }

    #[test]
    fn pooled_grid_returns_on_drop() {
        let pool: Arc<GridPool<f64>> = Arc::new(GridPool::new());
        {
            let mut p = pool.acquire_pooled(Dims3::cube(5));
            p.set(2, 2, 2, 7.0);
            assert_eq!(pool.free_grids(), 0);
        }
        assert_eq!(pool.free_grids(), 1);
        assert_eq!(pool.acquire(Dims3::cube(5)).get(2, 2, 2), 7.0);
    }

    #[test]
    fn release_evicts_the_oldest_beyond_the_cap() {
        let pool: GridPool<f64> = GridPool::new();
        assert_eq!(pool.capacity(), DEFAULT_POOL_CAPACITY);
        for edge in 3..(3 + DEFAULT_POOL_CAPACITY + 2) {
            pool.release(Grid3::zeroed(Dims3::cube(edge)));
        }
        assert_eq!(pool.free_grids(), DEFAULT_POOL_CAPACITY);
        // The two oldest (smallest) grids were evicted: acquiring their
        // dims allocates fresh zeroed storage instead of reusing.
        let g = pool.acquire(Dims3::cube(3));
        assert_eq!(g.dims(), Dims3::cube(3));
        assert_eq!(
            pool.free_grids(),
            DEFAULT_POOL_CAPACITY,
            "cube(3) was not parked"
        );
    }

    #[test]
    fn custom_capacity_bounds_eviction() {
        // Small and large capacities both honor the knob exactly.
        for cap in [1usize, 3, 32] {
            let pool: GridPool<f64> = GridPool::with_capacity(cap);
            assert_eq!(pool.capacity(), cap);
            for edge in 3..(3 + cap + 4) {
                pool.release(Grid3::zeroed(Dims3::cube(edge)));
            }
            assert_eq!(pool.free_grids(), cap, "capacity {cap}");
            // The survivors are the youngest `cap` releases.
            let youngest = Dims3::cube(3 + cap + 3);
            pool.acquire(youngest);
            assert_eq!(pool.free_grids(), cap - 1, "youngest was parked");
        }
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = GridPool::<f64>::with_capacity(0);
    }

    #[test]
    fn fresh_allocations_count_misses_only() {
        let pool: GridPool<f64> = GridPool::new();
        assert_eq!(pool.fresh_allocations(), 0);
        let g = pool.acquire(Dims3::cube(5)); // miss
        assert_eq!(pool.fresh_allocations(), 1);
        pool.release(g);
        let g = pool.acquire(Dims3::cube(5)); // hit
        assert_eq!(pool.fresh_allocations(), 1);
        assert!(pool.try_acquire(Dims3::cube(5)).is_none(), "no allocation");
        assert_eq!(pool.fresh_allocations(), 1);
        pool.release(g);
        assert!(pool.try_acquire(Dims3::cube(5)).is_some());
        let _ = pool.acquire(Dims3::cube(9)); // miss again
        assert_eq!(pool.fresh_allocations(), 2);
    }

    #[test]
    fn pooled_grid_outlives_nothing_but_its_pool() {
        let pool: Arc<GridPool<f32>> = Arc::new(GridPool::new());
        let p = pool.acquire_pooled(Dims3::cube(4));
        drop(pool); // the Arc inside `p` keeps the pool alive
        assert_eq!(p.dims(), Dims3::cube(4));
    }
}
