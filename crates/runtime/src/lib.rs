//! # tb-runtime — persistent core-pinned worker teams
//!
//! The paper's multicore-aware design assumes *long-lived* thread groups
//! pinned to cores that repeatedly execute sweeps, with one group member
//! optionally dedicated to communication (§2.2–2.3). Spawning and
//! re-pinning a thread team on every sweep — what `std::thread::scope`
//! inside an executor amounts to — costs tens of microseconds per
//! worker, which is exactly the per-iteration management overhead that
//! kills temporal blocking at small block sizes.
//!
//! [`Runtime`] spawns its workers **once**, pins them according to a
//! [`tb_topology::TeamLayout`], and then executes submitted tasks until
//! dropped. Between tasks the workers spin briefly (cheap re-dispatch
//! when sweeps come back to back) and then park (no idle burn between
//! solves).
//!
//! ## Lifecycle
//!
//! 1. **Build** — [`Runtime::new`] (pinned per layout, with a dedicated
//!    communication worker iff the layout reserved a
//!    [`comm_core`](tb_topology::TeamLayout::comm_core)),
//!    [`Runtime::with_threads`] (unpinned), or [`Runtime::from_cpus`]
//!    (full control). Workers pin themselves on their first instruction,
//!    so everything they later first-touch lands on their NUMA domain.
//! 2. **Execute** — [`Runtime::run`] broadcasts a task to the first `n`
//!    compute workers and blocks until all of them finished; a worker
//!    panic is re-raised on the caller. [`Runtime::submit_comm`] hands a
//!    one-shot task to the communication worker and returns a
//!    [`CommHandle`] that joins on drop.
//! 3. **Drop** — workers are woken, told to shut down, and joined.
//!
//! ## When to share one runtime
//!
//! Share a single runtime whenever the same team geometry executes more
//! than one solve: autotune loops, repeated-solve services, long
//! time-stepping with convergence checks, calibration sweeps. Each
//! executor entry point also exists as a `*_on(&Runtime, …)` form in
//! `tb-stencil`/`tb-dist`/`tb-membench`; the classic forms build a
//! one-shot runtime per call, so they keep their historical signatures
//! and bitwise behaviour at roughly the historical cost. Do **not** call
//! [`Runtime::run`] from inside a task running on the same runtime — the
//! workers are occupied and the nested dispatch would deadlock.
//!
//! ## Comm-core reservation
//!
//! [`TeamLayout::with_comm_core`](tb_topology::TeamLayout::with_comm_core)
//! carves the machine's last CPU out of the compute layout;
//! [`Runtime::new`] turns that reservation into a dedicated communication
//! worker pinned there. The distributed solver couples it to the compute
//! team with the existing `tb_sync::Handoff` — the comm worker drives the
//! halo exchange while the compute workers advance the interior
//! trapezoid.
//!
//! ## Staging-buffer pool
//!
//! [`GridPool`] recycles staging grids (overlapped-exchange snapshots,
//! second buffers of two-grid pipelines, compressed-grid storage, NUMA
//! subdomain grids) across solves sharing a runtime
//! ([`Runtime::grid_pool`]). Reused grids keep their stale contents; every
//! consumer in this workspace writes a region before reading it, which
//! the bitwise verification suites hold them to.
//!
//! ## ccNUMA page placement
//!
//! Pages commit on the NUMA domain of the thread that first *writes*
//! them. [`Runtime::acquire_grid`] and [`Runtime::place_copy`] apply a
//! [`Placement`] policy: under [`Placement::WorkerFirstTouch`] the
//! pinned workers zero fresh grids (and carry bulk copies) in their own
//! contiguous z-band partitions, so a team's grids live on the memory
//! controllers next to the cores that compute on them — the §3/
//! arXiv:1006.3148 concern, available to every runtime consumer. See
//! the [`placement`] module.

pub mod placement;
mod pool;
mod team;

pub use placement::Placement;
pub use pool::{GridPool, PooledGrid, DEFAULT_POOL_CAPACITY};
pub use team::{CommHandle, Runtime};
