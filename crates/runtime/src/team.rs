//! The persistent worker team: spawn once, pin once, dispatch many.
//!
//! Dispatch protocol (one *epoch* per submitted task):
//!
//! 1. the dispatcher resets the completion counter, publishes the task
//!    pointer + participant count under the slot lock, bumps the epoch,
//!    and unparks the participating workers;
//! 2. every worker spins briefly on the epoch (cheap pickup when sweeps
//!    come back to back), then parks with a timeout (no idle burn
//!    between solves); on a new epoch it snapshots the slot, runs the
//!    task with its worker index if it participates, and increments the
//!    completion counter;
//! 3. the dispatcher spin-waits for all participants, clears the task
//!    pointer, and re-raises the first worker panic, if any.
//!
//! The dispatcher blocks until every participant finished, so the task
//! closure may borrow the caller's stack — the lifetime erasure below is
//! sound for exactly that reason. Dispatches are serialized by a lock;
//! the communication lane has its own slot and may run concurrently
//! with a compute dispatch (that is its purpose).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_utils::Backoff;
use parking_lot::Mutex;
use tb_grid::Real;
use tb_topology::{affinity, TeamLayout};

use crate::placement::{first_touch_zero, parallel_copy, Placement};
use crate::pool::GridPool;

/// Lifetime-erased broadcast task; valid only while its dispatcher
/// blocks in [`Runtime::run`].
type TaskRef = *const (dyn Fn(usize) + Sync + 'static);
/// Lifetime-erased one-shot comm task; valid until its [`CommHandle`]
/// joined.
type CommTaskRef = *mut (dyn FnMut() + Send + 'static);

/// Raw task pointers cross the `Mutex` into worker threads; the dispatch
/// protocol (dispatcher blocks until completion) is what makes that safe.
struct SendPtr<P>(P);
unsafe impl<P> Send for SendPtr<P> {}

struct TaskSlot {
    epoch: usize,
    task: Option<SendPtr<TaskRef>>,
    /// Workers `0..active` participate in this epoch.
    active: usize,
}

struct Lane {
    slot: Mutex<TaskSlot>,
    /// Mirrors `slot.epoch` so workers can poll without the lock.
    epoch: AtomicUsize,
    /// Participants that completed the current epoch.
    done: AtomicUsize,
    /// Thread blocked in [`Runtime::run`] for the current epoch; the
    /// last finishing participant unparks it, so the dispatcher does
    /// not have to burn a core spinning for the whole solve.
    waiter: Mutex<Option<std::thread::Thread>>,
    shutdown: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Lane {
    fn new() -> Self {
        Self {
            slot: Mutex::new(TaskSlot {
                epoch: 0,
                task: None,
                active: 0,
            }),
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            waiter: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }
}

struct CommSlot {
    epoch: usize,
    task: Option<SendPtr<CommTaskRef>>,
}

struct CommLane {
    slot: Mutex<CommSlot>,
    epoch: AtomicUsize,
    /// Highest epoch whose task has completed.
    done_epoch: AtomicUsize,
    /// Thread blocked in a [`CommHandle`] wait; unparked on completion.
    waiter: Mutex<Option<std::thread::Thread>>,
    shutdown: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Spin briefly, then park with a timeout, until `changed` returns true.
/// The unpark token posted by the dispatcher makes the park race-free;
/// the timeout is belt and braces.
fn wait_until(changed: impl Fn() -> bool) {
    let backoff = Backoff::new();
    let mut yields = 0u32;
    while !changed() {
        if !backoff.is_completed() {
            backoff.snooze();
        } else if yields < 64 {
            std::thread::yield_now();
            yields += 1;
        } else {
            std::thread::park_timeout(Duration::from_micros(500));
        }
    }
}

fn worker_loop(lane: Arc<Lane>, index: usize, cpu: Option<usize>) {
    let _ = affinity::pin_opt(cpu);
    let mut seen = 0usize;
    loop {
        wait_until(|| {
            lane.epoch.load(Ordering::Acquire) != seen || lane.shutdown.load(Ordering::Acquire)
        });
        if lane.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (epoch, task, active) = {
            let slot = lane.slot.lock();
            (slot.epoch, slot.task.as_ref().map(|t| t.0), slot.active)
        };
        if epoch == seen {
            continue; // spurious wake; the slot is already consistent
        }
        seen = epoch;
        if index < active {
            let task = task.expect("dispatch published a task for this epoch");
            // SAFETY: the dispatcher blocks in `run` until all `active`
            // workers incremented `done`, so the closure (and everything
            // it borrows) outlives this call.
            let f = unsafe { &*task };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index)));
            if let Err(payload) = result {
                lane.panic.lock().get_or_insert(payload);
            }
            if lane.done.fetch_add(1, Ordering::AcqRel) + 1 == active {
                // Last participant: wake the (parked) dispatcher.
                if let Some(waiter) = lane.waiter.lock().as_ref() {
                    waiter.unpark();
                }
            }
        }
    }
}

fn comm_loop(lane: Arc<CommLane>, cpu: Option<usize>) {
    let _ = affinity::pin_opt(cpu);
    let mut seen = 0usize;
    loop {
        wait_until(|| {
            lane.epoch.load(Ordering::Acquire) != seen || lane.shutdown.load(Ordering::Acquire)
        });
        if lane.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (epoch, task) = {
            let slot = lane.slot.lock();
            (slot.epoch, slot.task.as_ref().map(|t| t.0))
        };
        if epoch == seen {
            continue;
        }
        seen = epoch;
        let task = task.expect("comm submit published a task");
        // SAFETY: the `CommHandle` returned by `submit_comm` borrows the
        // task for its own lifetime and waits for `done_epoch` before
        // releasing it (latest in its drop), so the closure is live.
        let f = unsafe { &mut *task };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        if let Err(payload) = result {
            lane.panic.lock().get_or_insert(payload);
        }
        lane.done_epoch.store(epoch, Ordering::Release);
        if let Some(waiter) = lane.waiter.lock().as_ref() {
            waiter.unpark();
        }
    }
}

/// A persistent team of compute workers (plus an optional dedicated
/// communication worker), pinned once at spawn and reused for every
/// dispatched task until dropped. See the crate docs for the lifecycle.
pub struct Runtime {
    lane: Arc<Lane>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes compute dispatches (the comm lane is independent).
    dispatch: Mutex<()>,
    comm_lane: Option<Arc<CommLane>>,
    comm_worker: Option<JoinHandle<()>>,
    comm_core: Option<usize>,
    pools: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
    pool_capacity: usize,
    placement: Placement,
}

impl Runtime {
    /// Spawn one pinned worker per layout slot, plus a dedicated
    /// communication worker iff the layout reserved a
    /// [`comm_core`](TeamLayout::comm_core).
    pub fn new(layout: &TeamLayout) -> Self {
        Self::from_cpus(layout.cpus.clone(), layout.comm_core.map(Some))
    }

    /// `threads` unpinned compute workers, no communication worker.
    pub fn with_threads(threads: usize) -> Self {
        Self::from_cpus(vec![None; threads], None)
    }

    /// The general constructor: one compute worker per `cpus` entry
    /// (`Some(c)` pins to CPU `c`, `None` leaves the worker floating).
    /// `comm` controls the communication worker: `None` spawns none,
    /// `Some(pin)` spawns one with the given pin.
    pub fn from_cpus(cpus: Vec<Option<usize>>, comm: Option<Option<usize>>) -> Self {
        let lane = Arc::new(Lane::new());
        let workers = cpus
            .into_iter()
            .enumerate()
            .map(|(index, cpu)| {
                let lane = Arc::clone(&lane);
                std::thread::Builder::new()
                    .name(format!("tb-runtime-w{index}"))
                    .spawn(move || worker_loop(lane, index, cpu))
                    .expect("spawn runtime worker")
            })
            .collect();
        let comm_core = comm.flatten();
        let (comm_lane, comm_worker) = match comm {
            None => (None, None),
            Some(cpu) => {
                let lane = Arc::new(CommLane {
                    slot: Mutex::new(CommSlot {
                        epoch: 0,
                        task: None,
                    }),
                    epoch: AtomicUsize::new(0),
                    done_epoch: AtomicUsize::new(0),
                    waiter: Mutex::new(None),
                    shutdown: AtomicBool::new(false),
                    panic: Mutex::new(None),
                });
                let worker = {
                    let lane = Arc::clone(&lane);
                    std::thread::Builder::new()
                        .name("tb-runtime-comm".into())
                        .spawn(move || comm_loop(lane, cpu))
                        .expect("spawn runtime comm worker")
                };
                (Some(lane), Some(worker))
            }
        };
        Self {
            lane,
            workers,
            dispatch: Mutex::new(()),
            comm_lane,
            comm_worker,
            comm_core,
            pools: Mutex::new(HashMap::new()),
            pool_capacity: crate::pool::DEFAULT_POOL_CAPACITY,
            placement: Placement::default(),
        }
    }

    /// Set the eviction bound of every [`GridPool`] this runtime creates
    /// (builder style, before the first [`Runtime::grid_pool`] call).
    /// Long-lived runtimes serving many tenants and problem shapes — the
    /// job scheduler keeps one runtime per machine slice alive across
    /// jobs — want more than the default
    /// [`DEFAULT_POOL_CAPACITY`](crate::DEFAULT_POOL_CAPACITY) parked
    /// grids so a diverse job mix keeps hitting the pool.
    ///
    /// Pools already created keep their old capacity: the capacity is
    /// baked in at pool construction (first use per element type).
    pub fn with_pool_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "a grid pool needs capacity >= 1");
        self.pool_capacity = capacity;
        self
    }

    /// The capacity future [`Runtime::grid_pool`] pools are built with.
    pub fn pool_capacity(&self) -> usize {
        self.pool_capacity
    }

    /// Set the page-placement policy for grids this runtime hands out
    /// through [`Runtime::acquire_grid`] / [`Runtime::place_copy`]
    /// (builder style). [`Placement::WorkerFirstTouch`] makes the
    /// pinned workers first-touch fresh grids and carry bulk copies, so
    /// pages live on the NUMA domains that compute on them; the default
    /// [`Placement::ClientPages`] keeps the historical caller-placed
    /// behaviour. See [`crate::placement`].
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The page-placement policy this runtime applies.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// A grid of exactly `dims` from this runtime's pool, placement
    /// applied: a pool hit returns the recycled grid as-is (its pages
    /// were placed in a previous life — stale contents, see
    /// [`GridPool`]); a miss allocates lazily-committed zero pages and,
    /// under [`Placement::WorkerFirstTouch`], dispatches the pinned
    /// workers to zero their own contiguous z-band partitions — the
    /// real first touch, committing each page on its computing domain.
    ///
    /// Counted against [`GridPool::fresh_allocations`] exactly like a
    /// plain [`GridPool::acquire`] miss.
    pub fn acquire_grid<T: Real>(&self, dims: tb_grid::Dims3) -> tb_grid::Grid3<T> {
        let pool = self.grid_pool::<T>();
        if let Some(g) = pool.try_acquire(dims) {
            return g;
        }
        pool.note_fresh(1);
        let mut g = tb_grid::Grid3::zeroed(dims);
        if self.placement == Placement::WorkerFirstTouch {
            first_touch_zero(self, &mut g);
        }
        g
    }

    /// Copy `src` into `dst` under the placement policy: the workers
    /// carry the copy in their own partitions under
    /// [`Placement::WorkerFirstTouch`] (writing pages from the threads
    /// that own them — and performing the first touch if `dst` is
    /// fresh), a plain single-thread copy under
    /// [`Placement::ClientPages`]. Bitwise either way.
    pub fn place_copy<T: Real>(&self, dst: &mut [T], src: &[T]) {
        if self.placement == Placement::WorkerFirstTouch && self.threads() > 0 {
            parallel_copy(self, dst, src);
        } else {
            dst.copy_from_slice(src);
        }
    }

    /// Number of compute workers (the communication worker not included).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Whether a dedicated communication worker exists.
    pub fn has_comm_worker(&self) -> bool {
        self.comm_lane.is_some()
    }

    /// CPU the communication worker is pinned to, if any.
    pub fn comm_core(&self) -> Option<usize> {
        self.comm_core
    }

    /// Execute `task(index)` on compute workers `0..threads` and block
    /// until all of them finished. A worker panic is re-raised here.
    ///
    /// # Panics
    /// Panics if `threads` exceeds [`Runtime::threads`]. Must not be
    /// called from a task running on this same runtime (the workers are
    /// occupied; the dispatch would deadlock).
    pub fn run(&self, threads: usize, task: &(dyn Fn(usize) + Sync)) {
        assert!(
            threads <= self.workers.len(),
            "dispatch of {threads} threads on a runtime with {} workers",
            self.workers.len()
        );
        if threads == 0 {
            return;
        }
        let _serial = self.dispatch.lock();
        self.lane.done.store(0, Ordering::Release);
        // Register this thread before the task is visible, so the last
        // worker cannot miss the unpark target.
        *self.lane.waiter.lock() = Some(std::thread::current());
        {
            let mut slot = self.lane.slot.lock();
            slot.epoch += 1;
            // SAFETY (lifetime erasure): we block below until all
            // participants completed, so the borrow outlives every use.
            slot.task = Some(SendPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), TaskRef>(task)
            }));
            slot.active = threads;
            self.lane.epoch.store(slot.epoch, Ordering::Release);
        }
        for worker in &self.workers[..threads] {
            worker.thread().unpark();
        }
        // Spin briefly (cheap for short sweeps), then park until the
        // last worker unparks us — the dispatcher must not burn a core
        // that a pinned worker needs for the whole solve.
        wait_until(|| self.lane.done.load(Ordering::Acquire) == threads);
        *self.lane.waiter.lock() = None;
        self.lane.slot.lock().task = None;
        if let Some(payload) = self.lane.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Hand `task` to the dedicated communication worker and return a
    /// handle that joins it. The task runs concurrently with compute
    /// dispatches; the returned handle borrows `task` (and `self`), so
    /// the closure cannot be touched or dropped until joined.
    ///
    /// # Panics
    /// Panics if the runtime has no communication worker, or if the
    /// previous comm task has not been joined yet (one in flight at a
    /// time — the protocol of one exchange per cycle).
    pub fn submit_comm<'a>(&'a self, task: &'a mut (dyn FnMut() + Send)) -> CommHandle<'a> {
        let lane = self
            .comm_lane
            .as_ref()
            .expect("runtime was built without a communication worker");
        let epoch = {
            let mut slot = lane.slot.lock();
            assert!(
                lane.done_epoch.load(Ordering::Acquire) == slot.epoch,
                "previous comm task still in flight"
            );
            slot.epoch += 1;
            // SAFETY (lifetime erasure): the returned handle holds the
            // `'a` borrow and waits for completion no later than drop.
            slot.task = Some(SendPtr(unsafe {
                std::mem::transmute::<*mut (dyn FnMut() + Send), CommTaskRef>(task)
            }));
            lane.epoch.store(slot.epoch, Ordering::Release);
            slot.epoch
        };
        if let Some(worker) = &self.comm_worker {
            worker.thread().unpark();
        }
        CommHandle {
            runtime: self,
            epoch,
            joined: false,
            _task: PhantomData,
        }
    }

    /// The runtime's staging-grid pool for element type `T`. Pools are
    /// created on first use and shared by everything running on this
    /// runtime; see [`GridPool`] for the reuse contract.
    pub fn grid_pool<T: Real>(&self) -> Arc<GridPool<T>> {
        let mut pools = self.pools.lock();
        let entry = pools.entry(TypeId::of::<T>()).or_insert_with(|| {
            Box::new(Arc::new(GridPool::<T>::with_capacity(self.pool_capacity)))
        });
        entry
            .downcast_ref::<Arc<GridPool<T>>>()
            .expect("pool registered under its own TypeId")
            .clone()
    }

    fn comm_wait(&self, epoch: usize) -> Option<Box<dyn Any + Send>> {
        let lane = self.comm_lane.as_ref().expect("handle implies comm lane");
        *lane.waiter.lock() = Some(std::thread::current());
        wait_until(|| lane.done_epoch.load(Ordering::Acquire) >= epoch);
        *lane.waiter.lock() = None;
        lane.slot.lock().task = None;
        lane.panic.lock().take()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.lane.shutdown.store(true, Ordering::Release);
        for worker in &self.workers {
            worker.thread().unpark();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(lane) = &self.comm_lane {
            lane.shutdown.store(true, Ordering::Release);
        }
        if let Some(worker) = self.comm_worker.take() {
            worker.thread().unpark();
            let _ = worker.join();
        }
    }
}

/// Join handle of a task submitted with [`Runtime::submit_comm`]. Holds
/// the borrow of the task closure; joining (explicitly or on drop) waits
/// for the communication worker to finish it.
pub struct CommHandle<'a> {
    runtime: &'a Runtime,
    epoch: usize,
    joined: bool,
    _task: PhantomData<&'a mut ()>,
}

impl CommHandle<'_> {
    /// Block until the comm task completed; re-raises its panic, if any.
    pub fn join(mut self) {
        self.joined = true;
        if let Some(payload) = self.runtime.comm_wait(self.epoch) {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for CommHandle<'_> {
    fn drop(&mut self) {
        if self.joined {
            return;
        }
        let payload = self.runtime.comm_wait(self.epoch);
        if let (Some(payload), false) = (payload, std::thread::panicking()) {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_index_exactly_once() {
        let rt = Runtime::with_threads(4);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..50 {
            rt.run(4, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn subset_dispatch_leaves_other_workers_idle() {
        let rt = Runtime::with_threads(4);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        rt.run(2, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        rt.run(3, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        let got: Vec<u64> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![2, 2, 1, 0]);
    }

    #[test]
    fn zero_thread_dispatch_is_a_noop() {
        let rt = Runtime::with_threads(1);
        rt.run(0, &|_| panic!("must not run"));
    }

    #[test]
    #[should_panic(expected = "runtime with 2 workers")]
    fn oversized_dispatch_is_rejected() {
        let rt = Runtime::with_threads(2);
        rt.run(3, &|_| {});
    }

    #[test]
    fn tasks_can_borrow_the_callers_stack() {
        let rt = Runtime::with_threads(3);
        let inputs = [1u64, 10, 100];
        let sum = AtomicU64::new(0);
        rt.run(3, &|i| {
            sum.fetch_add(inputs[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 111);
    }

    #[test]
    fn worker_panic_propagates_and_runtime_survives() {
        let rt = Runtime::with_threads(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(2, &|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must re-raise on the caller");
        // The team stays usable after a task panic.
        let ok = AtomicU64::new(0);
        rt.run(2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn comm_worker_runs_concurrently_with_compute() {
        let rt = Runtime::from_cpus(vec![None; 2], Some(None));
        assert!(rt.has_comm_worker());
        let flag = AtomicBool::new(false);
        let mut comm = || {
            flag.store(true, Ordering::Release);
        };
        let handle = rt.submit_comm(&mut comm);
        let sum = AtomicU64::new(0);
        rt.run(2, &|i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        handle.join();
        assert!(flag.load(Ordering::Acquire));
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn comm_tasks_are_reusable_across_cycles() {
        let rt = Runtime::from_cpus(Vec::new(), Some(None));
        let mut total = 0u64;
        for cycle in 0..20 {
            let mut task = || total += cycle;
            rt.submit_comm(&mut task).join();
        }
        assert_eq!(total, (0..20).sum::<u64>());
    }

    #[test]
    fn comm_panic_reraises_at_join() {
        let rt = Runtime::from_cpus(Vec::new(), Some(None));
        let mut task = || panic!("comm boom");
        let handle = rt.submit_comm(&mut task);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
        assert!(caught.is_err());
        // And the comm worker survives for the next cycle.
        let mut ok = false;
        rt.submit_comm(&mut || ok = true).join();
        assert!(ok);
    }

    #[test]
    #[should_panic(expected = "without a communication worker")]
    fn submit_without_comm_worker_is_a_protocol_error() {
        let rt = Runtime::with_threads(1);
        let mut task = || {};
        let _ = rt.submit_comm(&mut task);
    }

    #[test]
    fn layout_constructor_reflects_comm_core() {
        let m = tb_topology::Machine::flat(4);
        let layout = TeamLayout::with_comm_core(&m, 3, 1);
        let rt = Runtime::new(&layout);
        assert_eq!(rt.threads(), 3);
        assert!(rt.has_comm_worker());
        assert_eq!(rt.comm_core(), layout.comm_core);
        let plain = Runtime::new(&TeamLayout::new(&m, 2, 2));
        assert_eq!(plain.threads(), 4);
        assert!(!plain.has_comm_worker());
    }

    #[test]
    fn pool_capacity_knob_reaches_created_pools() {
        let rt = Runtime::with_threads(1).with_pool_capacity(3);
        assert_eq!(rt.pool_capacity(), 3);
        let pool = rt.grid_pool::<f64>();
        assert_eq!(pool.capacity(), 3);
        for edge in 4..12 {
            pool.release(tb_grid::Grid3::zeroed(tb_grid::Dims3::cube(edge)));
        }
        assert_eq!(pool.free_grids(), 3, "runtime-configured bound holds");
        // Default runtimes keep the historical capacity.
        let plain = Runtime::with_threads(1);
        assert_eq!(
            plain.grid_pool::<f64>().capacity(),
            crate::pool::DEFAULT_POOL_CAPACITY
        );
    }

    #[test]
    fn acquire_grid_first_touches_misses_and_reuses_hits() {
        use tb_grid::{Dims3, Grid3};
        for placement in [Placement::ClientPages, Placement::WorkerFirstTouch] {
            let rt = Runtime::with_threads(2).with_placement(placement);
            assert_eq!(rt.placement(), placement);
            let pool = rt.grid_pool::<f64>();

            // Miss: fresh zeroed grid, counted on the pool's ledger.
            let g: Grid3<f64> = rt.acquire_grid(Dims3::new(6, 5, 4));
            assert!(g.as_slice().iter().all(|v| *v == 0.0), "{placement:?}");
            assert_eq!(pool.fresh_allocations(), 1);

            // Hit: recycled storage, stale contents, no new allocation.
            let mut g = g;
            g.set(1, 1, 1, 42.0);
            pool.release(g);
            let g: Grid3<f64> = rt.acquire_grid(Dims3::new(6, 5, 4));
            assert_eq!(g.get(1, 1, 1), 42.0, "reuse keeps stale contents");
            assert_eq!(pool.fresh_allocations(), 1, "warm path allocates nothing");
        }
    }

    #[test]
    fn place_copy_is_bitwise_under_both_policies() {
        let src: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        for placement in [Placement::ClientPages, Placement::WorkerFirstTouch] {
            let rt = Runtime::with_threads(3).with_placement(placement);
            let mut dst = vec![0.0f64; src.len()];
            rt.place_copy(&mut dst, &src);
            assert_eq!(dst, src, "{placement:?}");
        }
    }

    #[test]
    fn grid_pool_is_shared_per_element_type() {
        let rt = Runtime::with_threads(1);
        let p1 = rt.grid_pool::<f64>();
        let p2 = rt.grid_pool::<f64>();
        assert!(Arc::ptr_eq(&p1, &p2));
        let q = rt.grid_pool::<f32>();
        q.release(tb_grid::Grid3::zeroed(tb_grid::Dims3::cube(4)));
        assert_eq!(q.free_grids(), 1);
        assert_eq!(p1.free_grids(), 0, "f32 and f64 pools are distinct");
    }
}
