//! ccNUMA page placement for runtime-owned grids.
//!
//! Linux commits a page on the NUMA domain of the thread that **first
//! writes** it (first-touch), and `Grid3::zeroed` maps lazily-committed
//! zero pages — so whoever performs the first real write decides where
//! every page of a grid lives for the rest of its life. The paper's §3
//! outlook (and the follow-on work, arXiv:1006.3148) makes this the
//! deciding factor for temporal blocking on ccNUMA nodes: a team
//! streaming remote pages runs at the QPI/interconnect rate, not the
//! local memory-controller rate. `tb_dist::numa` already proves the
//! point for the team-decomposed node solver; this module gives the
//! same lever to everything that acquires grids through a
//! [`Runtime`].
//!
//! [`Placement::WorkerFirstTouch`] makes [`Runtime::acquire_grid`]
//! dispatch the runtime's *pinned* workers to zero a fresh grid's
//! z-slabs in parallel — worker `k` touches the same contiguous z-band
//! the compute partitioning later hands it, so pages land on the domain
//! that computes on them. [`Placement::ClientPages`] keeps the
//! historical behaviour (pages placed wherever the allocating thread
//! runs) for clients that pre-place pages themselves or run on UMA
//! hosts where the copy buys nothing.

use tb_grid::{Grid3, Real};

use crate::team::Runtime;

/// Page-placement policy for grids a [`Runtime`] hands out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Pages commit wherever the *calling* thread first touches them
    /// (the historical behaviour). Right when the caller already placed
    /// its pages, or on UMA hosts where placement cannot matter.
    #[default]
    ClientPages,
    /// The runtime's pinned workers first-touch each fresh grid's
    /// z-slabs in their own compute partition, and bulk copies run on
    /// the workers too — pages live on the NUMA domain that computes
    /// on them.
    WorkerFirstTouch,
}

impl Placement {
    /// Stable lowercase label for reports and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::ClientPages => "client-pages",
            Placement::WorkerFirstTouch => "worker-first-touch",
        }
    }
}

/// A raw slice pointer that crosses into the worker dispatch. Safe for
/// the same reason the dispatch itself is: [`Runtime::run`] blocks
/// until every participant finished, and the workers write disjoint
/// index ranges.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor rather than field access so closures capture the whole
    /// wrapper (edition-2021 disjoint capture would otherwise grab the
    /// raw `*mut T` field, which is not `Send`).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// The contiguous flat range worker `index` of `threads` owns in a
/// buffer of `len` elements laid out x-unit-stride: the same contiguous
/// z-band split the executors use, expressed in flat indices (`len` is
/// a whole number of z-planes, so plane boundaries stay aligned when
/// `threads` divides `nz`; otherwise the split is still contiguous and
/// near-equal, which is what page placement needs).
fn partition(len: usize, index: usize, threads: usize) -> std::ops::Range<usize> {
    let base = len / threads;
    let extra = len % threads;
    let start = index * base + index.min(extra);
    let end = start + base + usize::from(index < extra);
    start..end
}

/// Zero `grid` with the runtime's workers, each writing its own
/// contiguous partition — on a fresh lazily-committed allocation this
/// IS the first touch, so pages commit on the workers' NUMA domains.
/// Falls back to a plain (already-zeroed) no-op when the runtime has no
/// workers to dispatch.
pub(crate) fn first_touch_zero<T: Real>(rt: &Runtime, grid: &mut Grid3<T>) {
    let threads = rt.threads();
    if threads == 0 {
        return; // alloc_zeroed pages are already zero; nothing to place
    }
    let len = grid.as_slice().len();
    let ptr = SendPtr(grid.as_mut_ptr());
    rt.run(threads, &|index| {
        let range = partition(len, index, threads);
        // SAFETY: ranges are disjoint per worker and in-bounds; the
        // dispatcher (us) blocks until all workers finish, so the
        // borrow of `grid` outlives every write.
        unsafe {
            let dst = ptr.get().add(range.start);
            std::ptr::write_bytes(dst, 0, range.end - range.start);
        }
    });
}

/// Copy `src` into `dst` with the runtime's workers, each copying its
/// own contiguous partition (the same split as [`first_touch_zero`], so
/// a copy that lands on freshly first-touched pages writes them from
/// the thread that owns them). Plain single-thread copy when the
/// runtime has no workers.
pub(crate) fn parallel_copy<T: Real>(rt: &Runtime, dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "placement copy needs equal lengths");
    let threads = rt.threads();
    if threads == 0 || dst.is_empty() {
        dst.copy_from_slice(src);
        return;
    }
    let len = dst.len();
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    let src_ptr = src.as_ptr() as usize;
    rt.run(threads, &|index| {
        let range = partition(len, index, threads);
        // SAFETY: disjoint in-bounds ranges, dispatcher blocks until
        // completion, src and dst never alias (distinct grids).
        unsafe {
            let s = (src_ptr as *const T).add(range.start);
            let d = dst_ptr.get().add(range.start);
            std::ptr::copy_nonoverlapping(s, d, range.end - range.start);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_grid::Dims3;

    #[test]
    fn partitions_are_disjoint_contiguous_and_cover() {
        for len in [0usize, 1, 7, 64, 4096, 4097] {
            for threads in [1usize, 2, 3, 8] {
                let mut next = 0;
                for i in 0..threads {
                    let r = partition(len, i, threads);
                    assert_eq!(r.start, next, "len {len} threads {threads} i {i}");
                    next = r.end;
                }
                assert_eq!(next, len, "len {len} threads {threads} must cover");
            }
        }
    }

    #[test]
    fn first_touch_zero_leaves_a_zero_grid() {
        let rt = Runtime::with_threads(3);
        let mut g: Grid3<f64> = Grid3::zeroed(Dims3::new(8, 5, 7));
        first_touch_zero(&rt, &mut g);
        assert!(g.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn parallel_copy_is_bitwise() {
        let rt = Runtime::with_threads(4);
        let src: Vec<f64> = (0..1013).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut dst = vec![0.0f64; src.len()];
        parallel_copy(&rt, &mut dst, &src);
        assert_eq!(dst, src);
        // Zero-worker runtimes degrade to a plain copy.
        let none = Runtime::with_threads(0);
        let mut dst2 = vec![0.0f64; src.len()];
        parallel_copy(&none, &mut dst2, &src);
        assert_eq!(dst2, src);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_copy_lengths_are_rejected() {
        let rt = Runtime::with_threads(1);
        parallel_copy(&rt, &mut [0.0f64; 3], &[0.0f64; 4]);
    }
}
