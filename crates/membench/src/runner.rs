//! Timed bandwidth measurements.

use std::time::Instant;

use tb_grid::AlignedVec;
use tb_runtime::Runtime;
use tb_sync::SpinBarrier;

use crate::kernels;

/// Which STREAM kernel to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamKind {
    Copy,
    CopyNt,
    Scale,
    Add,
    Triad,
}

impl StreamKind {
    /// Bytes moved per element (McCalpin accounting; NT stores avoid the
    /// write-allocate, plain stores' RFO is conventionally not counted).
    pub fn bytes_per_elem(self) -> usize {
        match self {
            StreamKind::Copy | StreamKind::CopyNt | StreamKind::Scale => 16,
            StreamKind::Add | StreamKind::Triad => 24,
        }
    }
}

/// One measurement result.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthSample {
    pub kind: StreamKind,
    pub threads: usize,
    /// Working set per thread in bytes (all arrays combined).
    pub working_set: usize,
    /// Best-of-repetitions bandwidth in bytes/second.
    pub bytes_per_sec: f64,
}

/// Measure kernel bandwidth with `threads` workers of a persistent
/// runtime, each on its own arrays of `elems` elements, `reps`
/// repetitions (best rep wins, as in STREAM). The arrays are allocated
/// *inside* the worker task, so first touch happens on the (pinned)
/// worker that streams them.
pub fn measure_bandwidth_on(
    rt: &Runtime,
    kind: StreamKind,
    threads: usize,
    elems: usize,
    reps: usize,
) -> BandwidthSample {
    assert!(threads >= 1 && elems >= 2 && reps >= 1);
    assert!(
        rt.threads() >= threads,
        "runtime has {} workers but the measurement needs {threads}",
        rt.threads()
    );
    let barrier = SpinBarrier::new(threads);
    // Per-rep wall time = max over threads (a rep is as slow as its
    // slowest participant); best rep = min over non-warmup reps.
    let mut rep_times = vec![0.0f64; reps];
    let times = parking_lot::Mutex::new(&mut rep_times);

    rt.run(threads, &|_k| {
        let a = AlignedVec::<f64>::filled(elems, 1.0);
        let mut b = AlignedVec::<f64>::filled(elems, 2.0);
        let mut c = AlignedVec::<f64>::zeroed(elems);
        for rep in 0..reps {
            barrier.wait();
            let t0 = Instant::now();
            match kind {
                StreamKind::Copy => kernels::copy(&a, &mut c),
                StreamKind::CopyNt => kernels::copy_nt(&a, &mut c),
                StreamKind::Scale => kernels::scale(&a, &mut b, 3.0),
                StreamKind::Add => kernels::add(&a, &b, &mut c),
                StreamKind::Triad => kernels::triad(&a, &b, &mut c, 3.0),
            }
            let dt = t0.elapsed().as_secs_f64();
            barrier.wait();
            let mut guard = times.lock();
            if dt > guard[rep] {
                guard[rep] = dt;
            }
        }
        std::hint::black_box(c[0]);
    });

    // First rep is warm-up when reps > 1.
    let usable = if rep_times.len() > 1 {
        &rep_times[1..]
    } else {
        &rep_times[..]
    };
    let best = usable.iter().cloned().fold(f64::INFINITY, f64::min);
    let bytes = (threads * elems * kind.bytes_per_elem()) as f64;
    BandwidthSample {
        kind,
        threads,
        working_set: elems * 3 * 8,
        bytes_per_sec: bytes / best.max(1e-12),
    }
}

/// [`measure_bandwidth_on`] on a one-shot runtime — the classic entry
/// point. `pin` pins worker `k` to CPU `k`.
pub fn measure_bandwidth(
    kind: StreamKind,
    threads: usize,
    elems: usize,
    reps: usize,
    pin: bool,
) -> BandwidthSample {
    assert!(threads >= 1);
    let rt = if pin {
        Runtime::from_cpus((0..threads).map(Some).collect(), None)
    } else {
        Runtime::with_threads(threads)
    };
    measure_bandwidth_on(&rt, kind, threads, elems, reps)
}

/// Sweep working-set sizes to expose the cache hierarchy: returns
/// `(working_set_bytes, bandwidth)` pairs for the given kernel/threads.
pub fn working_set_sweep(
    kind: StreamKind,
    threads: usize,
    sizes: &[usize],
    reps: usize,
) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&elems| {
            let s = measure_bandwidth(kind, threads, elems, reps, false);
            (s.working_set, s.bytes_per_sec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_accounting() {
        assert_eq!(StreamKind::Copy.bytes_per_elem(), 16);
        assert_eq!(StreamKind::Triad.bytes_per_elem(), 24);
    }

    #[test]
    fn measures_positive_bandwidth() {
        let s = measure_bandwidth(StreamKind::Copy, 1, 1 << 16, 3, false);
        assert!(
            s.bytes_per_sec > 1e6,
            "absurdly low bandwidth {}",
            s.bytes_per_sec
        );
        assert_eq!(s.threads, 1);
    }

    #[test]
    fn multithreaded_run_completes() {
        let s = measure_bandwidth(StreamKind::Triad, 2, 1 << 14, 2, false);
        assert!(s.bytes_per_sec.is_finite());
        assert!(s.bytes_per_sec > 0.0);
    }

    #[test]
    fn nt_copy_reports_bandwidth() {
        let s = measure_bandwidth(StreamKind::CopyNt, 1, 1 << 16, 2, false);
        assert!(s.bytes_per_sec > 1e6);
    }

    #[test]
    fn sweep_returns_one_sample_per_size() {
        let out = working_set_sweep(StreamKind::Copy, 1, &[1 << 10, 1 << 12], 2);
        assert_eq!(out.len(), 2);
        assert!(out[0].0 < out[1].0);
    }
}
