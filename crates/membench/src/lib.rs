//! # tb-membench — STREAM-style memory benchmarks and calibration
//!
//! The paper's models are parameterized by three bandwidths measured with
//! STREAM COPY-class kernels (§1.1, §1.4): the saturated socket bandwidth
//! `M_s`, the single-thread bandwidth `M_{s,1}`, and the shared-cache
//! bandwidth `M_c`. This crate reimplements those measurements:
//!
//! * [`kernels`] — COPY/SCALE/ADD/TRIAD loops (with a non-temporal COPY
//!   on x86-64),
//! * [`runner`] — timed single-/multi-threaded sweeps over working-set
//!   sizes,
//! * [`calibrate`] — turn host measurements into a
//!   [`tb_model::MachineParams`] for the analytic models.

pub mod calibrate;
pub mod kernels;
pub mod runner;

pub use calibrate::{calibrate_host, calibrate_host_on, CalibrationProfile};
pub use runner::{
    measure_bandwidth, measure_bandwidth_on, working_set_sweep, BandwidthSample, StreamKind,
};
