//! Derive a [`tb_model::MachineParams`] for the *host* machine.
//!
//! * `M_{s,1}`: single-thread COPY over a memory-sized working set,
//! * `M_s`: COPY with all cores of one cache group over the same set,
//! * `M_c`: COPY with the cache group's threads over a set fitting the
//!   shared cache.
//!
//! The result feeds the §1.4 diagnostic model so its predictions refer to
//! the machine actually running the benchmarks (experiments E1/E5).

use tb_model::MachineParams;
use tb_runtime::Runtime;
use tb_topology::Machine;

use crate::runner::{measure_bandwidth_on, StreamKind};

/// Calibration effort: quick (CI-friendly) or thorough.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationProfile {
    pub mem_elems: usize,
    pub cache_elems: usize,
    pub reps: usize,
    pub pin: bool,
}

impl CalibrationProfile {
    /// ~48 MB working set in memory, ~1.5 MB in cache, 3 reps.
    pub fn quick() -> Self {
        Self {
            mem_elems: 2 << 20,
            cache_elems: 1 << 16,
            reps: 3,
            pin: false,
        }
    }

    /// ~384 MB / ~3 MB, 5 reps, pinned.
    pub fn thorough() -> Self {
        Self {
            mem_elems: 16 << 20,
            cache_elems: 1 << 17,
            reps: 5,
            pin: true,
        }
    }
}

/// Measure the host and fill in a parameter set. The `machine` topology
/// supplies team geometry and cache capacity. Builds one runtime for
/// all three measurements and delegates to [`calibrate_host_on`].
pub fn calibrate_host(machine: &Machine, profile: CalibrationProfile) -> MachineParams {
    let group = machine.cores_per_socket().max(1);
    let rt = if profile.pin {
        Runtime::from_cpus((0..group).map(Some).collect(), None)
    } else {
        Runtime::with_threads(group)
    };
    calibrate_host_on(&rt, machine, profile)
}

/// [`calibrate_host`] on a caller-provided runtime: all three
/// measurements (`M_{s,1}`, `M_s`, `M_c`) share its workers, so the
/// arrays each worker streams are first-touched where they will be read.
///
/// # Panics
/// Panics if the runtime has fewer workers than
/// `machine.cores_per_socket()` — a smaller team would silently
/// understate the saturated bandwidths and skew every model downstream.
pub fn calibrate_host_on(
    rt: &Runtime,
    machine: &Machine,
    profile: CalibrationProfile,
) -> MachineParams {
    let group = machine.cores_per_socket().max(1);
    assert!(
        rt.threads() >= group,
        "runtime has {} workers but calibrating {} needs a full cache group of {group}",
        rt.threads(),
        machine.name
    );
    // Size the cache set to (at most) half the shared cache per the
    // paper's "block small enough to stay resident" requirement.
    let cache_bytes = machine
        .shared_cache()
        .map(|c| c.size_bytes)
        .unwrap_or(8 * 1024 * 1024);
    let cache_elems = profile.cache_elems.min(cache_bytes / (3 * 8) / 2).max(1024);

    let ms1 = measure_bandwidth_on(rt, StreamKind::Copy, 1, profile.mem_elems, profile.reps)
        .bytes_per_sec;
    let ms = measure_bandwidth_on(
        rt,
        StreamKind::Copy,
        group,
        profile.mem_elems / group.max(1),
        profile.reps,
    )
    .bytes_per_sec;
    let mc = measure_bandwidth_on(rt, StreamKind::Copy, group, cache_elems, profile.reps + 2)
        .bytes_per_sec;

    MachineParams {
        // Guard against measurement inversion on noisy/virtualized hosts:
        // the model requires Ms >= Ms,1 and Mc >= Ms.
        ms: ms.max(ms1),
        ms1,
        mc: mc.max(ms.max(ms1)),
        cores_per_socket: group,
        sockets: machine.num_sockets(),
        cache_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_is_sane() {
        let machine = tb_topology::detect::detect();
        let p = CalibrationProfile {
            mem_elems: 1 << 18, // keep the unit test fast
            cache_elems: 1 << 14,
            reps: 2,
            pin: false,
        };
        let m = calibrate_host(&machine, p);
        assert!(m.ms1 > 0.0 && m.ms1.is_finite());
        assert!(m.ms >= m.ms1);
        assert!(m.mc >= m.ms);
        assert!(m.cores_per_socket >= 1);
        assert!(m.sockets >= 1);
    }

    #[test]
    fn profiles_have_reasonable_defaults() {
        let q = CalibrationProfile::quick();
        let t = CalibrationProfile::thorough();
        assert!(t.mem_elems > q.mem_elems);
        assert!(t.reps > q.reps);
    }
}
