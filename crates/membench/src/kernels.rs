//! The four STREAM kernels over `f64` slices.
//!
//! Byte-traffic accounting matches McCalpin's convention: COPY/SCALE move
//! 16 B per element, ADD/TRIAD 24 B (write-allocate traffic not counted,
//! as with non-temporal stores).

/// `c[i] = a[i]`
pub fn copy(a: &[f64], c: &mut [f64]) {
    c.copy_from_slice(a);
}

/// Non-temporal copy on x86-64 (bypasses the cache like STREAM's
/// `-DNONTEMPORAL` build and the paper's baseline stores); plain copy
/// elsewhere.
pub fn copy_nt(a: &[f64], c: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: sse2 is baseline on x86-64; lengths checked inside.
    unsafe {
        copy_nt_sse2(a, c)
    }
    #[cfg(not(target_arch = "x86_64"))]
    copy(a, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn copy_nt_sse2(a: &[f64], c: &mut [f64]) {
    use std::arch::x86_64::*;
    assert_eq!(a.len(), c.len());
    let n = a.len();
    let mut i = 0;
    while i < n && !(c.as_ptr().add(i) as usize).is_multiple_of(16) {
        c[i] = a[i];
        i += 1;
    }
    while i + 2 <= n {
        _mm_stream_pd(c.as_mut_ptr().add(i), _mm_loadu_pd(a.as_ptr().add(i)));
        i += 2;
    }
    while i < n {
        c[i] = a[i];
        i += 1;
    }
    _mm_sfence();
}

/// `b[i] = s * c[i]`
pub fn scale(c: &[f64], b: &mut [f64], s: f64) {
    for (bi, &ci) in b.iter_mut().zip(c) {
        *bi = s * ci;
    }
}

/// `c[i] = a[i] + b[i]`
pub fn add(a: &[f64], b: &[f64], c: &mut [f64]) {
    for ((ci, &ai), &bi) in c.iter_mut().zip(a).zip(b) {
        *ci = ai + bi;
    }
}

/// `a[i] = b[i] + s * c[i]`
pub fn triad(b: &[f64], c: &[f64], a: &mut [f64], s: f64) {
    for ((ai, &bi), &ci) in a.iter_mut().zip(b).zip(c) {
        *ai = bi + s * ci;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_copies() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut c = vec![0.0; 100];
        copy(&a, &mut c);
        assert_eq!(a, c);
    }

    #[test]
    fn copy_nt_equals_copy() {
        let a: Vec<f64> = (0..101).map(|i| (i as f64).sqrt()).collect();
        let mut c1 = vec![0.0; 101];
        let mut c2 = vec![0.0; 101];
        copy(&a, &mut c1);
        copy_nt(&a, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn scale_add_triad_formulas() {
        let c: Vec<f64> = vec![1.0, 2.0, 3.0];
        let mut b = vec![0.0; 3];
        scale(&c, &mut b, 2.0);
        assert_eq!(b, vec![2.0, 4.0, 6.0]);

        let a = vec![10.0, 20.0, 30.0];
        let mut out = vec![0.0; 3];
        add(&a, &b, &mut out);
        assert_eq!(out, vec![12.0, 24.0, 36.0]);

        let mut t = vec![0.0; 3];
        triad(&b, &c, &mut t, 3.0);
        assert_eq!(t, vec![5.0, 10.0, 15.0]);
    }
}
