//! Experiment E3 — Fig. 5: theoretical multi-layer halo advantage versus
//! linear subdomain size `L` for h ∈ {2,4,8,16,32}, plus the inset
//! (computation/overall-time ratio for h=2 and h=32).
//!
//! Entirely analytic, using the paper's parameter set: QDR InfiniBand
//! (3.2 GB/s, 1.8 µs), 2000 MLUP/s per node, no buffer-copy cost, face-
//! only extra work (both simplifications stated in §2.1).
//!
//! `--realistic` switches to the implementation-accurate variant
//! (expanded slabs + buffer copies) for comparison.

use tb_bench::Args;
use tb_model::halo::{computational_efficiency, fig5_network, halo_advantage, HaloWorkload};
use tb_model::NetworkParams;

fn main() {
    let args = Args::parse();
    let realistic = args.has("--realistic");
    let net = if realistic {
        NetworkParams::qdr_infiniband()
    } else {
        fig5_network()
    };
    let workload = |l: usize| -> HaloWorkload {
        if realistic {
            HaloWorkload::realistic([l, l, l], [true; 3], 2.0e9)
        } else {
            HaloWorkload::fig5(l)
        }
    };

    let hs = [2usize, 4, 8, 16, 32];
    let ls: Vec<usize> = vec![
        1, 2, 3, 4, 6, 8, 10, 14, 20, 28, 40, 56, 80, 110, 160, 220, 300, 400,
    ];

    println!(
        "Fig. 5 — multi-layer halo advantage ({} model)\n",
        if realistic { "realistic" } else { "paper" }
    );
    print!("{:>6}", "L");
    for h in hs {
        print!(" {:>10}", format!("h={h}"));
    }
    println!();
    for &l in &ls {
        print!("{l:>6}");
        let w = workload(l);
        for h in hs {
            print!(" {:>10.3}", halo_advantage(&w, &net, h));
        }
        println!();
    }

    println!("\ninset: computation / overall time");
    println!("{:>6} {:>10} {:>10}", "L", "h=2", "h=32");
    for &l in &ls {
        let w = workload(l);
        println!(
            "{l:>6} {:>10.3} {:>10.3}",
            computational_efficiency(&w, &net, 2),
            computational_efficiency(&w, &net, 32)
        );
    }
    println!(
        "\npaper's reading: no influence at large L; extra halo work relevant\n\
         only for h >~ 16 at 20 <~ L <~ 100; aggregation wins below L ~ 20 —\n\
         but there the efficiency inset shows the run is communication-bound\n\
         anyway, so the gain is squandered."
    );
}
