//! Diamond vs pipelined vs wavefront throughput across team sizes —
//! the perf artifact of the wavefront-diamond scheme.
//!
//! For each team size the three temporal-blocking schemes advance the
//! same problem on one persistent runtime; every run is bitwise-
//! verified against the sequential oracle before its MLUP/s number is
//! trusted. Emits `BENCH_diamond.json`, including per-team flags for
//! where diamond matches or beats the wavefront comparator.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin diamond_sweep -- --size 64 --sweeps 12
//! cargo run --release -p tb-bench --bin diamond_sweep -- --smoke   # CI cell
//! ```

use std::io::Write as _;

use tb_bench::{best_of, problem, Args};
use tb_grid::{norm, Grid3, GridPair, Region3};
use tb_runtime::Runtime;
use tb_stencil::config::GridScheme;
use tb_stencil::{
    baseline, diamond, pipeline, wavefront, DiamondConfig, Jacobi6, PipelineConfig, SyncMode,
};

struct Row {
    team: usize,
    method: String,
    mlups: f64,
    verified: bool,
}

fn pipeline_cfg(team: usize) -> PipelineConfig {
    PipelineConfig {
        team_size: team,
        n_teams: 1,
        updates_per_thread: 1,
        block: [16, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: false,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    rt: &Runtime,
    team: usize,
    method: &str,
    initial: &Grid3<f64>,
    oracle: &Grid3<f64>,
    sweeps: usize,
    reps: usize,
    run: impl Fn(&Runtime, &mut GridPair<f64>) -> Result<tb_stencil::RunStats, String>,
) -> Row {
    let mut last: Option<GridPair<f64>> = None;
    let stats = best_of(reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = run(rt, &mut pair).expect("valid config");
        last = Some(pair);
        s
    });
    let grid = last.expect("reps >= 1").current(sweeps).clone();
    let verified = norm::first_mismatch(oracle, &grid, &Region3::whole(oracle.dims())).is_none();
    Row {
        team,
        method: method.to_string(),
        mlups: stats.mlups(),
        verified,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let edge = args.get_usize("--size", if smoke { 28 } else { 64 });
    let sweeps = args.get_usize("--sweeps", if smoke { 6 } else { 12 });
    let reps = args.get_usize("--reps", if smoke { 2 } else { 3 });
    let width = args.get_usize("--width", 8);
    let teams: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };

    let initial = problem(edge, 0xD1A);
    let mut oracle_pair = GridPair::from_initial(initial.clone());
    baseline::seq_sweeps(&mut oracle_pair, sweeps);
    let oracle = oracle_pair.current(sweeps).clone();

    println!(
        "diamond vs pipelined vs wavefront — {edge}^3, {sweeps} sweeps, \
         best of {reps}, diamond width {width}\n"
    );
    println!(
        "{:>5} {:<12} {:>10} {:>9}",
        "team", "method", "MLUP/s", "verified"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &team in &teams {
        let rt = Runtime::with_threads(team);
        rows.push(run_cell(
            &rt,
            team,
            "diamond",
            &initial,
            &oracle,
            sweeps,
            reps,
            |rt, pair| {
                diamond::run_diamond_op_on(
                    rt,
                    &Jacobi6,
                    pair,
                    &DiamondConfig::with_width(team, width),
                    sweeps,
                )
            },
        ));
        rows.push(run_cell(
            &rt,
            team,
            "pipelined",
            &initial,
            &oracle,
            sweeps,
            reps,
            |rt, pair| pipeline::run_op_on(rt, &Jacobi6, pair, &pipeline_cfg(team), sweeps),
        ));
        rows.push(run_cell(
            &rt,
            team,
            "wavefront",
            &initial,
            &oracle,
            sweeps,
            reps,
            |rt, pair| wavefront::run_wavefront_op_on(rt, &Jacobi6, pair, team, sweeps),
        ));
        for r in rows.iter().skip(rows.len() - 3) {
            println!(
                "{:>5} {:<12} {:>10.1} {:>9}",
                r.team, r.method, r.mlups, r.verified
            );
        }
    }

    // Where does diamond at least match the wavefront comparator?
    let lookup = |team: usize, method: &str| {
        rows.iter()
            .find(|r| r.team == team && r.method == method)
            .map(|r| r.mlups)
            .unwrap_or(0.0)
    };
    let diamond_ge_wavefront: Vec<usize> = teams
        .iter()
        .copied()
        .filter(|&t| lookup(t, "diamond") >= lookup(t, "wavefront"))
        .collect();
    let all_verified = rows.iter().all(|r| r.verified);

    println!(
        "\ndiamond >= wavefront on team sizes {diamond_ge_wavefront:?} \
         (of {teams:?})"
    );

    let json = format!(
        "{{\n  \"edge\": {edge},\n  \"sweeps\": {sweeps},\n  \"reps\": {reps},\n  \
         \"width\": {width},\n  \"teams\": {teams:?},\n  \
         \"diamond_ge_wavefront_teams\": {diamond_ge_wavefront:?},\n  \
         \"all_verified\": {all_verified},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"team\": {}, \"method\": \"{}\", \"mlups\": {:.2}, \
                     \"verified\": {}}}",
                    r.team, r.method, r.mlups, r.verified
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = args.get("--out").unwrap_or("BENCH_diamond.json");
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_diamond.json");
    println!("wrote {path}");

    assert!(
        all_verified,
        "some runs diverged from the sequential oracle"
    );
    println!(
        "all {} scheme × team runs matched the sequential oracle bitwise",
        rows.len()
    );
}
