//! Diamond vs pipelined vs wavefront throughput across team sizes —
//! the perf artifact of the wavefront-diamond scheme.
//!
//! For each team size the three temporal-blocking schemes advance the
//! same problem on one persistent runtime, each both through the
//! explicitly vectorized row kernels (`simd: on`) and pinned to the
//! scalar path via [`ScalarPath`] (`simd: off`); every run is bitwise-
//! verified against its own sequential oracle before its MLUP/s number
//! is trusted. The problem *scales with the team*: `--size` is the
//! one-worker edge and team `t` runs edge `≈ (size³·t)^(1/3)` — fixed
//! work per worker, so the sweep measures scheme scaling instead of
//! strong-scaling a problem that starves wider teams of tiles (the
//! artifact the fixed-size sweep showed as throughput *falling* with
//! teams). The diamond cells honor `--threads-per-tile` (MWD: that
//! many workers cooperate inside each tile) wherever it divides the
//! team. Emits `BENCH_diamond.json`, including per-team flags for
//! where diamond matches or beats the wavefront comparator and the
//! team-1 SIMD-over-scalar speedup.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin diamond_sweep -- --size 64 --sweeps 12
//! cargo run --release -p tb-bench --bin diamond_sweep -- --smoke --threads-per-tile 2
//! ```

use std::io::Write as _;

use tb_bench::{problem, warmed_best_of, Args};
use tb_grid::{norm, Grid3, GridPair, Region3};
use tb_runtime::Runtime;
use tb_stencil::config::GridScheme;
use tb_stencil::{
    baseline, diamond, pipeline, wavefront, DiamondConfig, Jacobi6, PipelineConfig, ScalarPath,
    StencilOp, SyncMode,
};

struct Row {
    team: usize,
    edge: usize,
    method: String,
    simd: bool,
    mlups: f64,
    verified: bool,
}

/// Edge for `team` workers holding the per-worker cell count at the
/// one-worker `base` edge: `(base³ · team)^(1/3)`, rounded.
fn scaled_edge(base: usize, team: usize) -> usize {
    ((base as f64).powi(3) * team as f64).cbrt().round() as usize
}

fn pipeline_cfg(team: usize) -> PipelineConfig {
    PipelineConfig {
        team_size: team,
        n_teams: 1,
        updates_per_thread: 1,
        block: [16, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: false,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    rt: &Runtime,
    team: usize,
    method: &str,
    simd: bool,
    initial: &Grid3<f64>,
    oracle: &Grid3<f64>,
    sweeps: usize,
    reps: usize,
    run: impl Fn(&Runtime, &mut GridPair<f64>) -> Result<tb_stencil::RunStats, String>,
) -> Row {
    let mut last: Option<GridPair<f64>> = None;
    let stats = warmed_best_of(reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = run(rt, &mut pair).expect("valid config");
        last = Some(pair);
        s
    });
    let grid = last.expect("reps >= 1").current(sweeps).clone();
    let verified = norm::first_mismatch(oracle, &grid, &Region3::whole(oracle.dims())).is_none();
    Row {
        team,
        edge: initial.dims().nx,
        method: method.to_string(),
        simd,
        mlups: stats.mlups(),
        verified,
    }
}

/// The three schemes at one (team, simd-path) point. The operator value
/// carries the path choice: `Jacobi6` rides the vectorized row kernels,
/// `ScalarPath(Jacobi6)` pins the same arithmetic to the scalar rows.
#[allow(clippy::too_many_arguments)]
fn run_schemes<Op: StencilOp<f64>>(
    rt: &Runtime,
    op: &Op,
    team: usize,
    tpt: usize,
    simd: bool,
    initial: &Grid3<f64>,
    oracle: &Grid3<f64>,
    sweeps: usize,
    reps: usize,
    width: usize,
    rows: &mut Vec<Row>,
) {
    let dia_cfg = DiamondConfig::with_width(team, width).with_threads_per_tile(tpt);
    rows.push(run_cell(
        rt,
        team,
        "diamond",
        simd,
        initial,
        oracle,
        sweeps,
        reps,
        |rt, pair| diamond::run_diamond_op_on(rt, op, pair, &dia_cfg, sweeps),
    ));
    rows.push(run_cell(
        rt,
        team,
        "pipelined",
        simd,
        initial,
        oracle,
        sweeps,
        reps,
        |rt, pair| pipeline::run_op_on(rt, op, pair, &pipeline_cfg(team), sweeps),
    ));
    rows.push(run_cell(
        rt,
        team,
        "wavefront",
        simd,
        initial,
        oracle,
        sweeps,
        reps,
        |rt, pair| wavefront::run_wavefront_op_on(rt, op, pair, team, sweeps),
    ));
    for r in rows.iter().skip(rows.len() - 3) {
        println!(
            "{:>5} {:>6} {:<12} {:>5} {:>4} {:>10.1} {:>9}",
            r.team,
            r.edge,
            r.method,
            if r.simd { "on" } else { "off" },
            tpt,
            r.mlups,
            r.verified
        );
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let edge = args.get_usize("--size", if smoke { 28 } else { 64 });
    let sweeps = args.get_usize("--sweeps", if smoke { 6 } else { 12 });
    let reps = args.get_usize("--reps", if smoke { 2 } else { 3 });
    let width = args.get_usize("--width", 8);
    let tpt = args.get_usize("--threads-per-tile", 1);
    let teams: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };

    println!(
        "diamond vs pipelined vs wavefront — {edge}^3 per worker (edge scales \
         with team), {sweeps} sweeps, best of {reps}, diamond width {width}, \
         threads/tile {tpt}\n"
    );
    println!(
        "{:>5} {:>6} {:<12} {:>5} {:>4} {:>10} {:>9}",
        "team", "edge", "method", "simd", "tpt", "MLUP/s", "verified"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &team in &teams {
        // Fixed work per worker: each team size gets its own problem
        // (and its own sequential oracle, since the grids differ).
        let team_edge = scaled_edge(edge, team);
        let initial = problem(team_edge, 0xD1A);
        let mut oracle_pair = GridPair::from_initial(initial.clone());
        baseline::seq_sweeps(&mut oracle_pair, sweeps);
        let oracle = oracle_pair.current(sweeps).clone();

        let rt = Runtime::with_threads(team);
        // MWD sub-teams must divide the team; fall back to 1 elsewhere.
        let team_tpt = if team.is_multiple_of(tpt) { tpt } else { 1 };
        run_schemes(
            &rt, &Jacobi6, team, team_tpt, true, &initial, &oracle, sweeps, reps, width, &mut rows,
        );
        run_schemes(
            &rt,
            &ScalarPath(Jacobi6),
            team,
            team_tpt,
            false,
            &initial,
            &oracle,
            sweeps,
            reps,
            width,
            &mut rows,
        );
    }

    let lookup = |team: usize, method: &str, simd: bool| {
        rows.iter()
            .find(|r| r.team == team && r.method == method && r.simd == simd)
            .map(|r| r.mlups)
            .unwrap_or(0.0)
    };
    // Where does diamond at least match the wavefront comparator?
    // (Compared on the vectorized path — the configuration that ships.)
    let diamond_ge_wavefront: Vec<usize> = teams
        .iter()
        .copied()
        .filter(|&t| lookup(t, "diamond", true) >= lookup(t, "wavefront", true))
        .collect();
    // Does the explicit SIMD path pay off where it is easiest to see —
    // a single worker, no synchronization noise?
    let simd_speedup_team1 = lookup(1, "diamond", true) / lookup(1, "diamond", false).max(1e-9);
    let all_verified = rows.iter().all(|r| r.verified);

    println!(
        "\ndiamond >= wavefront on team sizes {diamond_ge_wavefront:?} \
         (of {teams:?}); team-1 diamond simd/scalar = {simd_speedup_team1:.2}x"
    );

    let json = format!(
        "{{\n  \"edge_per_worker\": {edge},\n  \"scaling\": \"fixed-work-per-team\",\n  \
         \"sweeps\": {sweeps},\n  \"reps\": {reps},\n  \
         \"width\": {width},\n  \"threads_per_tile\": {tpt},\n  \"teams\": {teams:?},\n  \
         \"diamond_ge_wavefront_teams\": {diamond_ge_wavefront:?},\n  \
         \"simd_speedup_team1\": {simd_speedup_team1:.3},\n  \
         \"all_verified\": {all_verified},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"team\": {}, \"edge\": {}, \"method\": \"{}\", \"simd\": \"{}\", \
                     \"mlups\": {:.2}, \"verified\": {}}}",
                    r.team,
                    r.edge,
                    r.method,
                    if r.simd { "on" } else { "off" },
                    r.mlups,
                    r.verified
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = args.get("--out").unwrap_or("BENCH_diamond.json");
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_diamond.json");
    println!("wrote {path}");

    assert!(
        all_verified,
        "some runs diverged from the sequential oracle"
    );
    println!(
        "all {} scheme × team × path runs matched the sequential oracle bitwise",
        rows.len()
    );
}
