//! Experiment E8 — §1.5 in-text: inner block length sweep.
//!
//! The standard code wants the inner loop as long as possible (hardware
//! prefetchers; "comparable to the page size"); the temporally blocked
//! code peaks around b_x ≈ 120 because the block working set must stay
//! inside the shared cache.

use tb_bench::{best_of, problem, Args};
use tb_grid::GridPair;
use tb_stencil::config::GridScheme;
use tb_stencil::{pipeline, PipelineConfig, SyncMode};
use tb_topology::TeamLayout;

fn main() {
    let args = Args::parse();
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 16);
    let reps = args.get_usize("--reps", 3);
    let t = machine.cores_per_socket().max(1);

    println!("ablation: inner block length b_x ({edge}^3, blocks b_x x 20 x 20)\n");
    println!("{:>6} {:>12} {:>18}", "b_x", "MLUP/s", "block KiB (f64)");
    let mut sizes: Vec<usize> = [16usize, 32, 64, 120, 180, 240, 600]
        .iter()
        .map(|&b| b.min(edge - 2))
        .collect();
    sizes.dedup();
    for bx in sizes {
        let cfg = PipelineConfig {
            team_size: t,
            n_teams: 1,
            updates_per_thread: 2,
            block: [bx, 20, 20],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: Some(TeamLayout::new(&machine, t, 1)),
            audit: false,
        };
        if cfg.validate(tb_grid::Dims3::cube(edge)).is_err() {
            continue;
        }
        let s = best_of(reps, || {
            let mut pair = GridPair::from_initial(problem(edge, 42));
            pipeline::run(&mut pair, &cfg, sweeps).unwrap()
        });
        println!(
            "{bx:>6} {:>12.1} {:>18.0}",
            s.mlups(),
            (bx * 20 * 20 * 8) as f64 / 1024.0
        );
    }
    println!(
        "\npaper: best around b_x ~ 120 on the 600^3 problem; y/z block sizes\n\
         matter little as long as the cache-size restriction holds."
    );
}
