//! Ablation of the paper's §3 outlook: one big pipeline across all cores
//! (the paper's method, ccNUMA-hostile) versus the team-decomposed node
//! solver (one pipeline per cache group + multi-layer slab coupling —
//! the fix the paper proposes, implemented in `tb_dist::numa`), plus a
//! placement on/off ablation of the runtime's first-touch layer
//! (`tb_runtime::placement`): the same parallel solve with its staging
//! pages worker-first-touched versus client-touched.
//!
//! Every variant is verified bitwise against the sequential solver
//! before timing. Emits `BENCH_numa.json`.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin numa_ablation
//! cargo run --release -p tb-bench --bin numa_ablation -- --smoke
//! ```

use std::io::Write as _;

use tb_bench::{best_of, problem, Args};
use tb_dist::numa::{run_numa_node, NumaNodeConfig};
use tb_grid::{norm, GridPair, Region3};
use tb_stencil::config::GridScheme;
use tb_stencil::{baseline, pipeline, Jacobi6, PipelineConfig, SyncMode};
use tb_topology::TeamLayout;
use temporal_blocking::{solve_with_on, Method, Placement, Runtime};

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", if smoke { 24 } else { tb_bench::default_edge() });
    let sweeps = args.get_usize("--sweeps", if smoke { 4 } else { 16 });
    let reps = args.get_usize("--reps", if smoke { 1 } else { 3 });
    let t = machine.cores_per_socket().max(1);
    let teams = machine.cache_groups().len().max(2);
    let dims = tb_grid::Dims3::cube(edge);
    let numa_nodes = machine.num_numa_nodes();

    println!(
        "NUMA ablation on {} ({} NUMA node(s)) — {edge}^3, {sweeps} sweeps, {teams} teams of {t}\n",
        machine.name, numa_nodes
    );

    // Reference for verification.
    let initial = problem(edge, 42);
    let mut ref_pair = GridPair::from_initial(initial.clone());
    baseline::seq_sweeps(&mut ref_pair, sweeps);
    let want = ref_pair.current(sweeps);

    // (a) single big pipeline across all teams.
    let big = PipelineConfig {
        team_size: t,
        n_teams: teams,
        updates_per_thread: 2,
        block: [edge.min(120), 20, 20],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: Some(TeamLayout::new(&machine, t, teams)),
        audit: false,
    };
    let big_mlups = if big.validate(dims).is_ok() {
        let mut pair = GridPair::from_initial(initial.clone());
        pipeline::run(&mut pair, &big, sweeps).unwrap();
        norm::assert_grids_identical(want, pair.current(sweeps), &Region3::whole(dims), "big");
        let s = best_of(reps, || {
            let mut pair = GridPair::from_initial(initial.clone());
            pipeline::run(&mut pair, &big, sweeps).unwrap()
        });
        println!("single node-wide pipeline:   {:>10.1} MLUP/s", s.mlups());
        Some(s.mlups())
    } else {
        println!("single node-wide pipeline:   skipped (grid too small for depth)");
        None
    };

    // (b) team-decomposed (one pipeline per cache group).
    let numa = NumaNodeConfig {
        team_size: t,
        n_teams: teams,
        updates_per_thread: 2,
        block: [edge.min(120), 20, 20],
        sync: SyncMode::relaxed_default(),
        pin: true,
    };
    let decomposed_mlups = match run_numa_node(&initial, &machine, &numa, sweeps) {
        Ok((got, _)) => {
            norm::assert_grids_identical(want, &got, &Region3::interior_of(dims), "numa");
            let s = best_of(reps, || {
                run_numa_node(&initial, &machine, &numa, sweeps).unwrap().1
            });
            // cells_updated includes redundant ring work; report useful rate.
            let useful = (sweeps * dims.interior_len()) as f64;
            let useful_mlups = useful / s.elapsed.as_secs_f64() / 1e6;
            println!(
                "team-decomposed pipelines:   {:>10.1} MLUP/s (incl. ring work: {:.1})",
                useful_mlups,
                s.mlups()
            );
            Some(useful_mlups)
        }
        Err(e) => {
            println!("team-decomposed pipelines:   skipped ({e})");
            None
        }
    };

    // (c) placement on/off: the identical parallel solve on a persistent
    // runtime, staging pages either first-touched by the pinned workers
    // or left wherever this (client) thread's allocation committed them.
    let threads = machine.num_cpus().max(1);
    let method = Method::Parallel {
        threads,
        streaming_stores: false,
    };
    let mut placement_mlups = [0.0f64; 2];
    for (slot, placement) in [Placement::WorkerFirstTouch, Placement::ClientPages]
        .into_iter()
        .enumerate()
    {
        let rt = Runtime::new(&TeamLayout::new(&machine, threads, 1)).with_placement(placement);
        let (got, _) =
            solve_with_on(&rt, &Jacobi6, initial.clone(), sweeps, method.clone()).unwrap();
        norm::assert_grids_identical(want, &got, &Region3::whole(dims), placement.name());
        let s = best_of(reps, || {
            solve_with_on(&rt, &Jacobi6, initial.clone(), sweeps, method.clone())
                .unwrap()
                .1
        });
        println!(
            "parallel, {:<18} {:>10.1} MLUP/s",
            format!("{}:", placement.name()),
            s.mlups()
        );
        placement_mlups[slot] = s.mlups();
    }
    let placement_ratio = placement_mlups[0] / placement_mlups[1];
    println!("worker-first-touch/client-pages: {placement_ratio:.3}x");

    // On >= 2 NUMA nodes worker placement must win outright; on one
    // node the two paths touch identical pages and should tie (no
    // assertion — the ratio is reported for the record).
    if !smoke && numa_nodes >= 2 {
        assert!(
            placement_ratio > 1.0,
            "with {numa_nodes} NUMA nodes worker-first-touch ({:.1} MLUP/s) must beat \
             client-pages ({:.1} MLUP/s)",
            placement_mlups[0],
            placement_mlups[1]
        );
    }

    println!(
        "\npaper §3: the single node-wide pipeline defeats first-touch NUMA\n\
         placement; decomposing per cache group (like 2PPN in Fig. 6) is the\n\
         proposed fix. On UMA hosts expect parity; on ccNUMA a gap."
    );

    let fmt_opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.1}"),
        None => "null".to_string(),
    };
    let node_cpus: Vec<usize> = machine.numa_nodes().iter().map(|n| n.cpus.len()).collect();
    let json = format!(
        "{{\n  \"machine\": \"{sig}\",\n  \"numa_nodes\": {numa_nodes},\n  \
         \"numa_node_cpus\": {node_cpus:?},\n  \"edge\": {edge},\n  \"sweeps\": {sweeps},\n  \
         \"reps\": {reps},\n  \"teams\": {teams},\n  \
         \"node_wide_pipeline_mlups\": {big},\n  \
         \"team_decomposed_mlups\": {decomp},\n  \
         \"placement\": {{\n    \
         \"worker_first_touch_mlups\": {wft:.1},\n    \
         \"client_pages_mlups\": {cp:.1},\n    \
         \"worker_over_client\": {placement_ratio:.3}\n  }},\n  \
         \"all_variants_verified\": true\n}}\n",
        sig = machine.signature(),
        big = fmt_opt(big_mlups),
        decomp = fmt_opt(decomposed_mlups),
        wft = placement_mlups[0],
        cp = placement_mlups[1],
    );
    let out = args.get("--out").unwrap_or("BENCH_numa.json");
    std::fs::File::create(out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write numa json");
    println!("wrote {out}");
}
