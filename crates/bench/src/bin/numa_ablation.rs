//! Ablation of the paper's §3 outlook: one big pipeline across all cores
//! (the paper's method, ccNUMA-hostile) versus the team-decomposed node
//! solver (one pipeline per cache group + multi-layer slab coupling —
//! the fix the paper proposes, implemented in `tb_dist::numa`).
//!
//! Both variants are verified bitwise against the sequential solver
//! before timing.

use tb_bench::{best_of, problem, Args};
use tb_dist::numa::{run_numa_node, NumaNodeConfig};
use tb_grid::{norm, GridPair, Region3};
use tb_stencil::config::GridScheme;
use tb_stencil::{baseline, pipeline, PipelineConfig, SyncMode};
use tb_topology::TeamLayout;

fn main() {
    let args = Args::parse();
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 16);
    let reps = args.get_usize("--reps", 3);
    let t = machine.cores_per_socket().max(1);
    let teams = machine.cache_groups().len().max(2);
    let dims = tb_grid::Dims3::cube(edge);

    println!(
        "NUMA ablation on {} — {edge}^3, {sweeps} sweeps, {teams} teams of {t}\n",
        machine.name
    );

    // Reference for verification.
    let initial = problem(edge, 42);
    let mut ref_pair = GridPair::from_initial(initial.clone());
    baseline::seq_sweeps(&mut ref_pair, sweeps);
    let want = ref_pair.current(sweeps);

    // (a) single big pipeline across all teams.
    let big = PipelineConfig {
        team_size: t,
        n_teams: teams,
        updates_per_thread: 2,
        block: [edge.min(120), 20, 20],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: Some(TeamLayout::new(&machine, t, teams)),
        audit: false,
    };
    if big.validate(dims).is_ok() {
        let mut pair = GridPair::from_initial(initial.clone());
        pipeline::run(&mut pair, &big, sweeps).unwrap();
        norm::assert_grids_identical(want, pair.current(sweeps), &Region3::whole(dims), "big");
        let s = best_of(reps, || {
            let mut pair = GridPair::from_initial(initial.clone());
            pipeline::run(&mut pair, &big, sweeps).unwrap()
        });
        println!("single node-wide pipeline:   {:>10.1} MLUP/s", s.mlups());
    } else {
        println!("single node-wide pipeline:   skipped (grid too small for depth)");
    }

    // (b) team-decomposed (one pipeline per cache group).
    let numa = NumaNodeConfig {
        team_size: t,
        n_teams: teams,
        updates_per_thread: 2,
        block: [edge.min(120), 20, 20],
        sync: SyncMode::relaxed_default(),
        pin: true,
    };
    match run_numa_node(&initial, &machine, &numa, sweeps) {
        Ok((got, _)) => {
            norm::assert_grids_identical(want, &got, &Region3::interior_of(dims), "numa");
            let s = best_of(reps, || {
                run_numa_node(&initial, &machine, &numa, sweeps).unwrap().1
            });
            // cells_updated includes redundant ring work; report useful rate.
            let useful = (sweeps * dims.interior_len()) as f64;
            println!(
                "team-decomposed pipelines:   {:>10.1} MLUP/s (incl. ring work: {:.1})",
                useful / s.elapsed.as_secs_f64() / 1e6,
                s.mlups()
            );
        }
        Err(e) => println!("team-decomposed pipelines:   skipped ({e})"),
    }
    println!(
        "\npaper §3: the single node-wide pipeline defeats first-touch NUMA\n\
         placement; decomposing per cache group (like 2PPN in Fig. 6) is the\n\
         proposed fix. On UMA hosts expect parity; on ccNUMA a gap."
    );
}
