//! Operator × method throughput sweep — the perf trajectory seed for the
//! stencil-operator layer.
//!
//! Runs every shipped operator (classic 6-point Jacobi, 7-point heat,
//! variable-coefficient 7-point, dense 27-point average) through every
//! execution strategy (sequential, blocked, parallel ± streaming stores,
//! pipelined, compressed, wavefront, distributed), measures MLUP/s and
//! MFLOP/s, bitwise-verifies each run against the operator's sequential
//! oracle, and emits `BENCH_ops.json`.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin op_sweep -- --size 40 --sweeps 8
//! ```

use std::io::Write as _;

use tb_bench::{problem, warmed_best_of, Args};
use tb_dist::{Decomposition, DistSolver, LocalExec};
use tb_grid::{norm, CompressedGrid, Grid3, GridPair, Region3};
use tb_net::{CartComm, Universe};
use tb_stencil::config::GridScheme;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{
    baseline, diamond, pipeline, wavefront, Avg27, DiamondConfig, Jacobi6, Jacobi7, PipelineConfig,
    RunStats, ScalarPath, StencilOp, SyncMode, VarCoeff7,
};

struct Row {
    op: &'static str,
    method: &'static str,
    simd: &'static str,
    mlups: f64,
    mflops: f64,
    verified: bool,
}

fn pipeline_cfg(scheme: GridScheme) -> PipelineConfig {
    PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [16, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme,
        layout: None,
        audit: false,
    }
}

/// Run one (operator, method) cell with a discarded warm-up rep plus
/// `reps` timed ones, keep the best, verify bitwise against the oracle.
/// `simd` records which row path the operator value routes through
/// (plain ops vectorize, [`ScalarPath`] pins the scalar kernel) — the
/// arithmetic is bitwise identical either way, only the throughput
/// differs.
fn cell<Op: StencilOp<f64>>(
    op: &Op,
    method: &'static str,
    simd: &'static str,
    oracle: &Grid3<f64>,
    reps: usize,
    mut run: impl FnMut() -> (Grid3<f64>, RunStats),
) -> Row {
    let mut last: Option<Grid3<f64>> = None;
    let stats = warmed_best_of(reps, || {
        let (g, s) = run();
        last = Some(g);
        s
    });
    let grid = last.expect("reps >= 1");
    let verified = norm::first_mismatch(oracle, &grid, &Region3::whole(oracle.dims())).is_none();
    Row {
        op: op.name(),
        method,
        simd,
        mlups: stats.mlups(),
        mflops: stats.mflops(op.flops_per_lup()),
        verified,
    }
}

fn sweep_op<Op: StencilOp<f64>>(
    op: &Op,
    edge: usize,
    sweeps: usize,
    reps: usize,
    threads: usize,
    tpt: usize,
    rows: &mut Vec<Row>,
) {
    let initial = problem(edge, 0xBEEF);
    let mut oracle_pair = GridPair::from_initial(initial.clone());
    baseline::seq_sweeps_op(op, &mut oracle_pair, sweeps);
    let oracle = oracle_pair.current(sweeps).clone();

    rows.push(cell(op, "seq", "on", &oracle, reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = baseline::seq_sweeps_op(op, &mut pair, sweeps);
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "seq", "off", &oracle, reps, || {
        let scalar = ScalarPath(op.clone());
        let mut pair = GridPair::from_initial(initial.clone());
        let s = baseline::seq_sweeps_op(&scalar, &mut pair, sweeps);
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "blocked", "on", &oracle, reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = baseline::seq_blocked_sweeps_op(op, &mut pair, sweeps, [32, 8, 8]);
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "parallel", "on", &oracle, reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = baseline::par_sweeps_op(op, &mut pair, sweeps, threads, StoreMode::Normal, None);
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "parallel-nt", "on", &oracle, reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = baseline::par_sweeps_op(op, &mut pair, sweeps, threads, StoreMode::Streaming, None);
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "pipelined", "on", &oracle, reps, || {
        let cfg = pipeline_cfg(GridScheme::TwoGrid);
        let mut pair = GridPair::from_initial(initial.clone());
        let s = pipeline::run_op(op, &mut pair, &cfg, sweeps).expect("valid config");
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "compressed", "on", &oracle, reps, || {
        let cfg = pipeline_cfg(GridScheme::Compressed);
        let mut cg = CompressedGrid::from_grid(&initial, cfg.stages());
        let s = pipeline::run_compressed_op(op, &mut cg, &cfg, sweeps).expect("valid config");
        (cg.to_grid(), s)
    }));
    rows.push(cell(op, "wavefront", "on", &oracle, reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = wavefront::run_wavefront_op(op, &mut pair, 2, sweeps).expect("valid threads");
        (pair.current(sweeps).clone(), s)
    }));
    // MWD sub-teams must divide the (fixed, 2-thread) diamond team.
    let team_tpt = if 2usize.is_multiple_of(tpt) { tpt } else { 1 };
    let dia_cfg = DiamondConfig::with_width(2, 8).with_threads_per_tile(team_tpt);
    rows.push(cell(op, "diamond", "on", &oracle, reps, || {
        let mut pair = GridPair::from_initial(initial.clone());
        let s = diamond::run_diamond_op(op, &mut pair, &dia_cfg, sweeps).expect("valid config");
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "diamond", "off", &oracle, reps, || {
        let scalar = ScalarPath(op.clone());
        let mut pair = GridPair::from_initial(initial.clone());
        let s =
            diamond::run_diamond_op(&scalar, &mut pair, &dia_cfg, sweeps).expect("valid config");
        (pair.current(sweeps).clone(), s)
    }));
    rows.push(cell(op, "dist", "on", &oracle, reps, || {
        dist_run(op, &initial, sweeps, [2, 1, 1], &LocalExec::Seq)
    }));
    rows.push(cell(op, "dist-diamond", "on", &oracle, reps, || {
        // 8 ranks, each advancing its box with diamond blocking.
        let exec =
            LocalExec::Diamond(DiamondConfig::with_width(2, 6).with_threads_per_tile(team_tpt));
        dist_run(op, &initial, sweeps, [2, 2, 2], &exec)
    }));
}

/// One distributed run: every rank advances with `exec`, rank 0 gathers
/// the global grid, stats are merged across ranks.
fn dist_run<Op: StencilOp<f64>>(
    op: &Op,
    initial: &Grid3<f64>,
    sweeps: usize,
    pgrid: [usize; 3],
    exec: &LocalExec,
) -> (Grid3<f64>, RunStats) {
    let dec = Decomposition::new(initial.dims(), pgrid, 2);
    let results = Universe::run(dec.ranks(), None, move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s =
            DistSolver::from_global_op(&dec, cart.coords(), initial, exec.clone(), op.clone())
                .expect("valid decomposition");
        let stats = s.run_sweeps(&mut cart, sweeps);
        (s.gather_global(&mut cart, &dec, initial), stats)
    });
    let mut grid = None;
    let mut agg = RunStats::new(0, std::time::Duration::ZERO);
    for (g, s) in results {
        agg = agg.merge_parallel(&s);
        if let Some(g) = g {
            grid = Some(g);
        }
    }
    (grid.expect("rank 0 gathers"), agg)
}

fn main() {
    let args = Args::parse();
    let edge = args.get_usize("--size", 40);
    let sweeps = args.get_usize("--sweeps", 8);
    let reps = args.get_usize("--reps", 2);
    let tpt = args.get_usize("--threads-per-tile", 1);
    let machine = tb_topology::detect::detect();
    let threads = machine.cores_per_socket().max(2);
    let dims = tb_grid::Dims3::cube(edge);

    println!(
        "operator × method sweep — {edge}^3, {sweeps} sweeps, best of {reps}, \
         threads/tile {tpt}\n"
    );

    let mut rows = Vec::new();
    sweep_op(&Jacobi6, edge, sweeps, reps, threads, tpt, &mut rows);
    sweep_op(
        &Jacobi7::heat(0.1),
        edge,
        sweeps,
        reps,
        threads,
        tpt,
        &mut rows,
    );
    sweep_op(
        &VarCoeff7::banded(dims),
        edge,
        sweeps,
        reps,
        threads,
        tpt,
        &mut rows,
    );
    sweep_op(&Avg27, edge, sweeps, reps, threads, tpt, &mut rows);

    println!(
        "{:<11} {:<12} {:>5} {:>10} {:>10} {:>9}",
        "op", "method", "simd", "MLUP/s", "MFLOP/s", "verified"
    );
    for r in &rows {
        println!(
            "{:<11} {:<12} {:>5} {:>10.1} {:>10.1} {:>9}",
            r.op, r.method, r.simd, r.mlups, r.mflops, r.verified
        );
    }

    let all_verified = rows.iter().all(|r| r.verified);
    let json = format!(
        "{{\n  \"edge\": {edge},\n  \"sweeps\": {sweeps},\n  \"threads\": {threads},\n  \
         \"threads_per_tile\": {tpt},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"op\": \"{}\", \"method\": \"{}\", \"simd\": \"{}\", \
                     \"mlups\": {:.2}, \"mflops\": {:.2}, \"verified\": {}}}",
                    r.op, r.method, r.simd, r.mlups, r.mflops, r.verified
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = args.get("--out").unwrap_or("BENCH_ops.json");
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_ops.json");
    println!("\nwrote {path}");

    assert!(
        all_verified,
        "some runs diverged from their sequential oracle"
    );
    println!(
        "all {} operator × method runs matched their sequential oracle bitwise",
        rows.len()
    );
}
