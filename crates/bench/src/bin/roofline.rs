//! Experiment E5 — Eq. 2: the bandwidth roofline for the standard Jacobi.
//!
//! Measures STREAM COPY on the host (single thread, cache group, in-cache
//! working set), derives `P0 = M_s / 16 B`, then measures the actual
//! baseline solver and reports how close it gets. Also prints the paper's
//! Nehalem numbers for reference (18.5 GB/s per socket -> 2.3 GLUP/s per
//! node expectation).

use tb_bench::{best_of, problem, Args};
use tb_grid::GridPair;
use tb_model::{roofline, MachineParams};
use tb_stencil::baseline;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{Jacobi6, StencilOp};

fn main() {
    let args = Args::parse();
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 10);
    let reps = args.get_usize("--reps", 3);

    println!("Eq. 2 roofline on {} — {edge}^3 grid\n", machine.name);

    let params = tb_membench::calibrate_host(&machine, tb_membench::CalibrationProfile::quick());
    println!("measured bandwidths:");
    println!(
        "  M_s,1 (1 thread, memory) = {:>8.2} GB/s",
        params.ms1 / 1e9
    );
    println!("  M_s   (group,  memory)   = {:>8.2} GB/s", params.ms / 1e9);
    println!("  M_c   (group,  cache)    = {:>8.2} GB/s", params.mc / 1e9);

    // Code balance comes from the operator, not a hardcoded constant.
    let b_nt = StencilOp::<f64>::bytes_per_lup(&Jacobi6, StoreMode::Streaming);
    let b_rfo = StencilOp::<f64>::bytes_per_lup(&Jacobi6, StoreMode::Normal);
    let p0_nt = roofline::roofline_lups(&params, b_nt) / 1e6;
    let p0_rfo = roofline::roofline_lups(&params, b_rfo) / 1e6;
    println!("\nexpected baseline (one cache group):");
    println!("  with NT stores ({b_nt:.0} B/LUP):  {p0_nt:>10.1} MLUP/s");
    println!("  with RFO       ({b_rfo:.0} B/LUP):  {p0_rfo:>10.1} MLUP/s");

    let threads = machine.cores_per_socket().max(1);
    for (label, store, expect) in [
        ("measured, NT stores", StoreMode::Streaming, p0_nt),
        ("measured, plain stores", StoreMode::Normal, p0_rfo),
    ] {
        let s = best_of(reps, || {
            let mut pair = GridPair::from_initial(problem(edge, 42));
            baseline::par_sweeps(&mut pair, sweeps, threads, store, None)
        });
        println!(
            "  {label:<24} {:>10.1} MLUP/s  ({:.0}% of roofline)",
            s.mlups(),
            100.0 * s.mlups() / expect
        );
    }

    let nehalem = MachineParams::nehalem_ep();
    println!(
        "\npaper's testbed: M_s = 18.5 GB/s/socket -> {:.2} GLUP/s expected per node (2 sockets)",
        2.0 * roofline::jacobi_roofline_default(&nehalem) / 1e9
    );
}
