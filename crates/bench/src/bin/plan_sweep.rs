//! Plan-cache autotuner economics — the perf artifact of `tb-plan`.
//!
//! For each method family: a **cold tune** (enumerate candidates, score
//! with the analytic models, measure only the model-ranked top-K plus
//! the library default, persist the winner) followed by a **warm hit**
//! (replay the cached plan). Each family tunes into its own cache file
//! so the per-family winners never collide under the shared
//! `PlanKey`. Emits `BENCH_plan.json` recording cold-tune vs warm-hit
//! wall time, tuned-vs-default MLUP/s, and the pruning ratio
//! (measured / enumerated candidates). Hard-asserts the autotuner
//! contract: a warm hit performs **zero** measurements, the model
//! prunes at least half the candidate space, the tuned plan never loses
//! to the default, and every solve is bitwise-identical to the
//! sequential oracle.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin plan_sweep -- --size 40 --sweeps 8
//! cargo run --release -p tb-bench --bin plan_sweep -- --smoke
//! ```

use std::io::Write as _;
use std::time::Instant;

use tb_bench::{problem, Args};
use tb_grid::{norm, GridPair, Region3};
use tb_plan::MethodFamily;
use tb_stencil::baseline;
use temporal_blocking::{solve_tuned_with_on, tuning_runtime, Jacobi6, TuneOptions};

struct FamilyRow {
    family: &'static str,
    enumerated: usize,
    measured: usize,
    cold_ms: f64,
    warm_ms: f64,
    default_mlups: f64,
    tuned_mlups: f64,
    warm_measurements: usize,
    winner: String,
    verified: bool,
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let edge = args.get_usize("--size", if smoke { 24 } else { 40 });
    let sweeps = args.get_usize("--sweeps", if smoke { 4 } else { 8 });
    let top_k = args.get_usize("--top-k", if smoke { 3 } else { 6 });

    let machine = tb_topology::detect::detect();
    let group = machine
        .cores_per_socket()
        .clamp(2, if smoke { 2 } else { 4 });
    let layout = tb_topology::TeamLayout::new(&machine, group, 1);
    let rt = tuning_runtime(&machine, &layout, group);

    // One parameter set feeds every family's fingerprint, so membench
    // runs at most once per invocation (smoke mode skips it entirely
    // and scores with the paper's Nehalem EP parameters).
    let params = if smoke {
        tb_model::MachineParams::nehalem_ep()
    } else {
        tb_membench::calibrate_host(&machine, tb_membench::CalibrationProfile::quick())
    };

    // Fresh cache dir per invocation: the cold tune must really be cold.
    let cache_dir = std::env::temp_dir().join(format!("tb-plan-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    let initial = problem(edge, 0x91A);
    let mut oracle_pair = GridPair::from_initial(initial.clone());
    baseline::seq_sweeps(&mut oracle_pair, sweeps);
    let oracle = oracle_pair.current(sweeps).clone();

    println!(
        "plan-cache autotuner — {edge}^3, {sweeps} sweeps, top-{top_k}, \
         {} workers, cache dir {}\n",
        rt.threads(),
        cache_dir.display()
    );
    println!(
        "{:<11} {:>5} {:>5} {:>6} {:>10} {:>9} {:>9} {:>9}  winner",
        "family", "enum", "meas", "ratio", "cold ms", "warm ms", "default", "tuned"
    );

    let mut rows: Vec<FamilyRow> = Vec::new();
    for family in MethodFamily::ALL {
        let opts = TuneOptions {
            cache_path: Some(cache_dir.join(format!("plans-{}.json", family.name()))),
            top_k,
            params: Some(params),
            families: vec![family],
            ..TuneOptions::default()
        };

        let t0 = Instant::now();
        let cold = solve_tuned_with_on(&rt, &Jacobi6, initial.clone(), sweeps, &opts);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (cold_grid, _, cold_tuned) = match cold {
            Ok(r) => r,
            Err(e) => {
                // A family can be untunable on tiny smoke grids (every
                // candidate invalid); record it and move on.
                println!("{:<11} untunable here: {e}", family.name());
                continue;
            }
        };
        let report = cold_tuned.report.as_ref().expect("cold tune reports");
        assert!(
            !cold_tuned.cache_hit,
            "{}: first tune must be cold",
            family.name()
        );

        let t1 = Instant::now();
        let (warm_grid, _, warm_tuned) =
            solve_tuned_with_on(&rt, &Jacobi6, initial.clone(), sweeps, &opts)
                .expect("warm replay");
        let warm_ms = t1.elapsed().as_secs_f64() * 1e3;

        let verified = norm::first_mismatch(&oracle, &cold_grid, &Region3::whole(oracle.dims()))
            .is_none()
            && norm::first_mismatch(&oracle, &warm_grid, &Region3::whole(oracle.dims())).is_none();
        let default_mlups = report
            .incumbent()
            .and_then(|r| r.measured_mlups)
            .unwrap_or(0.0);
        let tuned_mlups = report
            .winner()
            .and_then(|r| r.measured_mlups)
            .unwrap_or(0.0);
        let row = FamilyRow {
            family: family.name(),
            enumerated: report.enumerated,
            measured: report.measured,
            cold_ms,
            warm_ms,
            default_mlups,
            tuned_mlups,
            warm_measurements: warm_tuned.measurements,
            winner: warm_tuned.plan.label(),
            verified,
        };
        println!(
            "{:<11} {:>5} {:>5} {:>6.2} {:>10.1} {:>9.1} {:>9.1} {:>9.1}  {}",
            row.family,
            row.enumerated,
            row.measured,
            report.pruning_ratio(),
            row.cold_ms,
            row.warm_ms,
            row.default_mlups,
            row.tuned_mlups,
            row.winner
        );

        assert!(
            warm_tuned.cache_hit,
            "{}: second solve must hit",
            family.name()
        );
        assert_eq!(
            warm_tuned.measurements,
            0,
            "{}: a warm hit costs no measurement",
            family.name()
        );
        assert!(
            !warm_tuned.calibrated,
            "{}: a warm hit runs no membench",
            family.name()
        );
        assert_eq!(
            warm_tuned.plan,
            cold_tuned.plan,
            "{}: deterministic replay",
            family.name()
        );
        assert!(
            row.tuned_mlups >= row.default_mlups,
            "{}: tuned {:.1} lost to default {:.1}",
            family.name(),
            row.tuned_mlups,
            row.default_mlups
        );
        rows.push(row);
    }
    assert!(!rows.is_empty(), "no family was tunable");

    let enumerated: usize = rows.iter().map(|r| r.enumerated).sum();
    let measured: usize = rows.iter().map(|r| r.measured).sum();
    let pruning_ratio = measured as f64 / enumerated as f64;
    let all_verified = rows.iter().all(|r| r.verified);
    let warm_measurements: usize = rows.iter().map(|r| r.warm_measurements).sum();

    println!(
        "\noverall: {measured}/{enumerated} candidates measured \
         (pruning ratio {pruning_ratio:.2}), warm hits measured {warm_measurements} trials"
    );
    assert!(
        pruning_ratio <= 0.5,
        "overall pruning ratio {pruning_ratio:.2} > 0.5: the model is not pruning"
    );

    let json = format!(
        "{{\n  \"edge\": {edge},\n  \"sweeps\": {sweeps},\n  \"top_k\": {top_k},\n  \
         \"workers\": {workers},\n  \"enumerated\": {enumerated},\n  \
         \"measured\": {measured},\n  \"pruning_ratio\": {pruning_ratio:.3},\n  \
         \"warm_measurements\": {warm_measurements},\n  \"all_verified\": {all_verified},\n  \
         \"families\": [\n{body}\n  ]\n}}\n",
        workers = rt.threads(),
        body = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"family\": \"{}\", \"enumerated\": {}, \"measured\": {}, \
                     \"cold_tune_ms\": {:.2}, \"warm_hit_ms\": {:.2}, \
                     \"default_mlups\": {:.2}, \"tuned_mlups\": {:.2}, \
                     \"tuned_over_default\": {:.3}, \"warm_measurements\": {}, \
                     \"winner\": \"{}\", \"verified\": {}}}",
                    r.family,
                    r.enumerated,
                    r.measured,
                    r.cold_ms,
                    r.warm_ms,
                    r.default_mlups,
                    r.tuned_mlups,
                    r.tuned_mlups / r.default_mlups.max(1e-9),
                    r.warm_measurements,
                    r.winner,
                    r.verified
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = args.get("--out").unwrap_or("BENCH_plan.json");
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_plan.json");
    println!("wrote {path}");

    std::fs::remove_dir_all(&cache_dir).ok();
    assert!(
        all_verified,
        "some tuned runs diverged from the sequential oracle"
    );
    assert_eq!(warm_measurements, 0, "warm hits must be measurement-free");
    println!(
        "all {} family cold+warm runs matched the sequential oracle bitwise",
        rows.len()
    );
}
