//! Experiment E2 — Fig. 3 (right): influence of pipeline looseness.
//!
//! Performance of the relaxed-sync pipeline versus `d_u - d_l` for the
//! socket (one team) and node (all cache groups) configurations. The
//! paper finds d_u−d_l ∈ 0..3 all good, with ~80% gain over the
//! lock-step `d_l = d_u = 1` case on the node.
//!
//! `--size N --sweeps S --reps R` as usual.

use tb_bench::{best_of, problem, Args};
use tb_grid::GridPair;
use tb_stencil::config::GridScheme;
use tb_stencil::{pipeline, PipelineConfig, SyncMode};
use tb_topology::TeamLayout;

fn main() {
    let args = Args::parse();
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 12);
    let reps = args.get_usize("--reps", 3);
    let t = machine.cores_per_socket().max(1);
    let groups = machine.cache_groups().len().max(2);

    println!(
        "Fig. 3 (right) — performance vs d_u - d_l on {} ({edge}^3, {sweeps} sweeps)\n",
        machine.name
    );
    println!(
        "{:>8} {:>16} {:>16}",
        "d_u-d_l", "socket MLUP/s", "node MLUP/s"
    );

    for looseness in 0..=5u64 {
        let sync = SyncMode::Relaxed {
            dl: 1,
            du: 1 + looseness,
            dt: 0,
        };
        let run = |n_teams: usize| {
            let cfg = PipelineConfig {
                team_size: t,
                n_teams,
                updates_per_thread: 2,
                block: [edge.min(120), 20, 20],
                sync,
                scheme: GridScheme::TwoGrid,
                layout: Some(TeamLayout::new(&machine, t, n_teams)),
                audit: false,
            };
            best_of(reps, || {
                let mut pair = GridPair::from_initial(problem(edge, 42));
                pipeline::run(&mut pair, &cfg, sweeps).expect("valid config")
            })
        };
        let socket = run(1);
        let node = run(groups);
        println!(
            "{:>8} {:>16.1} {:>16.1}",
            looseness,
            socket.mlups(),
            node.mlups()
        );
    }
    println!(
        "\npaper: optimal d_u in 1..4 with the ~120x20x20 blocks; about +80%\n\
         over lock-step (d_l=d_u=1) on the node; larger blocks would need\n\
         smaller d_u to keep blocks resident in the shared cache."
    );
}
