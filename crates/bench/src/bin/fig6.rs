//! Experiment E4 — Fig. 6: distributed-memory strong and weak scaling of
//! the standard and pipelined Jacobi on 1..64 nodes.
//!
//! Modes:
//! * `--mode model` (default): nominal Nehalem-cluster curves through the
//!   scaling model (per-node rates below), plus ideal lines.
//! * `--mode sim`: same curves, but every point *executes* the real
//!   decomposition + multi-layer exchange + solver on a scaled problem
//!   with the full rank count and verifies it bitwise against the serial
//!   solver (DESIGN.md §4 substitution).
//! * `--mode host`: real timed weak-scaling runs with 1..N_cpu in-process
//!   ranks on this machine (small grids; wall-clock measurement).
//!
//! Per-node rates are taken from the paper's Fig. 3 measurement class:
//! standard 8PPN 2.9 GLUP/s, standard 1PPN ("hybrid vector", clearly
//! inferior) 2.2, pipelined 1PPN (ccNUMA-limited) 3.0, pipelined 2PPN
//! 3.4 GLUP/s; pipelined halo width h = n·t·T = 16.

use tb_bench::Args;
use tb_dist::sim::{simulate, SimSpec};
use tb_model::{NetworkParams, ScalingConfig, ScalingMode};

struct Curve {
    label: &'static str,
    ppn: usize,
    node_lups: f64,
    halo: usize,
}

const CURVES: [Curve; 4] = [
    Curve {
        label: "standard 8PPN",
        ppn: 8,
        node_lups: 2.9e9,
        halo: 1,
    },
    Curve {
        label: "standard 1PPN",
        ppn: 1,
        node_lups: 2.2e9,
        halo: 1,
    },
    Curve {
        label: "pipelined 1PPN",
        ppn: 1,
        node_lups: 3.0e9,
        halo: 16,
    },
    Curve {
        label: "pipelined 2PPN",
        ppn: 2,
        node_lups: 3.4e9,
        halo: 16,
    },
];

const NODES: [usize; 4] = [1, 8, 27, 64];

fn config(c: &Curve, mode: ScalingMode) -> ScalingConfig {
    ScalingConfig {
        ppn: c.ppn,
        node_lups: c.node_lups,
        halo_h: c.halo,
        net: NetworkParams::qdr_infiniband(),
        mode,
        base_edge: 600,
    }
}

fn main() {
    let args = Args::parse();
    match args.mode() {
        "sim" => sim(&args),
        "host" => host(&args),
        _ => model(),
    }
}

fn model() {
    println!("Fig. 6 — scaling model, 600^3 (strong) / 600^3 per process (weak)\n");
    for (mode, name) in [(ScalingMode::Strong, "strong"), (ScalingMode::Weak, "weak")] {
        println!("{name} scaling [GLUP/s]:");
        print!("{:<18}", "nodes");
        for n in NODES {
            print!(" {n:>10}");
        }
        println!();
        for c in &CURVES {
            let cfg = config(c, mode);
            print!("{:<18}", c.label);
            for n in NODES {
                print!(" {:>10.1}", cfg.predict(n).glups);
            }
            println!();
        }
        // Ideal lines: standard 8PPN and pipelined 2PPN node rates.
        for (label, rate) in [("ideal standard", 2.9e9), ("ideal pipelined", 3.4e9)] {
            print!("{label:<18}");
            for n in NODES {
                print!(" {:>10.1}", n as f64 * rate / 1e9);
            }
            println!();
        }
        println!();
    }
    println!(
        "paper's reading: strong scaling at large node counts is dominated by\n\
         communication and the temporal-blocking benefit is lost; weak scaling\n\
         keeps ~80% of the pipelined speedup, and 2PPN beats 1PPN because one\n\
         process per socket sidesteps the ccNUMA placement problem."
    );
}

fn sim(args: &Args) {
    let exec_edge = args.get_usize("--exec-size", 20);
    let sweeps = args.get_usize("--sweeps", 4);
    println!(
        "Fig. 6 — virtual cluster simulation (real protocol on {exec_edge}^3, nominal 600^3)\n"
    );
    let (mut halo_total, mut gather_total) = (0u64, 0u64);
    for (mode, name) in [(ScalingMode::Strong, "strong"), (ScalingMode::Weak, "weak")] {
        println!("{name} scaling [GLUP/s] (every point protocol-verified):");
        print!("{:<18}", "nodes");
        for n in NODES {
            print!(" {n:>10}");
        }
        println!();
        for c in &CURVES {
            print!("{:<18}", c.label);
            for n in NODES {
                // Cap the executed rank count so oversubscription stays
                // tractable; the nominal prediction still uses n.
                let spec = SimSpec {
                    nodes: n,
                    cfg: config(c, mode),
                    exec_edge,
                    exec_halo: 2,
                    exec_sweeps: sweeps,
                };
                let out = simulate(&spec);
                assert!(out.verified, "{} at {n} nodes failed verification", c.label);
                halo_total += out.halo_bytes;
                gather_total += out.gather_bytes;
                print!(" {:>10.1}", out.point.glups);
            }
            println!();
        }
        println!();
    }
    println!(
        "executed protocol traffic across all points: {:.2} MB halo, {:.2} MB gather",
        halo_total as f64 / 1e6,
        gather_total as f64 / 1e6
    );
    println!("all points executed the real exchange/update path and matched the serial solver");
}

fn host(args: &Args) {
    use tb_dist::{solver, Decomposition, DistJacobi, LocalExec};
    use tb_grid::{init, Dims3};
    use tb_net::{CartComm, Universe};

    let edge_per_rank = args.get_usize("--size", 48);
    let sweeps = args.get_usize("--sweeps", 6);
    let max_ranks = tb_topology::detect::detect().num_cpus().max(2);
    println!(
        "Fig. 6 — host weak scaling, {edge_per_rank}^3 owned cells per rank, {sweeps} sweeps\n"
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12}",
        "ranks", "MLUP/s", "efficiency", "halo[MB]", "gather[MB]"
    );
    let mut base_rate = None;
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let pgrid = [ranks, 1, 1];
        let dims = Dims3::new(
            edge_per_rank * ranks + 2,
            edge_per_rank + 2,
            edge_per_rank + 2,
        );
        let dec = Decomposition::new(dims, pgrid, 2);
        let global = init::random::<f64>(dims, 11);
        let (global_ref, dec_ref) = (&global, &dec);
        let results = Universe::run(ranks, None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistJacobi::from_global(dec_ref, cart.coords(), global_ref, LocalExec::Seq)
                .unwrap();
            let t0 = std::time::Instant::now();
            let st = s.run_sweeps(&mut cart, sweeps);
            let secs = t0.elapsed().as_secs_f64();
            let _ = s.gather_global(&mut cart, dec_ref, global_ref);
            (
                st.cell_updates,
                secs,
                s.halo_bytes_sent,
                s.gather_bytes_sent,
            )
        });
        let elapsed = results.iter().map(|r| r.1).fold(0.0, f64::max);
        let total: u64 = results.iter().map(|r| r.0).sum();
        let halo: u64 = results.iter().map(|r| r.2).sum();
        let gather: u64 = results.iter().map(|r| r.3).sum();
        let mlups = total as f64 / elapsed / 1e6;
        let eff = base_rate
            .map(|b: f64| mlups / (b * ranks as f64))
            .unwrap_or(1.0);
        if base_rate.is_none() {
            base_rate = Some(mlups);
        }
        println!(
            "{ranks:>6} {mlups:>12.1} {eff:>14.2} {:>12.2} {:>12.2}",
            halo as f64 / 1e6,
            gather as f64 / 1e6
        );
        let _ = solver::serial_reference::<f64>; // keep the oracle linked for doc purposes
        ranks *= 2;
    }
}
