//! Experiment E6 — the §1.4 diagnostic model numbers.
//!
//! Prints Eq. 4 block times and Eq. 5 speedups for the paper's Nehalem
//! parameters, checks the closed form 16T/(7+4T) the paper derives for
//! t = 4, shows the t·T→∞ limit (M_c/M_s) and the bandwidth-scaling
//! counterexample where temporal blocking cannot win.

use tb_model::{pipeline, MachineParams};

fn main() {
    let m = MachineParams::nehalem_ep();
    let ideal = MachineParams {
        ms: 20.0e9,
        ms1: 10.0e9,
        mc: 80.0e9,
        ..m
    };
    println!("single-cache diagnostic model (Eqs. 4-5), Nehalem EP\n");
    println!(
        "{:>4} {:>6} {:>14} {:>12} {:>14}",
        "t", "T", "T_b [ns/LUP]", "speedup", "16T/(7+4T)"
    );
    for updates in [1usize, 2, 4, 8] {
        let t = 4usize;
        let tb = pipeline::team_block_time(&ideal, t, updates) * 1e9;
        let s = pipeline::pipeline_speedup(&ideal, t, updates);
        let closed = 16.0 * updates as f64 / (7.0 + 4.0 * updates as f64);
        println!("{t:>4} {updates:>6} {tb:>14.3} {s:>12.4} {closed:>14.4}");
    }
    println!(
        "\nT=1 speedup {:.4} (paper: 1.45); asymptotic limit Mc/Ms = {:.2} (paper: ~4)",
        pipeline::pipeline_speedup(&ideal, 4, 1),
        ideal.max_speedup()
    );

    let scaling = MachineParams::bandwidth_scaling(4);
    println!(
        "\ncounterexample — memory bandwidth scaling with cores (Ms = 4*Ms,1):\n\
         speedup at t=4, T=4: {:.3} (<= 1: such machines gain nothing, §1.4)",
        pipeline::pipeline_speedup(&scaling, 4, 4)
    );

    let core2 = MachineParams::core2_like();
    println!(
        "\nbandwidth-starved Core 2-like design: speedup at t=2, T=2: {:.2}\n\
         (older designs profit more — paper §3)",
        pipeline::pipeline_speedup(&core2, 2, 2)
    );
}
